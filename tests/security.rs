//! Security integration tests: the attack demonstrations and the isolation
//! guarantees that defend them.

use jumanji::attacks::conflict::prime_probe;
use jumanji::attacks::leakage::{leakage_experiment, LeakageConfig};
use jumanji::attacks::port::{run_port_attack, PortAttackConfig};
use jumanji::prelude::*;

#[test]
fn port_attack_identifies_victim_bank() {
    let trace = run_port_attack(PortAttackConfig::default());
    assert!(trace.detects_victim(2.0));
    // The 12-bump NoC signature exists too: activity anywhere is visible.
    assert!(trace.other_bank_level() > trace.baseline() + 1.0);
}

#[test]
fn conflict_attack_defended_by_partitioning_only() {
    let victim: Vec<u64> = (200..216u64).map(|i| i * 64).collect();
    assert!(prime_probe(16, &victim, false).detected);
    let defended = prime_probe(16, &victim, true);
    let idle = prime_probe(16, &[], true);
    assert_eq!(defended.evictions, idle.evictions);
}

#[test]
fn set_dueling_leaks_through_partitions() {
    let r = leakage_experiment(LeakageConfig {
        num_mixes: 10,
        steps: 50_000,
        seed: 11,
    });
    assert!(r.snuca_spread() > 0.05, "spread {:.3}", r.snuca_spread());
    assert!(r.dnuca_spread() < 1e-9);
    // D-NUCA with a *smaller* allocation still beats the S-NUCA mean
    // (paper: 20% lower with 2 MB vs 2.5 MB).
    let snuca_mean: f64 = r.snuca_norm_tails.iter().sum::<f64>() / r.snuca_norm_tails.len() as f64;
    assert!(r.dnuca_norm_tails[0] < snuca_mean);
}

#[test]
fn jumanji_never_shares_banks_across_many_random_inputs() {
    // The isolation guarantee must hold structurally, not statistically.
    let cfg = SystemConfig::micro2020();
    for seed in 0..12u64 {
        let mix = WorkloadMix::mixed_lc(seed);
        let exp = Experiment::new(mix, LcLoad::High, SimOptions::default());
        // One reconfiguration's worth of placement from arbitrary state:
        // directly exercise the placer on the example input with varied
        // LC sizes.
        let mut input = PlacementInput::example(&cfg);
        for (i, size) in input.lc_sizes.iter_mut().enumerate() {
            if *size > 0.0 {
                *size = (0.5 + ((seed as usize + i) % 5) as f64) * 1048576.0;
            }
        }
        let alloc = DesignKind::Jumanji.allocate(&input);
        alloc.validate(&cfg).unwrap();
        assert!(alloc.vm_isolated(&input), "seed {seed}");
        drop(exp);
    }
}

#[test]
fn flushing_defends_bank_handoff() {
    // Sec. IV-B: when VMs outnumber banks, a shared bank is flushed on
    // context switch so the incoming VM sees no residue.
    use jumanji::cache::{BankConfig, CacheBank, PartitionId, ReplPolicy};
    let mut bank = CacheBank::new(BankConfig {
        sets: 64,
        ways: 8,
        policy: ReplPolicy::Lru,
    });
    let outgoing = PartitionId(0);
    for line in 0..256u64 {
        bank.access(line, outgoing);
    }
    assert!(bank.occupancy(outgoing) > 0);
    bank.flush_partition(outgoing);
    assert_eq!(bank.occupancy(outgoing), 0, "no residue for the next VM");
}
