//! Throughput of the detailed hardware structures: cache banks under each
//! replacement policy, the bank-port simulator, and the UMON profiler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jumanji::cache::{BankConfig, CacheBank, PartitionId, ReplPolicy, StackProfiler};
use jumanji::noc::BankPorts;
use jumanji::types::Cycles;
use jumanji::umon::Umon;
use std::hint::black_box;

const N: usize = 10_000;

fn bank_access(c: &mut Criterion) {
    let stream: Vec<u64> = (0..N as u64).map(|i| (i * 7 + i / 5) % 4096).collect();
    let mut group = c.benchmark_group("cache_bank");
    group.throughput(Throughput::Elements(N as u64));
    for (label, policy) in [
        ("lru", ReplPolicy::Lru),
        ("srrip", ReplPolicy::Srrip),
        ("drrip", ReplPolicy::Drrip),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut bank = CacheBank::new(BankConfig {
                    sets: 512,
                    ways: 32,
                    policy,
                });
                for &l in &stream {
                    black_box(bank.access(l, PartitionId(0)));
                }
                bank.stats().misses()
            })
        });
    }
    group.finish();
}

fn monitors(c: &mut Criterion) {
    let stream: Vec<u64> = (0..N as u64).map(|i| (i * 13) % 8192).collect();
    let mut group = c.benchmark_group("monitor");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("umon_sampled", |b| {
        b.iter(|| {
            let mut umon = Umon::new(32, 32, 512);
            for &l in &stream {
                umon.observe(l);
            }
            black_box(umon.lru_curve())
        })
    });
    group.bench_function("mattson_exact", |b| {
        b.iter(|| {
            let mut prof = StackProfiler::new();
            for &l in &stream {
                prof.record(l);
            }
            black_box(prof.miss_curve(64, 32))
        })
    });
    group.finish();
}

fn ports(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_port");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("contended_requests", |b| {
        b.iter(|| {
            let mut port = BankPorts::new(1, Cycles(4));
            let mut t = 0u64;
            for i in 0..N as u64 {
                let g = port.request(Cycles(t));
                if i % 3 == 0 {
                    port.request(Cycles(t)); // competing requester
                }
                t = g.done.as_u64();
            }
            black_box(port.stats())
        })
    });
    group.finish();
}

fn virtual_cache(c: &mut Criterion) {
    use jumanji::types::{AppId, PageId};
    use jumanji::vc::{PageMap, PlacementDescriptor, Tlb, Vtb};

    // Page-locality stream: mostly hot pages, a streaming tail.
    let pages: Vec<PageId> = (0..N)
        .map(|i| {
            let r = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
            if r % 10 < 9 {
                PageId((r % 96) as usize)
            } else {
                PageId(10_000 + i)
            }
        })
        .collect();
    let mut group = c.benchmark_group("virtual_cache");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("tlb_access", |b| {
        b.iter(|| {
            let mut tlb = Tlb::new(64);
            for &p in &pages {
                black_box(tlb.access(p));
            }
            tlb.hits()
        })
    });
    group.bench_function("vtb_lookup", |b| {
        let mut vtb = Vtb::new();
        for a in 0..20 {
            vtb.install(AppId(a), PlacementDescriptor::uniform(20));
        }
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..N as u64 {
                acc += vtb.lookup(AppId((i % 20) as usize), i * 64).index();
            }
            black_box(acc)
        })
    });
    group.bench_function("pagemap_assign_lookup", |b| {
        b.iter(|| {
            let mut pm = PageMap::new();
            for &p in &pages {
                pm.assign(p, AppId(p.index() % 20));
            }
            let mut acc = 0usize;
            for &p in &pages {
                acc += pm.vc_of(p).map(|a| a.index()).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn detailed_sim(c: &mut Criterion) {
    use jumanji::core::{DesignKind, PlacementInput};
    use jumanji::prelude::*;
    use jumanji::sim::detail::{run_detailed, DetailOptions};
    use jumanji::sim::perf::Profile;
    use jumanji::workloads::LcLoad;

    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let lc = tailbench();
    let batch = spec2006();
    let profiles: Vec<Profile> = input
        .apps
        .iter()
        .enumerate()
        .map(|(i, a)| match a.kind {
            jumanji::core::AppKind::LatencyCritical => {
                Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High)
            }
            jumanji::core::AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
        })
        .collect();
    let cores: Vec<_> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<_> = input.apps.iter().map(|a| a.vm).collect();
    let alloc = DesignKind::Jumanji.allocate(&input);
    let opts = DetailOptions {
        cfg,
        accesses_per_app: 2_000,
        ..DetailOptions::default()
    };
    let mut group = c.benchmark_group("detail_sim");
    group.throughput(Throughput::Elements(2_000 * 20));
    group.bench_function("full_system_accesses", |b| {
        b.iter(|| {
            black_box(run_detailed(
                &opts, &profiles, &cores, &vms, &alloc, &NoopSink,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bank_access,
    monitors,
    ports,
    virtual_cache,
    detailed_sim
);
criterion_main!(benches);
