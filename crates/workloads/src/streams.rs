//! Synthetic address-stream generators.
//!
//! The analytic simulator consumes [`CurveShape`]s directly; the detailed
//! execution-driven simulator (`nuca-sim::detail`) needs *address streams*
//! whose measured miss curves realize those shapes. A [`StreamGenerator`]
//! translates a shape into a mixture of access regions:
//!
//! - each **Smooth** component becomes uniform random accesses over a
//!   region of `ws` lines — under LRU this measures as a miss ratio
//!   decaying roughly linearly to zero at `ws`, a faithful stand-in for
//!   the component's gradual decay;
//! - each **Cliff** component becomes a cyclic scan of `ws` lines — the
//!   textbook LRU cliff;
//! - the **floor** becomes a never-reused stream (compulsory misses).
//!
//! Regions live at disjoint address bases so distinct components (and
//! distinct applications) never alias.

use crate::curves::{Component, CurveShape};
use nuca_cache::LineAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Address-space stride separating regions (lines).
const REGION_STRIDE: u64 = 1 << 28;

#[derive(Debug, Clone)]
enum Region {
    /// Uniform random reuse over `lines`.
    Hot { base: u64, lines: u64 },
    /// Cyclic scan over `lines`.
    Cyclic { base: u64, lines: u64, pos: u64 },
    /// Never-reused streaming.
    Stream { base: u64, pos: u64 },
}

/// Generates an address stream realizing a [`CurveShape`].
///
/// # Examples
///
/// ```
/// use nuca_workloads::{curves::CurveShape, StreamGenerator};
/// let shape = CurveShape::streaming(0.9);
/// let mut gen = StreamGenerator::from_shape(&shape, 64, 1, 7);
/// let a = gen.next_line();
/// let b = gen.next_line();
/// assert_ne!(a, b, "streaming accesses never repeat");
/// ```
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    rng: SmallRng,
    /// Cumulative probability bound per region, for roulette selection.
    /// Kept apart from `regions` so the per-access scan reads a compact
    /// array (one cache line for typical shapes) instead of striding
    /// through enum payloads.
    cum: Vec<f64>,
    regions: Vec<Region>,
}

impl StreamGenerator {
    /// Builds a generator from a shape.
    ///
    /// `line_bytes` converts component working-set sizes to lines;
    /// `app_index` offsets the address space so different applications
    /// never share lines.
    ///
    /// # Panics
    ///
    /// Panics if the shape's zero-capacity miss ratio is zero (nothing
    /// would ever miss, so no stream exists to generate) or
    /// `line_bytes == 0`.
    pub fn from_shape(
        shape: &CurveShape,
        line_bytes: u64,
        app_index: usize,
        seed: u64,
    ) -> StreamGenerator {
        assert!(line_bytes > 0, "line_bytes must be nonzero");
        let app_base = (app_index as u64 + 1) << 36;
        let mut regions = Vec::new();
        let mut cum = 0.0;
        for (k, comp) in shape.components().iter().enumerate() {
            let base = app_base + (k as u64 + 1) * REGION_STRIDE;
            match *comp {
                Component::Smooth {
                    weight, ws_bytes, ..
                } => {
                    cum += weight;
                    regions.push((
                        cum,
                        Region::Hot {
                            base,
                            lines: (ws_bytes / line_bytes).max(1),
                        },
                    ));
                }
                Component::Cliff { weight, ws_bytes } => {
                    cum += weight;
                    regions.push((
                        cum,
                        Region::Cyclic {
                            base,
                            lines: (ws_bytes / line_bytes).max(1),
                            pos: 0,
                        },
                    ));
                }
            }
        }
        let floor = shape.floor();
        if floor > 0.0 {
            cum += floor;
            regions.push((
                cum,
                Region::Stream {
                    base: app_base,
                    pos: 0,
                },
            ));
        }
        assert!(cum > 0.0, "shape must have a nonzero zero-capacity ratio");
        // The shape's zero-capacity ratio may be below 1: the remainder is
        // traffic that effectively always hits (tiny per-thread state).
        // Model it as a handful of pinned-hot lines.
        let always_hit = (1.0 - cum).max(0.0);
        if always_hit > 1e-9 {
            cum += always_hit;
            regions.push((
                cum,
                Region::Hot {
                    base: app_base + REGION_STRIDE / 2,
                    lines: 8,
                },
            ));
        }
        // Normalize cumulative weights to 1.
        for (c, _) in &mut regions {
            *c /= cum;
        }
        if let Some((c, _)) = regions.last_mut() {
            *c = 1.0;
        }
        let (cum, regions) = regions.into_iter().unzip();
        StreamGenerator {
            rng: SmallRng::seed_from_u64(seed ^ (app_index as u64).wrapping_mul(0xA5A5_5A5A)),
            cum,
            regions,
        }
    }

    /// The next line address in the stream.
    pub fn next_line(&mut self) -> LineAddr {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        // Branch-free roulette: the number of cumulative bounds strictly
        // below `u` is exactly the first index with `u <= cum[idx]` (the
        // bounds ascend), and counting avoids a data-dependent branch per
        // region. The clamp covers the floating-point edge where `u`
        // exceeds every bound.
        let mut idx = 0usize;
        for &c in &self.cum {
            idx += usize::from(c < u);
        }
        let idx = idx.min(self.regions.len() - 1);
        match &mut self.regions[idx] {
            Region::Hot { base, lines } => *base + self.rng.gen_range(0..*lines),
            Region::Cyclic { base, lines, pos } => {
                let line = *base + *pos;
                *pos = (*pos + 1) % *lines;
                line
            }
            Region::Stream { base, pos } => {
                *pos += 1;
                *base + *pos
            }
        }
    }

    /// Generates `n` line addresses.
    pub fn lines(&mut self, n: usize) -> Vec<LineAddr> {
        (0..n).map(|_| self.next_line()).collect()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only scratch sets; order never observed
mod tests {
    use super::*;
    use crate::{spec2006, tailbench, MB};
    use nuca_cache::StackProfiler;

    /// Measures the miss-ratio curve of a generated stream with the exact
    /// Mattson profiler.
    fn measured_ratio(shape: &CurveShape, capacity_bytes: u64, n: usize) -> f64 {
        let mut gen = StreamGenerator::from_shape(shape, 64, 0, 11);
        let mut prof = StackProfiler::new();
        for _ in 0..n {
            prof.record(gen.next_line());
        }
        let lines_per_unit = (capacity_bytes / 64).max(1) as usize;
        let curve = prof.miss_curve(lines_per_unit, 1);
        // Steady-state-ish: subtract nothing; cold misses are genuine for
        // a finite run, so compare with tolerance.
        curve.at(1) / prof.accesses() as f64
    }

    #[test]
    fn streaming_shape_always_misses() {
        let shape = CurveShape::streaming(0.95);
        let mr = measured_ratio(&shape, 4 * MB, 50_000);
        assert!(mr > 0.9, "streaming floor measured {mr}");
    }

    #[test]
    fn measured_curve_tracks_shape_for_spec_profiles() {
        // Spot-check three diverse profiles at two capacities each.
        let profiles = spec2006();
        for name in ["403.gcc", "429.mcf", "454.calculix"] {
            let p = profiles.iter().find(|p| p.name == name).unwrap();
            for cap_mb in [1u64, 4] {
                let cap = cap_mb * MB;
                let want = p.shape.ratio(cap);
                let got = measured_ratio(&p.shape, cap, 150_000);
                assert!(
                    (got - want).abs() < 0.22,
                    "{name} at {cap_mb} MB: measured {got:.3} vs shape {want:.3}"
                );
            }
        }
    }

    #[test]
    fn near_zero_capacity_ratio_matches_shape() {
        // At a small (16 KB) capacity, only the pinned-hot lines fit, so
        // the measured ratio approaches the shape's zero-capacity ratio.
        let lc = tailbench();
        let shape = &lc[0].shape;
        let got = measured_ratio(shape, 16 * 1024, 60_000);
        let want = shape.ratio(16 * 1024);
        assert!((got - want).abs() < 0.12, "measured {got} vs {want}");
    }

    #[test]
    fn apps_use_disjoint_address_spaces() {
        let shape = CurveShape::streaming(0.5);
        let mut a = StreamGenerator::from_shape(&shape, 64, 0, 1);
        let mut b = StreamGenerator::from_shape(&shape, 64, 1, 1);
        let sa: std::collections::HashSet<u64> = a.lines(1000).into_iter().collect();
        let sb: std::collections::HashSet<u64> = b.lines(1000).into_iter().collect();
        assert!(sa.is_disjoint(&sb));
    }

    #[test]
    fn deterministic_per_seed() {
        let shape = spec2006()[0].shape.clone();
        let mut a = StreamGenerator::from_shape(&shape, 64, 0, 9);
        let mut b = StreamGenerator::from_shape(&shape, 64, 0, 9);
        assert_eq!(a.lines(500), b.lines(500));
    }

    #[test]
    #[should_panic(expected = "nonzero zero-capacity ratio")]
    fn all_zero_shape_panics() {
        let shape = CurveShape::streaming(0.0);
        StreamGenerator::from_shape(&shape, 64, 0, 1);
    }
}
