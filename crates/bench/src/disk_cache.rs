//! The disk-backed persistent half of the experiment-cell cache.
//!
//! [`CellCache`](crate::cell_cache::CellCache) deduplicates cells inside
//! one process; this module makes the dedup survive the process. A
//! [`DiskCache`] roots a directory (`--cache-dir` /
//! `JUMANJI_CACHE_DIR`) holding one file per completed cell, named by
//! the cell's 128-bit content fingerprint — the *same* keys the
//! in-memory maps use, so a cell computed by any process is warm for
//! every later one:
//!
//! - `runs/<key>.bin` — completed [`ExperimentResult`]s;
//! - `details/<key>.bin` — completed detailed-simulator
//!   [`DetailReport`]s (the heaviest cells in the repo: fig02 and
//!   validate);
//! - `allocs/<key>.bin` — one-shot [`Allocation`]s;
//! - `model.bin` — the simulator's expensive construction memos (ratio
//!   hulls and deadline isolation runs), so even a *cold* run cell
//!   constructs its experiment from warm models;
//! - `costs.bin` — measured per-design node durations, fed back into
//!   the suite scheduler's cost priors
//!   ([`plan::CostModel`](crate::figures::plan::CostModel)).
//!
//! Every file is framed by the versioned, checksummed envelope of
//! [`nuca_types::codec`] and written via temp-file + atomic rename, so
//! concurrent processes sharing one directory can never observe a
//! half-written entry. Reads that find a truncated, bit-flipped, or
//! stale-format file delete it and report a miss — the caller
//! recomputes; a corrupt cache can cost time but never correctness.
//! Floats are stored by bit pattern, so results served from disk format
//! to byte-identical TSVs.
//!
//! The store is bounded on request: [`DiskCache::set_cap_bytes`]
//! (`--cache-cap-bytes` / `JUMANJI_CACHE_CAP` on the binaries) caps the
//! total size of the entry files, and [`DiskCache::enforce_cap`] evicts
//! the least-recently-written entries (by mtime — every write refreshes
//! its entry's mtime, so write order approximates use order) until the
//! store fits. `model.bin` and `costs.bin` are small shared memos and
//! are never evicted for space.
//!
//! The codec is hand-rolled (no serde — the workspace builds offline):
//! each domain type gets an explicit field-order encode/decode pair
//! below, and any layout change must bump
//! [`codec::FORMAT_VERSION`](jumanji::types::codec::FORMAT_VERSION).

// Every map in this module is Mix64Build-hashed (or iterated only after
// sorting); clippy's type ban cannot see hasher parameters.
#![allow(clippy::disallowed_types)]

use jumanji::cache::MissCurve;
use jumanji::core::{Allocation, AppAlloc, DesignKind, Pool};
use jumanji::sim::detail::{DetailAppStats, DetailReport};
use jumanji::sim::energy::EnergyBreakdown;
use jumanji::sim::{export_ratio_hulls, seed_ratio_hull, ExperimentResult, IntervalRecord};
use jumanji::types::codec::{decode_entry, encode_entry, ByteReader, ByteWriter, CodecError};
use jumanji::types::hash::Mix64Build;
use jumanji::types::{AppId, BankId};
use jumanji::workloads::{spec2006, tailbench};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::{fs, io};

/// Envelope kind tag for run-cell entries.
const KIND_RUN: u16 = 1;
/// Envelope kind tag for allocation entries.
const KIND_ALLOC: u16 = 2;
/// Envelope kind tag for the model-memo file (hulls + deadlines).
const KIND_MODEL: u16 = 3;
/// Envelope kind tag for the measured-cost table.
const KIND_COSTS: u16 = 4;
/// Envelope kind tag for detailed-simulator report entries.
const KIND_DETAIL: u16 = 5;

/// Number of [`DesignKind`] variants (size of the per-design cost rows).
pub const NUM_DESIGNS: usize = 7;

/// Counter snapshot of one [`DiskCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskCacheStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no (valid) entry on disk.
    pub misses: u64,
    /// Entries successfully written.
    pub writes: u64,
    /// Cache files deleted — corruption drops plus size-cap evictions
    /// (see [`DiskCache::enforce_cap`]).
    pub evictions: u64,
    /// Entries dropped because they failed envelope or payload
    /// validation (truncated, bad checksum, wrong format version, …).
    pub corrupt_dropped: u64,
}

/// Measured per-design run costs accumulated across suite runs:
/// `(samples, total µs-per-interval)` rows, plus one row for experiment
/// constructions. Stored in `costs.bin` and folded into the scheduler's
/// cost priors on warm runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeasuredCosts {
    /// Per-design `(samples, total µs-per-interval)`, indexed by
    /// [`design_tag`].
    pub runs: [(u64, f64); NUM_DESIGNS],
    /// Experiment constructions: `(samples, total µs-per-interval)`.
    pub exps: (u64, f64),
    /// Detailed-simulator cells: `(samples, total µs-per-work-unit)`,
    /// where one work unit is [`plan::DETAIL_UNIT_ACCESSES`] total
    /// accesses (see [`plan::detail_units`]).
    ///
    /// [`plan::DETAIL_UNIT_ACCESSES`]: crate::figures::plan::DETAIL_UNIT_ACCESSES
    /// [`plan::detail_units`]: crate::figures::plan::detail_units
    pub details: (u64, f64),
}

impl MeasuredCosts {
    /// True when no sample has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.exps.0 == 0 && self.details.0 == 0 && self.runs.iter().all(|(n, _)| *n == 0)
    }

    /// Folds another cost table into this one.
    pub fn merge(&mut self, other: &MeasuredCosts) {
        for (a, b) in self.runs.iter_mut().zip(other.runs.iter()) {
            a.0 += b.0;
            a.1 += b.1;
        }
        self.exps.0 += other.exps.0;
        self.exps.1 += other.exps.1;
        self.details.0 += other.details.0;
        self.details.1 += other.details.1;
    }

    /// Records one measured run: `us` micro-seconds for a node covering
    /// `intervals` reconfiguration intervals.
    pub fn record_run(&mut self, design: DesignKind, intervals: u64, us: u64) {
        let row = &mut self.runs[design_tag(design) as usize];
        row.0 += 1;
        row.1 += us as f64 / intervals.max(1) as f64;
    }

    /// Records one measured experiment construction.
    pub fn record_exp(&mut self, intervals: u64, us: u64) {
        self.exps.0 += 1;
        self.exps.1 += us as f64 / intervals.max(1) as f64;
    }

    /// Mean measured µs-per-interval for `design`, if any sample exists.
    pub fn mean_run_us(&self, design: DesignKind) -> Option<f64> {
        let (n, total) = self.runs[design_tag(design) as usize];
        (n > 0).then(|| total / n as f64)
    }

    /// Mean measured µs-per-interval for experiment construction.
    pub fn mean_exp_us(&self) -> Option<f64> {
        let (n, total) = self.exps;
        (n > 0).then(|| total / n as f64)
    }

    /// Records one measured detailed-simulator cell: `us` micro-seconds
    /// for a node covering `units` work units (fractions of a unit are
    /// rounded up by the caller's unit computation, never zero).
    pub fn record_detail(&mut self, units: f64, us: u64) {
        self.details.0 += 1;
        self.details.1 += us as f64 / units.max(1.0);
    }

    /// Mean measured µs-per-work-unit for detailed cells, if any sample
    /// exists.
    pub fn mean_detail_us(&self) -> Option<f64> {
        let (n, total) = self.details;
        (n > 0).then(|| total / n as f64)
    }
}

/// The stable on-disk tag of a design (array index into
/// [`MeasuredCosts::runs`]). Never renumber these: entries written by
/// older processes key on them.
pub fn design_tag(design: DesignKind) -> u8 {
    match design {
        DesignKind::Static => 0,
        DesignKind::Adaptive => 1,
        DesignKind::VmPart => 2,
        DesignKind::Jigsaw => 3,
        DesignKind::Jumanji => 4,
        DesignKind::JumanjiInsecure => 5,
        DesignKind::JumanjiIdealBatch => 6,
    }
}

fn design_from_tag(tag: u8) -> Result<DesignKind, CodecError> {
    Ok(match tag {
        0 => DesignKind::Static,
        1 => DesignKind::Adaptive,
        2 => DesignKind::VmPart,
        3 => DesignKind::Jigsaw,
        4 => DesignKind::Jumanji,
        5 => DesignKind::JumanjiInsecure,
        6 => DesignKind::JumanjiIdealBatch,
        _ => return Err(CodecError::Malformed("unknown design tag")),
    })
}

/// Resolves a decoded app name to the `&'static str` the rest of the
/// stack expects. Names from the workload catalogs resolve to the
/// catalog's own static string; anything else (a name from a future
/// catalog) is interned once into a process-lifetime string, so the
/// leak is bounded by the number of *distinct* names ever decoded.
fn intern(name: &str) -> &'static str {
    static INTERNED: LazyLock<Mutex<HashMap<String, &'static str, Mix64Build>>> =
        LazyLock::new(|| {
            let mut m: HashMap<String, &'static str, Mix64Build> = HashMap::default();
            for p in tailbench() {
                m.insert(p.name.to_string(), p.name);
            }
            for p in spec2006() {
                m.insert(p.name.to_string(), p.name);
            }
            Mutex::new(m)
        });
    let mut m = INTERNED.lock().expect("intern table lock");
    if let Some(&s) = m.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    m.insert(name.to_string(), leaked);
    leaked
}

fn encode_names(w: &mut ByteWriter, names: &[&'static str]) {
    w.u32(names.len() as u32);
    for n in names {
        w.str(n);
    }
}

fn decode_names(r: &mut ByteReader<'_>) -> Result<Vec<&'static str>, CodecError> {
    let n = r.count(4)?;
    (0..n).map(|_| Ok(intern(r.str()?))).collect()
}

fn encode_energy(w: &mut ByteWriter, e: &EnergyBreakdown) {
    w.f64(e.l1);
    w.f64(e.l2);
    w.f64(e.llc);
    w.f64(e.noc);
    w.f64(e.mem);
}

fn decode_energy(r: &mut ByteReader<'_>) -> Result<EnergyBreakdown, CodecError> {
    Ok(EnergyBreakdown {
        l1: r.f64()?,
        l2: r.f64()?,
        llc: r.f64()?,
        noc: r.f64()?,
        mem: r.f64()?,
    })
}

fn encode_interval(w: &mut ByteWriter, iv: &IntervalRecord) {
    w.f64(iv.t_ms);
    w.u32(iv.lc_mean_latency_ms.len() as u32);
    for m in &iv.lc_mean_latency_ms {
        match m {
            Some(v) => {
                w.u8(1);
                w.f64(*v);
            }
            None => w.u8(0),
        }
    }
    w.f64s(&iv.lc_alloc_bytes);
    w.f64(iv.vulnerability);
}

fn decode_interval(r: &mut ByteReader<'_>) -> Result<IntervalRecord, CodecError> {
    let t_ms = r.f64()?;
    let n = r.count(1)?;
    let mut lc_mean_latency_ms = Vec::with_capacity(n);
    for _ in 0..n {
        lc_mean_latency_ms.push(match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            _ => return Err(CodecError::Malformed("bad option tag")),
        });
    }
    Ok(IntervalRecord {
        t_ms,
        lc_mean_latency_ms,
        lc_alloc_bytes: r.f64s()?,
        vulnerability: r.f64()?,
    })
}

fn encode_result(result: &ExperimentResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(design_tag(result.design));
    encode_names(&mut w, &result.lc_names);
    w.f64s(&result.lc_tail_latency_ms);
    w.f64s(&result.lc_deadline_ms);
    encode_names(&mut w, &result.batch_names);
    w.f64s(&result.batch_work);
    w.f64(result.vulnerability);
    encode_energy(&mut w, &result.energy);
    w.f64(result.total_instructions);
    w.f64(result.coherence_refetches);
    w.u32(result.timeline.len() as u32);
    for iv in &result.timeline {
        encode_interval(&mut w, iv);
    }
    encode_entry(KIND_RUN, w.into_bytes())
}

fn decode_result(bytes: &[u8]) -> Result<ExperimentResult, CodecError> {
    let payload = decode_entry(KIND_RUN, bytes)?;
    let mut r = ByteReader::new(payload);
    let design = design_from_tag(r.u8()?)?;
    let lc_names = decode_names(&mut r)?;
    let lc_tail_latency_ms = r.f64s()?;
    let lc_deadline_ms = r.f64s()?;
    let batch_names = decode_names(&mut r)?;
    let batch_work = r.f64s()?;
    let vulnerability = r.f64()?;
    let energy = decode_energy(&mut r)?;
    let total_instructions = r.f64()?;
    let coherence_refetches = r.f64()?;
    let n = r.count(1)?;
    let mut timeline = Vec::with_capacity(n);
    for _ in 0..n {
        timeline.push(decode_interval(&mut r)?);
    }
    r.finish()?;
    Ok(ExperimentResult {
        design,
        lc_names,
        lc_tail_latency_ms,
        lc_deadline_ms,
        batch_names,
        batch_work,
        vulnerability,
        energy,
        total_instructions,
        coherence_refetches,
        timeline,
    })
}

fn encode_placement(w: &mut ByteWriter, placement: &[(BankId, f64)]) {
    w.u32(placement.len() as u32);
    for (bank, bytes) in placement {
        w.usize(bank.0);
        w.f64(*bytes);
    }
}

fn decode_placement(r: &mut ByteReader<'_>) -> Result<Vec<(BankId, f64)>, CodecError> {
    let n = r.count(16)?;
    (0..n).map(|_| Ok((BankId(r.usize()?), r.f64()?))).collect()
}

fn encode_alloc(alloc: &Allocation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(alloc.ideal_batch as u8);
    w.u32(alloc.apps.len() as u32);
    for a in &alloc.apps {
        w.usize(a.app.0);
        encode_placement(&mut w, &a.placement);
        match a.pool {
            Some(p) => {
                w.u8(1);
                w.usize(p);
            }
            None => w.u8(0),
        }
        w.u8(a.copy);
    }
    w.u32(alloc.pools.len() as u32);
    for p in &alloc.pools {
        w.u32(p.members.len() as u32);
        for m in &p.members {
            w.usize(m.0);
        }
        encode_placement(&mut w, &p.placement);
    }
    encode_entry(KIND_ALLOC, w.into_bytes())
}

fn decode_alloc(bytes: &[u8]) -> Result<Allocation, CodecError> {
    let payload = decode_entry(KIND_ALLOC, bytes)?;
    let mut r = ByteReader::new(payload);
    let ideal_batch = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Malformed("bad bool tag")),
    };
    let napps = r.count(1)?;
    let mut apps = Vec::with_capacity(napps);
    for _ in 0..napps {
        let app = AppId(r.usize()?);
        let placement = decode_placement(&mut r)?;
        let pool = match r.u8()? {
            0 => None,
            1 => Some(r.usize()?),
            _ => return Err(CodecError::Malformed("bad option tag")),
        };
        let copy = r.u8()?;
        apps.push(AppAlloc {
            app,
            placement,
            pool,
            copy,
        });
    }
    let npools = r.count(1)?;
    let mut pools = Vec::with_capacity(npools);
    for _ in 0..npools {
        let nm = r.count(8)?;
        let members = (0..nm)
            .map(|_| Ok(AppId(r.usize()?)))
            .collect::<Result<Vec<_>, CodecError>>()?;
        let placement = decode_placement(&mut r)?;
        pools.push(Pool { members, placement });
    }
    r.finish()?;
    for a in &apps {
        if let Some(p) = a.pool {
            if p >= pools.len() {
                return Err(CodecError::Malformed("pool index out of range"));
            }
        }
    }
    Ok(Allocation {
        apps,
        pools,
        ideal_batch,
    })
}

fn encode_detail(report: &DetailReport) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(report.apps.len() as u32);
    for a in &report.apps {
        w.u64(a.accesses);
        w.u64(a.misses);
        w.f64(a.total_latency);
        w.f64(a.total_hops);
        w.u64(a.port_wait);
        w.u64(a.tlb_misses);
        w.u64(a.writebacks);
    }
    w.u32(report.bank_occupants.len() as u32);
    for occ in &report.bank_occupants {
        w.u32(occ.len() as u32);
        for app in occ {
            w.usize(app.0);
        }
    }
    encode_entry(KIND_DETAIL, w.into_bytes())
}

fn decode_detail(bytes: &[u8]) -> Result<DetailReport, CodecError> {
    let payload = decode_entry(KIND_DETAIL, bytes)?;
    let mut r = ByteReader::new(payload);
    let napps = r.count(56)?;
    let mut apps = Vec::with_capacity(napps);
    for _ in 0..napps {
        let accesses = r.u64()?;
        let misses = r.u64()?;
        let total_latency = r.f64()?;
        let total_hops = r.f64()?;
        if !total_latency.is_finite() || !total_hops.is_finite() {
            return Err(CodecError::Malformed("non-finite detail total"));
        }
        apps.push(DetailAppStats {
            accesses,
            misses,
            total_latency,
            total_hops,
            port_wait: r.u64()?,
            tlb_misses: r.u64()?,
            writebacks: r.u64()?,
        });
    }
    let nbanks = r.count(4)?;
    let mut bank_occupants = Vec::with_capacity(nbanks);
    for _ in 0..nbanks {
        let n = r.count(8)?;
        let occ = (0..n)
            .map(|_| {
                let app = r.usize()?;
                if app >= apps.len() {
                    return Err(CodecError::Malformed("occupant app out of range"));
                }
                Ok(AppId(app))
            })
            .collect::<Result<Vec<_>, CodecError>>()?;
        bank_occupants.push(occ);
    }
    r.finish()?;
    Ok(DetailReport {
        apps,
        bank_occupants,
    })
}

fn encode_curve(w: &mut ByteWriter, curve: &MissCurve) {
    w.u64(curve.unit_bytes());
    w.f64s(curve.points());
}

/// Decodes a miss curve, validating everything [`MissCurve::new`] would
/// panic on — a checksummed-but-malformed payload must surface as a
/// codec error, never a panic.
fn decode_curve(r: &mut ByteReader<'_>) -> Result<MissCurve, CodecError> {
    let unit = r.u64()?;
    let points = r.f64s()?;
    if unit == 0 {
        return Err(CodecError::Malformed("zero curve unit"));
    }
    if points.is_empty() {
        return Err(CodecError::Malformed("empty curve"));
    }
    if points.iter().any(|p| !p.is_finite() || *p < 0.0) {
        return Err(CodecError::Malformed("non-finite curve point"));
    }
    Ok(MissCurve::new(unit, points))
}

fn encode_model(hulls: &[(u128, Arc<MissCurve>)], deadlines: &[(u128, f64)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(hulls.len() as u32);
    for (key, hull) in hulls {
        w.u128(*key);
        encode_curve(&mut w, hull);
    }
    w.u32(deadlines.len() as u32);
    for (key, cycles) in deadlines {
        w.u128(*key);
        w.f64(*cycles);
    }
    encode_entry(KIND_MODEL, w.into_bytes())
}

type ModelEntries = (Vec<(u128, Arc<MissCurve>)>, Vec<(u128, f64)>);

fn decode_model(bytes: &[u8]) -> Result<ModelEntries, CodecError> {
    let payload = decode_entry(KIND_MODEL, bytes)?;
    let mut r = ByteReader::new(payload);
    let nh = r.count(16)?;
    let mut hulls = Vec::with_capacity(nh);
    for _ in 0..nh {
        let key = r.u128()?;
        hulls.push((key, Arc::new(decode_curve(&mut r)?)));
    }
    let nd = r.count(24)?;
    let mut deadlines = Vec::with_capacity(nd);
    for _ in 0..nd {
        let key = r.u128()?;
        let cycles = r.f64()?;
        if !cycles.is_finite() || cycles <= 0.0 {
            return Err(CodecError::Malformed("bad deadline"));
        }
        deadlines.push((key, cycles));
    }
    r.finish()?;
    Ok((hulls, deadlines))
}

fn encode_costs(costs: &MeasuredCosts) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for (n, total) in &costs.runs {
        w.u64(*n);
        w.f64(*total);
    }
    w.u64(costs.exps.0);
    w.f64(costs.exps.1);
    w.u64(costs.details.0);
    w.f64(costs.details.1);
    encode_entry(KIND_COSTS, w.into_bytes())
}

fn decode_costs(bytes: &[u8]) -> Result<MeasuredCosts, CodecError> {
    let payload = decode_entry(KIND_COSTS, bytes)?;
    let mut r = ByteReader::new(payload);
    let mut costs = MeasuredCosts::default();
    for row in &mut costs.runs {
        row.0 = r.u64()?;
        row.1 = r.f64()?;
        if !row.1.is_finite() || row.1 < 0.0 {
            return Err(CodecError::Malformed("bad cost total"));
        }
    }
    costs.exps.0 = r.u64()?;
    costs.exps.1 = r.f64()?;
    if !costs.exps.1.is_finite() || costs.exps.1 < 0.0 {
        return Err(CodecError::Malformed("bad cost total"));
    }
    costs.details.0 = r.u64()?;
    costs.details.1 = r.f64()?;
    if !costs.details.1.is_finite() || costs.details.1 < 0.0 {
        return Err(CodecError::Malformed("bad cost total"));
    }
    r.finish()?;
    Ok(costs)
}

/// A disk-backed, fingerprint-keyed store of completed cells (see the
/// module docs). All methods are `&self` and thread-safe; multiple
/// processes may share one directory.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    /// Total entry-file bytes allowed (0 = unbounded).
    cap_bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    corrupt_dropped: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory tree cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let root = dir.into();
        fs::create_dir_all(root.join("runs"))?;
        fs::create_dir_all(root.join("details"))?;
        fs::create_dir_all(root.join("allocs"))?;
        Ok(DiskCache {
            root,
            cap_bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_dropped: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_dropped: self.corrupt_dropped.load(Ordering::Relaxed),
        }
    }

    fn run_path(&self, key: u128) -> PathBuf {
        self.root.join("runs").join(format!("{key:032x}.bin"))
    }

    fn detail_path(&self, key: u128) -> PathBuf {
        self.root.join("details").join(format!("{key:032x}.bin"))
    }

    fn alloc_path(&self, key: u128) -> PathBuf {
        self.root.join("allocs").join(format!("{key:032x}.bin"))
    }

    /// Writes `bytes` to `path` via a uniquely named temp file in the
    /// same directory plus an atomic rename, so a concurrent reader (or
    /// a crash) can never observe a partial entry. Last writer wins;
    /// both writers hold identical bytes for a given key by
    /// construction (content-addressed store).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(format!(".tmp.{}.{}", std::process::id(), seq));
        let tmp = path.with_file_name(name);
        fs::write(&tmp, bytes)?;
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Loads, validates, and decodes the entry at `path`. A missing
    /// file is a plain miss; an invalid one is dropped from disk and
    /// then counted as a miss.
    fn load_entry<T>(
        &self,
        path: &Path,
        decode: impl FnOnce(&[u8]) -> Result<T, CodecError>,
    ) -> Option<T> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode(&bytes) {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Err(_) => {
                self.drop_corrupt(path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn drop_corrupt(&self, path: &Path) {
        self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
        if fs::remove_file(path).is_ok() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn store_entry(&self, path: &Path, bytes: &[u8]) {
        // Best-effort: a full disk or permission error costs the warm
        // start, never the result.
        if self.write_atomic(path, bytes).is_ok() {
            self.writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The persisted result for a run-cell key, if a valid entry exists.
    pub fn load_run(&self, key: u128) -> Option<ExperimentResult> {
        self.load_entry(&self.run_path(key), decode_result)
    }

    /// Persists a completed run cell.
    pub fn store_run(&self, key: u128, result: &ExperimentResult) {
        self.store_entry(&self.run_path(key), &encode_result(result));
    }

    /// Cheap existence probe for a run-cell entry (no validation, no
    /// hit/miss accounting): used by the scheduler to decide whether an
    /// experiment construction can be skipped entirely. A file that
    /// later fails validation just falls back to lazy construction.
    pub fn has_run(&self, key: u128) -> bool {
        self.run_path(key).exists()
    }

    /// The persisted detailed-simulator report for a key, if a valid
    /// entry exists.
    pub fn load_detail(&self, key: u128) -> Option<DetailReport> {
        self.load_entry(&self.detail_path(key), decode_detail)
    }

    /// Persists a completed detailed-simulator cell.
    pub fn store_detail(&self, key: u128, report: &DetailReport) {
        self.store_entry(&self.detail_path(key), &encode_detail(report));
    }

    /// Cheap existence probe for a detailed-cell entry (see
    /// [`DiskCache::has_run`]).
    pub fn has_detail(&self, key: u128) -> bool {
        self.detail_path(key).exists()
    }

    /// The persisted allocation for a key, if a valid entry exists.
    pub fn load_alloc(&self, key: u128) -> Option<Allocation> {
        self.load_entry(&self.alloc_path(key), decode_alloc)
    }

    /// Persists a one-shot allocation.
    pub fn store_alloc(&self, key: u128, alloc: &Allocation) {
        self.store_entry(&self.alloc_path(key), &encode_alloc(alloc));
    }

    /// Warm-starts the simulator's construction memos (ratio hulls,
    /// deadline isolation runs) from `model.bin`. Returns the number of
    /// entries seeded; a corrupt file is dropped and seeds nothing.
    pub fn seed_model(&self) -> usize {
        let path = self.root.join("model.bin");
        let Some((hulls, deadlines)) = self.load_entry(&path, decode_model) else {
            return 0;
        };
        let n = hulls.len() + deadlines.len();
        for (key, hull) in hulls {
            seed_ratio_hull(key, hull);
        }
        for (key, cycles) in deadlines {
            jumanji::sim::deadline::seed_deadline(key, cycles);
        }
        n
    }

    /// Persists the simulator's construction memos, merged with
    /// whatever `model.bin` already holds (entries are pure functions
    /// of their keys, so union order is irrelevant). Returns the entry
    /// count written. Concurrent writers can lose each other's *new*
    /// entries (read-merge-write is not transactional); the loser's
    /// entries are simply recomputed and re-persisted next run.
    pub fn persist_model(&self) -> usize {
        let path = self.root.join("model.bin");
        let mut hulls: HashMap<u128, Arc<MissCurve>, Mix64Build> =
            export_ratio_hulls().into_iter().collect();
        let mut deadlines: HashMap<u128, f64, Mix64Build> =
            jumanji::sim::deadline::export_deadlines()
                .into_iter()
                .collect();
        if let Ok(bytes) = fs::read(&path) {
            match decode_model(&bytes) {
                Ok((old_hulls, old_deadlines)) => {
                    for (k, v) in old_hulls {
                        hulls.entry(k).or_insert(v);
                    }
                    for (k, v) in old_deadlines {
                        deadlines.entry(k).or_insert(v);
                    }
                }
                Err(_) => self.drop_corrupt(&path),
            }
        }
        if hulls.is_empty() && deadlines.is_empty() {
            return 0;
        }
        let mut hulls: Vec<_> = hulls.into_iter().collect();
        hulls.sort_unstable_by_key(|(k, _)| *k);
        let mut deadlines: Vec<_> = deadlines.into_iter().collect();
        deadlines.sort_unstable_by_key(|(k, _)| *k);
        let n = hulls.len() + deadlines.len();
        self.store_entry(&path, &encode_model(&hulls, &deadlines));
        n
    }

    /// The measured-cost table, or the empty default when absent or
    /// invalid (a corrupt file is dropped).
    pub fn load_costs(&self) -> MeasuredCosts {
        let path = self.root.join("costs.bin");
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return MeasuredCosts::default(),
        };
        match decode_costs(&bytes) {
            Ok(c) => c,
            Err(_) => {
                self.drop_corrupt(&path);
                MeasuredCosts::default()
            }
        }
    }

    /// Folds freshly measured costs into `costs.bin` (read-merge-write;
    /// a concurrent writer's update may be lost, costing only sample
    /// count).
    pub fn merge_costs(&self, fresh: &MeasuredCosts) {
        if fresh.is_empty() {
            return;
        }
        let mut merged = self.load_costs();
        merged.merge(fresh);
        self.store_entry(&self.root.join("costs.bin"), &encode_costs(&merged));
    }

    /// Caps the total size of the store's entry files (`runs/`,
    /// `details/`, `allocs/`). `0` means unbounded (the default). The
    /// cap takes effect at the next [`DiskCache::enforce_cap`] call —
    /// the binaries enforce it at attach time and again at exit.
    pub fn set_cap_bytes(&self, cap: u64) {
        self.cap_bytes.store(cap, Ordering::Relaxed);
    }

    /// The configured size cap in bytes (`0` = unbounded).
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes.load(Ordering::Relaxed)
    }

    /// Evicts the least-recently-written entries (oldest mtime first)
    /// until the entry files fit under the configured cap. Returns the
    /// number of files evicted (also folded into the `evictions`
    /// counter). A no-op when no cap is set or the store already fits;
    /// unreadable metadata is treated leniently (skip the file rather
    /// than fail the run). `model.bin`/`costs.bin` are never touched.
    pub fn enforce_cap(&self) -> u64 {
        let cap = self.cap_bytes();
        if cap == 0 {
            return 0;
        }
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        let mut total: u64 = 0;
        for sub in ["runs", "details", "allocs"] {
            let Ok(dir) = fs::read_dir(self.root.join(sub)) else {
                continue;
            };
            for entry in dir.flatten() {
                let Ok(meta) = entry.metadata() else {
                    continue;
                };
                if !meta.is_file() {
                    continue;
                }
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                total += meta.len();
                entries.push((entry.path(), meta.len(), mtime));
            }
        }
        if total <= cap {
            return 0;
        }
        // Oldest first; ties broken by path so concurrent enforcers
        // walk the same order.
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut evicted = 0;
        for (path, len, _) in entries {
            if total <= cap {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                evicted += 1;
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DiskCache {
        let dir = std::env::temp_dir().join(format!(
            "jumanji-disk-cache-unit-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        DiskCache::open(&dir).expect("open store")
    }

    fn sample_result() -> ExperimentResult {
        ExperimentResult {
            design: DesignKind::Jumanji,
            lc_names: vec![intern("xapian"), intern("made-up-server")],
            lc_tail_latency_ms: vec![1.25, 0.5],
            lc_deadline_ms: vec![1.3, 0.6],
            batch_names: vec![intern("mcf")],
            batch_work: vec![1e9],
            vulnerability: 0.25,
            energy: EnergyBreakdown {
                l1: 1.0,
                l2: 2.0,
                llc: 3.0,
                noc: 4.0,
                mem: 5.0,
            },
            total_instructions: 2e9,
            coherence_refetches: 1234.5,
            timeline: vec![
                IntervalRecord {
                    t_ms: 100.0,
                    lc_mean_latency_ms: vec![Some(1.0), None],
                    lc_alloc_bytes: vec![1048576.0, 0.0],
                    vulnerability: 0.5,
                },
                IntervalRecord {
                    t_ms: 200.0,
                    lc_mean_latency_ms: vec![None, Some(-0.0)],
                    lc_alloc_bytes: vec![],
                    vulnerability: 0.0,
                },
            ],
        }
    }

    fn sample_alloc() -> Allocation {
        Allocation {
            apps: vec![
                AppAlloc {
                    app: AppId(0),
                    placement: vec![(BankId(0), 65536.0), (BankId(3), 0.5)],
                    pool: None,
                    copy: 0,
                },
                AppAlloc {
                    app: AppId(1),
                    placement: vec![],
                    pool: Some(0),
                    copy: 1,
                },
            ],
            pools: vec![Pool {
                members: vec![AppId(1)],
                placement: vec![(BankId(7), 123.0)],
            }],
            ideal_batch: true,
        }
    }

    #[test]
    fn result_codec_round_trips_bit_exactly() {
        let original = sample_result();
        let decoded = decode_result(&encode_result(&original)).expect("valid entry");
        // Debug formatting covers every field, and floats round-trip by
        // bits — so the debug forms (and any TSV formatted from the
        // decoded result) are byte-identical.
        assert_eq!(format!("{original:?}"), format!("{decoded:?}"));
        // Catalog names resolve to the catalog's own static string.
        assert_eq!(
            original.lc_names[0].as_ptr(),
            decoded.lc_names[0].as_ptr(),
            "catalog names must be interned to the same static"
        );
        assert_eq!(
            decoded.timeline[1].lc_mean_latency_ms[1].unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn alloc_codec_round_trips() {
        let original = sample_alloc();
        let decoded = decode_alloc(&encode_alloc(&original)).expect("valid entry");
        assert_eq!(original, decoded);
    }

    #[test]
    fn alloc_decoder_rejects_dangling_pool_index() {
        let mut alloc = sample_alloc();
        alloc.pools.clear();
        let err = decode_alloc(&encode_alloc(&alloc)).expect_err("dangling pool");
        assert_eq!(err, CodecError::Malformed("pool index out of range"));
    }

    #[test]
    fn store_round_trips_runs_and_allocs() {
        let store = temp_store("roundtrip");
        let result = sample_result();
        assert!(store.load_run(7).is_none());
        assert!(!store.has_run(7));
        store.store_run(7, &result);
        assert!(store.has_run(7));
        let loaded = store.load_run(7).expect("stored entry");
        assert_eq!(format!("{result:?}"), format!("{loaded:?}"));

        let alloc = sample_alloc();
        store.store_alloc(9, &alloc);
        assert_eq!(store.load_alloc(9), Some(alloc));

        let s = store.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.corrupt_dropped, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_entries_are_dropped_and_recomputable() {
        let store = temp_store("corrupt");
        store.store_run(1, &sample_result());
        let path = store.run_path(1);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_run(1).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry must be deleted");
        let s = store.stats();
        assert_eq!(s.corrupt_dropped, 1);
        assert_eq!(s.evictions, 1);
        // The slot is clean again: a recompute can repopulate it.
        store.store_run(1, &sample_result());
        assert!(store.load_run(1).is_some());
        let _ = fs::remove_dir_all(store.root());
    }

    fn sample_detail() -> DetailReport {
        DetailReport {
            apps: vec![
                DetailAppStats {
                    accesses: 50_000,
                    misses: 1_234,
                    total_latency: 1.5e6,
                    total_hops: 2.25e5,
                    port_wait: 777,
                    tlb_misses: 42,
                    writebacks: 310,
                },
                DetailAppStats::default(),
            ],
            bank_occupants: vec![vec![AppId(0), AppId(1)], vec![], vec![AppId(1)]],
        }
    }

    #[test]
    fn detail_codec_round_trips_bit_exactly() {
        let original = sample_detail();
        let decoded = decode_detail(&encode_detail(&original)).expect("valid entry");
        assert_eq!(format!("{original:?}"), format!("{decoded:?}"));
    }

    #[test]
    fn detail_decoder_rejects_dangling_occupant() {
        let mut report = sample_detail();
        report.bank_occupants[0].push(AppId(9));
        let err = decode_detail(&encode_detail(&report)).expect_err("dangling occupant");
        assert_eq!(err, CodecError::Malformed("occupant app out of range"));
    }

    #[test]
    fn store_round_trips_details() {
        let store = temp_store("detail-roundtrip");
        let report = sample_detail();
        assert!(store.load_detail(11).is_none());
        assert!(!store.has_detail(11));
        store.store_detail(11, &report);
        assert!(store.has_detail(11));
        let loaded = store.load_detail(11).expect("stored entry");
        assert_eq!(format!("{report:?}"), format!("{loaded:?}"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // test fabricates mtimes from a wall-clock base
    fn size_cap_evicts_oldest_entries_first() {
        let store = temp_store("cap");
        for key in 0..4u128 {
            store.store_run(key, &sample_result());
        }
        store.store_detail(9, &sample_detail());
        let entry_len = fs::metadata(store.run_path(0)).unwrap().len();
        // Spread mtimes so the write order is unambiguous regardless of
        // filesystem timestamp granularity: key 0 oldest … detail newest.
        let base = std::time::SystemTime::now() - std::time::Duration::from_secs(100);
        for (i, path) in (0..4u128)
            .map(|k| store.run_path(k))
            .chain([store.detail_path(9)])
            .enumerate()
        {
            let f = fs::File::options().write(true).open(&path).unwrap();
            f.set_modified(base + std::time::Duration::from_secs(10 * i as u64))
                .unwrap();
        }

        // Unbounded: nothing happens.
        assert_eq!(store.enforce_cap(), 0);

        // Cap to roughly two run entries: the three oldest files go,
        // newest survive.
        store.set_cap_bytes(entry_len * 2 + entry_len / 2);
        let evicted = store.enforce_cap();
        assert!(evicted >= 2, "cap must evict, got {evicted}");
        assert!(!store.has_run(0), "oldest entry must be evicted first");
        assert!(store.has_detail(9), "newest entry must survive");
        assert_eq!(store.stats().evictions, evicted);

        // Within cap now: a second enforcement is a no-op, and evicted
        // cells are plain recomputable misses.
        assert_eq!(store.enforce_cap(), 0);
        assert!(store.load_run(0).is_none());
        assert_eq!(store.stats().corrupt_dropped, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn costs_table_accumulates_across_merges() {
        let store = temp_store("costs");
        assert!(store.load_costs().is_empty());
        let mut fresh = MeasuredCosts::default();
        fresh.record_run(DesignKind::Jumanji, 10, 1000);
        fresh.record_run(DesignKind::Jumanji, 10, 3000);
        fresh.record_exp(10, 500);
        fresh.record_detail(32.0, 6400);
        store.merge_costs(&fresh);
        store.merge_costs(&fresh);
        let loaded = store.load_costs();
        assert_eq!(loaded.runs[design_tag(DesignKind::Jumanji) as usize].0, 4);
        assert_eq!(loaded.mean_run_us(DesignKind::Jumanji), Some(200.0));
        assert_eq!(loaded.mean_exp_us(), Some(50.0));
        assert_eq!(loaded.mean_detail_us(), Some(200.0));
        assert_eq!(loaded.mean_run_us(DesignKind::Static), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn model_file_round_trips_and_merges() {
        let store = temp_store("model");
        // Nothing persisted yet: seeding is a no-op (possibly after
        // other tests populated the process-wide memos, persist first).
        let curve = Arc::new(MissCurve::new(1024, vec![3.0, 2.0, 1.0]));
        let encoded = encode_model(&[(42u128, Arc::clone(&curve))], &[(7u128, 1000.0)]);
        let (hulls, deadlines) = decode_model(&encoded).expect("valid model");
        assert_eq!(hulls.len(), 1);
        assert_eq!(hulls[0].0, 42);
        assert_eq!(hulls[0].1.points(), curve.points());
        assert_eq!(deadlines, vec![(7, 1000.0)]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn model_decoder_rejects_malformed_values() {
        let bad_curve = {
            let mut w = ByteWriter::new();
            w.u32(1);
            w.u128(1);
            w.u64(0); // zero unit
            w.f64s(&[1.0]);
            w.u32(0);
            encode_entry(KIND_MODEL, w.into_bytes())
        };
        assert_eq!(
            decode_model(&bad_curve),
            Err(CodecError::Malformed("zero curve unit"))
        );
        let bad_deadline = encode_model(&[], &[(1, f64::NAN)]);
        assert!(decode_model(&bad_deadline).is_err());
    }

    #[test]
    fn concurrent_writers_never_leave_a_torn_entry() {
        // Two independent stores on the same directory (stand-ins for
        // two processes) hammer the same key while a reader validates:
        // every read must be a full valid entry or a clean miss — never
        // a decode of interleaved bytes that passes, and never a panic.
        let store_a = temp_store("race");
        let store_b = DiskCache::open(store_a.root()).expect("open second store");
        let result = sample_result();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..200 {
                    store_a.store_run(5, &result);
                }
            });
            s.spawn(|| {
                for _ in 0..200 {
                    store_b.store_run(5, &result);
                }
            });
            for _ in 0..200 {
                if let Some(loaded) = store_a.load_run(5) {
                    assert_eq!(format!("{loaded:?}"), format!("{result:?}"));
                }
            }
        });
        assert_eq!(store_a.stats().corrupt_dropped, 0, "no torn entries");
        let loaded = store_b.load_run(5).expect("final entry valid");
        assert_eq!(format!("{loaded:?}"), format!("{result:?}"));
        let _ = fs::remove_dir_all(store_a.root());
    }
}
