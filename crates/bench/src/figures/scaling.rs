//! Scaling and sensitivity figures: VM-count scaling (Fig. 17) and NoC
//! router-delay sensitivity (Fig. 18).

use super::sim_opts;
use crate::cell_cache::CellCache;
use crate::exec::parallel_map_traced;
use crate::spec::ExperimentSpec;
use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji::types::Error;
use jumanji::workloads::WorkloadMix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::Write;

/// The workload mix one Fig. 17 `(config, seed)` cell simulates: four
/// distinct LC servers (as in the Mixed group) drawn with the fig17 seed
/// salt, grouped per the VM config spec. Shared by the renderer and the
/// suite's plan pass ([`super::plan`]) so both name identical cells.
pub(crate) fn fig17_mix(cfg_spec: &[(usize, usize)], seed: u64) -> WorkloadMix {
    let mut pool = tailbench();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF17);
    pool.shuffle(&mut rng);
    pool.truncate(4);
    WorkloadMix::from_spec(cfg_spec, &pool, seed)
}

/// Fig. 17: Jumanji's batch speedup as the 20 applications are grouped
/// into 1 to 12 VMs (mixed latency-critical apps, high load).
pub fn fig17(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let mixes = spec.mixes;
    let opts = sim_opts(spec);
    writeln!(
        out,
        "# Fig. 17: Jumanji batch speedup vs number of VMs ({mixes} mixes, mixed LC, high load)"
    )?;
    writeln!(out, "config\tgmean_speedup_pct\tworst_norm_tail")?;
    let configs = fig17_configs();
    // One (config, seed) cell per job; seeds derive everything, so the
    // fan-out reproduces the serial per-seed results exactly.
    let jobs = parallel_map_traced(configs.len() * mixes, spec.threads, tel, |i| {
        let (_, cfg_spec) = &configs[i / mixes];
        let seed = (i % mixes) as u64;
        let mix = fig17_mix(cfg_spec, seed);
        let cache = CellCache::global();
        let exp = cache.experiment(mix, LcLoad::High, opts.clone());
        let baseline = cache.run(&exp, DesignKind::Static, tel);
        let r = cache.run(&exp, DesignKind::Jumanji, tel);
        (r.weighted_speedup_vs(&baseline), r.max_norm_tail())
    });
    for ((label, _), chunk) in configs.iter().zip(jobs.chunks(mixes)) {
        let speedups: Vec<f64> = chunk.iter().map(|(s, _)| *s).collect();
        let worst_tail = chunk.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
        writeln!(
            out,
            "{label}\t{:.2}\t{:.3}",
            (gmean(&speedups) - 1.0) * 100.0,
            worst_tail
        )?;
    }
    writeln!(
        out,
        "# expected: speedup roughly flat from 1 VM (~16%) to 12 VMs (~13%)."
    )?;
    Ok(())
}

/// Fig. 18: NoC sensitivity — Jumanji's batch speedup on random mixes as
/// router delay varies from 1 to 3 cycles.
pub fn fig18(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let mixes = spec.mixes;
    writeln!(
        out,
        "# Fig. 18: Jumanji speedup vs router delay ({mixes} mixed-LC mixes, high load)"
    )?;
    writeln!(out, "router_cycles\tgmean_speedup_pct")?;
    for router in [1u64, 2, 3] {
        let mut cfg = SystemConfig::micro2020();
        cfg.noc.router_cycles = router;
        let opts = SimOptions {
            cfg,
            ..sim_opts(spec)
        };
        let mut speedups = Vec::new();
        for seed in 0..mixes as u64 {
            let cache = CellCache::global();
            let exp = cache.experiment(WorkloadMix::mixed_lc(seed), LcLoad::High, opts.clone());
            let baseline = cache.run(&exp, DesignKind::Static, tel);
            let r = cache.run(&exp, DesignKind::Jumanji, tel);
            speedups.push(r.weighted_speedup_vs(&baseline));
        }
        writeln!(out, "{router}\t{:.2}", (gmean(&speedups) - 1.0) * 100.0)?;
    }
    writeln!(
        out,
        "# expected: speedup grows with router delay (paper: ~9% -> ~15% for 1 -> 3)."
    )?;
    Ok(())
}
