//! Fig. 14: each LLC design's vulnerability to port attacks — average
//! number of potential attackers per LLC access, averaged over all
//! experiments.

use jumanji::prelude::*;
use jumanji_bench::{mix_count, run_matrices, LcGroup};

fn main() {
    let mixes = mix_count(8);
    let designs = DesignKind::main_four();
    let opts = SimOptions::default();
    let matrices: Vec<(LcGroup, LcLoad)> = [LcLoad::High, LcLoad::Low]
        .into_iter()
        .flat_map(|load| LcGroup::all().into_iter().map(move |g| (g, load)))
        .collect();
    let results = run_matrices(&matrices, &designs, mixes, &opts);
    let mut acc = vec![Vec::new(); designs.len()];
    for cells in &results {
        for (d, cell) in cells.iter().enumerate() {
            acc[d].extend(cell.vulnerability.iter().copied());
        }
    }
    println!("# Fig. 14: avg potential attackers per LLC access ({mixes} mixes/group)");
    println!("design\tavg_attackers");
    for (design, vals) in designs.iter().zip(&acc) {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        println!("{design}\t{mean:.3}");
    }
    println!("# expected: Adaptive = VM-Part = 15 (all untrusted apps), Jigsaw small");
    println!("# but nonzero (paper: 0.63), Jumanji exactly 0.");
}
