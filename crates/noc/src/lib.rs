//! Mesh network-on-chip model: X-Y routing latency, flit serialization,
//! queueing estimates, and an event-driven bank-port contention simulator.
//!
//! The NoC matters to the paper in two ways:
//!
//! - **Performance**: the average hop distance between a core and its data
//!   dominates LLC access latency, which is exactly what D-NUCA placement
//!   reduces ([`MeshNoc`]).
//! - **Security**: LLC banks have a limited number of ports, and queueing on
//!   a shared port is a timing side channel (the paper's LLC *port attack*,
//!   Sec. VI-B). [`BankPorts`] simulates that contention at cycle
//!   granularity and [`queueing`] provides the matching analytic
//!   load-latency model.
//!
//! # Examples
//!
//! ```
//! use nuca_noc::MeshNoc;
//! use nuca_types::{SystemConfig, CoreId, BankId};
//!
//! let cfg = SystemConfig::micro2020();
//! let noc = MeshNoc::new(&cfg);
//! // A local-bank access pays no network latency; a cross-chip access
//! // pays 7 hops each way plus data serialization.
//! let near = noc.llc_round_trip(CoreId(0), BankId(0));
//! let far = noc.llc_round_trip(CoreId(0), BankId(19));
//! assert!(far > near);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
pub mod links;
mod port;
pub mod queueing;

pub use latency::MeshNoc;
pub use links::{LinkLoads, RouteTable};
pub use port::{BankPorts, PortStats};
