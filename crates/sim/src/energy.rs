//! Dynamic data-movement energy model (Fig. 15).
//!
//! Energy is decomposed as in the paper — L1, L2, LLC banks, on-chip
//! network, and memory — using per-event constants from
//! [`nuca_types::EnergyConfig`] (Jenga-derived magnitudes). Event counts
//! come from the analytic model: instructions executed, LLC accesses,
//! misses, and the flit·hop products implied by the placement's average
//! distance.

use core::fmt;
use core::ops::{Add, AddAssign};
use nuca_types::SystemConfig;

/// Fraction of instructions that access the L1 data cache.
const L1_ACCESS_PER_INSTR: f64 = 0.35;
/// L2 accesses per LLC access (the L2 filters roughly two thirds of its
/// own misses' traffic in our model).
const L2_PER_LLC_ACCESS: f64 = 3.0;
/// Flits moved per LLC access (1-flit request + 4-flit line response).
const FLITS_PER_ACCESS: f64 = 5.0;

/// Data-movement energy broken down by component, in joules.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 cache access energy.
    pub l1: f64,
    /// L2 cache access energy.
    pub l2: f64,
    /// LLC bank access energy.
    pub llc: f64,
    /// NoC link/router traversal energy.
    pub noc: f64,
    /// DRAM access energy.
    pub mem: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.l1 + self.l2 + self.llc + self.noc + self.mem
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            l1: self.l1 + rhs.l1,
            l2: self.l2 + rhs.l2,
            llc: self.llc + rhs.llc,
            noc: self.noc + rhs.noc,
            mem: self.mem + rhs.mem,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 {:.3} J, L2 {:.3} J, LLC {:.3} J, NoC {:.3} J, Mem {:.3} J (total {:.3} J)",
            self.l1,
            self.l2,
            self.llc,
            self.noc,
            self.mem,
            self.total()
        )
    }
}

/// Event counts for one application over one interval.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct EnergyEvents {
    /// Instructions executed.
    pub instructions: f64,
    /// LLC accesses issued.
    pub llc_accesses: f64,
    /// LLC misses.
    pub llc_misses: f64,
    /// Average hops between the core and its LLC data.
    pub avg_hops: f64,
    /// Average hops between the data's bank and its memory controller.
    pub mem_hops: f64,
    /// Dirty-line write-backs to memory.
    pub writebacks: f64,
}

/// Converts event counts into a component energy breakdown.
pub fn energy_of(cfg: &SystemConfig, ev: &EnergyEvents) -> EnergyBreakdown {
    let e = cfg.energy;
    let pj = 1e-12;
    EnergyBreakdown {
        l1: ev.instructions * L1_ACCESS_PER_INSTR * e.l1_access_pj * pj,
        l2: ev.llc_accesses * L2_PER_LLC_ACCESS * e.l2_access_pj * pj,
        llc: ev.llc_accesses * e.llc_bank_access_pj * pj,
        noc: (ev.llc_accesses * ev.avg_hops + (ev.llc_misses + ev.writebacks) * ev.mem_hops)
            * FLITS_PER_ACCESS
            * e.noc_hop_flit_pj
            * pj,
        mem: (ev.llc_misses + ev.writebacks) * e.dram_access_pj * pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> EnergyEvents {
        EnergyEvents {
            instructions: 1e9,
            llc_accesses: 1.5e7,
            llc_misses: 4.5e6,
            avg_hops: 3.5,
            mem_hops: 2.5,
            writebacks: 1.2e6,
        }
    }

    #[test]
    fn components_scale_with_counts() {
        let cfg = SystemConfig::micro2020();
        let e1 = energy_of(&cfg, &events());
        let mut ev = events();
        ev.llc_misses *= 2.0;
        let e2 = energy_of(&cfg, &ev);
        // Doubling misses (writebacks fixed) nearly doubles DRAM energy.
        assert!(e2.mem > 1.7 * e1.mem);
        assert_eq!(e2.l1, e1.l1, "L1 energy independent of misses");
        assert!(e2.noc > e1.noc, "miss traffic crosses the NoC");
    }

    #[test]
    fn fewer_hops_cut_noc_energy_only() {
        let cfg = SystemConfig::micro2020();
        let far = energy_of(&cfg, &events());
        let mut ev = events();
        ev.avg_hops = 0.5;
        let near = energy_of(&cfg, &ev);
        assert!(near.noc < 0.5 * far.noc);
        assert_eq!(near.llc, far.llc);
        assert!(near.total() < far.total());
    }

    #[test]
    fn breakdown_sums_and_adds() {
        let cfg = SystemConfig::micro2020();
        let e = energy_of(&cfg, &events());
        assert!((e.total() - (e.l1 + e.l2 + e.llc + e.noc + e.mem)).abs() < 1e-15);
        let mut acc = EnergyBreakdown::default();
        acc += e;
        acc += e;
        assert!((acc.total() - 2.0 * e.total()).abs() < 1e-12);
    }

    #[test]
    fn writebacks_add_dram_and_noc_energy() {
        let cfg = SystemConfig::micro2020();
        let base = energy_of(&cfg, &events());
        let mut ev = events();
        ev.writebacks *= 3.0;
        let more = energy_of(&cfg, &ev);
        assert!(more.mem > base.mem);
        assert!(more.noc > base.noc);
        assert_eq!(more.llc, base.llc);
    }

    #[test]
    fn memory_dominates_miss_heavy_workloads() {
        // Sanity: with a high miss count, DRAM is the biggest component —
        // which is why partitioning (fewer misses) saves so much energy.
        let cfg = SystemConfig::micro2020();
        let mut ev = events();
        ev.llc_misses = ev.llc_accesses * 0.8;
        let e = energy_of(&cfg, &ev);
        assert!(e.mem > e.llc && e.mem > e.noc);
    }
}
