//! Robustness of the reproduction's conclusions to its modeling constants.
//!
//! The workload models involve calibrated constants the paper's real
//! binaries fix implicitly (the pointer-chasing miss-serialization factor,
//! simulated horizon, reconfiguration period, RNG seeds). This sweep shows
//! the *qualitative* conclusions — Jumanji meets deadlines near Jigsaw's
//! batch speedup while Jigsaw violates and S-NUCA designs gain nothing —
//! hold across those choices.

use jumanji::prelude::*;
use jumanji::types::Seconds;
use jumanji::workloads::WorkloadMix;
use jumanji_bench::exec::{parallel_map, thread_count};
use jumanji_bench::mix_count;

struct Row {
    label: String,
    jumanji_speedup: f64,
    jigsaw_speedup: f64,
    adaptive_speedup: f64,
    jumanji_tail: f64,
    jigsaw_tail: f64,
}

fn run_one(mix: WorkloadMix, opts: SimOptions, label: String) -> Row {
    let exp = Experiment::new(mix, LcLoad::High, opts);
    let stat = exp.run(DesignKind::Static);
    let jumanji = exp.run(DesignKind::Jumanji);
    let jigsaw = exp.run(DesignKind::Jigsaw);
    let adaptive = exp.run(DesignKind::Adaptive);
    Row {
        label,
        jumanji_speedup: (jumanji.weighted_speedup_vs(&stat) - 1.0) * 100.0,
        jigsaw_speedup: (jigsaw.weighted_speedup_vs(&stat) - 1.0) * 100.0,
        adaptive_speedup: (adaptive.weighted_speedup_vs(&stat) - 1.0) * 100.0,
        jumanji_tail: jumanji.max_norm_tail(),
        jigsaw_tail: jigsaw.max_norm_tail(),
    }
}

fn main() {
    let n = mix_count(3);
    println!("# Sensitivity of conclusions to modeling choices ({n} seeds each)");
    println!("knob\tvariant\tjumanji%\tjigsaw%\tadaptive%\tjumanji_tail\tjigsaw_tail");
    // Job construction is cheap and deterministic; the expensive part (the
    // four simulation runs per job) fans out across the thread pool, with
    // results landing back in list order.
    let mut jobs: Vec<(WorkloadMix, SimOptions, String)> = Vec::new();

    // 1. Miss-serialization factor of the LC service model.
    for stall in [2.0f64, 3.0, 4.0] {
        for seed in 0..n as u64 {
            let mut mix = case_study_mix(seed);
            for vm in &mut mix.vms {
                for lc in &mut vm.lc {
                    lc.miss_stall = stall;
                }
            }
            jobs.push((mix, SimOptions::default(), format!("miss_stall\t{stall}x")));
        }
    }
    // 2. Simulated horizon.
    for secs in [2.0f64, 4.0, 8.0] {
        for seed in 0..n as u64 {
            jobs.push((
                case_study_mix(seed),
                SimOptions {
                    duration: Seconds(secs),
                    ..SimOptions::default()
                },
                format!("duration\t{secs}s"),
            ));
        }
    }
    // 3. Reconfiguration period (the paper: "more frequent
    //    reconfigurations do not improve results").
    for ms in [50.0f64, 100.0, 200.0] {
        for seed in 0..n as u64 {
            jobs.push((
                case_study_mix(seed),
                SimOptions {
                    reconfig: Seconds::from_millis(ms),
                    ..SimOptions::default()
                },
                format!("reconfig\t{ms}ms"),
            ));
        }
    }
    // 4. Arrival-stream seeds.
    for seed in 0..(3 * n as u64) {
        jobs.push((
            case_study_mix(seed),
            SimOptions {
                seed: seed ^ 0xC0FFEE,
                ..SimOptions::default()
            },
            "seed\tvaried".to_string(),
        ));
    }

    let rows: Vec<Row> = parallel_map(jobs.len(), thread_count(), |i| {
        let (mix, opts, label) = &jobs[i];
        run_one(mix.clone(), opts.clone(), label.clone())
    });

    // Aggregate rows by label.
    let mut agg: Vec<(String, Vec<&Row>)> = Vec::new();
    for r in &rows {
        match agg.iter_mut().find(|(l, _)| *l == r.label) {
            Some((_, v)) => v.push(r),
            None => agg.push((r.label.clone(), vec![r])),
        }
    }
    let mut ok = true;
    for (label, group) in &agg {
        let mean = |f: fn(&Row) -> f64| -> f64 {
            group.iter().map(|r| f(r)).sum::<f64>() / group.len() as f64
        };
        let (ju, ji, ad) = (
            mean(|r| r.jumanji_speedup),
            mean(|r| r.jigsaw_speedup),
            mean(|r| r.adaptive_speedup),
        );
        let (jut, jit) = (mean(|r| r.jumanji_tail), mean(|r| r.jigsaw_tail));
        println!("{label}\t{ju:.2}\t{ji:.2}\t{ad:.2}\t{jut:.2}\t{jit:.2}");
        // The qualitative claims under every variant: Jumanji gains real
        // batch speedup while (roughly) meeting deadlines, Jigsaw gains
        // more but its mean worst-case tail violates the deadline, and
        // S-NUCA partitioning gains comparatively nothing. The Jigsaw
        // gate is a violation test (> 1.1), not a magnitude test: how far
        // past the deadline Jigsaw lands swings with the knobs (12.8x at
        // 4x miss-serialization, 1.2x at 2x), and that swing is expected.
        ok &= ju > 4.0 && ji > ju && ju > ad + 3.0 && jut < 1.5 && jit > 1.1;
    }
    println!(
        "# qualitative conclusions hold under every variant: {}",
        if ok {
            "YES"
        } else {
            "NO — inspect rows above"
        }
    );
}
