//! Fig. 17: Jumanji's batch speedup as the 20 applications are grouped
//! into 1 to 12 VMs (mixed latency-critical apps, high load).

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji::workloads::WorkloadMix;
use jumanji_bench::exec::{parallel_map, thread_count};
use jumanji_bench::mix_count;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mixes = mix_count(8);
    let opts = SimOptions::default();
    println!(
        "# Fig. 17: Jumanji batch speedup vs number of VMs ({mixes} mixes, mixed LC, high load)"
    );
    println!("config\tgmean_speedup_pct\tworst_norm_tail");
    let configs = fig17_configs();
    // One (config, seed) cell per job; seeds derive everything, so the
    // fan-out reproduces the serial per-seed results exactly.
    let jobs = parallel_map(configs.len() * mixes, thread_count(), |i| {
        let (_, spec) = &configs[i / mixes];
        let seed = (i % mixes) as u64;
        // Four distinct LC servers, as in the Mixed group.
        let mut pool = tailbench();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF17);
        pool.shuffle(&mut rng);
        pool.truncate(4);
        let mix = WorkloadMix::from_spec(spec, &pool, seed);
        let exp = Experiment::new(mix, LcLoad::High, opts.clone());
        let baseline = exp.run(DesignKind::Static);
        let r = exp.run(DesignKind::Jumanji);
        (r.weighted_speedup_vs(&baseline), r.max_norm_tail())
    });
    for ((label, _), chunk) in configs.iter().zip(jobs.chunks(mixes)) {
        let speedups: Vec<f64> = chunk.iter().map(|(s, _)| *s).collect();
        let worst_tail = chunk.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
        println!(
            "{label}\t{:.2}\t{:.3}",
            (gmean(&speedups) - 1.0) * 100.0,
            worst_tail
        );
    }
    println!("# expected: speedup roughly flat from 1 VM (~16%) to 12 VMs (~13%).");
}
