//! Capacity planning: how much LLC does each TailBench-like server need to
//! meet its deadline, with and without D-NUCA placement?
//!
//! Binary-searches the smallest allocation whose p95 stays under the
//! deadline (paper Fig. 8's question, asked for every server), showing the
//! capacity D-NUCA frees for batch applications.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use jumanji::cache::analytic::assoc_penalty;
use jumanji::noc::MeshNoc;
use jumanji::prelude::*;
use jumanji::sim::deadline::deadline_cycles;
use jumanji::sim::metrics::percentile;
use jumanji::sim::queueing::LcQueue;
use jumanji::workloads::LcProfile;

const MB: f64 = 1048576.0;

/// p95 latency (cycles) of `p` at a fixed allocation under S-NUCA or
/// D-NUCA placement, run alone at high load.
fn p95(p: &LcProfile, cfg: &SystemConfig, alloc_bytes: f64, dnuca: bool) -> f64 {
    let noc = MeshNoc::new(cfg);
    let mesh = cfg.mesh();
    let (lat, mr) = if dnuca {
        // Nearest whole banks: full associativity, short hops.
        let banks = (alloc_bytes / cfg.llc.bank_bytes as f64).ceil().max(1.0);
        let hops = mesh
            .banks_by_distance(CoreId(0))
            .take(banks as usize)
            .enumerate()
            .map(|(i, b)| {
                let frac = ((alloc_bytes - i as f64 * cfg.llc.bank_bytes as f64)
                    / cfg.llc.bank_bytes as f64)
                    .clamp(0.0, 1.0);
                frac * mesh.hops_core_to_bank(CoreId(0), b) as f64
            })
            .sum::<f64>()
            / (alloc_bytes / cfg.llc.bank_bytes as f64);
        (
            cfg.llc.bank_latency.as_u64() as f64 + noc.round_trip_for_hops(hops),
            p.shape.ratio(alloc_bytes as u64),
        )
    } else {
        let ways = alloc_bytes / cfg.llc.num_banks as f64 / cfg.llc.way_bytes() as f64;
        (
            cfg.llc.bank_latency.as_u64() as f64
                + noc.round_trip_for_hops(mesh.snuca_avg_distance(CoreId(0))),
            (p.shape.ratio(alloc_bytes as u64) * assoc_penalty(ways, cfg.llc.ways)).min(1.0),
        )
    };
    let service = p.service_cycles(lat, mr, noc.avg_miss_penalty());
    let ia = p.interarrival_cycles(LcLoad::High, cfg.freq_hz);
    let mut q = LcQueue::new(ia, 77);
    let lats: Vec<f64> = q
        .advance((ia * 8000.0) as u64, service)
        .iter()
        .map(|c| c.latency as f64)
        .collect();
    percentile(&lats, 0.95)
}

/// Smallest allocation (MB, 0.125 MB granularity) meeting the deadline.
fn needed_mb(p: &LcProfile, cfg: &SystemConfig, deadline: f64, dnuca: bool) -> Option<f64> {
    let mut lo = 0.125 * MB;
    let mut hi = 20.0 * MB;
    if p95(p, cfg, hi, dnuca) > deadline {
        return None;
    }
    while hi - lo > 0.125 * MB {
        let mid = (lo + hi) / 2.0;
        if p95(p, cfg, mid, dnuca) <= deadline {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some((hi / MB * 8.0).ceil() / 8.0)
}

fn main() {
    let cfg = SystemConfig::micro2020();
    println!("Smallest LLC allocation meeting each server's deadline (alone, high load)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "server", "deadline", "S-NUCA", "D-NUCA", "freed"
    );
    let mut total_saved = 0.0;
    for p in tailbench() {
        let deadline = deadline_cycles(&p, &cfg);
        let snuca = needed_mb(&p, &cfg, deadline, false);
        let dnuca = needed_mb(&p, &cfg, deadline, true);
        let (s, d) = (snuca.unwrap_or(f64::NAN), dnuca.unwrap_or(f64::NAN));
        total_saved += s - d;
        println!(
            "{:<10} {:>9.2} ms {:>9.2} MB {:>9.2} MB {:>7.2} MB",
            p.name,
            deadline / cfg.freq_hz * 1e3,
            s,
            d,
            s - d
        );
    }
    println!(
        "\nAcross the five servers, D-NUCA placement frees {total_saved:.1} MB of LLC\n\
         for batch applications while meeting the same deadlines (paper Sec. V-A)."
    );
}
