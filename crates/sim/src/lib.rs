//! Epoch-based multicore simulator for the Jumanji evaluation.
//!
//! The simulator advances in 100 ms reconfiguration intervals (Sec. IV-B).
//! Each interval it:
//!
//! 1. builds a [`jumanji_core::PlacementInput`] from the application
//!    profiles (miss curves scaled by measured access rates — what the
//!    UMONs would report),
//! 2. asks the active [`jumanji_core::DesignKind`] for an allocation,
//! 3. evaluates the analytic performance model ([`perf`]): effective
//!    capacities (shared pools settle to their occupancy equilibrium),
//!    associativity penalties, NoC distances, port and memory-bandwidth
//!    queueing, giving each batch app an IPS and each latency-critical app
//!    a service time,
//! 4. runs the latency-critical request queues event-by-event
//!    ([`queueing`]), feeding completions to the feedback controllers, and
//! 5. accumulates metrics: tail latency, FIESTA-style weighted speedup
//!    vs. the Static baseline, port-attack vulnerability, and
//!    data-movement energy ([`metrics`], [`energy`]).
//!
//! # Examples
//!
//! ```no_run
//! use nuca_sim::{Experiment, SimOptions};
//! use nuca_workloads::{case_study_mix, LcLoad};
//! use jumanji_core::DesignKind;
//! use jumanji_telemetry::NoopSink;
//!
//! let mix = case_study_mix(1);
//! let exp = Experiment::new(mix, LcLoad::High, SimOptions::default());
//! let result = exp.run(DesignKind::Jumanji, &NoopSink);
//! println!("tail latency: {:?}", result.lc_tail_latency_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
pub mod detail;
pub mod energy;
pub mod metrics;
pub mod perf;
pub mod queueing;
mod runner;

pub use runner::{
    compute_ratio_hull, exact_ratio_hull, export_ratio_hulls, ratio_hull_cache_stats,
    seed_ratio_hull, Experiment, ExperimentResult, IntervalRecord, Migration, SimApp, SimOptions,
};
