//! Capacity partitioning by marginal utility: UCP Lookahead \[69\] and the
//! bank-granular `JumanjiLookahead` variant (Sec. VI-D).
//!
//! Lookahead repeatedly grants the chunk of capacity with the highest
//! *average* marginal utility — misses saved per unit — considering all
//! chunk sizes at once, which handles non-convex miss curves (cliffs).
//! `JumanjiLookahead` answers a different question: how many *whole banks*
//! each VM receives, given that its latency-critical reservation already
//! occupies a fractional number of banks, so that every VM's total is
//! bank-granular (e.g., LC 1.3 banks → batch 0.7, 1.7, 2.7, … banks).

use nuca_cache::MissCurve;

/// UCP Lookahead: splits `total_units` among `curves`, maximizing total
/// miss savings. Returns per-curve allocations in units.
///
/// Leftover space with zero utility everywhere is distributed round-robin
/// to curves with remaining headroom (more cache never hurts).
///
/// # Panics
///
/// Panics if `curves` is empty.
///
/// # Examples
///
/// ```
/// use jumanji_core::lookahead::lookahead;
/// use nuca_cache::MissCurve;
/// let hungry = MissCurve::new(1, vec![100.0, 60.0, 30.0, 10.0, 5.0]);
/// let modest = MissCurve::new(1, vec![10.0, 2.0, 1.0, 1.0, 1.0]);
/// let alloc = lookahead(&[hungry, modest], 4);
/// assert_eq!(alloc.iter().sum::<usize>(), 4);
/// assert!(alloc[0] >= alloc[1]);
/// ```
pub fn lookahead<C: std::borrow::Borrow<MissCurve>>(
    curves: &[C],
    total_units: usize,
) -> Vec<usize> {
    assert!(!curves.is_empty(), "need at least one curve");
    let n = curves.len();
    let curves: Vec<&MissCurve> = curves.iter().map(|c| c.borrow()).collect();
    let mut alloc = vec![0usize; n];
    let mut remaining = total_units;
    // On convex curves (DRRIP hulls — the common case in this paper) the
    // best average marginal utility is always the single-unit one, so the
    // expensive chunk scan reduces to plain greedy — and since each convex
    // curve's gains are non-increasing, only the winner's cached gain can
    // change between steps.
    let all_convex = curves.iter().all(|c| c.is_convex());
    if all_convex {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let gain = |i: usize, have: usize| {
            if have < curves[i].max_units() {
                curves[i].at(have) - curves[i].at(have + 1)
            } else {
                0.0 // exhausted: never beats the > 0 acceptance test
            }
        };
        // Heap selection instead of an O(n) winner scan per granted unit:
        // entries are (order-preserving gain key, Reverse(index)), so the
        // heap max is the highest gain with ties to the lowest index —
        // exactly what a first-wins linear scan with a strict `>` picks
        // (numeric ties above zero are bit-identical gains, and ±0.0
        // disagreements only arise when the loop terminates anyway).
        // Granting a unit re-pushes the winner's new gain; entries whose
        // key no longer matches `gains[i]` are stale and skipped. (On a
        // flat segment the new gain can equal the old one bit-for-bit; the
        // leftover twin entry is then *valid*, and popping it later makes
        // the same decision a fresh push would.)
        let mut gains: Vec<f64> = (0..n).map(|i| gain(i, 0)).collect();
        let mut heap: BinaryHeap<(u64, Reverse<usize>)> = gains
            .iter()
            .enumerate()
            .map(|(i, &g)| (gain_key(g), Reverse(i)))
            .collect();
        while remaining > 0 {
            let Some(&(key, Reverse(i))) = heap.peek() else {
                break;
            };
            if key != gain_key(gains[i]) {
                heap.pop(); // stale: i's gain changed since this was pushed
                continue;
            }
            let mu = gains[i];
            if mu <= 0.0 {
                break; // no one benefits from more space
            }
            heap.pop();
            alloc[i] += 1;
            remaining -= 1;
            gains[i] = gain(i, alloc[i]);
            heap.push((gain_key(gains[i]), Reverse(i)));
        }
    }
    while remaining > 0 && !all_convex {
        let mut best: Option<(usize, usize)> = None; // (curve, chunk)
        let mut best_mu = 0.0f64;
        for (i, c) in curves.iter().enumerate() {
            let have = alloc[i];
            let headroom = c.max_units().saturating_sub(have);
            let max_k = headroom.min(remaining);
            if max_k == 0 {
                continue;
            }
            let base = c.at(have);
            // Max average marginal utility over chunk sizes 1..=max_k.
            for k in 1..=max_k {
                let mu = (base - c.at(have + k)) / k as f64;
                if mu > best_mu {
                    best_mu = mu;
                    best = Some((i, k));
                }
            }
        }
        match best {
            Some((i, k)) if best_mu > 0.0 => {
                alloc[i] += k;
                remaining -= k;
            }
            _ => break, // no one benefits from more space
        }
    }
    // Spread leftovers (flat-tailed curves) round-robin within headroom.
    let mut i = 0;
    let mut stuck = 0;
    while remaining > 0 && stuck < n {
        if alloc[i] < curves[i].max_units() {
            alloc[i] += 1;
            remaining -= 1;
            stuck = 0;
        } else {
            stuck += 1;
        }
        i = (i + 1) % n;
    }
    alloc
}

/// Order-preserving `f64` → `u64` key (the IEEE total order): comparing
/// keys matches `f64::total_cmp`, and equal keys mean bit-equal values.
/// Lets marginal-utility gains live in a `BinaryHeap` without wrappers.
fn gain_key(g: f64) -> u64 {
    let b = g.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// `JumanjiLookahead`: chooses whole-bank counts per VM.
///
/// `vm_curves[v]` is VM *v*'s combined batch miss curve; `lc_units[v]` is
/// the total latency-critical reservation of VM *v* in units (possibly
/// fractional). Every VM receives at least enough banks to contain its LC
/// reservation (and at least one bank), and all `num_banks` banks are
/// assigned. Returns the bank count per VM.
///
/// # Panics
///
/// Panics if inputs are inconsistent (no VMs, mismatched lengths) or the
/// mandatory minimums already exceed `num_banks`.
pub fn jumanji_lookahead(
    vm_curves: &[MissCurve],
    lc_units: &[f64],
    num_banks: usize,
    units_per_bank: usize,
) -> Vec<usize> {
    assert!(!vm_curves.is_empty(), "need at least one VM");
    assert_eq!(vm_curves.len(), lc_units.len(), "one LC total per VM");
    assert!(units_per_bank > 0);
    let n = vm_curves.len();
    // Mandatory minimum banks: contain the LC reservation, at least 1.
    let mut banks: Vec<usize> = lc_units
        .iter()
        .map(|&lc| ((lc / units_per_bank as f64).ceil() as usize).max(1))
        .collect();
    let used: usize = banks.iter().sum();
    assert!(
        used <= num_banks,
        "LC reservations need {used} banks but only {num_banks} exist"
    );
    let mut remaining = num_banks - used;
    // Marginal utility of one more bank for VM v: batch curve drop from its
    // current batch capacity to +1 bank.
    let batch_units = |v: usize, nb: usize| (nb * units_per_bank) as f64 - lc_units[v];
    while remaining > 0 {
        let (best, _) = (0..n)
            .map(|v| {
                let b = batch_units(v, banks[v]).max(0.0);
                let b2 = batch_units(v, banks[v] + 1).max(0.0);
                let mu = vm_curves[v].eval_units(b) - vm_curves[v].eval_units(b2);
                (v, mu)
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("utilities are finite")
                    .then(b.0.cmp(&a.0)) // ties to the lowest VM id
            })
            .expect("at least one VM");
        banks[best] += 1;
        remaining -= 1;
    }
    banks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_conserves_capacity() {
        let a = MissCurve::new(1, vec![10.0, 8.0, 6.0, 4.0, 2.0, 1.0]);
        let b = MissCurve::new(1, vec![20.0, 10.0, 5.0, 2.0, 1.0, 0.5]);
        let alloc = lookahead(&[a, b], 8);
        assert_eq!(alloc.iter().sum::<usize>(), 8);
    }

    #[test]
    fn lookahead_matches_brute_force_on_convex() {
        let a = MissCurve::new(1, vec![50.0, 20.0, 15.0, 14.0, 13.5]);
        let b = MissCurve::new(1, vec![30.0, 10.0, 5.0, 4.0, 3.8]);
        for total in 0..=8usize {
            let alloc = lookahead(&[a.clone(), b.clone()], total);
            let got = a.at(alloc[0]) + b.at(alloc[1]);
            let mut best = f64::INFINITY;
            for x in 0..=total.min(4) {
                let y = total - x;
                if y > 4 {
                    continue;
                }
                best = best.min(a.at(x) + b.at(y));
            }
            assert!(
                (got - best).abs() < 1e-9,
                "total {total}: lookahead {got} vs brute {best}"
            );
        }
    }

    #[test]
    fn lookahead_sees_over_cliffs() {
        // Greedy-by-single-unit would never start on the cliff curve; the
        // chunked utility lets Lookahead claim the whole cliff.
        let cliff = MissCurve::new(1, vec![100.0, 100.0, 100.0, 100.0, 0.0]);
        let gentle = MissCurve::new(1, vec![50.0, 45.0, 40.0, 35.0, 30.0]);
        let alloc = lookahead(&[cliff, gentle], 4);
        assert_eq!(alloc[0], 4, "cliff curve gets its full working set");
    }

    #[test]
    fn lookahead_spreads_useless_leftovers() {
        let flat = MissCurve::flat(1, 4, 5.0);
        let alloc = lookahead(&[flat.clone(), flat], 6);
        assert_eq!(alloc.iter().sum::<usize>(), 6);
        // Round-robin split of useless space.
        assert_eq!(alloc, vec![3, 3]);
    }

    #[test]
    fn lookahead_respects_headroom() {
        let tiny = MissCurve::new(1, vec![100.0, 0.0]); // 1-unit domain
        let big = MissCurve::new(1, vec![10.0; 11]);
        let alloc = lookahead(&[tiny, big], 8);
        assert!(alloc[0] <= 1);
        assert_eq!(alloc.iter().sum::<usize>(), 8);
    }

    #[test]
    fn jumanji_lookahead_assigns_all_banks() {
        let curves: Vec<MissCurve> = (0..4)
            .map(|i| {
                let pts: Vec<f64> = (0..=640)
                    .map(|u| 1000.0 / (1.0 + u as f64 / (40.0 + 10.0 * i as f64)))
                    .collect();
                MissCurve::new(32 * 1024, pts)
            })
            .collect();
        let lc = [40.0, 45.0, 33.0, 60.0]; // fractional banks (1.25, 1.4, ...)
        let banks = jumanji_lookahead(&curves, &lc, 20, 32);
        assert_eq!(banks.iter().sum::<usize>(), 20);
        for (v, &b) in banks.iter().enumerate() {
            assert!(b as f64 * 32.0 >= lc[v], "VM {v} banks contain its LC");
        }
    }

    #[test]
    fn jumanji_lookahead_example_from_paper() {
        // "if a latency-critical application needs 1.3 LLC banks, then
        // JumanjiLookahead will allocate batch applications in the same VM
        // either 0.7, 1.7, 2.7, ... banks".
        let curve = MissCurve::new(
            32 * 1024,
            (0..=640).map(|u| 100.0 / (1.0 + u as f64 / 50.0)).collect(),
        );
        let banks = jumanji_lookahead(&[curve.clone(), curve], &[1.3 * 32.0, 0.0], 20, 32);
        let batch0 = banks[0] as f64 - 1.3;
        assert!((batch0.fract() - 0.7).abs() < 1e-9 || batch0.fract() == 0.7);
        assert_eq!(banks.iter().sum::<usize>(), 20);
    }

    #[test]
    fn jumanji_lookahead_vm_without_batch_gets_minimum() {
        let flat = MissCurve::flat(32 * 1024, 640, 0.0);
        let hungry = MissCurve::new(
            32 * 1024,
            (0..=640).map(|u| 1e6 / (1.0 + u as f64 / 100.0)).collect(),
        );
        // VM 0 has only an LC app needing 1.5 banks; VM 1 is all batch.
        let banks = jumanji_lookahead(&[flat, hungry], &[48.0, 0.0], 20, 32);
        assert_eq!(banks[0], 2, "just enough banks for 1.5 banks of LC");
        assert_eq!(banks[1], 18);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn infeasible_lc_panics() {
        let flat = MissCurve::flat(1, 32, 0.0);
        jumanji_lookahead(&[flat], &[33.0 * 32.0], 20, 32);
    }
}
