//! Parallel experiment-execution engine.
//!
//! The figure binaries fan out over hundreds of independent
//! `(group, load, mix, design)` cells; each cell is seconds of pure CPU
//! with no shared state, so they parallelize embarrassingly well. This
//! module provides the machinery:
//!
//! - [`parallel_map`] — an order-preserving indexed map over a scoped
//!   thread pool (work-stealing via an atomic index; no dependencies, no
//!   unsafe code).
//! - [`parallel_map_traced`] — the same engine emitting one
//!   [`Event::WorkerSpan`] per job into a telemetry sink, for profiling
//!   how cells spread across the pool.
//! - [`thread_count`] / [`resolve_count`] / [`flag_value`] — worker-count
//!   and knob resolution (`--flag N` beats the env var beats the default).
//! - [`sched`] — the dependency-aware work-graph scheduler the `suite`
//!   binary executes its deduplicated cross-figure plan on: per-worker
//!   deques, steal-half work stealing, long-pole-first ordering.
//!
//! Determinism: every job derives its RNG streams from its own index, and
//! results land in slots addressed by that index, so output is
//! byte-identical no matter how many workers run or how the scheduler
//! interleaves them. `--threads 1` is the reference serial order.

// exec/ is the sanctioned timing layer and (with spec.rs) the JUMANJI_*
// config surface — lint.toml [paths] sanctions both; mirrored for clippy.
#![allow(clippy::disallowed_methods)]

pub mod sched;

use jumanji::telemetry::{Event, NoopSink, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Returns the value of `flag` (e.g., `--mixes`) in `args`, accepting
/// both the space form (`--mixes 4`) and the equals form (`--mixes=4`).
///
/// `args` is an argv-style slice; the first occurrence of either form
/// wins, scanning left to right. The space form's value is whatever token
/// follows the flag, if any; `--flag=` yields an empty string (the caller
/// decides whether that parses).
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(rest) = arg.strip_prefix(flag) {
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.to_string());
            }
        }
    }
    None
}

/// Resolves a count knob with CLI-beats-env-beats-default precedence.
///
/// A present-but-unparseable source falls through to the next one, so a
/// typo degrades gracefully instead of silently meaning something else.
pub fn resolve_count(flag: Option<&str>, env: Option<&str>, default: usize) -> usize {
    flag.and_then(|v| v.parse().ok())
        .or_else(|| env.and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// The machine's available parallelism, at least 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads: `--threads N`, then `JUMANJI_THREADS`, then
/// the machine's available parallelism.
pub fn thread_count() -> usize {
    let args: Vec<String> = std::env::args().collect();
    resolve_count(
        flag_value(&args, "--threads").as_deref(),
        std::env::var("JUMANJI_THREADS").ok().as_deref(),
        available_threads(),
    )
    .max(1)
}

/// Maps `f` over `0..n` on up to `threads` workers, returning results in
/// index order.
///
/// Jobs are handed out through a shared atomic counter (natural work
/// stealing: a worker that finishes a cheap cell immediately grabs the
/// next), and each result is stored in the slot of its index, so the
/// output `Vec` is identical to the serial `(0..n).map(f).collect()` —
/// only wall-clock changes with `threads`.
///
/// # Panics
///
/// Propagates a panic from any job after the scope unwinds.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_traced(n, threads, &NoopSink, f)
}

/// [`parallel_map`] that also emits one [`Event::WorkerSpan`] per job:
/// which worker ran it, when it started (µs since the fan-out began), and
/// how long it took. With a disabled sink this is exactly [`parallel_map`].
///
/// # Panics
///
/// Propagates a panic from any job after the scope unwinds.
pub fn parallel_map_traced<T, F>(n: usize, threads: usize, tel: &dyn Telemetry, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    let tracing = tel.enabled();
    let epoch = Instant::now();
    let run = |worker: usize, i: usize| -> T {
        if !tracing {
            return f(i);
        }
        let start = epoch.elapsed();
        let r = f(i);
        let end = epoch.elapsed();
        tel.emit(&Event::WorkerSpan {
            worker,
            job: i,
            start_us: start.as_micros() as u64,
            dur_us: (end - start).as_micros() as u64,
        });
        r
    };
    if workers == 1 {
        return (0..n).map(|i| run(0, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let (next, slots, run) = (&next, &slots, &run);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = run(w, i);
                    *slots[i].lock().expect("slot lock") = Some(r);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("experiment worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every job ran exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_finds_following_token() {
        let args = argv(&["prog", "--mixes", "7", "--threads", "3"]);
        assert_eq!(flag_value(&args, "--mixes").as_deref(), Some("7"));
        assert_eq!(flag_value(&args, "--threads").as_deref(), Some("3"));
        assert_eq!(flag_value(&args, "--other"), None);
        // Trailing flag with no value.
        let args = argv(&["prog", "--mixes"]);
        assert_eq!(flag_value(&args, "--mixes"), None);
    }

    #[test]
    fn flag_value_accepts_equals_form() {
        let args = argv(&["prog", "--mixes=7", "--threads=3"]);
        assert_eq!(flag_value(&args, "--mixes").as_deref(), Some("7"));
        assert_eq!(flag_value(&args, "--threads").as_deref(), Some("3"));
        // Empty value is surfaced as such, not treated as absent.
        let args = argv(&["prog", "--mixes="]);
        assert_eq!(flag_value(&args, "--mixes").as_deref(), Some(""));
        // A longer flag sharing the prefix must not match.
        let args = argv(&["prog", "--mixes-per-run=9"]);
        assert_eq!(flag_value(&args, "--mixes"), None);
        // Values containing '=' survive intact.
        let args = argv(&["prog", "--out=a=b"]);
        assert_eq!(flag_value(&args, "--out").as_deref(), Some("a=b"));
    }

    #[test]
    fn flag_value_first_occurrence_wins_across_forms() {
        let args = argv(&["prog", "--mixes=5", "--mixes", "9"]);
        assert_eq!(flag_value(&args, "--mixes").as_deref(), Some("5"));
        let args = argv(&["prog", "--mixes", "9", "--mixes=5"]);
        assert_eq!(flag_value(&args, "--mixes").as_deref(), Some("9"));
    }

    #[test]
    fn resolve_count_precedence_flag_env_default() {
        assert_eq!(resolve_count(Some("4"), Some("9"), 2), 4);
        assert_eq!(resolve_count(None, Some("9"), 2), 9);
        assert_eq!(resolve_count(None, None, 2), 2);
        // Unparseable sources fall through.
        assert_eq!(resolve_count(Some("x"), Some("9"), 2), 9);
        assert_eq!(resolve_count(Some("x"), Some("y"), 2), 2);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn traced_map_emits_one_span_per_job() {
        use jumanji::telemetry::RecordingSink;
        for threads in [1, 3] {
            let sink = RecordingSink::new();
            let out = parallel_map_traced(9, threads, &sink, |i| i * 2);
            assert_eq!(out, (0..9).map(|i| i * 2).collect::<Vec<_>>());
            let mut jobs: Vec<usize> = sink
                .events()
                .iter()
                .map(|e| match e {
                    Event::WorkerSpan { job, .. } => *job,
                    other => panic!("unexpected event {other:?}"),
                })
                .collect();
            jobs.sort_unstable();
            assert_eq!(jobs, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_runs_every_job_once() {
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let out = parallel_map(50, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        assert_eq!(out.len(), 50);
    }
}
