//! Virtual caches: placement descriptors, the virtual-cache translation
//! buffer (VTB), page→VC mapping, and the coherence cost of moving data.
//!
//! Jumanji reuses Jigsaw's single-lookup D-NUCA hardware (Sec. IV-A): every
//! page belongs to a *virtual cache* (VC, one per application here), and
//! each core's [`Vtb`] maps a VC id to a [`PlacementDescriptor`] — a
//! 128-entry array of bank ids. An address is hashed to pick a descriptor
//! entry, which names the unique LLC bank holding that address. Software
//! controls placement simply by rewriting descriptor entries.
//!
//! # Examples
//!
//! ```
//! use nuca_vc::{PlacementDescriptor, Vtb};
//! use nuca_types::{AppId, BankId};
//!
//! // Place a VC 75% in bank 2 and 25% in bank 3.
//! let desc = PlacementDescriptor::from_shares(&[(BankId(2), 0.75), (BankId(3), 0.25)]);
//! let mut vtb = Vtb::new();
//! vtb.install(AppId(0), desc);
//! let bank = vtb.lookup(AppId(0), 0xABCD);
//! assert!(bank == BankId(2) || bank == BankId(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nuca_types::hash::mix64;
use nuca_types::{AppId, BankId, PageId};
use std::collections::HashMap;

/// Number of entries in a placement descriptor (matches the paper's
/// 128-entry array, Fig. 7).
pub const DESCRIPTOR_ENTRIES: usize = 128;

/// Cache lines per page (4 KB pages of 64 B lines). Single-lookup D-NUCAs
/// place data at page granularity (Sec. II-A), so every line of a page
/// lives in the same bank.
pub const PAGE_LINES: u64 = 64;

/// The page containing a line address.
///
/// # Examples
///
/// ```
/// use nuca_vc::{page_of_line, PAGE_LINES};
/// use nuca_types::PageId;
/// assert_eq!(page_of_line(0), PageId(0));
/// assert_eq!(page_of_line(PAGE_LINES), PageId(1));
/// ```
#[inline]
pub fn page_of_line(line: u64) -> PageId {
    PageId((line / PAGE_LINES) as usize)
}

/// A 128-entry array of bank ids controlling where one virtual cache's
/// lines live.
///
/// The fraction of the VC's data in bank *b* equals the fraction of
/// descriptor entries naming *b* (the address hash is uniform).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementDescriptor {
    entries: [BankId; DESCRIPTOR_ENTRIES],
}

impl PlacementDescriptor {
    /// A descriptor striping data uniformly over `num_banks` banks —
    /// S-NUCA behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks == 0`.
    pub fn uniform(num_banks: usize) -> PlacementDescriptor {
        assert!(num_banks > 0, "need at least one bank");
        let mut entries = [BankId(0); DESCRIPTOR_ENTRIES];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = BankId(i % num_banks);
        }
        PlacementDescriptor { entries }
    }

    /// Builds a descriptor whose per-bank entry counts approximate the
    /// given capacity shares (largest-remainder apportionment).
    ///
    /// Shares need not sum to one; they are normalized. Banks with zero
    /// share receive no entries.
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty or all weights are zero/negative.
    pub fn from_shares(shares: &[(BankId, f64)]) -> PlacementDescriptor {
        let total: f64 = shares.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "placement shares must have positive total");
        // Integer apportionment of 128 entries.
        let mut counts: Vec<(BankId, usize, f64)> = shares
            .iter()
            .filter(|(_, w)| *w > 0.0)
            .map(|&(b, w)| {
                let exact = w / total * DESCRIPTOR_ENTRIES as f64;
                (b, exact.floor() as usize, exact - exact.floor())
            })
            .collect();
        let assigned: usize = counts.iter().map(|c| c.1).sum();
        let mut remaining = DESCRIPTOR_ENTRIES - assigned;
        // Hand out leftovers by largest fractional remainder (ties by bank
        // id for determinism).
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| {
            counts[b]
                .2
                .partial_cmp(&counts[a].2)
                .expect("remainders are finite")
                .then(counts[a].0.cmp(&counts[b].0))
        });
        for idx in order {
            if remaining == 0 {
                break;
            }
            counts[idx].1 += 1;
            remaining -= 1;
        }
        let mut entries = [BankId(0); DESCRIPTOR_ENTRIES];
        let mut pos = 0;
        for (b, n, _) in &counts {
            for _ in 0..*n {
                entries[pos] = *b;
                pos += 1;
            }
        }
        debug_assert_eq!(pos, DESCRIPTOR_ENTRIES);
        // Interleave entries so consecutive hash values don't stick to one
        // bank: permute by a fixed stride coprime to 128.
        let mut interleaved = [BankId(0); DESCRIPTOR_ENTRIES];
        for (i, e) in entries.iter().enumerate() {
            interleaved[(i * 37) % DESCRIPTOR_ENTRIES] = *e;
        }
        PlacementDescriptor {
            entries: interleaved,
        }
    }

    /// The bank holding `line` under this descriptor.
    ///
    /// Placement is page-granular (Sec. II-A): the descriptor entry is
    /// selected by hashing the line's *page*, so all 64 lines of a page
    /// map to the same bank.
    #[inline]
    pub fn bank_for(&self, line: u64) -> BankId {
        self.bank_for_page(page_of_line(line))
    }

    /// The bank holding `page` under this descriptor.
    #[inline]
    pub fn bank_for_page(&self, page: PageId) -> BankId {
        self.entries[(mix64(page.index() as u64) % DESCRIPTOR_ENTRIES as u64) as usize]
    }

    /// Per-bank capacity shares implied by the descriptor, sorted by bank.
    pub fn shares(&self) -> Vec<(BankId, f64)> {
        let mut counts: HashMap<BankId, usize> = HashMap::new();
        for e in &self.entries {
            *counts.entry(*e).or_default() += 1;
        }
        let mut out: Vec<(BankId, f64)> = counts
            .into_iter()
            .map(|(b, n)| (b, n as f64 / DESCRIPTOR_ENTRIES as f64))
            .collect();
        out.sort_by_key(|(b, _)| *b);
        out
    }

    /// The set of banks with at least one entry.
    pub fn banks(&self) -> Vec<BankId> {
        let mut v: Vec<BankId> = self.entries.to_vec();
        v.sort();
        v.dedup();
        v
    }

    /// Fraction of descriptor entries that map to a different bank in
    /// `other` — the fraction of the VC's lines that must be invalidated
    /// and re-fetched after reconfiguration (the background walk of
    /// Sec. IV-A "Coherence").
    pub fn moved_fraction(&self, other: &PlacementDescriptor) -> f64 {
        let moved = self
            .entries
            .iter()
            .zip(other.entries.iter())
            .filter(|(a, b)| a != b)
            .count();
        moved as f64 / DESCRIPTOR_ENTRIES as f64
    }
}

/// The per-core virtual-cache translation buffer: VC id → descriptor.
///
/// One VC per application suffices for this paper (Sec. IV-A), so VCs are
/// keyed by [`AppId`].
#[derive(Debug, Clone, Default)]
pub struct Vtb {
    descs: HashMap<AppId, PlacementDescriptor>,
}

impl Vtb {
    /// An empty VTB.
    pub fn new() -> Vtb {
        Vtb::default()
    }

    /// Installs (or replaces) the descriptor for `vc`, returning the
    /// fraction of lines moved relative to the previous descriptor
    /// (1.0 for a fresh install — everything must be fetched anyway).
    pub fn install(&mut self, vc: AppId, desc: PlacementDescriptor) -> f64 {
        let moved = self
            .descs
            .get(&vc)
            .map(|old| old.moved_fraction(&desc))
            .unwrap_or(1.0);
        self.descs.insert(vc, desc);
        moved
    }

    /// The bank for `line` in virtual cache `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` has no installed descriptor — accessing an unmapped
    /// VC is a simulator bug.
    pub fn lookup(&self, vc: AppId, line: u64) -> BankId {
        self.descs
            .get(&vc)
            .unwrap_or_else(|| panic!("no descriptor installed for {vc}"))
            .bank_for(line)
    }

    /// The descriptor for `vc`, if installed.
    pub fn descriptor(&self, vc: AppId) -> Option<&PlacementDescriptor> {
        self.descs.get(&vc)
    }

    /// Number of installed descriptors.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// True if no descriptors are installed.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }
}

/// A per-core translation lookaside buffer caching page entries (which
/// carry the VC id in this design, Sec. IV-A).
///
/// Fully-associative with true-LRU replacement — small TLBs are built this
/// way, and it keeps the model exact.
///
/// # Examples
///
/// ```
/// use nuca_vc::Tlb;
/// use nuca_types::PageId;
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(PageId(1))); // cold miss
/// assert!(tlb.access(PageId(1))); // hit
/// tlb.access(PageId(2));
/// tlb.access(PageId(3)); // evicts page 1 (LRU)
/// assert!(!tlb.access(PageId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// MRU-first page stack.
    entries: Vec<PageId>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with room for `capacity` page entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `page`, filling on a miss; returns whether it hit.
    pub fn access(&mut self, page: PageId) -> bool {
        if let Some(i) = self.entries.iter().position(|&p| p == page) {
            self.entries.remove(i);
            self.entries.insert(0, page);
            self.hits += 1;
            true
        } else {
            if self.entries.len() == self.capacity {
                self.entries.pop();
            }
            self.entries.insert(0, page);
            self.misses += 1;
            false
        }
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The OS page table fragment mapping pages to virtual caches.
///
/// In real hardware the VC id rides along in the TLB; the simulator only
/// needs the mapping itself.
#[derive(Debug, Clone, Default)]
pub struct PageMap {
    pages: HashMap<PageId, AppId>,
}

impl PageMap {
    /// An empty page map.
    pub fn new() -> PageMap {
        PageMap::default()
    }

    /// Assigns `page` to `vc`, returning the previous owner if any (a page
    /// changing VCs triggers the coherence walk).
    pub fn assign(&mut self, page: PageId, vc: AppId) -> Option<AppId> {
        self.pages.insert(page, vc)
    }

    /// The VC owning `page`, if mapped.
    pub fn vc_of(&self, page: PageId) -> Option<AppId> {
        self.pages.get(&page).copied()
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_descriptor_stripes_all_banks() {
        let d = PlacementDescriptor::uniform(20);
        let shares = d.shares();
        assert_eq!(shares.len(), 20);
        for (_, s) in &shares {
            // 128/20 is not integral; shares are 6/128 or 7/128.
            assert!(*s >= 6.0 / 128.0 - 1e-12 && *s <= 7.0 / 128.0 + 1e-12);
        }
    }

    #[test]
    fn from_shares_apportions_entries() {
        let d = PlacementDescriptor::from_shares(&[(BankId(1), 0.75), (BankId(2), 0.25)]);
        let shares = d.shares();
        assert_eq!(shares.len(), 2);
        assert!((shares[0].1 - 0.75).abs() <= 1.0 / 128.0);
        assert!((shares[1].1 - 0.25).abs() <= 1.0 / 128.0);
        assert_eq!(d.banks(), vec![BankId(1), BankId(2)]);
    }

    #[test]
    fn from_shares_normalizes_weights() {
        let a = PlacementDescriptor::from_shares(&[(BankId(0), 3.0), (BankId(1), 1.0)]);
        let b = PlacementDescriptor::from_shares(&[(BankId(0), 0.75), (BankId(1), 0.25)]);
        assert_eq!(a.shares(), b.shares());
    }

    #[test]
    fn bank_for_respects_shares_statistically() {
        let d = PlacementDescriptor::from_shares(&[(BankId(5), 0.5), (BankId(9), 0.5)]);
        let mut five = 0;
        let n = 100_000u64;
        for line in 0..n {
            match d.bank_for(line) {
                BankId(5) => five += 1,
                BankId(9) => {}
                other => panic!("unexpected bank {other}"),
            }
        }
        let frac = five as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn moved_fraction_bounds() {
        let a = PlacementDescriptor::uniform(20);
        let b = PlacementDescriptor::uniform(20);
        assert_eq!(a.moved_fraction(&b), 0.0);
        let c = PlacementDescriptor::from_shares(&[(BankId(0), 1.0)]);
        let full = a.moved_fraction(&c);
        assert!(
            full > 0.9,
            "moving everything to one bank relocates most lines"
        );
    }

    #[test]
    fn vtb_install_reports_movement() {
        let mut vtb = Vtb::new();
        let first = vtb.install(AppId(0), PlacementDescriptor::uniform(4));
        assert_eq!(first, 1.0);
        let second = vtb.install(AppId(0), PlacementDescriptor::uniform(4));
        assert_eq!(second, 0.0);
        assert_eq!(vtb.len(), 1);
        assert!(!vtb.is_empty());
    }

    #[test]
    #[should_panic(expected = "no descriptor installed")]
    fn vtb_lookup_unmapped_panics() {
        Vtb::new().lookup(AppId(3), 0);
    }

    #[test]
    fn page_map_tracks_ownership() {
        let mut pm = PageMap::new();
        assert!(pm.is_empty());
        assert_eq!(pm.assign(PageId(1), AppId(0)), None);
        assert_eq!(pm.assign(PageId(1), AppId(2)), Some(AppId(0)));
        assert_eq!(pm.vc_of(PageId(1)), Some(AppId(2)));
        assert_eq!(pm.vc_of(PageId(9)), None);
        assert_eq!(pm.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn zero_shares_panic() {
        PlacementDescriptor::from_shares(&[(BankId(0), 0.0)]);
    }
}
