//! Software cost of each design's placement algorithm.
//!
//! The paper reports Jumanji's full reconfiguration at 11.9 Mcycles every
//! 100 ms on a 2.66 GHz core — about 4.5 ms, or 0.22 % of system cycles
//! (Sec. IV-B). This bench measures our implementations on the same-sized
//! problem (20 apps, 4 VMs, 640 allocation units) so the claim can be
//! checked against `target/criterion` output.

use criterion::{criterion_group, criterion_main, Criterion};
use jumanji::prelude::*;
use std::hint::black_box;

fn placement_benches(c: &mut Criterion) {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let mut group = c.benchmark_group("placer");
    for design in [
        DesignKind::Static,
        DesignKind::Adaptive,
        DesignKind::VmPart,
        DesignKind::Jigsaw,
        DesignKind::Jumanji,
        DesignKind::JumanjiIdealBatch,
    ] {
        group.bench_function(design.name(), |b| {
            b.iter(|| black_box(design.allocate(black_box(&input))))
        });
    }
    group.finish();
}

criterion_group!(benches, placement_benches);
criterion_main!(benches);
