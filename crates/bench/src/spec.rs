//! One declarative description of a figure run, shared by every binary.
//!
//! [`ExperimentSpec`] collects the knobs the 18 figure/table binaries
//! used to resolve by hand — mix count, worker threads, RNG seed,
//! detailed-sim accesses, design list, output, telemetry — behind one
//! builder, with one resolution order everywhere:
//!
//! 1. CLI flag (`--mixes`, `--threads`, `--seed`, `--accesses`,
//!    `--trace`, `--cache-dir`, `--no-cache`) — strict: a missing or
//!    unparseable value is a usage error.
//! 2. Environment (`JUMANJI_MIXES`, `JUMANJI_THREADS`, `JUMANJI_TRACE`,
//!    `JUMANJI_CACHE_DIR`, `JUMANJI_NO_CACHE`) — lenient: an
//!    unparseable value falls through, so a stale export degrades to
//!    the default instead of silently meaning something else.
//! 3. The spec's builder value ([`ExperimentSpec::cache_dir`] /
//!    [`ExperimentSpec::no_cache`] for the cache controls), then the
//!    figure's own default ([`FigureKind::default_mixes`] etc.).
//!
//! A binary is then a one-liner:
//!
//! ```no_run
//! use jumanji_bench::{figure_main, FigureKind};
//!
//! fn main() -> std::process::ExitCode {
//!     figure_main(FigureKind::Fig13)
//! }
//! ```
//!
//! and library callers build specs directly:
//!
//! ```no_run
//! use jumanji_bench::{run_spec, ExperimentSpec, FigureKind};
//!
//! let spec = ExperimentSpec::new(FigureKind::Fig14).mixes(2).threads(4);
//! run_spec(&spec).expect("figure renders");
//! ```

// spec.rs IS the centralized JUMANJI_* config surface (lint.toml
// [paths].env_allow), so the env-read ban does not apply here.
#![allow(clippy::disallowed_methods)]

use crate::figures;
use jumanji::prelude::*;
use jumanji::types::Error;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Every figure, table, and study binary in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the paper's figure numbers
pub enum FigureKind {
    Fig02,
    Fig04,
    Fig05,
    Fig08,
    Fig09,
    Fig11,
    Fig12,
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Fig17,
    Fig18,
    Table2,
    Table3,
    Ablation,
    Sensitivity,
    Validate,
}

impl FigureKind {
    /// All kinds, in figure order.
    pub fn all() -> [FigureKind; 18] {
        use FigureKind::*;
        [
            Fig02,
            Fig04,
            Fig05,
            Fig08,
            Fig09,
            Fig11,
            Fig12,
            Fig13,
            Fig14,
            Fig15,
            Fig16,
            Fig17,
            Fig18,
            Table2,
            Table3,
            Ablation,
            Sensitivity,
            Validate,
        ]
    }

    /// Binary name (`fig13`, `table2`, …).
    pub fn name(self) -> &'static str {
        use FigureKind::*;
        match self {
            Fig02 => "fig02",
            Fig04 => "fig04",
            Fig05 => "fig05",
            Fig08 => "fig08",
            Fig09 => "fig09",
            Fig11 => "fig11",
            Fig12 => "fig12",
            Fig13 => "fig13",
            Fig14 => "fig14",
            Fig15 => "fig15",
            Fig16 => "fig16",
            Fig17 => "fig17",
            Fig18 => "fig18",
            Table2 => "table2",
            Table3 => "table3",
            Ablation => "ablation",
            Sensitivity => "sensitivity",
            Validate => "validate",
        }
    }

    /// The kind whose [`FigureKind::name`] is `name`, if any.
    ///
    /// This is the parsing direction, used by the `suite` binary's
    /// `--figures fig13,fig14,…` list.
    pub fn from_name(name: &str) -> Option<FigureKind> {
        FigureKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Default mix/seed count. Figures that run a single fixed scenario
    /// (the case study, the attack demos, the config tables) report `1`.
    pub fn default_mixes(self) -> usize {
        use FigureKind::*;
        match self {
            Fig13 => crate::PAPER_MIXES,
            Fig14 | Fig15 | Fig16 | Fig17 | Fig18 => 8,
            Fig09 => 5,
            Ablation => 6,
            Validate => 4,
            Sensitivity => 3,
            Fig02 | Fig04 | Fig05 | Fig08 | Fig11 | Fig12 | Table2 | Table3 => 1,
        }
    }

    /// Default detailed-sim accesses per app (only [`FigureKind::Fig02`]
    /// and [`FigureKind::Validate`] run the detailed simulator).
    pub fn default_accesses(self) -> usize {
        match self {
            FigureKind::Fig02 => 40_000,
            _ => 200_000,
        }
    }

    /// Default design list. Empty for figures whose structure fixes the
    /// designs (e.g. Fig. 16's three Jumanji variants, the attack demos).
    pub fn default_designs(self) -> Vec<DesignKind> {
        use FigureKind::*;
        match self {
            Fig02 => vec![
                DesignKind::Adaptive,
                DesignKind::VmPart,
                DesignKind::Jigsaw,
                DesignKind::Jumanji,
            ],
            Fig04 | Fig05 | Fig13 | Fig14 => DesignKind::main_four().to_vec(),
            Fig15 => vec![
                DesignKind::Static,
                DesignKind::Adaptive,
                DesignKind::VmPart,
                DesignKind::Jigsaw,
                DesignKind::Jumanji,
            ],
            Fig16 => vec![
                DesignKind::Jumanji,
                DesignKind::JumanjiInsecure,
                DesignKind::JumanjiIdealBatch,
            ],
            _ => Vec::new(),
        }
    }
}

/// Declarative description of one figure run.
///
/// Build with [`ExperimentSpec::new`] (per-figure defaults) or
/// [`ExperimentSpec::from_args_env`] (the binaries' CLI/env resolution),
/// then refine with the builder methods and hand to [`run_spec`].
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Which figure to render.
    pub kind: FigureKind,
    /// Random mixes (or seeds) per configuration.
    pub mixes: usize,
    /// Worker threads for the experiment fan-out.
    pub threads: usize,
    /// Base RNG seed (the analytic simulator's arrival streams and the
    /// case-study mix derive from it).
    pub seed: u64,
    /// Detailed-sim accesses per app (Fig. 2 and the validation study).
    pub accesses: usize,
    /// Designs to evaluate, for figures that iterate over a design list.
    pub designs: Vec<DesignKind>,
    /// Back the shared cell cache with a persistent store at this
    /// directory (applied by [`run_spec_to`]; ignored when `no_cache`
    /// is set).
    pub cache_dir: Option<PathBuf>,
    /// Disable the shared cell cache entirely: every cell computes
    /// fresh (beats `cache_dir`).
    pub no_cache: bool,
    /// Write telemetry as JSONL to this path (ignored when `telemetry`
    /// is set).
    pub trace: Option<PathBuf>,
    /// Explicit telemetry sink; takes precedence over `trace`.
    pub telemetry: Option<Arc<dyn Telemetry>>,
}

impl std::fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("kind", &self.kind)
            .field("mixes", &self.mixes)
            .field("threads", &self.threads)
            .field("seed", &self.seed)
            .field("accesses", &self.accesses)
            .field("designs", &self.designs)
            .field("cache_dir", &self.cache_dir)
            .field("no_cache", &self.no_cache)
            .field("trace", &self.trace)
            .field("telemetry", &self.telemetry.as_ref().map(|_| ".."))
            .finish()
    }
}

impl ExperimentSpec {
    /// A spec with `kind`'s defaults: paper mix count, all available
    /// cores, seed 1, no telemetry.
    pub fn new(kind: FigureKind) -> ExperimentSpec {
        ExperimentSpec {
            kind,
            mixes: kind.default_mixes(),
            threads: crate::exec::available_threads(),
            seed: 1,
            accesses: kind.default_accesses(),
            designs: kind.default_designs(),
            cache_dir: None,
            no_cache: false,
            trace: None,
            telemetry: None,
        }
    }

    /// Sets the mix count.
    pub fn mixes(mut self, mixes: usize) -> ExperimentSpec {
        self.mixes = mixes.max(1);
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> ExperimentSpec {
        self.threads = threads.max(1);
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> ExperimentSpec {
        self.seed = seed;
        self
    }

    /// Sets the detailed-sim accesses per app.
    pub fn accesses(mut self, accesses: usize) -> ExperimentSpec {
        self.accesses = accesses.max(1);
        self
    }

    /// Sets the design list.
    pub fn designs(mut self, designs: &[DesignKind]) -> ExperimentSpec {
        self.designs = designs.to_vec();
        self
    }

    /// Backs the shared cell cache with a persistent store at `dir`
    /// when the spec runs (same semantics as the binaries'
    /// `--cache-dir`; overridden by `JUMANJI_CACHE_DIR` and the CLI
    /// flag under [`Self::from_args_env`]).
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> ExperimentSpec {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Disables the shared cell cache for this spec's run (same
    /// semantics as the binaries' `--no-cache`; beats
    /// [`Self::cache_dir`]).
    pub fn no_cache(mut self) -> ExperimentSpec {
        self.no_cache = true;
        self
    }

    /// Writes telemetry as JSONL to `path`.
    pub fn trace(mut self, path: impl Into<PathBuf>) -> ExperimentSpec {
        self.trace = Some(path.into());
        self
    }

    /// Installs an explicit telemetry sink (beats [`Self::trace`]).
    pub fn telemetry(mut self, sink: Arc<dyn Telemetry>) -> ExperimentSpec {
        self.telemetry = Some(sink);
        self
    }

    /// Parses an argv-style slice (program name first or not — only
    /// `--flag value` pairs are inspected).
    ///
    /// # Errors
    ///
    /// Returns a usage [`Error::Flag`] for a recognized flag with a
    /// missing or unparseable value. Unrecognized arguments are ignored,
    /// as the original binaries did.
    pub fn from_args(kind: FigureKind, args: &[String]) -> Result<ExperimentSpec, Error> {
        let mut spec = ExperimentSpec::new(kind);
        if let Some(v) = parse_flag(args, "--mixes")? {
            spec.mixes = v;
        }
        if let Some(v) = parse_flag(args, "--threads")? {
            spec.threads = v;
        }
        if let Some(v) = parse_flag(args, "--seed")? {
            spec.seed = v;
        }
        if let Some(v) = parse_flag(args, "--accesses")? {
            spec.accesses = v;
        }
        if let Some(p) = flag_text(args, "--trace")? {
            spec.trace = Some(PathBuf::from(p));
        }
        resolve_cache_controls(&mut spec, args, None, None)?;
        spec.mixes = spec.mixes.max(1);
        spec.threads = spec.threads.max(1);
        spec.accesses = spec.accesses.max(1);
        Ok(spec)
    }

    /// [`Self::from_args`] on the process's own argv, with the
    /// environment filled in underneath: CLI beats `JUMANJI_MIXES` /
    /// `JUMANJI_THREADS` / `JUMANJI_TRACE` beats the figure's default.
    ///
    /// # Errors
    ///
    /// Usage errors from CLI flags only — environment values that fail
    /// to parse fall through to the default.
    pub fn from_args_env(kind: FigureKind) -> Result<ExperimentSpec, Error> {
        let args: Vec<String> = std::env::args().collect();
        let mut spec = ExperimentSpec::new(kind);
        // Environment first (lenient), so CLI overwrites it.
        if let Some(v) = env_count("JUMANJI_MIXES") {
            spec.mixes = v.max(1);
        }
        if let Some(v) = env_count("JUMANJI_THREADS") {
            spec.threads = v.max(1);
        }
        if let Some(p) = std::env::var_os("JUMANJI_TRACE") {
            if !p.is_empty() {
                spec.trace = Some(PathBuf::from(p));
            }
        }
        if let Some(v) = parse_flag::<usize>(&args, "--mixes")? {
            spec.mixes = v.max(1);
        }
        if let Some(v) = parse_flag::<usize>(&args, "--threads")? {
            spec.threads = v.max(1);
        }
        if let Some(v) = parse_flag::<u64>(&args, "--seed")? {
            spec.seed = v;
        }
        if let Some(v) = parse_flag::<usize>(&args, "--accesses")? {
            spec.accesses = v.max(1);
        }
        if let Some(p) = flag_text(&args, "--trace")? {
            spec.trace = Some(PathBuf::from(p));
        }
        resolve_cache_controls(
            &mut spec,
            &args,
            std::env::var("JUMANJI_NO_CACHE").ok(),
            std::env::var("JUMANJI_CACHE_DIR").ok(),
        )?;
        Ok(spec)
    }
}

/// Resolves the spec's cache controls with the binaries' precedence:
/// CLI flag beats environment beats whatever the builder set. The
/// environment is lenient (empty or `0` means unset), the CLI strict —
/// factored over explicit `env_*` values so tests need not mutate
/// process environment.
fn resolve_cache_controls(
    spec: &mut ExperimentSpec,
    args: &[String],
    env_no_cache: Option<String>,
    env_cache_dir: Option<String>,
) -> Result<(), Error> {
    if let Some(v) = env_no_cache {
        if !v.is_empty() && v != "0" {
            spec.no_cache = true;
        }
    }
    if let Some(dir) = env_cache_dir {
        if !dir.is_empty() {
            spec.cache_dir = Some(PathBuf::from(dir));
        }
    }
    if args.iter().any(|a| a == "--no-cache") {
        spec.no_cache = true;
    }
    if let Some(dir) = flag_text(args, "--cache-dir")? {
        spec.cache_dir = Some(PathBuf::from(dir));
    }
    Ok(())
}

/// The value of `flag`, as text, in either `--flag value` or
/// `--flag=value` form (first occurrence wins). Present-with-no-value —
/// a bare trailing flag, another `--flag` in value position, or an empty
/// `--flag=` — is a usage error.
fn flag_text(args: &[String], flag: &str) -> Result<Option<String>, Error> {
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
                _ => Err(Error::flag(flag, "expected a value")),
            };
        }
        if let Some(value) = arg.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
            if value.is_empty() {
                return Err(Error::flag(flag, "expected a value"));
            }
            return Ok(Some(value.to_string()));
        }
    }
    Ok(None)
}

/// The value after `flag`, parsed. Unparseable is a usage error.
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, Error> {
    match flag_text(args, flag)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| Error::flag(flag, format!("invalid value `{v}`"))),
    }
}

/// A `VAR=n` environment count; unset or unparseable yields `None`.
fn env_count(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.parse().ok()
}

/// Renders the spec's figure to stdout (locked for the duration).
///
/// # Errors
///
/// Propagates figure errors ([`run_spec_to`]).
pub fn run_spec(spec: &ExperimentSpec) -> Result<(), Error> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    run_spec_to(spec, &mut out)
}

/// Renders the spec's figure to any writer, resolving the telemetry sink
/// (explicit sink, then `trace` path as a [`JsonlSink`], then the no-op
/// sink) and flushing both on the way out.
///
/// # Errors
///
/// Returns usage errors for bad spec inputs (unknown workload names),
/// and runtime errors for I/O failures on `out` or the trace file.
pub fn run_spec_to(spec: &ExperimentSpec, out: &mut dyn Write) -> Result<(), Error> {
    let cache = crate::cell_cache::CellCache::global();
    if spec.no_cache {
        cache.set_enabled(false);
    } else if let Some(dir) = &spec.cache_dir {
        // The binaries attach the store in `apply_cache_flags` before
        // the spec exists; re-attaching the same root would reset its
        // counters mid-run, so only attach when the root differs.
        let attached = cache.disk().is_some_and(|d| d.root() == dir.as_path());
        if !attached {
            crate::cell_cache::attach_global_disk(&dir.to_string_lossy());
        }
    }
    let jsonl;
    let tel: &dyn Telemetry = match (&spec.telemetry, &spec.trace) {
        (Some(sink), _) => sink.as_ref(),
        (None, Some(path)) => {
            jsonl = JsonlSink::create(path)?;
            &jsonl
        }
        (None, None) => &NoopSink,
    };
    figures::emit(spec, tel, out)?;
    out.flush()?;
    Ok(())
}

/// The whole `main` of a figure binary: parse argv/env (including the
/// process-level `--no-cache` / `--cache-dir DIR` cache controls), run,
/// persist the model memos to the disk store on success, and map errors
/// to exit codes (usage → 2, runtime → 1).
pub fn figure_main(kind: FigureKind) -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    crate::cell_cache::apply_cache_flags(&args);
    let spec = match ExperimentSpec::from_args_env(kind) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{}: {e}", kind.name());
            return ExitCode::from(2);
        }
    };
    match run_spec(&spec) {
        Ok(()) => {
            crate::cell_cache::persist_global_disk();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}: {e}", kind.name());
            ExitCode::from(if e.is_usage() { 2 } else { 1 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_follow_the_figure() {
        let spec = ExperimentSpec::new(FigureKind::Fig13);
        assert_eq!(spec.mixes, crate::PAPER_MIXES);
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.designs, DesignKind::main_four().to_vec());
        assert!(spec.trace.is_none());
        assert_eq!(ExperimentSpec::new(FigureKind::Fig09).mixes, 5);
        assert_eq!(ExperimentSpec::new(FigureKind::Fig02).accesses, 40_000);
        assert_eq!(ExperimentSpec::new(FigureKind::Validate).accesses, 200_000);
        assert!(ExperimentSpec::new(FigureKind::Table2).designs.is_empty());
    }

    #[test]
    fn builder_methods_override_and_clamp() {
        let spec = ExperimentSpec::new(FigureKind::Fig14)
            .mixes(0)
            .threads(0)
            .seed(9)
            .accesses(0)
            .designs(&[DesignKind::Jumanji])
            .trace("/tmp/t.jsonl");
        assert_eq!(spec.mixes, 1);
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.accesses, 1);
        assert_eq!(spec.designs, vec![DesignKind::Jumanji]);
        assert_eq!(
            spec.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
    }

    #[test]
    fn cli_flags_parse_strictly() {
        let args = argv(&["fig13", "--mixes", "7", "--threads", "3", "--seed", "42"]);
        let spec = ExperimentSpec::from_args(FigureKind::Fig13, &args).expect("valid argv");
        assert_eq!((spec.mixes, spec.threads, spec.seed), (7, 3, 42));

        let err = ExperimentSpec::from_args(FigureKind::Fig13, &argv(&["fig13", "--mixes", "x"]))
            .expect_err("unparseable value");
        assert!(err.is_usage());
        assert!(err.to_string().contains("--mixes"));

        let err = ExperimentSpec::from_args(FigureKind::Fig13, &argv(&["fig13", "--mixes"]))
            .expect_err("missing value");
        assert!(err.is_usage());

        // A flag in value position counts as missing, not as a value.
        let err =
            ExperimentSpec::from_args(FigureKind::Fig13, &argv(&["fig13", "--trace", "--verbose"]))
                .expect_err("flag as value");
        assert!(err.to_string().contains("--trace"));
    }

    #[test]
    fn cli_flags_accept_equals_form() {
        let args = argv(&["fig13", "--mixes=7", "--threads=3", "--seed=42"]);
        let spec = ExperimentSpec::from_args(FigureKind::Fig13, &args).expect("valid argv");
        assert_eq!((spec.mixes, spec.threads, spec.seed), (7, 3, 42));

        let spec =
            ExperimentSpec::from_args(FigureKind::Fig13, &argv(&["fig13", "--trace=/tmp/t.jsonl"]))
                .expect("valid argv");
        assert_eq!(
            spec.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );

        // Mixed forms in one argv; first occurrence wins per flag.
        let args = argv(&["fig13", "--mixes=5", "--threads", "2"]);
        let spec = ExperimentSpec::from_args(FigureKind::Fig13, &args).expect("valid argv");
        assert_eq!((spec.mixes, spec.threads), (5, 2));

        let err = ExperimentSpec::from_args(FigureKind::Fig13, &argv(&["fig13", "--mixes="]))
            .expect_err("empty value");
        assert!(err.is_usage());
        assert!(err.to_string().contains("--mixes"));

        let err = ExperimentSpec::from_args(FigureKind::Fig13, &argv(&["fig13", "--mixes=x"]))
            .expect_err("unparseable value");
        assert!(err.is_usage());
    }

    #[test]
    fn cache_controls_resolve_cli_over_env_over_builder() {
        use std::path::Path;
        // Builder value survives when neither CLI nor env speaks.
        let mut spec = ExperimentSpec::new(FigureKind::Fig13).cache_dir("/from/builder");
        resolve_cache_controls(&mut spec, &argv(&["fig13"]), None, None).expect("valid");
        assert_eq!(spec.cache_dir.as_deref(), Some(Path::new("/from/builder")));
        assert!(!spec.no_cache);

        // Environment beats the builder.
        let mut spec = ExperimentSpec::new(FigureKind::Fig13).cache_dir("/from/builder");
        resolve_cache_controls(
            &mut spec,
            &argv(&["fig13"]),
            Some("1".into()),
            Some("/from/env".into()),
        )
        .expect("valid");
        assert_eq!(spec.cache_dir.as_deref(), Some(Path::new("/from/env")));
        assert!(spec.no_cache);

        // CLI beats the environment.
        let mut spec = ExperimentSpec::new(FigureKind::Fig13);
        resolve_cache_controls(
            &mut spec,
            &argv(&["fig13", "--cache-dir", "/from/cli"]),
            None,
            Some("/from/env".into()),
        )
        .expect("valid");
        assert_eq!(spec.cache_dir.as_deref(), Some(Path::new("/from/cli")));

        // Env no-cache is lenient: empty and `0` mean unset.
        let mut spec = ExperimentSpec::new(FigureKind::Fig13);
        resolve_cache_controls(&mut spec, &argv(&["fig13"]), Some("0".into()), None)
            .expect("valid");
        assert!(!spec.no_cache);
        let mut spec = ExperimentSpec::new(FigureKind::Fig13);
        resolve_cache_controls(&mut spec, &argv(&["fig13"]), Some(String::new()), None)
            .expect("valid");
        assert!(!spec.no_cache);

        // CLI --no-cache is a bare flag; --cache-dir stays strict.
        let mut spec = ExperimentSpec::new(FigureKind::Fig13);
        resolve_cache_controls(&mut spec, &argv(&["fig13", "--no-cache"]), None, None)
            .expect("valid");
        assert!(spec.no_cache);
        let mut spec = ExperimentSpec::new(FigureKind::Fig13);
        let err = resolve_cache_controls(&mut spec, &argv(&["fig13", "--cache-dir"]), None, None)
            .expect_err("missing value");
        assert!(err.is_usage());
    }

    #[test]
    fn builder_cache_controls_set_fields() {
        let spec = ExperimentSpec::new(FigureKind::Fig14)
            .cache_dir("/tmp/cells")
            .no_cache();
        assert_eq!(
            spec.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/cells"))
        );
        assert!(spec.no_cache);
        let spec = ExperimentSpec::new(FigureKind::Fig14);
        assert!(spec.cache_dir.is_none() && !spec.no_cache);
    }

    #[test]
    fn from_name_round_trips_every_kind() {
        for kind in FigureKind::all() {
            assert_eq!(FigureKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FigureKind::from_name("fig99"), None);
        assert_eq!(FigureKind::from_name(""), None);
    }

    #[test]
    fn unrecognized_arguments_are_ignored() {
        let spec =
            ExperimentSpec::from_args(FigureKind::Fig14, &argv(&["fig14", "--unknown", "5"]))
                .expect("unknown flags ignored");
        assert_eq!(spec.mixes, 8);
    }

    #[test]
    fn kind_names_are_unique_and_match_binaries() {
        let mut names: Vec<&str> = FigureKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 18);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18, "duplicate binary name");
    }
}
