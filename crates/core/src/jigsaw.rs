//! Jigsaw's capacity partitioning and proximity placement \[6, 8\].
//!
//! Jigsaw sizes per-application partitions by marginal utility (Lookahead
//! over DRRIP-hull miss curves) and places each partition in banks near the
//! owning core. Jumanji reuses this machinery for batch applications
//! *within* each VM's banks (Listing 3, line 12); the standalone Jigsaw
//! design applies it to every application with no regard for deadlines or
//! trust domains — which is exactly what the paper criticizes.

// The by-app lookup maps are Mix64Build-hashed and lookup-only (never
// iterated); clippy's type ban cannot see hasher parameters.
#![allow(clippy::disallowed_types)]

use crate::lookahead::lookahead;
use nuca_cache::MissCurve;
use nuca_types::hash::Mix64Build;
use nuca_types::{AppId, BankId, CoreId, Mesh};
use std::collections::HashMap;

/// A placement request: who, from where, how many bytes, with what
/// priority (higher access rates place first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceRequest {
    /// Application (virtual cache) being placed.
    pub app: AppId,
    /// Core whose proximity matters.
    pub core: CoreId,
    /// Bytes to place.
    pub bytes: f64,
    /// Placement priority; apps touching the cache more often get first
    /// pick of nearby banks.
    pub priority: f64,
}

/// Sizes partitions by Lookahead over absolute miss-rate curves.
///
/// Thin, documented alias for [`lookahead`] so call sites read as the
/// paper does.
pub fn jigsaw_sizes(curves: &[MissCurve], total_units: usize) -> Vec<usize> {
    lookahead(curves, total_units)
}

/// Places partitions near their cores, round-robin in priority order.
///
/// Apps take up to one bank's worth of their remaining demand per round,
/// from the nearest bank (optionally restricted by `allowed`) with
/// balance. Interleaving rounds keeps one high-priority app from pushing
/// everyone else's data across the chip. Decrements `bank_balance` in
/// place. If balance runs out, remaining demand is dropped (callers size
/// requests within the available balance).
///
/// # Panics
///
/// Panics if `allowed` is provided with the wrong length.
pub fn place_near(
    requests: &[PlaceRequest],
    bank_balance: &mut [f64],
    mesh: Mesh,
    allowed: Option<&[bool]>,
) -> Vec<(AppId, Vec<(BankId, f64)>)> {
    if let Some(a) = allowed {
        assert_eq!(a.len(), bank_balance.len(), "one allowed flag per bank");
    }
    let bank_cap: f64 = {
        // Per-round chunk: the largest single-bank balance at entry keeps
        // rounds meaningful even on partially-consumed machines.
        let max_b: f64 = bank_balance.iter().copied().fold(0.0, f64::max);
        max_b.max(1.0)
    };
    // Priority order, stable by app id for determinism.
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[b]
            .priority
            .partial_cmp(&requests[a].priority)
            .expect("priorities are finite")
            .then(requests[a].app.cmp(&requests[b].app))
    });
    let mut remaining: Vec<f64> = requests.iter().map(|r| r.bytes).collect();
    let mut placements: Vec<Vec<(BankId, f64)>> = vec![Vec::new(); requests.len()];
    // Distance orderings are per-core constants; computing them per round
    // was the dominant cost of placement on larger meshes.
    let by_distance: Vec<Vec<BankId>> = requests
        .iter()
        .map(|r| mesh.banks_by_distance(r.core).collect())
        .collect();
    loop {
        let mut progress = false;
        for &i in &order {
            if remaining[i] <= 0.0 {
                continue;
            }
            let mut round_budget = bank_cap.min(remaining[i]);
            for &bank in &by_distance[i] {
                if round_budget <= 0.0 {
                    break;
                }
                if let Some(a) = allowed {
                    if !a[bank.index()] {
                        continue;
                    }
                }
                let take = bank_balance[bank.index()].min(round_budget);
                if take > 0.0 {
                    bank_balance[bank.index()] -= take;
                    remaining[i] -= take;
                    round_budget -= take;
                    progress = true;
                    // Merge with an existing entry for the same bank.
                    match placements[i].iter_mut().find(|(b, _)| *b == bank) {
                        Some((_, bytes)) => *bytes += take,
                        None => placements[i].push((bank, take)),
                    }
                }
            }
        }
        if !progress {
            break;
        }
    }
    requests
        .iter()
        .zip(placements)
        .map(|(r, p)| (r.app, p))
        .collect()
}

/// Total placement cost: each app's traffic-weighted average distance,
/// `Σ_app priority × avg_hops(app)`.
pub fn placement_cost(
    requests: &[PlaceRequest],
    placements: &[(AppId, Vec<(BankId, f64)>)],
    mesh: Mesh,
) -> f64 {
    let by_app: HashMap<AppId, &PlaceRequest, Mix64Build> =
        requests.iter().map(|r| (r.app, r)).collect();
    placements
        .iter()
        .map(|(app, p)| {
            let r = by_app.get(app).expect("placement has a request");
            r.priority * mesh.weighted_distance(r.core, p.iter().copied())
        })
        .sum()
}

/// Iteratively improves a placement by swapping capacity between pairs of
/// applications across pairs of banks — the local-search refinement step
/// of Jigsaw's placement \[8\]. Per-bank totals and per-app totals are
/// invariant; only locality improves.
///
/// Returns the total cost reduction (in priority·hops units). Runs until a
/// full sweep finds no improving swap or `max_rounds` sweeps complete.
pub fn refine_placement(
    requests: &[PlaceRequest],
    placements: &mut [(AppId, Vec<(BankId, f64)>)],
    mesh: Mesh,
    max_rounds: usize,
) -> f64 {
    let by_app: HashMap<AppId, &PlaceRequest, Mix64Build> =
        requests.iter().map(|r| (r.app, r)).collect();
    // Each placement's app identity never changes during refinement, so
    // its priority and core are resolved once instead of once per pair
    // per sweep. A missing request contributes zero priority, matching
    // the old per-pair `unwrap_or(0.0)` weight (core is then unused: all
    // its weighted deltas vanish).
    let pinfo: Vec<(f64, CoreId)> = placements
        .iter()
        .map(|(app, _)| match by_app.get(app) {
            Some(r) => (r.priority, r.core),
            None => (0.0, CoreId(0)),
        })
        .collect();
    let weight = |prio: f64, total: f64| -> f64 {
        if total <= 0.0 {
            0.0
        } else {
            prio / total
        }
    };
    let mut saved = 0.0;
    for _ in 0..max_rounds {
        let mut improved = false;
        for i in 0..placements.len() {
            for j in (i + 1)..placements.len() {
                let (head, tail) = placements.split_at_mut(j);
                let (_, pa) = &mut head[i];
                let (_, pb) = &mut tail[0];
                let total_a: f64 = pa.iter().map(|(_, b)| b).sum();
                let total_b: f64 = pb.iter().map(|(_, b)| b).sum();
                let (wa, wb) = (weight(pinfo[i].0, total_a), weight(pinfo[j].0, total_b));
                let core_a = pinfo[i].1;
                let core_b = pinfo[j].1;
                // Best single swap between a's bank x and b's bank y.
                let mut best: Option<(usize, usize, f64, f64)> = None;
                for (xi, &(x, bytes_x)) in pa.iter().enumerate() {
                    for (yi, &(y, bytes_y)) in pb.iter().enumerate() {
                        if x == y || bytes_x <= 0.0 || bytes_y <= 0.0 {
                            continue;
                        }
                        let delta = bytes_x.min(bytes_y);
                        let da = (mesh.hops_core_to_bank(core_a, x) as f64
                            - mesh.hops_core_to_bank(core_a, y) as f64)
                            * wa;
                        let db = (mesh.hops_core_to_bank(core_b, y) as f64
                            - mesh.hops_core_to_bank(core_b, x) as f64)
                            * wb;
                        let gain = (da + db) * delta;
                        if gain > 1e-9 && best.map(|b| gain > b.2).unwrap_or(true) {
                            best = Some((xi, yi, gain, delta));
                        }
                    }
                }
                if let Some((xi, yi, gain, delta)) = best {
                    let (x, _) = pa[xi];
                    let (y, _) = pb[yi];
                    // a: move delta from x to y; b: move delta from y to x.
                    pa[xi].1 -= delta;
                    pb[yi].1 -= delta;
                    merge_into(pa, y, delta);
                    merge_into(pb, x, delta);
                    pa.retain(|(_, b)| *b > 1e-9);
                    pb.retain(|(_, b)| *b > 1e-9);
                    saved += gain;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    saved
}

fn merge_into(placement: &mut Vec<(BankId, f64)>, bank: BankId, bytes: f64) {
    match placement.iter_mut().find(|(b, _)| *b == bank) {
        Some((_, existing)) => *existing += bytes,
        None => placement.push((bank, bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    fn mesh() -> Mesh {
        Mesh::new(5, 4)
    }

    fn req(app: usize, core: usize, bytes: f64, prio: f64) -> PlaceRequest {
        PlaceRequest {
            app: AppId(app),
            core: CoreId(core),
            bytes,
            priority: prio,
        }
    }

    #[test]
    fn single_app_takes_local_bank_first() {
        let mut balance = vec![MB; 20];
        let out = place_near(&[req(0, 7, 1.5 * MB, 1.0)], &mut balance, mesh(), None);
        let (_, p) = &out[0];
        assert_eq!(p[0].0, BankId(7));
        assert_eq!(p[0].1, MB);
        let total: f64 = p.iter().map(|(_, b)| b).sum();
        assert!((total - 1.5 * MB).abs() < 1e-6);
    }

    #[test]
    fn round_robin_interleaves_demands() {
        // Two distant apps each want 2 MB; each should get its own local
        // bank rather than the first app taking both.
        let mut balance = vec![MB; 20];
        let out = place_near(
            &[req(0, 0, 2.0 * MB, 5.0), req(1, 19, 2.0 * MB, 1.0)],
            &mut balance,
            mesh(),
            None,
        );
        assert_eq!(out[0].1[0].0, BankId(0));
        assert_eq!(out[1].1[0].0, BankId(19));
    }

    #[test]
    fn priority_wins_contended_bank() {
        // Both apps on core 7; the high-priority one gets the local bank.
        let mut balance = vec![MB; 20];
        let out = place_near(
            &[req(0, 7, MB, 1.0), req(1, 7, MB, 9.0)],
            &mut balance,
            mesh(),
            None,
        );
        assert_eq!(out[1].1[0].0, BankId(7), "high priority gets bank 7");
        assert_ne!(out[0].1[0].0, BankId(7));
    }

    #[test]
    fn allowed_mask_restricts_banks() {
        let mut balance = vec![MB; 20];
        let mut allowed = vec![false; 20];
        allowed[18] = true;
        allowed[19] = true;
        let out = place_near(
            &[req(0, 0, 1.5 * MB, 1.0)],
            &mut balance,
            mesh(),
            Some(&allowed),
        );
        for (bank, _) in &out[0].1 {
            assert!(bank.index() >= 18);
        }
    }

    #[test]
    fn truncates_at_zero_balance() {
        let mut balance = vec![0.5 * MB; 20];
        let out = place_near(&[req(0, 0, 100.0 * MB, 1.0)], &mut balance, mesh(), None);
        let total: f64 = out[0].1.iter().map(|(_, b)| b).sum();
        assert!((total - 10.0 * MB).abs() < 1e-6, "all balance consumed");
        assert!(balance.iter().all(|&b| b.abs() < 1e-9));
    }

    #[test]
    fn refinement_fixes_a_deliberately_bad_placement() {
        // Two apps each placed in the *other's* local bank: one swap fixes
        // everything.
        let requests = [req(0, 0, MB, 5.0), req(1, 19, MB, 5.0)];
        let mut placements = vec![
            (AppId(0), vec![(BankId(19), MB)]),
            (AppId(1), vec![(BankId(0), MB)]),
        ];
        let before = placement_cost(&requests, &placements, mesh());
        let saved = refine_placement(&requests, &mut placements, mesh(), 8);
        let after = placement_cost(&requests, &placements, mesh());
        assert!(saved > 0.0);
        assert!((before - after - saved).abs() < 1e-6);
        assert_eq!(placements[0].1, vec![(BankId(0), MB)]);
        assert_eq!(placements[1].1, vec![(BankId(19), MB)]);
    }

    #[test]
    fn refinement_never_increases_cost_or_changes_totals() {
        let requests = [
            req(0, 0, 2.0 * MB, 9.0),
            req(1, 7, 1.5 * MB, 3.0),
            req(2, 19, 1.0 * MB, 6.0),
        ];
        let mut balance = vec![MB; 20];
        let mut placements = place_near(&requests, &mut balance, mesh(), None);
        let before = placement_cost(&requests, &placements, mesh());
        let totals_before: Vec<f64> = placements
            .iter()
            .map(|(_, p)| p.iter().map(|(_, b)| b).sum())
            .collect();
        refine_placement(&requests, &mut placements, mesh(), 8);
        let after = placement_cost(&requests, &placements, mesh());
        assert!(after <= before + 1e-9);
        // Per-app and per-bank capacity conservation.
        let totals_after: Vec<f64> = placements
            .iter()
            .map(|(_, p)| p.iter().map(|(_, b)| b).sum())
            .collect();
        for (b, a) in totals_before.iter().zip(&totals_after) {
            assert!((b - a).abs() < 1e-6);
        }
        let mut per_bank = [0.0f64; 20];
        for (_, p) in &placements {
            for &(bank, bytes) in p {
                per_bank[bank.index()] += bytes;
            }
        }
        assert!(per_bank.iter().all(|&b| b <= MB + 1e-6));
    }

    #[test]
    fn jigsaw_sizes_is_lookahead() {
        let a = MissCurve::new(1, vec![10.0, 1.0, 0.5]);
        let b = MissCurve::new(1, vec![10.0, 9.0, 8.9]);
        let sizes = jigsaw_sizes(&[a, b], 2);
        // Optimal split: 10 + (10-9) saved vs 10 + 0.5 for [2,0].
        assert_eq!(sizes, vec![1, 1]);
    }
}
