//! The experiment runner: 100 ms reconfiguration loop, controllers, LC
//! queues, and metric accumulation.

use crate::deadline::deadline_cycles;
use crate::energy::{energy_of, EnergyBreakdown, EnergyEvents};
use crate::metrics::{percentile_mut, vulnerability, weighted_speedup};
use crate::perf::{evaluate_into, AppPerf, EvalScratch, Profile};
use crate::queueing::{Completion, LcQueue};
use jumanji_core::{
    Allocation, AppModel, ControllerParams, DesignKind, FeedbackController, PlacementInput,
};
use jumanji_telemetry::{Event, Telemetry};
use nuca_cache::MissCurve;
use nuca_noc::MeshNoc;
use nuca_types::{AppId, CoreId, Seconds, SystemConfig, VmId};
use nuca_umon::Umon;
use nuca_vc::{PlacementDescriptor, Vtb};
use nuca_workloads::StreamGenerator;
use nuca_workloads::{quadrant_layout, serpentine_layout, LcLoad, WorkloadMix};
use std::sync::Arc;

/// A scheduled thread migration: at time `at`, the thread of `app` swaps
/// cores with whichever application currently occupies `to_core`.
///
/// The paper's runtime "migrates their LLC allocations along with the
/// threads" (Sec. IV-B): because every design re-places data relative to
/// current core positions at each reconfiguration, the allocation follows
/// automatically — at the coherence cost of moving the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    /// When the migration happens.
    pub at: Seconds,
    /// The application whose thread moves.
    pub app: AppId,
    /// Destination core (its current occupant moves to `app`'s old core).
    pub to_core: CoreId,
}

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Machine configuration (Table II by default).
    pub cfg: SystemConfig,
    /// Simulated wall-clock duration.
    pub duration: Seconds,
    /// Reconfiguration interval (100 ms in the paper).
    pub reconfig: Seconds,
    /// RNG seed for arrival streams.
    pub seed: u64,
    /// Feedback-controller parameters (`None` = paper defaults).
    pub controller: Option<ControllerParams>,
    /// Scheduled thread migrations (applied at reconfiguration
    /// boundaries).
    pub migrations: Vec<Migration>,
    /// Profile miss curves with sampled hardware UMONs driven by synthetic
    /// address streams, instead of handing the placement algorithms the
    /// exact profile curves. Models the full Sec. IV-A feedback loop,
    /// including estimation noise and warm-up.
    pub umon_profiling: bool,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            cfg: SystemConfig::micro2020(),
            duration: Seconds(4.0),
            reconfig: Seconds::from_millis(100.0),
            seed: 1,
            controller: None,
            migrations: Vec::new(),
            umon_profiling: false,
        }
    }
}

/// One simulated application: identity plus behavioural profile.
#[derive(Debug, Clone)]
pub struct SimApp {
    /// Application id (index into every per-app vector).
    pub id: AppId,
    /// Trust domain.
    pub vm: VmId,
    /// Pinned core.
    pub core: CoreId,
    /// Behavioural profile.
    pub profile: Profile,
}

/// Per-interval record for timeline figures (Fig. 4).
#[derive(Debug, Clone)]
pub struct IntervalRecord {
    /// Interval end time in milliseconds.
    pub t_ms: f64,
    /// Mean end-to-end latency (ms) of requests completing this interval,
    /// per LC app (`None` when no request completed).
    pub lc_mean_latency_ms: Vec<Option<f64>>,
    /// LLC bytes allocated to each LC app this interval.
    pub lc_alloc_bytes: Vec<f64>,
    /// Access-weighted vulnerability this interval.
    pub vulnerability: f64,
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The design that ran.
    pub design: DesignKind,
    /// LC app names, in app order.
    pub lc_names: Vec<&'static str>,
    /// 95th-percentile end-to-end latency per LC app, in ms.
    pub lc_tail_latency_ms: Vec<f64>,
    /// Deadline per LC app, in ms.
    pub lc_deadline_ms: Vec<f64>,
    /// Batch app names, in app order.
    pub batch_names: Vec<&'static str>,
    /// Instructions completed per batch app (fixed-time work).
    pub batch_work: Vec<f64>,
    /// Mean access-weighted vulnerability (potential attackers/access).
    pub vulnerability: f64,
    /// Total data-movement energy.
    pub energy: EnergyBreakdown,
    /// Total instructions executed across all applications (the work the
    /// energy paid for; divide energy by this to compare designs at fixed
    /// work, as the paper's fixed-work methodology does).
    pub total_instructions: f64,
    /// Total lines refetched because reconfigurations moved them between
    /// banks (the background-invalidation coherence cost, Sec. IV-A).
    pub coherence_refetches: f64,
    /// Per-interval timeline.
    pub timeline: Vec<IntervalRecord>,
}

impl ExperimentResult {
    /// Tail latency normalized to the deadline, per LC app
    /// (> 1 = deadline violated).
    pub fn norm_tails(&self) -> Vec<f64> {
        self.lc_tail_latency_ms
            .iter()
            .zip(&self.lc_deadline_ms)
            .map(|(t, d)| t / d)
            .collect()
    }

    /// Worst normalized tail across LC apps.
    pub fn max_norm_tail(&self) -> f64 {
        self.norm_tails().into_iter().fold(0.0, f64::max)
    }

    /// Data-movement energy per instruction, in joules — the fixed-work
    /// energy metric of Fig. 15.
    pub fn energy_per_instruction(&self) -> EnergyBreakdown {
        let w = self.total_instructions.max(1.0);
        EnergyBreakdown {
            l1: self.energy.l1 / w,
            l2: self.energy.l2 / w,
            llc: self.energy.llc / w,
            noc: self.energy.noc / w,
            mem: self.energy.mem / w,
        }
    }

    /// Batch weighted speedup relative to a baseline run of the same
    /// experiment (usually Static).
    ///
    /// # Panics
    ///
    /// Panics if the baseline ran a different workload.
    pub fn weighted_speedup_vs(&self, baseline: &ExperimentResult) -> f64 {
        assert_eq!(self.batch_names, baseline.batch_names, "same workload");
        weighted_speedup(&self.batch_work, &baseline.batch_work)
    }
}

/// A configured experiment: one workload mix at one load level.
///
/// Construction precomputes everything [`Experiment::run`] needs that does
/// not depend on the design under test — the per-app profiles, the
/// noise-free DRRIP hulls handed to the allocators, and the initial
/// access-rate guesses — so the five designs of a figure cell share one
/// profile computation instead of redoing it per run.
#[derive(Debug, Clone)]
pub struct Experiment {
    opts: SimOptions,
    apps: Vec<SimApp>,
    /// Load level the LC apps run at (also baked into their profiles).
    pub load: LcLoad,
    deadlines: Vec<f64>,
    /// Shared config handle for building `PlacementInput`s without copies.
    cfg: Arc<SystemConfig>,
    /// Per-app profiles in app order.
    profiles: Vec<Profile>,
    /// Convex (DRRIP-hull) miss-ratio curves, sampled once per experiment.
    /// These are what ideal (noise-free) UMONs would report.
    exact_hulls: Vec<Arc<MissCurve>>,
    /// Profile-based initial access-rate guesses.
    init_rates: Vec<f64>,
}

impl Experiment {
    /// Lays out `mix` on the machine and derives deadlines.
    ///
    /// Four five-app VMs use the paper's quadrant layout (LC on chip
    /// corners); other shapes use a serpentine layout.
    ///
    /// # Panics
    ///
    /// Panics if the mix's apps don't equal the core count.
    pub fn new(mix: WorkloadMix, load: LcLoad, opts: SimOptions) -> Experiment {
        let mesh = opts.cfg.mesh();
        assert_eq!(
            mix.num_apps(),
            opts.cfg.num_cores,
            "workload must fill the machine"
        );
        let placements = if mix.vms.len() == 4
            && mix.vms.iter().all(|v| v.num_apps() == 5)
            && mesh.cols() == 5
            && mesh.rows() == 4
        {
            quadrant_layout(mesh)
        } else {
            let sizes: Vec<usize> = mix.vms.iter().map(|v| v.num_apps()).collect();
            serpentine_layout(mesh, &sizes)
        };
        let mut apps = Vec::with_capacity(mix.num_apps());
        let mut deadlines = Vec::new();
        for (vm_idx, (vm, place)) in mix.vms.iter().zip(&placements).enumerate() {
            let mut cores = place.cores.iter();
            for lc in &vm.lc {
                let core = *cores.next().expect("layout covers the VM");
                deadlines.push(deadline_cycles(lc, &opts.cfg));
                apps.push(SimApp {
                    id: AppId(apps.len()),
                    vm: VmId(vm_idx),
                    core,
                    profile: Profile::Lc(lc.clone(), load),
                });
            }
            for b in &vm.batch {
                let core = *cores.next().expect("layout covers the VM");
                apps.push(SimApp {
                    id: AppId(apps.len()),
                    vm: VmId(vm_idx),
                    core,
                    profile: Profile::Batch(b.clone()),
                });
            }
        }
        let profiles: Vec<Profile> = apps.iter().map(|a| a.profile.clone()).collect();
        let unit = opts.cfg.llc.way_bytes();
        let units = opts.cfg.llc.total_ways() as usize;
        let exact_hulls: Vec<Arc<MissCurve>> = profiles
            .iter()
            .map(|p| exact_ratio_hull(p, unit, units))
            .collect();
        let init_rates: Vec<f64> = profiles
            .iter()
            .map(|p| match p {
                Profile::Batch(b) => 1.5e9 * b.llc_apki / 1000.0,
                Profile::Lc(l, load) => l.qps(*load) * l.accesses_per_req,
            })
            .collect();
        let cfg = Arc::new(opts.cfg.clone());
        Experiment {
            opts,
            apps,
            load,
            deadlines,
            cfg,
            profiles,
            exact_hulls,
            init_rates,
        }
    }

    /// The simulated applications.
    pub fn apps(&self) -> &[SimApp] {
        &self.apps
    }

    /// Deadlines in cycles, one per LC app in app order.
    pub fn deadlines_cycles(&self) -> &[f64] {
        &self.deadlines
    }

    /// Runs the experiment under `design`, emitting telemetry into `tel`.
    ///
    /// Untraced callers pass [`&NoopSink`](jumanji_telemetry::NoopSink): `enabled()`
    /// constant-folds to `false` and every telemetry branch is dead code,
    /// so that monomorphization compiles to exactly the untraced hot loop.
    ///
    /// Emission never feeds back into the simulation: a traced run
    /// produces a bit-identical [`ExperimentResult`] to an untraced one.
    /// Per interval the sink sees one [`Event::Controller`] per LC app and
    /// one [`Event::Allocation`] for the design's placement decision
    /// (including whether the interval hit the allocator memo); the run
    /// closes with an [`Event::RunSummary`].
    pub fn run<T: Telemetry + ?Sized>(&self, design: DesignKind, tel: &T) -> ExperimentResult {
        let tracing = tel.enabled();
        let cfg = &self.opts.cfg;
        let freq = cfg.freq_hz;
        let noc = MeshNoc::new(cfg);
        let n = self.apps.len();
        let profiles = &self.profiles;
        let mut cores: Vec<CoreId> = self.apps.iter().map(|a| a.core).collect();
        let unit = cfg.llc.way_bytes();
        let units = cfg.llc.total_ways() as usize;

        // Optional sampled UMONs: 32-way monitors modeling the full 20 MB
        // LLC, fed by each app's synthetic address stream. Accumulated
        // across intervals (warm-up converges like real hardware). Only
        // built when the Sec. IV-A feedback loop is actually modeled; the
        // default path hands the allocators the precomputed exact hulls.
        let modeled_sets =
            (cfg.llc.total_bytes() / (cfg.llc.line_bytes * cfg.llc.ways as u64)) as usize;
        let mut umons: Vec<Umon> = if self.opts.umon_profiling {
            (0..n)
                .map(|_| {
                    Umon::new(
                        cfg.llc.ways as usize,
                        (modeled_sets / 20).max(1),
                        modeled_sets,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut umon_streams: Vec<StreamGenerator> = if self.opts.umon_profiling {
            profiles
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let shape = match p {
                        Profile::Batch(b) => &b.shape,
                        Profile::Lc(l, _) => &l.shape,
                    };
                    StreamGenerator::from_shape(
                        shape,
                        cfg.llc.line_bytes,
                        i,
                        self.opts.seed ^ 0xB00,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        /// Samples fed to each UMON per interval when profiling is on.
        const UMON_FEED: usize = 20_000;
        /// Fraction of evicted lines that are dirty and must be written
        /// back (rule-of-thumb; the detailed simulator measures it).
        const WRITEBACK_FRACTION: f64 = 0.30;
        /// Minimum sampled accesses before trusting a UMON curve.
        const UMON_WARM: u64 = 400;

        // Controllers and queues for LC apps.
        let params = self
            .opts
            .controller
            .unwrap_or_else(|| ControllerParams::micro2020(cfg.llc.total_bytes() as f64));
        let mut controllers: Vec<Option<FeedbackController>> = Vec::with_capacity(n);
        let mut queues: Vec<Option<LcQueue>> = Vec::with_capacity(n);
        let mut lc_idx = 0;
        for app in &self.apps {
            match &app.profile {
                Profile::Lc(p, load) => {
                    controllers.push(Some(FeedbackController::new(
                        params,
                        self.deadlines[lc_idx],
                        params.panic_bytes,
                    )));
                    queues.push(Some(LcQueue::new(
                        p.interarrival_cycles(*load, freq),
                        self.opts.seed ^ (0x9E37 + app.id.index() as u64 * 0x85EB_CA6B),
                    )));
                    lc_idx += 1;
                }
                Profile::Batch(_) => {
                    controllers.push(None);
                    queues.push(None);
                }
            }
        }

        // Initial access-rate guesses.
        let mut rates: Vec<f64> = self.init_rates.clone();

        let dt = self.opts.reconfig.as_f64();
        let dt_cycles = self.opts.reconfig.to_cycles(freq).as_u64();
        let n_intervals = (self.opts.duration.as_f64() / dt).round() as usize;

        let mut batch_work = vec![0.0f64; n];
        // Preallocated latency reservoirs: an LC app at `qps` completes
        // about qps x duration requests, so sizing the buffers up front
        // (with 10 % Poisson headroom) keeps the hot loop free of growth
        // reallocations.
        let mut lc_latencies: Vec<Vec<f64>> = self
            .apps
            .iter()
            .map(|a| match &a.profile {
                Profile::Lc(p, load) => Vec::with_capacity(
                    (p.qps(*load) * self.opts.duration.as_f64() * 1.1) as usize + 16,
                ),
                Profile::Batch(_) => Vec::new(),
            })
            .collect();
        let mut energy = EnergyBreakdown::default();
        let mut total_instructions = 0.0f64;
        // Virtual-cache translation state: reconfigurations rewrite each
        // app's placement descriptor; lines whose descriptor entry moved
        // are invalidated in the background and refetched on demand
        // (Sec. IV-A "Coherence").
        let mut vtb = Vtb::new();
        let mut coherence_misses = vec![0.0f64; n];
        let mut coherence_total = 0.0f64;
        let mut vul_acc = 0.0;
        let mut timeline = Vec::with_capacity(n_intervals);
        let mut now: u64 = 0;
        // Model scratch shared across intervals (geometry never changes).
        let mut scratch = EvalScratch::new();

        // The persistent placement input: identity fields are fixed for
        // the whole run; each interval rewrites cores, curves, rates, and
        // LC sizes in place, so the hot loop builds its input with zero
        // allocations and zero config copies.
        let mut input = PlacementInput {
            cfg: Arc::clone(&self.cfg),
            apps: self
                .apps
                .iter()
                .map(|a| AppModel {
                    id: a.id,
                    vm: a.vm,
                    core: a.core,
                    kind: a.profile.kind(),
                    curve: MissCurve::new(unit, vec![0.0]),
                    access_rate: 0.0,
                })
                .collect(),
            lc_sizes: vec![0.0; n],
        };
        // Allocator memoization: an interval whose inputs (core map, LC
        // sizes, entering access rates) are bit-identical to the previous
        // one is a fixed point of the whole allocate -> evaluate ->
        // descriptor-install pipeline, so the previous outputs are reused
        // verbatim. Sampled-UMON profiling feeds the monitors every
        // interval — its curves keep moving — so memoization is disabled.
        let memo_enabled = !self.opts.umon_profiling;
        let mut memo_valid = false;
        let mut prev_cores: Vec<CoreId> = Vec::new();
        let mut prev_lc: Vec<f64> = Vec::new();
        let mut prev_rates: Vec<f64> = Vec::new();
        let mut alloc_slot: Option<Allocation> = None;
        let mut perf: Vec<AppPerf> = Vec::new();
        let mut vul_cached = 0.0;
        // Per-app bank-to-controller hop averages; pure function of the
        // allocation, refreshed only when the allocation changes.
        let mut mem_hops = vec![0.0f64; n];
        let mut completions: Vec<Completion> = Vec::new();
        // Tracing-only state; untouched (and dead-code-eliminated) when the
        // sink is disabled.
        let mut memo_hits = 0u64;
        let mut memo_misses = 0u64;
        let mut tail_scratch: Vec<f64> = Vec::new();

        for interval in 0..n_intervals {
            // 0. Apply any thread migrations scheduled before this
            // reconfiguration: swap cores with the destination's occupant.
            let t_now = interval as f64 * dt;
            for m in &self.opts.migrations {
                if m.at.as_f64() >= t_now && m.at.as_f64() < t_now + dt {
                    let from = cores[m.app.index()];
                    if let Some(other) = cores.iter().position(|&c| c == m.to_core) {
                        cores[other] = from;
                    }
                    cores[m.app.index()] = m.to_core;
                }
            }
            // 1. Controller-assigned LC sizes, written straight into the
            // persistent input (the reconfiguration deploys them,
            // re-arming each controller).
            input.lc_sizes.clear();
            input.lc_sizes.extend(controllers.iter_mut().map(|c| {
                c.as_mut()
                    .map(|c| {
                        c.mark_deployed();
                        c.size_bytes()
                    })
                    .unwrap_or(0.0)
            }));
            // 2. Placement input with UMON-reported absolute miss curves.
            if self.opts.umon_profiling {
                for i in 0..n {
                    for _ in 0..UMON_FEED {
                        let line = umon_streams[i].next_line();
                        umons[i].observe(line);
                    }
                }
            }
            let unchanged = memo_valid
                && prev_cores == cores
                && bits_eq(&prev_lc, &input.lc_sizes)
                && bits_eq(&prev_rates, &rates);
            if !unchanged {
                // Rewrite the per-app model fields in place; curve scaling
                // reuses each model's point buffer.
                for (a, m) in self.apps.iter().zip(input.apps.iter_mut()) {
                    let i = a.id.index();
                    m.core = cores[i];
                    m.access_rate = rates[i];
                    let rate = rates[i].max(1.0);
                    if self.opts.umon_profiling && umons[i].sampled() >= UMON_WARM {
                        // Resample the sampled-monitor curve onto the
                        // way-granular grid the allocators use.
                        let est = umons[i].drrip_curve();
                        let observed = umons[i].observed().max(1) as f64;
                        let pts: Vec<f64> = (0..=units)
                            .map(|u| est.eval_bytes(u as u64 * unit) / observed)
                            .collect();
                        m.curve = MissCurve::new(unit, pts).convex_hull().scaled(rate);
                    } else {
                        m.curve.clone_scaled_from(&self.exact_hulls[i], rate);
                    }
                }
                prev_cores.clone_from(&cores);
                prev_lc.clone_from(&input.lc_sizes);
                prev_rates.clone_from(&rates);
                let alloc = design.allocate(&input);
                debug_assert!(alloc.validate(cfg).is_ok());
                // 3. Analytic performance model.
                evaluate_into(
                    cfg,
                    profiles,
                    &cores,
                    &alloc,
                    &rates,
                    &mut scratch,
                    &mut perf,
                );
                alloc_slot = Some(alloc);
                memo_valid = memo_enabled;
            }
            let alloc = alloc_slot.as_ref().expect("first interval allocates");
            for i in 0..n {
                rates[i] = perf[i].access_rate;
            }
            // 3b. Coherence cost of the reconfiguration: install the new
            // placement descriptors and charge refetches for moved lines.
            if unchanged {
                // Identical allocation: every descriptor matches what is
                // already installed, so nothing moves and nothing needs
                // reinstalling.
                coherence_misses.fill(0.0);
            } else {
                for i in 0..n {
                    coherence_misses[i] = 0.0;
                    let placement = alloc.placement_of(AppId(i));
                    let total: f64 = placement.iter().map(|(_, b)| b).sum();
                    if total <= 0.0 {
                        continue;
                    }
                    let desc = PlacementDescriptor::from_shares(placement);
                    let moved = vtb.install(AppId(i), desc);
                    if moved > 0.0 && interval > 0 {
                        let resident_lines = perf[i].capacity_bytes / cfg.llc.line_bytes as f64;
                        coherence_misses[i] = moved * resident_lines;
                        coherence_total += coherence_misses[i];
                    }
                }
                for (i, hops) in mem_hops.iter_mut().enumerate() {
                    let placement = alloc.placement_of(AppId(i));
                    let total: f64 = placement.iter().map(|(_, b)| b).sum();
                    *hops = if total > 0.0 {
                        placement
                            .iter()
                            .map(|&(b, bytes)| {
                                noc.mem_hops(cfg.mesh().bank_tile(b)) as f64 * bytes / total
                            })
                            .sum()
                    } else {
                        2.0
                    };
                }
                // Vulnerability depends on the input, allocation, and the
                // post-update rates — all covered by the memo key.
                vul_cached = vulnerability(&input, alloc, &rates);
            }
            if tracing {
                if unchanged {
                    memo_hits += 1;
                } else {
                    memo_misses += 1;
                }
                tel.emit(&Event::Allocation {
                    interval: interval as u64,
                    design: design.name(),
                    memo_hit: unchanged,
                    lc_bytes: input.lc_sizes.clone(),
                    capacity_bytes: perf.iter().map(|p| p.capacity_bytes).collect(),
                    coherence_lines: coherence_misses.iter().sum(),
                    vulnerability: vul_cached,
                });
            }
            // 4. LC queues and controllers.
            let until = now + dt_cycles;
            let mut interval_means: Vec<Option<f64>> = Vec::new();
            let mut interval_allocs: Vec<f64> = Vec::new();
            let mut lc_i = 0usize;
            for i in 0..n {
                if let Some(q) = &mut queues[i] {
                    q.advance_into(until, perf[i].service_cycles, &mut completions);
                    let ctrl = controllers[i].as_mut().expect("LC apps have controllers");
                    let mut sum = 0.0;
                    for c in &completions {
                        let lat = c.latency as f64;
                        ctrl.on_request_complete(lat);
                        lc_latencies[i].push(lat / freq * 1e3); // ms
                        sum += lat;
                    }
                    interval_means.push(if completions.is_empty() {
                        None
                    } else {
                        Some(sum / completions.len() as f64 / freq * 1e3)
                    });
                    interval_allocs.push(perf[i].capacity_bytes);
                    if tracing {
                        let deadline = self.deadlines[lc_i];
                        tail_scratch.clear();
                        let mut violations = 0u64;
                        for c in &completions {
                            let lat = c.latency as f64;
                            tail_scratch.push(lat / freq * 1e3);
                            if lat > deadline {
                                violations += 1;
                            }
                        }
                        let tail_ms = if tail_scratch.is_empty() {
                            None
                        } else {
                            Some(percentile_mut(&mut tail_scratch, 0.95))
                        };
                        let name = match &profiles[i] {
                            Profile::Lc(p, _) => p.name,
                            Profile::Batch(_) => unreachable!("queues exist only for LC apps"),
                        };
                        let deadline_ms = deadline / freq * 1e3;
                        tel.emit(&Event::Controller {
                            interval: interval as u64,
                            t_ms: (interval + 1) as f64 * dt * 1e3,
                            app: i,
                            name,
                            alloc_bytes: perf[i].capacity_bytes,
                            tail_ms,
                            target_low_ms: params.target_low * deadline_ms,
                            target_high_ms: params.target_high * deadline_ms,
                            deadline_ms,
                            completions: completions.len() as u64,
                            violations,
                            panics: ctrl.panics(),
                        });
                    }
                    lc_i += 1;
                }
            }
            // 5. Batch progress, energy, vulnerability.
            let vul = vul_cached;
            vul_acc += vul;
            for i in 0..n {
                let p = &perf[i];
                // Refetching moved lines stalls the core; convert the
                // stall cycles into lost instructions for batch apps.
                let coherence_stall = coherence_misses[i] * p.miss_penalty;
                let (instrs, accesses) = match &profiles[i] {
                    Profile::Batch(_) => {
                        let lost = (coherence_stall * p.ips / freq).min(p.ips * dt * 0.5);
                        batch_work[i] += p.ips * dt - lost;
                        (p.ips * dt - lost, p.access_rate * dt)
                    }
                    Profile::Lc(l, _) => {
                        // Work executed tracks served requests.
                        let served = p.access_rate / l.accesses_per_req;
                        (served * l.work_cycles * dt, p.access_rate * dt)
                    }
                };
                total_instructions += instrs;
                energy += energy_of(
                    cfg,
                    &EnergyEvents {
                        instructions: instrs,
                        llc_accesses: accesses + coherence_misses[i],
                        llc_misses: accesses * p.miss_ratio + coherence_misses[i],
                        avg_hops: p.avg_hops,
                        mem_hops: mem_hops[i],
                        // Roughly a third of evicted lines are dirty
                        // (store-heavy phases write back more; this is the
                        // usual rule-of-thumb dirty fraction).
                        writebacks: accesses * p.miss_ratio * WRITEBACK_FRACTION,
                    },
                );
            }
            timeline.push(IntervalRecord {
                t_ms: (interval + 1) as f64 * dt * 1e3,
                lc_mean_latency_ms: interval_means,
                lc_alloc_bytes: interval_allocs,
                vulnerability: vul,
            });
            now = until;
        }

        // Aggregate results.
        let mut lc_names = Vec::new();
        let mut lc_tails = Vec::new();
        let mut lc_deads = Vec::new();
        let mut batch_names = Vec::new();
        let mut batch_out = Vec::new();
        let mut lc_idx = 0;
        for (i, app) in self.apps.iter().enumerate() {
            match &app.profile {
                Profile::Lc(p, _) => {
                    lc_names.push(p.name);
                    let tail = if lc_latencies[i].is_empty() {
                        f64::INFINITY
                    } else {
                        percentile_mut(&mut lc_latencies[i], 0.95)
                    };
                    lc_tails.push(tail);
                    lc_deads.push(self.deadlines[lc_idx] / freq * 1e3);
                    lc_idx += 1;
                }
                Profile::Batch(b) => {
                    batch_names.push(b.name);
                    batch_out.push(batch_work[i]);
                }
            }
        }
        if tracing {
            tel.emit(&Event::RunSummary {
                design: design.name(),
                intervals: n_intervals as u64,
                memo_hits,
                memo_misses,
            });
        }
        ExperimentResult {
            design,
            lc_names,
            lc_tail_latency_ms: lc_tails,
            lc_deadline_ms: lc_deads,
            batch_names,
            batch_work: batch_out,
            vulnerability: vul_acc / n_intervals as f64,
            energy,
            total_instructions,
            coherence_refetches: coherence_total,
            timeline,
        }
    }
}

/// Bitwise equality of two `f64` slices. The memo-key comparison must be
/// exact: it distinguishes `0.0` from `-0.0` and treats identical NaNs as
/// equal, because reusing outputs is only sound when the inputs are the
/// same down to the last bit.
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The process-wide ratio-hull memo, shared by every worker thread.
///
/// Replaces the old per-thread `thread_local!` memo: with N workers that
/// design computed each hull up to N times and duplicated the storage N
/// ways. Keyed by the content fingerprint of the full input (profile debug
/// form + way grid), so a hull is computed exactly once per process.
static RATIO_HULLS: std::sync::LazyLock<nuca_types::ShardedMap<u128, Arc<MissCurve>>> =
    std::sync::LazyLock::new(nuca_types::ShardedMap::new);

/// The noise-free DRRIP hull of `p`'s miss-ratio curve on the way grid.
///
/// Sampling the analytic curve at every way and hulling it costs ~50 µs per
/// app, and every experiment needs it for the same handful of profiles, so
/// the result is memoized process-wide (see [`RATIO_HULLS`]) and shared by
/// `Arc` — the interval loop scales it into a reusable buffer instead of
/// cloning it. Bit-identical to [`compute_ratio_hull`] by construction: the
/// memo stores the uncached function's output, keyed by the full input.
pub fn exact_ratio_hull(p: &Profile, unit: u64, units: usize) -> Arc<MissCurve> {
    let key = nuca_types::hash::fingerprint128(format!("{p:?}|{unit}|{units}").as_bytes());
    RATIO_HULLS.get_or_compute(key, || Arc::new(compute_ratio_hull(p, unit, units)))
}

/// The uncached reference computation behind [`exact_ratio_hull`]: sample
/// the analytic miss-ratio curve at every allocation unit and take the
/// convex hull. Exposed so regression tests can prove the memoized path is
/// bit-identical to recomputation.
pub fn compute_ratio_hull(p: &Profile, unit: u64, units: usize) -> MissCurve {
    let pts: Vec<f64> = (0..=units)
        .map(|u| p.miss_ratio((u as u64 * unit) as f64))
        .collect();
    MissCurve::new(unit, pts).convex_hull()
}

/// Hit/miss/entry counters of the process-wide ratio-hull memo.
pub fn ratio_hull_cache_stats() -> nuca_types::MapStats {
    RATIO_HULLS.stats()
}

/// Every completed entry of the ratio-hull memo, for persisting it to a
/// disk-backed store. Keys are the same content fingerprints
/// [`exact_ratio_hull`] computes from its inputs.
pub fn export_ratio_hulls() -> Vec<(u128, Arc<MissCurve>)> {
    RATIO_HULLS.snapshot()
}

/// Warm-starts the ratio-hull memo with an entry loaded from a
/// persistent store. Never clobbers a hull this process already
/// computed, and counts neither a hit nor a miss.
pub fn seed_ratio_hull(key: u128, hull: Arc<MissCurve>) {
    RATIO_HULLS.seed(key, hull);
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji_telemetry::NoopSink;
    use nuca_types::Seconds;
    use nuca_workloads::case_study_mix;

    fn quick_opts() -> SimOptions {
        SimOptions {
            duration: Seconds(1.5),
            ..SimOptions::default()
        }
    }

    #[test]
    fn case_study_jumanji_meets_deadlines() {
        let exp = Experiment::new(case_study_mix(1), LcLoad::High, quick_opts());
        let r = exp.run(DesignKind::Jumanji, &NoopSink);
        // The controller's target band rides just below the deadline, and
        // the paper itself reports "rare exceptions"; transient spikes can
        // push the whole-run p95 slightly past 1.0 in a short run.
        assert!(
            r.max_norm_tail() < 1.3,
            "jumanji norm tails: {:?}",
            r.norm_tails()
        );
        assert_eq!(r.vulnerability, 0.0);
    }

    #[test]
    fn case_study_jigsaw_violates_deadlines() {
        // Mix 4 draws cache-hungry batch co-runners, where Jigsaw's
        // tail-blind placement starves the LC apps outright; milder mixes
        // still violate, but less spectacularly.
        let exp = Experiment::new(case_study_mix(4), LcLoad::High, quick_opts());
        let r = exp.run(DesignKind::Jigsaw, &NoopSink);
        assert!(
            r.max_norm_tail() > 2.0,
            "jigsaw norm tails: {:?}",
            r.norm_tails()
        );
    }

    #[test]
    fn jumanji_beats_snuca_batch_throughput() {
        let exp = Experiment::new(case_study_mix(1), LcLoad::High, quick_opts());
        let stat = exp.run(DesignKind::Static, &NoopSink);
        let adaptive = exp.run(DesignKind::Adaptive, &NoopSink);
        let jumanji = exp.run(DesignKind::Jumanji, &NoopSink);
        let ws_adaptive = adaptive.weighted_speedup_vs(&stat);
        let ws_jumanji = jumanji.weighted_speedup_vs(&stat);
        assert!(
            ws_jumanji > ws_adaptive,
            "jumanji {ws_jumanji:.3} vs adaptive {ws_adaptive:.3}"
        );
        assert!(ws_jumanji > 1.02, "jumanji speedup {ws_jumanji:.3}");
    }

    #[test]
    fn determinism() {
        let exp = Experiment::new(case_study_mix(3), LcLoad::Low, quick_opts());
        let a = exp.run(DesignKind::Adaptive, &NoopSink);
        let b = exp.run(DesignKind::Adaptive, &NoopSink);
        assert_eq!(a.lc_tail_latency_ms, b.lc_tail_latency_ms);
        assert_eq!(a.batch_work, b.batch_work);
    }

    #[test]
    fn umon_profiling_reproduces_exact_profile_results() {
        // The full hardware feedback loop (sampled UMONs -> curves ->
        // placement) should land close to the ideal-curve results.
        let exact = Experiment::new(case_study_mix(4), LcLoad::High, quick_opts())
            .run(DesignKind::Jumanji, &NoopSink);
        let mut opts = quick_opts();
        opts.umon_profiling = true;
        let exp = Experiment::new(case_study_mix(4), LcLoad::High, opts);
        let stat = exp.run(DesignKind::Static, &NoopSink);
        let umon = exp.run(DesignKind::Jumanji, &NoopSink);
        assert_eq!(umon.vulnerability, 0.0, "isolation unaffected by profiling");
        assert!(
            umon.max_norm_tail() < 1.6,
            "umon-profiled tails: {:?}",
            umon.norm_tails()
        );
        let speedup = umon.weighted_speedup_vs(&stat);
        assert!(
            speedup > 1.03,
            "umon-profiled speedup {speedup} should stay clearly positive"
        );
        let _ = exact;
    }

    #[test]
    fn migrated_threads_keep_their_allocations_close() {
        // Migrate VM0's xapian from the NW corner to the SE region at
        // t = 0.5 s; the next reconfigurations must re-place its data near
        // the new core (the paper's allocation-follows-thread behaviour).
        let mut opts = quick_opts();
        opts.migrations = vec![Migration {
            at: Seconds(0.5),
            app: AppId(0),
            to_core: CoreId(13),
        }];
        let exp = Experiment::new(case_study_mix(1), LcLoad::High, opts);
        let r = exp.run(DesignKind::Jumanji, &NoopSink);
        // The run completes with deadlines still (roughly) met and
        // isolation intact despite the migration.
        assert_eq!(r.vulnerability, 0.0);
        assert!(r.max_norm_tail() < 2.0, "{:?}", r.norm_tails());
        // Migration forces data movement: the coherence refetch total must
        // exceed a migration-free run's.
        let base = Experiment::new(case_study_mix(1), LcLoad::High, quick_opts())
            .run(DesignKind::Jumanji, &NoopSink);
        assert!(
            r.coherence_refetches > base.coherence_refetches,
            "migration {} vs baseline {}",
            r.coherence_refetches,
            base.coherence_refetches
        );
    }

    #[test]
    fn reconfigurations_pay_coherence_costs() {
        // The controller resizes LC allocations across intervals, so some
        // descriptor entries move and their lines must be refetched.
        let exp = Experiment::new(case_study_mix(2), LcLoad::High, quick_opts());
        let r = exp.run(DesignKind::Jumanji, &NoopSink);
        assert!(r.coherence_refetches.is_finite());
        assert!(
            r.coherence_refetches > 0.0,
            "controller-driven reconfigurations must move some lines"
        );
        // Refetches are bounded by a few LLC's worth per interval.
        let bound = 15.0 * 20.0 * 1048576.0 / 64.0 * r.timeline.len() as f64;
        assert!(r.coherence_refetches < bound);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_every_interval() {
        use jumanji_telemetry::RecordingSink;
        let exp = Experiment::new(case_study_mix(1), LcLoad::High, quick_opts());
        let plain = exp.run(DesignKind::Jumanji, &NoopSink);
        let sink = RecordingSink::new();
        let traced = exp.run(DesignKind::Jumanji, &sink);

        // Tracing must not perturb the simulation.
        assert_eq!(plain.lc_tail_latency_ms, traced.lc_tail_latency_ms);
        assert_eq!(plain.batch_work, traced.batch_work);
        assert_eq!(plain.vulnerability, traced.vulnerability);

        let events = sink.events();
        let intervals = traced.timeline.len();
        let lc_apps = traced.lc_names.len();

        // One Controller event per LC app per interval, consistent with
        // the timeline's per-interval allocations.
        let ctrl: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::Controller { .. }))
            .collect();
        assert_eq!(ctrl.len(), intervals * lc_apps);
        for e in &ctrl {
            if let Event::Controller {
                interval,
                alloc_bytes,
                deadline_ms,
                target_low_ms,
                target_high_ms,
                completions,
                violations,
                ..
            } = e
            {
                let rec = &traced.timeline[*interval as usize];
                assert!(
                    rec.lc_alloc_bytes.contains(alloc_bytes),
                    "controller alloc {alloc_bytes} not in timeline {:?}",
                    rec.lc_alloc_bytes
                );
                assert!(target_low_ms < target_high_ms);
                assert!(target_high_ms < deadline_ms);
                assert!(violations <= completions);
            }
        }

        // One Allocation event per interval; memo counters consistent.
        let allocs: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::Allocation { .. }))
            .collect();
        assert_eq!(allocs.len(), intervals);
        let hits = allocs
            .iter()
            .filter(|e| matches!(e, Event::Allocation { memo_hit: true, .. }))
            .count();
        let summary = events.last().expect("run emits events");
        match summary {
            Event::RunSummary {
                design,
                intervals: iv,
                memo_hits,
                memo_misses,
            } => {
                assert_eq!(*design, "Jumanji");
                assert_eq!(*iv as usize, intervals);
                assert_eq!(*memo_hits as usize, hits);
                assert_eq!((*memo_hits + *memo_misses) as usize, intervals);
            }
            other => panic!("last event should be the run summary, got {other:?}"),
        }
    }

    #[test]
    fn timeline_is_complete() {
        let exp = Experiment::new(case_study_mix(1), LcLoad::High, quick_opts());
        let r = exp.run(DesignKind::Adaptive, &NoopSink);
        assert_eq!(r.timeline.len(), 15);
        for rec in &r.timeline {
            assert_eq!(rec.lc_alloc_bytes.len(), 4);
            assert!(rec.vulnerability >= 0.0);
        }
    }
}
