//! Strongly typed identifiers for hardware and software entities.
//!
//! Newtypes keep core, bank, application, VM, and page indices statically
//! distinct (C-NEWTYPE), so a placement algorithm cannot accidentally index
//! a bank table with a core id.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v)
            }
        }

        impl From<$name> for usize {
            fn from(v: $name) -> usize {
                v.0
            }
        }
    };
}

id_type!(
    /// Identifies one core (hardware thread context) on the chip.
    ///
    /// Cores are numbered in row-major tile order: core *i* lives on tile *i*
    /// of the mesh.
    CoreId,
    "core"
);

id_type!(
    /// Identifies one LLC bank.
    ///
    /// Banks are numbered in row-major tile order and are colocated with the
    /// like-numbered core on the same tile.
    BankId,
    "bank"
);

id_type!(
    /// Identifies one application (process). Each application owns one
    /// virtual cache in the D-NUCA designs.
    AppId,
    "app"
);

id_type!(
    /// Identifies one virtual machine (trust domain). Applications in the
    /// same VM trust each other; applications in different VMs do not.
    VmId,
    "vm"
);

id_type!(
    /// Identifies one virtual memory page (used by the virtual-cache page
    /// mapping).
    PageId,
    "page"
);

/// A count of cache ways, used for way-partitioned (Intel CAT-style)
/// allocations.
///
/// # Examples
///
/// ```
/// use nuca_types::WayCount;
/// let w = WayCount(4);
/// assert_eq!(w.0, 4);
/// assert_eq!(w.to_string(), "4 ways");
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WayCount(pub u32);

impl fmt::Display for WayCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ways", self.0)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only scratch sets; order never observed
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_through_usize() {
        let c = CoreId::from(7usize);
        assert_eq!(usize::from(c), 7);
        assert_eq!(c.index(), 7);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(BankId(19).to_string(), "bank19");
        assert_eq!(AppId(0).to_string(), "app0");
        assert_eq!(VmId(2).to_string(), "vm2");
        assert_eq!(PageId(42).to_string(), "page42");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(BankId(1));
        set.insert(BankId(1));
        set.insert(BankId(2));
        assert_eq!(set.len(), 2);
        assert!(BankId(1) < BankId(2));
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; the test documents the intent.
        fn takes_bank(_b: BankId) {}
        takes_bank(BankId(0));
    }
}
