//! The `jumanji-lint` binary.
//!
//! ```text
//! jumanji-lint [--root DIR] [--config FILE] [--format text|json]
//! jumanji-lint --self-test [--root DIR]
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or self-test mismatch), `2`
//! usage/config error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use jumanji_lint::config::LintConfig;
use jumanji_lint::diag::render_json;
use jumanji_lint::runner;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    self_test: bool,
}

fn usage() -> &'static str {
    "usage: jumanji-lint [--root DIR] [--config FILE] [--format text|json] [--self-test]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        self_test: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?));
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.json = false,
                Some("json") => args.json = true,
                _ => return Err("--format takes `text` or `json`".to_string()),
            },
            "--self-test" => args.self_test = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if args.self_test {
        return match runner::self_test(&args.root) {
            Ok(n) => {
                eprintln!("jumanji-lint: self-test OK ({n} seeded violations all detected)");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprint!("{report}");
                ExitCode::FAILURE
            }
        };
    }

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        match LintConfig::load(&config_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("jumanji-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if args.config.is_some() {
        eprintln!("jumanji-lint: {}: not found", config_path.display());
        return ExitCode::from(2);
    } else {
        LintConfig::default()
    };

    match runner::run(&args.root, &cfg) {
        Ok(outcome) => {
            if args.json {
                println!("{}", render_json(&outcome.diags));
            } else {
                for d in &outcome.diags {
                    println!("{}", d.render_text());
                }
            }
            let unsafe_total: u64 = outcome.unsafe_counts.values().sum();
            eprintln!(
                "jumanji-lint: {} files, {} finding(s), {} unsafe site(s)",
                outcome.files,
                outcome.diags.len(),
                unsafe_total
            );
            if outcome.diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("jumanji-lint: {e}");
            ExitCode::from(2)
        }
    }
}
