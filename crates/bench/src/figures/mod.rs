//! Figure renderers: one `emit` function per figure/table/study, each
//! writing the same TSV the original standalone binary printed.
//!
//! Every renderer takes the resolved [`ExperimentSpec`], a telemetry
//! sink, and an output writer, so figures compose: a test can render
//! into a `Vec<u8>` with a [`RecordingSink`](jumanji::telemetry::RecordingSink),
//! while the binaries stream to stdout with a
//! [`JsonlSink`](jumanji::telemetry::JsonlSink) behind `--trace`.
//!
//! Output contract: at a figure's default spec, the bytes written to
//! `out` are identical to the pre-spec binaries (the golden TSVs under
//! `results/` enforce this in CI). Human-facing summaries that were on
//! stderr stay on stderr.

use crate::spec::{ExperimentSpec, FigureKind};
use jumanji::prelude::*;
use jumanji::types::Error;
use std::io::Write;

mod attacks;
mod case_study;
mod main_results;
pub mod plan;
mod scaling;
mod studies;
mod tables;
mod validate;

/// Renders `spec.kind` to `out`, emitting telemetry into `tel`.
///
/// # Errors
///
/// Usage errors for bad spec contents, runtime errors for I/O failures.
pub fn emit(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    match spec.kind {
        FigureKind::Fig02 => case_study::fig02(spec, tel, out),
        FigureKind::Fig04 => case_study::fig04(spec, tel, out),
        FigureKind::Fig05 => case_study::fig05(spec, tel, out),
        FigureKind::Fig08 => case_study::fig08(spec, tel, out),
        FigureKind::Fig09 => case_study::fig09(spec, tel, out),
        FigureKind::Fig11 => attacks::fig11(spec, tel, out),
        FigureKind::Fig12 => attacks::fig12(spec, tel, out),
        FigureKind::Fig13 => main_results::fig13(spec, tel, out),
        FigureKind::Fig14 => main_results::fig14(spec, tel, out),
        FigureKind::Fig15 => main_results::fig15(spec, tel, out),
        FigureKind::Fig16 => main_results::fig16(spec, tel, out),
        FigureKind::Fig17 => scaling::fig17(spec, tel, out),
        FigureKind::Fig18 => scaling::fig18(spec, tel, out),
        FigureKind::Table2 => tables::table2(spec, tel, out),
        FigureKind::Table3 => tables::table3(spec, tel, out),
        FigureKind::Ablation => studies::ablation(spec, tel, out),
        FigureKind::Sensitivity => studies::sensitivity(spec, tel, out),
        FigureKind::Validate => validate::validate(spec, tel, out),
    }
}

/// The `(group, load)` matrix list shared by Figs. 13/14/16: every
/// workload group at high then low load.
fn groups_by_load(loads: &[LcLoad]) -> Vec<(crate::LcGroup, LcLoad)> {
    loads
        .iter()
        .flat_map(|&load| crate::LcGroup::all().into_iter().map(move |g| (g, load)))
        .collect()
}

/// Display label for a load level.
fn load_label(load: LcLoad) -> &'static str {
    match load {
        LcLoad::High => "high",
        LcLoad::Low => "low",
    }
}

/// Analytic-simulator options derived from the spec (seed 1 — the
/// default — reproduces the golden TSVs byte for byte).
fn sim_opts(spec: &ExperimentSpec) -> SimOptions {
    SimOptions {
        seed: spec.seed,
        ..SimOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji::telemetry::{NoopSink, RecordingSink};

    /// Renders `kind` at minimum cost into a buffer and sanity-checks it.
    fn smoke(kind: FigureKind, mixes: usize) -> String {
        let spec = ExperimentSpec::new(kind)
            .mixes(mixes)
            .threads(2)
            .accesses(2_000);
        let mut buf = Vec::new();
        emit(&spec, &NoopSink, &mut buf).expect("figure renders");
        let text = String::from_utf8(buf).expect("valid utf-8");
        assert!(
            text.starts_with('#'),
            "{}: output must open with a comment header",
            kind.name()
        );
        assert!(
            text.ends_with('\n'),
            "{}: output must end with a newline",
            kind.name()
        );
        assert!(text.lines().count() >= 3, "{}: too few lines", kind.name());
        text
    }

    #[test]
    fn cheap_figures_render_well_formed_tsv() {
        // The figures that finish quickly even in debug builds; the full
        // 18-figure sweep runs under JUMANJI_SMOKE_ALL=1 (CI does this in
        // release mode via scripts/verify.sh).
        let tables = smoke(FigureKind::Table2, 1);
        assert!(tables.contains("parameter\tvalue"));
        let t3 = smoke(FigureKind::Table3, 1);
        assert!(t3.contains("deadline_ms"));
        let f8 = smoke(FigureKind::Fig08, 1);
        assert!(f8.contains("alloc_mb\tsnuca_p95_ms\tdnuca_p95_ms"));
        let f5 = smoke(FigureKind::Fig05, 1);
        // One data row per design in the default list.
        let rows = f5
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("design"))
            .count();
        assert_eq!(rows, FigureKind::Fig05.default_designs().len());
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // opt-in smoke sweep reads its own gate
    fn every_figure_renders_at_mixes_1_when_enabled() {
        if std::env::var_os("JUMANJI_SMOKE_ALL").is_none() {
            eprintln!("set JUMANJI_SMOKE_ALL=1 to sweep all 18 figures");
            return;
        }
        for kind in FigureKind::all() {
            smoke(kind, 1);
        }
    }

    #[test]
    fn trace_sink_sees_a_whole_figure_run() {
        // Fig. 5 runs the baseline plus four designs serially; the sink
        // must observe one RunSummary per run and the per-interval
        // controller stream, without changing the rendered bytes.
        let spec = ExperimentSpec::new(FigureKind::Fig05).threads(1);
        let mut plain = Vec::new();
        emit(&spec, &NoopSink, &mut plain).expect("renders");
        let sink = RecordingSink::new();
        let mut traced = Vec::new();
        emit(&spec, &sink, &mut traced).expect("renders");
        assert_eq!(plain, traced, "telemetry must not perturb figure output");
        let events = sink.events();
        let summaries = events
            .iter()
            .filter(|e| matches!(e, jumanji::telemetry::Event::RunSummary { .. }))
            .count();
        assert_eq!(summaries, 1 + spec.designs.len());
        assert!(events
            .iter()
            .any(|e| matches!(e, jumanji::telemetry::Event::Controller { .. })));
    }
}
