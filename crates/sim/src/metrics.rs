//! Performance and security metrics (paper Sec. VII).
//!
//! - **Tail latency**: 95th-percentile request latency per latency-critical
//!   application.
//! - **Weighted speedup**: FIESTA-style fixed-work speedup of batch
//!   applications relative to the Static baseline — each app's speedup is
//!   the ratio of instructions completed in equal time, averaged over apps;
//!   figures report the geometric mean over workload mixes.
//! - **Vulnerability**: the average number of applications from other VMs
//!   occupying the bank a victim accesses, weighted by accesses (Fig. 4c,
//!   Fig. 14).

use jumanji_core::{Allocation, PlacementInput};
use nuca_types::AppId;

/// Nearest-rank percentile of a latency sample (does not mutate input).
///
/// # Panics
///
/// Panics if `samples` is empty or `p` outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use nuca_sim::metrics::percentile;
/// let lat: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(percentile(&lat, 0.95), 95.0);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut v = samples.to_vec();
    percentile_mut(&mut v, p)
}

/// Nearest-rank percentile computed in place via quickselect: O(n) and
/// allocation-free, reordering `samples` arbitrarily. Returns exactly the
/// value a sort-then-index would (same multiset, same rank).
///
/// # Panics
///
/// Panics if `samples` is empty or `p` outside `(0, 1]`.
pub fn percentile_mut(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(p > 0.0 && p <= 1.0, "percentile must be in (0,1]");
    let rank = (p * samples.len() as f64).ceil() as usize;
    let (_, v, _) = samples.select_nth_unstable_by(rank.saturating_sub(1), |a, b| {
        a.partial_cmp(b).expect("samples are finite")
    });
    *v
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Weighted speedup of batch apps vs. a baseline: mean over apps of
/// `work_design / work_baseline` for equal wall-clock time (equivalently,
/// inverse time-to-fixed-work).
///
/// # Panics
///
/// Panics if slices differ in length, are empty, or a baseline is zero.
pub fn weighted_speedup(design_work: &[f64], baseline_work: &[f64]) -> f64 {
    assert_eq!(design_work.len(), baseline_work.len());
    assert!(!design_work.is_empty(), "need at least one batch app");
    let sum: f64 = design_work
        .iter()
        .zip(baseline_work)
        .map(|(&d, &b)| {
            assert!(b > 0.0, "baseline work must be positive");
            d / b
        })
        .sum();
    sum / design_work.len() as f64
}

/// Access-weighted vulnerability: average number of other-VM applications
/// occupying the accessed bank, over all LLC accesses of all applications
/// (Sec. VII "Security metrics").
///
/// `rates[a]` is app `a`'s LLC access rate; an app's per-access attacker
/// count is capacity-share-weighted over its banks
/// ([`Allocation::attackers`]).
pub fn vulnerability(input: &PlacementInput, alloc: &Allocation, rates: &[f64]) -> f64 {
    let total: f64 = rates.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // Shared allocations put every pool member on every pool bank, so the
    // (app, bank) visit count is quadratic; resolve occupancy for all
    // banks once instead of once per visit. Only the *counts* matter —
    // occupants per bank and occupants per (bank, VM) — so a flat
    // membership bitmap replaces the per-bank occupant sets: the integer
    // counts are the same, hence so is every attacker term. An app's
    // attacker count at a bank is the occupants there minus its own VM's,
    // exactly as Allocation::attackers defines it.
    let num_banks = input.cfg.llc.num_banks;
    let n_apps = input.apps.len();
    let num_vms = input
        .apps
        .iter()
        .map(|a| a.vm.index() + 1)
        .max()
        .unwrap_or(0);
    let mut member = vec![false; num_banks * n_apps];
    for a in &alloc.apps {
        for &(b, bytes) in &a.placement {
            if bytes > 0.0 && b.index() < num_banks {
                member[b.index() * n_apps + a.app.index()] = true;
            }
        }
    }
    for p in &alloc.pools {
        for &(b, bytes) in &p.placement {
            if bytes > 0.0 && b.index() < num_banks {
                for m in &p.members {
                    member[b.index() * n_apps + m.index()] = true;
                }
            }
        }
    }
    let mut occ_count = vec![0usize; num_banks];
    let mut vm_counts = vec![0usize; num_banks * num_vms];
    for b in 0..num_banks {
        for (i, a) in input.apps.iter().enumerate() {
            if member[b * n_apps + i] {
                occ_count[b] += 1;
                vm_counts[b * num_vms + a.vm.index()] += 1;
            }
        }
    }
    rates
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let my_vm = input.apps[i].vm.index();
            let placement = alloc.placement_of(AppId(i));
            let bytes_total: f64 = placement.iter().map(|(_, b)| b).sum();
            if bytes_total <= 0.0 {
                return 0.0;
            }
            let attackers: f64 = placement
                .iter()
                .map(|&(bank, bytes)| {
                    let b = bank.index();
                    let n = (occ_count[b] - vm_counts[b * num_vms + my_vm]) as f64;
                    n * bytes / bytes_total
                })
                .sum();
            attackers * r / total
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji_core::DesignKind;
    use nuca_types::SystemConfig;

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[3.5], 0.95), 3.5);
    }

    #[test]
    fn gmean_of_constant_is_constant() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn gmean_rejects_zero() {
        gmean(&[1.0, 0.0]);
    }

    #[test]
    fn weighted_speedup_identity() {
        let w = [1e9, 2e9, 3e9];
        assert!((weighted_speedup(&w, &w) - 1.0).abs() < 1e-12);
        let faster = [2e9, 4e9, 6e9];
        assert!((weighted_speedup(&faster, &w) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vulnerability_zero_for_isolated_design() {
        let cfg = SystemConfig::micro2020();
        let input = jumanji_core::PlacementInput::example(&cfg);
        let rates = vec![1e7; 20];
        let jumanji = DesignKind::Jumanji.allocate(&input);
        assert_eq!(vulnerability(&input, &jumanji, &rates), 0.0);
    }

    #[test]
    fn vulnerability_is_15_for_snuca() {
        // 20 apps in 4 VMs: each access sees the 15 apps of other VMs.
        let cfg = SystemConfig::micro2020();
        let input = jumanji_core::PlacementInput::example(&cfg);
        let rates = vec![1e7; 20];
        for d in [DesignKind::Adaptive, DesignKind::VmPart] {
            let v = vulnerability(&input, &d.allocate(&input), &rates);
            assert!((v - 15.0).abs() < 0.01, "{d}: {v}");
        }
    }

    #[test]
    fn jigsaw_vulnerability_between_zero_and_snuca() {
        let cfg = SystemConfig::micro2020();
        let input = jumanji_core::PlacementInput::example(&cfg);
        let rates = vec![1e7; 20];
        let v = vulnerability(&input, &DesignKind::Jigsaw.allocate(&input), &rates);
        assert!(v > 0.0 && v < 15.0, "jigsaw vulnerability {v}");
    }
}
