// Fixture: unsafe without a SAFETY comment (not compiled).
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

// SAFETY: index 0 is checked by the caller.
pub fn peek_ok(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
