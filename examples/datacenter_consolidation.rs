//! Datacenter consolidation scenario: how many VMs can one machine hold?
//!
//! A datacenter operator consolidates tenants onto a 20-core machine. Each
//! tenant (VM) runs one latency-critical server with a tail-latency SLO
//! plus batch work. The operator needs: SLOs met, batch throughput high,
//! and *no cross-tenant cache side channels*. This example sweeps the
//! Fig. 17 VM groupings under Jumanji and reports all three.
//!
//! ```sh
//! cargo run --release --example datacenter_consolidation
//! ```

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    println!("Consolidation sweep: 4 LC servers + 16 batch apps, 1..12 tenants\n");
    println!(
        "{:<14} {:>9} {:>15} {:>12} {:>10}",
        "grouping", "tenants", "batch speedup", "worst tail", "isolated"
    );
    for (label, spec) in fig17_configs() {
        let mixes = 4u64;
        let mut speedups = Vec::new();
        let mut worst: f64 = 0.0;
        let mut isolated = true;
        for seed in 0..mixes {
            // Four distinct servers, like the paper's Mixed group.
            let mut pool = tailbench();
            let mut rng = StdRng::seed_from_u64(seed);
            pool.shuffle(&mut rng);
            pool.truncate(4);
            let mix = WorkloadMix::from_spec(&spec, &pool, seed);
            let exp = Experiment::new(mix, LcLoad::High, SimOptions::default());
            let baseline = exp.run(DesignKind::Static, &NoopSink);
            let r = exp.run(DesignKind::Jumanji, &NoopSink);
            speedups.push(r.weighted_speedup_vs(&baseline));
            worst = worst.max(r.max_norm_tail());
            isolated &= r.vulnerability == 0.0;
        }
        println!(
            "{:<14} {:>9} {:>+14.1}% {:>11.2}x {:>10}",
            label,
            spec.len(),
            (gmean(&speedups) - 1.0) * 100.0,
            worst,
            if isolated { "yes" } else { "NO" }
        );
    }
    println!();
    println!("Jumanji scales to twelve single-purpose tenants with flat batch");
    println!("speedup and zero cross-tenant bank sharing (paper Fig. 17).");
}
