//! Event-driven bank-port contention simulator.
//!
//! LLC banks have a limited number of access ports (Table II: one per
//! bank). When two requesters hit the same bank, the later one queues —
//! and its observed latency reveals that the other requester was there.
//! This is the shared structure behind the paper's LLC port attack
//! (Sec. VI-B, Fig. 11); [`BankPorts`] reproduces the timing behaviour.

use nuca_types::Cycles;

/// Cumulative statistics of one bank's ports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PortStats {
    /// Requests served.
    pub requests: u64,
    /// Total cycles requests spent waiting for a free port.
    pub queue_cycles: u64,
    /// Total cycles ports were occupied.
    pub busy_cycles: u64,
}

impl PortStats {
    /// Mean queueing delay per request (0 when idle).
    pub fn mean_wait(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / self.requests as f64
        }
    }
}

/// The access ports of one cache bank, granted in arrival order.
///
/// # Examples
///
/// ```
/// use nuca_noc::BankPorts;
/// use nuca_types::Cycles;
///
/// let mut ports = BankPorts::new(1, Cycles(4));
/// // Back-to-back requests at the same cycle: the second waits 4 cycles.
/// let first = ports.request(Cycles(100));
/// let second = ports.request(Cycles(100));
/// assert_eq!(first.start, Cycles(100));
/// assert_eq!(second.start, Cycles(104));
/// assert_eq!(second.done, Cycles(108));
/// ```
#[derive(Debug, Clone)]
pub struct BankPorts {
    /// Cycle at which each port becomes free. Banks have a handful of
    /// ports (one, per Table II), so a linear min scan over this flat
    /// vector beats a binary heap's pop/push on the simulator hot path.
    free_at: Vec<u64>,
    occupancy: Cycles,
    stats: PortStats,
}

/// When a request was granted a port and when it completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Cycle the request started occupying a port.
    pub start: Cycles,
    /// Cycle the port access completed.
    pub done: Cycles,
}

impl BankPorts {
    /// Creates a bank with `ports` ports, each occupied for `occupancy`
    /// cycles per access.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0` or `occupancy` is zero.
    pub fn new(ports: u32, occupancy: Cycles) -> BankPorts {
        assert!(ports > 0, "need at least one port");
        assert!(occupancy.as_u64() > 0, "occupancy must be nonzero");
        BankPorts {
            free_at: vec![0; ports as usize],
            occupancy,
            stats: PortStats::default(),
        }
    }

    /// Requests a port at `arrival`; returns when the access starts and
    /// completes. Requests must be issued in non-decreasing arrival order
    /// per caller, but multiple interleaved callers are fine — the port is
    /// granted in call order, modeling a FIFO arbiter.
    pub fn request(&mut self, arrival: Cycles) -> Grant {
        let mut earliest = 0;
        for (i, &f) in self.free_at.iter().enumerate() {
            if f < self.free_at[earliest] {
                earliest = i;
            }
        }
        let start = arrival.as_u64().max(self.free_at[earliest]);
        let done = start + self.occupancy.as_u64();
        self.free_at[earliest] = done;
        self.stats.requests += 1;
        self.stats.queue_cycles += start - arrival.as_u64();
        self.stats.busy_cycles += self.occupancy.as_u64();
        Grant {
            start: Cycles(start),
            done: Cycles(done),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Resets statistics without clearing port state.
    pub fn reset_stats(&mut self) {
        self.stats = PortStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_port_grants_immediately() {
        let mut p = BankPorts::new(1, Cycles(4));
        let g = p.request(Cycles(10));
        assert_eq!(g.start, Cycles(10));
        assert_eq!(g.done, Cycles(14));
        assert_eq!(p.stats().mean_wait(), 0.0);
    }

    #[test]
    fn contention_queues_fifo() {
        let mut p = BankPorts::new(1, Cycles(4));
        p.request(Cycles(0));
        let g2 = p.request(Cycles(1));
        let g3 = p.request(Cycles(1));
        assert_eq!(g2.start, Cycles(4));
        assert_eq!(g3.start, Cycles(8));
        let s = p.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.queue_cycles, 3 + 7);
    }

    #[test]
    fn second_port_absorbs_contention() {
        let mut p = BankPorts::new(2, Cycles(4));
        p.request(Cycles(0));
        let g2 = p.request(Cycles(0));
        assert_eq!(g2.start, Cycles(0), "two ports serve two requests at once");
        let g3 = p.request(Cycles(1));
        assert_eq!(g3.start, Cycles(4));
    }

    #[test]
    fn attacker_observes_victim_through_queueing() {
        // The essence of the port attack: an attacker issuing back-to-back
        // accesses sees higher completion intervals exactly while a victim
        // shares the bank.
        let mut p = BankPorts::new(1, Cycles(4));
        let mut t = Cycles(0);
        let mut quiet_interval = Cycles(0);
        for _ in 0..10 {
            let g = p.request(t);
            quiet_interval = g.done - t;
            t = g.done;
        }
        // Victim injects accesses interleaved with the attacker.
        let mut contended_interval = Cycles(0);
        for _ in 0..10 {
            p.request(t); // victim
            let g = p.request(t); // attacker
            contended_interval = g.done - t;
            t = g.done;
        }
        assert!(
            contended_interval > quiet_interval,
            "victim presence must be visible in attacker timing"
        );
    }

    #[test]
    fn stats_track_busy_cycles() {
        let mut p = BankPorts::new(1, Cycles(5));
        p.request(Cycles(0));
        p.request(Cycles(100));
        assert_eq!(p.stats().busy_cycles, 10);
        p.reset_stats();
        assert_eq!(p.stats().requests, 0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        BankPorts::new(0, Cycles(1));
    }
}
