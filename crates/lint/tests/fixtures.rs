//! End-to-end tests over the known-bad fixture corpus: every seeded
//! violation must be detected with the exact rule id and line, the
//! self-test harness must agree with `expected.txt`, and the real
//! workspace under the checked-in `lint.toml` must scan clean.

use jumanji_lint::config::LintConfig;
use jumanji_lint::runner;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// The repository root (two levels up from crates/lint).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn self_test_detects_every_seeded_violation() {
    let found = runner::self_test(&repo_root()).expect("fixture self-test must pass");
    assert_eq!(
        found, 15,
        "seeded-violation count drifted from expected.txt"
    );
}

#[test]
fn fixture_diagnostics_have_exact_rules_and_lines() {
    let outcome = runner::run_fixtures(&repo_root()).expect("fixture scan");
    let got: BTreeSet<String> = outcome
        .diags
        .iter()
        .map(|d| format!("{}:{}:{}", d.path, d.line, d.rule))
        .collect();
    let want: BTreeSet<String> = [
        "crates/lint/fixtures/bad_hasher.rs:5:default-hasher",
        "crates/lint/fixtures/bad_hasher.rs:6:default-hasher",
        "crates/lint/fixtures/bad_hasher.rs:7:default-hasher",
        "crates/lint/fixtures/bad_time.rs:5:wall-clock",
        "crates/lint/fixtures/bad_time.rs:6:wall-clock",
        "crates/lint/fixtures/bad_thread_local.rs:2:thread-local",
        "crates/lint/fixtures/bad_env.rs:3:env-var",
        "crates/lint/fixtures/bad_unsafe.rs:3:safety-comment",
        "crates/lint/fixtures/bad_unsafe.rs:3:unsafe-budget",
        "crates/lint/fixtures/bad_allow.rs:2:allow-syntax",
        "crates/lint/fixtures/bad_allow.rs:3:allow-syntax",
        "crates/lint/fixtures/bad_allow.rs:4:allow-syntax",
        "crates/lint/fixtures/figures/bad_plan.rs:4:plan-bypass",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    // Two lines in bad_hasher.rs carry a pair of findings each; the set
    // view collapses those, and expected.txt (checked as a multiset by
    // the self-test) pins the duplicates.
    assert_eq!(got, want, "fixture diagnostic sites drifted");
    // The clean fixture must stay clean.
    assert!(
        !outcome.diags.iter().any(|d| d.path.ends_with("good.rs")),
        "good.rs produced findings"
    );
}

#[test]
fn diagnostics_render_stable_text_and_valid_json() {
    let outcome = runner::run_fixtures(&repo_root()).expect("fixture scan");
    let d = outcome
        .diags
        .iter()
        .find(|d| d.rule == "default-hasher")
        .expect("hasher finding present");
    let text = d.render_text();
    assert!(text.starts_with("crates/lint/fixtures/bad_hasher.rs:"));
    assert!(text.contains("error[default-hasher]"));
    assert!(text.contains("help:"), "fix-it hint missing: {text}");
    let json = jumanji_lint::diag::render_json(std::slice::from_ref(d));
    assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    assert!(
        json.contains("\"rule\": \"default-hasher\"")
            || json.contains("\"rule\":\"default-hasher\"")
    );
    assert!(json.contains("\"line\""));
}

#[test]
fn workspace_is_clean_under_checked_in_policy() {
    let root = repo_root();
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses");
    let outcome = runner::run(&root, &cfg).expect("workspace scan");
    let rendered: Vec<String> = outcome.diags.iter().map(|d| d.render_text()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}
