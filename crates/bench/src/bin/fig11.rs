//! Thin entry point: parse CLI/env into an ExperimentSpec and render.
//! The figure itself lives in `jumanji_bench::figures`.

use jumanji_bench::{figure_main, FigureKind};

fn main() -> std::process::ExitCode {
    figure_main(FigureKind::Fig11)
}
