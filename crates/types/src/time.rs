//! Cycle- and second-based time types.
//!
//! The simulator keeps all latencies in core clock cycles ([`Cycles`]) and
//! converts to wall-clock [`Seconds`] only at reporting boundaries (e.g.,
//! tail-latency deadlines in milliseconds).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant measured in core clock cycles.
///
/// # Examples
///
/// ```
/// use nuca_types::Cycles;
/// let a = Cycles(100) + Cycles(20);
/// assert_eq!(a, Cycles(120));
/// assert_eq!(a.to_seconds(2.66e9).as_f64() * 1e9, 120.0 / 2.66, "ns");
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cycle count as a float (for analytic models).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Converts cycles to seconds at the given clock frequency in Hz.
    #[inline]
    pub fn to_seconds(self, freq_hz: f64) -> Seconds {
        Seconds(self.0 as f64 / freq_hz)
    }

    /// Saturating subtraction: never goes below zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A duration measured in seconds (wall-clock).
///
/// # Examples
///
/// ```
/// use nuca_types::Seconds;
/// let ms = Seconds::from_millis(100.0);
/// assert_eq!(ms.as_f64(), 0.1);
/// assert_eq!(ms.to_cycles(2.66e9).as_u64(), 266_000_000);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Seconds(pub f64);

impl Seconds {
    /// Constructs from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Seconds {
        Seconds(ms * 1e-3)
    }

    /// Constructs from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Seconds {
        Seconds(us * 1e-6)
    }

    /// Returns the raw value in seconds.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Converts seconds to cycles at the given clock frequency in Hz,
    /// rounding to the nearest cycle.
    #[inline]
    pub fn to_cycles(self, freq_hz: f64) -> Cycles {
        Cycles((self.0 * freq_hz).round() as u64)
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let mut c = Cycles(10);
        c += Cycles(5);
        assert_eq!(c, Cycles(15));
        c -= Cycles(5);
        assert_eq!(c, Cycles(10));
        assert_eq!(c * 3, Cycles(30));
        assert_eq!(c / 2, Cycles(5));
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn seconds_cycles_round_trip() {
        let freq = 2.66e9;
        let s = Seconds::from_millis(100.0);
        let c = s.to_cycles(freq);
        assert_eq!(c.as_u64(), 266_000_000);
        let back = c.to_seconds(freq);
        assert!((back.as_f64() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(Seconds(1.5).to_string(), "1.500 s");
        assert_eq!(Seconds::from_millis(2.0).to_string(), "2.000 ms");
        assert_eq!(Seconds::from_micros(7.0).to_string(), "7.000 us");
        assert_eq!(Cycles(9).to_string(), "9 cycles");
    }

    #[test]
    fn micros_constructor() {
        assert!((Seconds::from_micros(1000.0).as_millis() - 1.0).abs() < 1e-12);
    }
}
