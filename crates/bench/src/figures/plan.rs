//! The figures' *plan* phase: enumerate a figure's experiment cells
//! without computing any of them.
//!
//! Every renderer in this directory ultimately reads `(experiment,
//! design)` cells through the [`CellCache`](crate::cell_cache::CellCache).
//! [`of`] produces, for a resolved [`ExperimentSpec`], the exact cell
//! descriptors that figure's render pass will look up — same mixes, same
//! option derivation, same designs — so the suite can union the plans of
//! many figures into one deduplicated work graph *before* any compute.
//!
//! Identity is load-bearing: a planned cell must hash to the same
//! [`experiment_key`](crate::cell_cache::experiment_key) /
//! [`run_key`](crate::cell_cache::run_key) the render's lookups use, or
//! the render recomputes it (correct but slow). The enumeration
//! therefore calls the *same* helpers the renderers call —
//! [`mix_cell_inputs`](crate::mix_cell_inputs),
//! [`fig09_cases`](super::case_study::fig09_cases),
//! [`fig17_mix`](super::scaling::fig17_mix),
//! [`sensitivity_jobs`](super::studies::sensitivity_jobs) — instead of
//! transcribing their logic. `tests/plan_coverage.rs` pins the contract:
//! after executing a figure's plan, its render computes zero new cells.
//!
//! The detailed-simulator studies (fig02, validate) plan *detailed*
//! cells ([`DetailPlan`]) instead of analytic ones: the full input of
//! [`run_detailed`](jumanji::sim::detail::run_detailed), enumerated
//! with the same helpers the renders use, so scheduled detailed cells
//! are pure cache hits at render time too. Figures with nothing to
//! pre-compute (the closed-form fig08, the attack demos, the config
//! tables) return an empty plan; the suite renders them directly.
//!
//! Cost priors ([`experiment_cost`], [`run_cost`], [`detail_cost`]) feed
//! the scheduler's long-pole-first ordering. They are *relative* weights
//! calibrated from the `timings` probes (an analytic run costs about one
//! interval-unit per reconfiguration interval; placement-solving designs
//! cost more per interval; experiment construction about half a Static
//! run; a detailed cell about two interval-units per
//! [`DETAIL_UNIT_ACCESSES`] simulated accesses), not wall-clock
//! predictions — only their ordering matters.

use super::{groups_by_load, sim_opts};
use crate::cell_cache::CellCache;
use crate::disk_cache::MeasuredCosts;
use crate::spec::{ExperimentSpec, FigureKind};
use crate::{mix_cell_inputs, LcGroup};
use jumanji::prelude::*;
use jumanji::sim::detail::DetailOptions;
use jumanji::sim::perf::Profile;
use jumanji::types::{CoreId, Error, Seconds, VmId};
use jumanji::workloads::WorkloadMix;

/// One experiment cell a figure's render will look up: the experiment's
/// construction inputs plus every design the figure runs on it.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// The workload mix, exactly as the render constructs it.
    pub mix: WorkloadMix,
    /// Latency-critical load level.
    pub load: LcLoad,
    /// Simulation options, after the render's seed derivation.
    pub opts: SimOptions,
    /// Designs the figure runs on this experiment (duplicates allowed;
    /// the graph dedups).
    pub designs: Vec<DesignKind>,
}

impl CellPlan {
    /// The cache identity of this cell's experiment.
    pub fn experiment_key(&self) -> u128 {
        crate::cell_cache::experiment_key(&self.mix, self.load, &self.opts)
    }
}

/// One detailed-simulator cell a figure's render will look up: the full
/// input of [`run_detailed`](jumanji::sim::detail::run_detailed),
/// including the allocation under test (allocations are cheap and
/// memoized through the cell cache, so the plan pass resolves them
/// up front — the render's own `allocate` call is then a pure hit).
#[derive(Debug, Clone)]
pub struct DetailPlan {
    /// The design whose allocation is simulated (labeling only — the
    /// cell's identity is carried by `alloc` and the other inputs).
    pub design: DesignKind,
    /// Detailed-run options, after the render's seed derivation.
    pub opts: DetailOptions,
    /// Per-app profiles in app order.
    pub profiles: Vec<Profile>,
    /// Per-app core pinning.
    pub cores: Vec<CoreId>,
    /// Per-app VM membership.
    pub vms: Vec<VmId>,
    /// The allocation under test.
    pub alloc: Allocation,
}

impl DetailPlan {
    /// The cache identity of this detailed cell.
    pub fn key(&self) -> u128 {
        crate::cell_cache::detail_key(
            &self.opts,
            &self.profiles,
            &self.cores,
            &self.vms,
            &self.alloc,
        )
    }
}

/// A figure's full cell enumeration.
#[derive(Debug, Clone)]
pub struct FigurePlan {
    /// The figure this plan describes.
    pub kind: FigureKind,
    /// Its analytic cells, in the render's lookup order.
    pub cells: Vec<CellPlan>,
    /// Its detailed-simulator cells, in the render's lookup order.
    pub details: Vec<DetailPlan>,
}

impl FigurePlan {
    /// Total design runs across analytic cells (before any
    /// deduplication).
    pub fn runs(&self) -> usize {
        self.cells.iter().map(|c| c.designs.len()).sum()
    }

    /// True when the figure pre-computes nothing through the cell cache
    /// (no analytic and no detailed cells).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty() && self.details.is_empty()
    }
}

/// Relative cost prior of constructing an experiment (profile hulls,
/// deadline isolation runs, stream generators): about half a Static run
/// of the same horizon in the `timings` probes.
pub fn experiment_cost(opts: &SimOptions) -> f64 {
    0.5 * run_cost(opts, DesignKind::Static)
}

/// Reconfiguration intervals `opts` simulates — the unit both the
/// static priors and the persisted measured durations normalize by.
pub fn intervals_of(opts: &SimOptions) -> f64 {
    (opts.duration.as_f64() / opts.reconfig.as_f64()).max(1.0)
}

/// The static prior for a design's per-interval cost relative to a
/// Static run, calibrated once from the `timings` probes. Used whenever
/// no measured data exists for the design.
fn static_factor(design: DesignKind) -> f64 {
    match design {
        DesignKind::Static => 1.0,
        DesignKind::Adaptive | DesignKind::VmPart => 1.15,
        DesignKind::Jigsaw => 1.45,
        DesignKind::Jumanji | DesignKind::JumanjiInsecure | DesignKind::JumanjiIdealBatch => 1.6,
    }
}

/// Relative cost prior of running `design` on an experiment with
/// `opts`: one unit per reconfiguration interval, scaled up for designs
/// that solve a placement every interval.
pub fn run_cost(opts: &SimOptions, design: DesignKind) -> f64 {
    intervals_of(opts) * static_factor(design)
}

/// Total simulated accesses in one detailed-cell work unit — the unit
/// both the detailed static prior and the persisted measured durations
/// ([`MeasuredCosts::details`]) normalize by.
pub const DETAIL_UNIT_ACCESSES: f64 = 25_000.0;

/// Work units of a detailed cell with `opts` over `napps` applications:
/// total simulated accesses per [`DETAIL_UNIT_ACCESSES`], never below
/// one.
pub fn detail_units(opts: &DetailOptions, napps: usize) -> f64 {
    ((opts.accesses_per_app * napps) as f64 / DETAIL_UNIT_ACCESSES).max(1.0)
}

/// The static prior for a detailed cell's per-work-unit cost relative
/// to a Static analytic interval, calibrated once from the `timings`
/// probes (execution-driven simulation of one unit of accesses costs
/// about two analytic intervals).
const DETAIL_STATIC_FACTOR: f64 = 2.0;

/// Relative cost prior of a detailed-simulator cell (same unit as
/// [`run_cost`]).
pub fn detail_cost(opts: &DetailOptions, napps: usize) -> f64 {
    detail_units(opts, napps) * DETAIL_STATIC_FACTOR
}

/// One design's prior-vs-measured cost comparison, for the suite's
/// drift report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostDrift {
    /// The design.
    pub design: DesignKind,
    /// The static prior factor (relative to a Static run).
    pub prior: f64,
    /// The measured factor (mean µs-per-interval over the measured
    /// Static mean).
    pub measured: f64,
    /// Samples behind the measured factor.
    pub samples: u64,
}

/// The scheduler's cost estimates: the static priors above by default,
/// replaced by measured per-design durations from the persistent store
/// when the store has seen real runs.
///
/// Measured means are kept *relative* — each design's mean
/// µs-per-interval over the measured Static mean — so partially
/// measured tables blend with the unit-normalized static priors without
/// mixing units, and the long-pole ordering (all that matters to the
/// scheduler) reflects real hardware instead of a guess.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    measured: MeasuredCosts,
}

impl CostModel {
    /// A model using only the static priors.
    pub fn priors() -> CostModel {
        CostModel::default()
    }

    /// A model that prefers `measured` data where it exists.
    pub fn from_measured(measured: MeasuredCosts) -> CostModel {
        CostModel { measured }
    }

    /// True when at least one design's cost comes from measurement.
    pub fn is_measured(&self) -> bool {
        self.run_factor_measured(DesignKind::Static).is_some()
    }

    fn run_factor_measured(&self, design: DesignKind) -> Option<f64> {
        let base = self.measured.mean_run_us(DesignKind::Static)?;
        if base <= 0.0 {
            return None;
        }
        Some(self.measured.mean_run_us(design)? / base)
    }

    fn run_factor(&self, design: DesignKind) -> f64 {
        self.run_factor_measured(design)
            .unwrap_or_else(|| static_factor(design))
    }

    /// Cost estimate for running `design` with `opts` (same unit as
    /// [`run_cost`]; equal to it when nothing is measured).
    pub fn run_cost(&self, opts: &SimOptions, design: DesignKind) -> f64 {
        intervals_of(opts) * self.run_factor(design)
    }

    /// Cost estimate for constructing an experiment with `opts`.
    pub fn experiment_cost(&self, opts: &SimOptions) -> f64 {
        let factor = self
            .measured
            .mean_exp_us()
            .and_then(|exp| {
                let base = self.measured.mean_run_us(DesignKind::Static)?;
                (base > 0.0).then(|| exp / base)
            })
            .unwrap_or(0.5);
        intervals_of(opts) * factor
    }

    /// Cost estimate for a detailed-simulator cell (same unit as
    /// [`run_cost`](CostModel::run_cost); equal to [`detail_cost`] when
    /// nothing is measured). Measured means are kept relative to the
    /// measured Static analytic mean, like every other row.
    pub fn detail_cost(&self, opts: &DetailOptions, napps: usize) -> f64 {
        let factor = self
            .measured
            .mean_detail_us()
            .and_then(|detail| {
                let base = self.measured.mean_run_us(DesignKind::Static)?;
                (base > 0.0).then(|| detail / base)
            })
            .unwrap_or(DETAIL_STATIC_FACTOR);
        detail_units(opts, napps) * factor
    }

    /// Prior-vs-measured drift, one row per design with measured data.
    /// Empty when the model is running on priors alone.
    pub fn drift(&self) -> Vec<CostDrift> {
        DesignKind::all()
            .into_iter()
            .filter_map(|design| {
                let measured = self.run_factor_measured(design)?;
                let samples = self.measured.runs[crate::disk_cache::design_tag(design) as usize].0;
                Some(CostDrift {
                    design,
                    prior: static_factor(design),
                    measured,
                    samples,
                })
            })
            .collect()
    }
}

/// `designs` with the Static baseline prepended (the matrix engine
/// always runs it for normalization) and duplicates dropped.
fn with_baseline(designs: &[DesignKind]) -> Vec<DesignKind> {
    let mut out = vec![DesignKind::Static];
    for &d in designs {
        if !out.contains(&d) {
            out.push(d);
        }
    }
    out
}

/// The plan of every figure built on the [`run_mix`](crate::run_mix)
/// matrix engine: one cell per `(group, load, seed)`, Static baseline
/// plus the spec's designs.
fn matrix_cells(
    matrices: &[(LcGroup, LcLoad)],
    spec: &ExperimentSpec,
) -> Result<Vec<CellPlan>, Error> {
    let base = sim_opts(spec);
    let designs = with_baseline(&spec.designs);
    let mut cells = Vec::with_capacity(matrices.len() * spec.mixes);
    for &(group, load) in matrices {
        for seed in 0..spec.mixes as u64 {
            let (mix, opts) = mix_cell_inputs(group, seed, &base)?;
            cells.push(CellPlan {
                mix,
                load,
                opts,
                designs: designs.clone(),
            });
        }
    }
    Ok(cells)
}

/// Enumerates the cells `spec`'s render pass will look up, without
/// computing any of them. Figures that pre-compute nothing through the
/// cell cache return an empty plan.
///
/// # Errors
///
/// Returns [`Error::UnknownWorkload`] for specs naming unknown servers —
/// the same error the render would hit, surfaced before any compute.
pub fn of(spec: &ExperimentSpec) -> Result<FigurePlan, Error> {
    use FigureKind::*;
    let cells = match spec.kind {
        Fig04 => {
            let opts = SimOptions {
                duration: Seconds(4.0),
                ..sim_opts(spec)
            };
            vec![CellPlan {
                mix: case_study_mix(spec.seed),
                load: LcLoad::High,
                opts,
                designs: spec.designs.clone(),
            }]
        }
        Fig05 => vec![CellPlan {
            mix: case_study_mix(spec.seed),
            load: LcLoad::High,
            opts: sim_opts(spec),
            designs: with_baseline(&spec.designs),
        }],
        Fig09 => {
            let base_opts = sim_opts(spec);
            let mut cells = Vec::new();
            for (_, _, params) in super::case_study::fig09_cases() {
                for seed in 0..spec.mixes as u64 {
                    cells.push(CellPlan {
                        mix: case_study_mix(seed),
                        load: LcLoad::High,
                        opts: SimOptions {
                            controller: Some(params),
                            ..base_opts.clone()
                        },
                        designs: vec![DesignKind::Static, DesignKind::Jumanji],
                    });
                }
            }
            cells
        }
        Fig13 | Fig14 | Fig16 => matrix_cells(&groups_by_load(&[LcLoad::High, LcLoad::Low]), spec)?,
        Fig15 => {
            let matrices: Vec<(LcGroup, LcLoad)> = LcGroup::all()
                .into_iter()
                .map(|g| (g, LcLoad::High))
                .collect();
            matrix_cells(&matrices, spec)?
        }
        Fig17 => {
            let opts = sim_opts(spec);
            let mut cells = Vec::new();
            for (_, cfg_spec) in fig17_configs() {
                for seed in 0..spec.mixes as u64 {
                    cells.push(CellPlan {
                        mix: super::scaling::fig17_mix(&cfg_spec, seed),
                        load: LcLoad::High,
                        opts: opts.clone(),
                        designs: vec![DesignKind::Static, DesignKind::Jumanji],
                    });
                }
            }
            cells
        }
        Fig18 => {
            let mut cells = Vec::new();
            for router in [1u64, 2, 3] {
                let mut cfg = SystemConfig::micro2020();
                cfg.noc.router_cycles = router;
                let opts = SimOptions {
                    cfg,
                    ..sim_opts(spec)
                };
                for seed in 0..spec.mixes as u64 {
                    cells.push(CellPlan {
                        mix: WorkloadMix::mixed_lc(seed),
                        load: LcLoad::High,
                        opts: opts.clone(),
                        designs: vec![DesignKind::Static, DesignKind::Jumanji],
                    });
                }
            }
            cells
        }
        Ablation => {
            let opts = sim_opts(spec);
            let no_panic = super::studies::no_panic_params();
            let mut cells = Vec::new();
            for seed in 0..spec.mixes as u64 {
                cells.push(CellPlan {
                    mix: case_study_mix(seed),
                    load: LcLoad::High,
                    opts: opts.clone(),
                    designs: vec![
                        DesignKind::Static,
                        DesignKind::Jumanji,
                        DesignKind::JumanjiInsecure,
                        DesignKind::JumanjiIdealBatch,
                    ],
                });
                cells.push(CellPlan {
                    mix: case_study_mix(seed),
                    load: LcLoad::High,
                    opts: SimOptions {
                        controller: Some(no_panic),
                        ..opts.clone()
                    },
                    designs: vec![DesignKind::Jumanji],
                });
            }
            cells
        }
        Sensitivity => super::studies::sensitivity_jobs(spec.mixes)
            .into_iter()
            .map(|(mix, opts, _)| CellPlan {
                mix,
                load: LcLoad::High,
                opts,
                designs: vec![
                    DesignKind::Static,
                    DesignKind::Jumanji,
                    DesignKind::Jigsaw,
                    DesignKind::Adaptive,
                ],
            })
            .collect(),
        // No analytic cells to pre-compute: Fig. 2 and validate run the
        // detailed simulator (enumerated below), the rest are the
        // closed-form queueing curve, the attack demos, and the tables.
        Fig02 | Fig08 | Fig11 | Fig12 | Table2 | Table3 | Validate => Vec::new(),
    };
    let details = match spec.kind {
        Fig02 => {
            let cfg = SystemConfig::micro2020();
            let input = PlacementInput::example(&cfg);
            let profiles = super::case_study::fig02_profiles(&input);
            let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
            let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
            let opts = super::case_study::fig02_opts(&cfg, spec.accesses);
            spec.designs
                .iter()
                .map(|&design| DetailPlan {
                    design,
                    opts: opts.clone(),
                    profiles: profiles.clone(),
                    cores: cores.clone(),
                    vms: vms.clone(),
                    alloc: CellCache::global().allocate(design, &input),
                })
                .collect()
        }
        Validate => {
            let cfg = SystemConfig::micro2020();
            let input = PlacementInput::example(&cfg);
            let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
            let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
            let mut details = Vec::new();
            // Render order: design outer, mix inner (cell index is
            // `design * mixes + mix`).
            for &design in &super::validate::DESIGNS {
                let alloc = CellCache::global().allocate(design, &input);
                for mix in 0..spec.mixes {
                    details.push(DetailPlan {
                        design,
                        opts: super::validate::detail_opts(&cfg, spec.accesses, mix),
                        profiles: super::validate::profiles_for_mix(&input, mix),
                        cores: cores.clone(),
                        vms: vms.clone(),
                        alloc: alloc.clone(),
                    });
                }
            }
            details
        }
        _ => Vec::new(),
    };
    Ok(FigurePlan {
        kind: spec.kind,
        cells,
        details,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_figures_enumerate_groups_loads_and_seeds() {
        let spec = ExperimentSpec::new(FigureKind::Fig13).mixes(3);
        let plan = of(&spec).expect("plannable");
        // 6 groups × 2 loads × 3 seeds.
        assert_eq!(plan.cells.len(), 36);
        // Static baseline + the four main designs per cell.
        assert!(plan.cells.iter().all(|c| c.designs.len() == 5));
        assert_eq!(plan.runs(), 180);
        // Fig. 15 runs high load only, and its design list already
        // includes Static — no double-count.
        let spec15 = ExperimentSpec::new(FigureKind::Fig15).mixes(3);
        let plan15 = of(&spec15).expect("plannable");
        assert_eq!(plan15.cells.len(), 18);
        assert!(plan15.cells.iter().all(|c| c.designs.len() == 5));
    }

    #[test]
    fn fig13_and_fig14_plans_name_identical_cells() {
        // The two figures run the same matrix and differ only in
        // rendering — the whole point of cross-figure dedup.
        let a = of(&ExperimentSpec::new(FigureKind::Fig13).mixes(2)).expect("plannable");
        let b = of(&ExperimentSpec::new(FigureKind::Fig14).mixes(2)).expect("plannable");
        let keys = |p: &FigurePlan| -> Vec<u128> {
            p.cells.iter().map(CellPlan::experiment_key).collect()
        };
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn seed_changes_cell_identity() {
        let a = of(&ExperimentSpec::new(FigureKind::Fig05)).expect("plannable");
        let b = of(&ExperimentSpec::new(FigureKind::Fig05).seed(9)).expect("plannable");
        assert_ne!(
            a.cells[0].experiment_key(),
            b.cells[0].experiment_key(),
            "the spec seed flows into the mix and options"
        );
    }

    #[test]
    fn fig09_dedups_to_seven_unique_option_sets() {
        // Nine grid rows, but the three "(default)" rows share the base
        // parameters — the plan names them identically so the graph
        // schedules each underlying cell once.
        let plan = of(&ExperimentSpec::new(FigureKind::Fig09).mixes(1)).expect("plannable");
        assert_eq!(plan.cells.len(), 9);
        let mut keys: Vec<u128> = plan.cells.iter().map(CellPlan::experiment_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 7);
    }

    #[test]
    fn unplannable_figures_return_empty_plans() {
        for kind in [
            FigureKind::Fig08,
            FigureKind::Fig11,
            FigureKind::Fig12,
            FigureKind::Table2,
            FigureKind::Table3,
        ] {
            let plan = of(&ExperimentSpec::new(kind)).expect("plan never fails here");
            assert!(plan.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn detailed_figures_plan_detailed_cells() {
        // Fig. 2: one detailed cell per requested design, in render
        // order, each with a distinct allocation identity.
        let spec = ExperimentSpec::new(FigureKind::Fig02).accesses(4_000);
        let plan = of(&spec).expect("plannable");
        assert!(plan.cells.is_empty());
        assert_eq!(plan.details.len(), spec.designs.len());
        let mut keys: Vec<u128> = plan.details.iter().map(DetailPlan::key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), spec.designs.len(), "allocs differ per design");

        // Validate: designs × mixes cells, design-major like the render.
        let vspec = ExperimentSpec::new(FigureKind::Validate)
            .mixes(3)
            .accesses(4_000);
        let vplan = of(&vspec).expect("plannable");
        assert_eq!(vplan.details.len(), 2 * 3);
        assert_eq!(vplan.details[0].design, DesignKind::Adaptive);
        assert_eq!(vplan.details[3].design, DesignKind::Jumanji);
        // Validate's mix-0 cell under a shared design dedups with
        // fig02's cell at equal --accesses: same profiles, same seed,
        // same allocation.
        let shared: Vec<u128> = plan
            .details
            .iter()
            .filter(|d| super::super::validate::DESIGNS.contains(&d.design))
            .map(DetailPlan::key)
            .collect();
        let vkeys: Vec<u128> = vplan.details.iter().map(DetailPlan::key).collect();
        for key in shared {
            assert!(vkeys.contains(&key), "fig02/validate mix-0 cells dedup");
        }
    }

    #[test]
    fn cost_priors_order_designs_sensibly() {
        let opts = SimOptions::default();
        assert!(run_cost(&opts, DesignKind::Jumanji) > run_cost(&opts, DesignKind::Jigsaw));
        assert!(run_cost(&opts, DesignKind::Jigsaw) > run_cost(&opts, DesignKind::Static));
        assert!(experiment_cost(&opts) < run_cost(&opts, DesignKind::Static));
        // Longer horizons cost proportionally more.
        let long = SimOptions {
            duration: Seconds(8.0),
            ..SimOptions::default()
        };
        assert!(run_cost(&long, DesignKind::Static) > run_cost(&opts, DesignKind::Static));
    }
}
