//! A sharded, process-wide concurrent memo map.
//!
//! The experiment suite computes the same pure functions — ratio hulls,
//! placement allocations, whole experiment cells — from many worker
//! threads at once. [`ShardedMap`] gives them one shared memo: a fixed
//! array of mutex-guarded hash maps whose values are
//! [`OnceLock`](std::sync::OnceLock) slots, so a computation runs at most
//! once per process while concurrent readers of *other* keys never
//! contend on the same lock.
//!
//! The shard for a key is chosen from the *high* bits of its
//! [`Mix64Build`](crate::hash::Mix64Build) hash; the map inside the shard
//! consumes the low bits, so shard selection and bucket indexing stay
//! statistically independent.
//!
//! # Examples
//!
//! ```
//! use nuca_types::ShardedMap;
//!
//! let memo: ShardedMap<u64, String> = ShardedMap::new();
//! let a = memo.get_or_compute(7, || "seven".to_string());
//! let b = memo.get_or_compute(7, || unreachable!("memoized"));
//! assert_eq!(a, b);
//! let stats = memo.stats();
//! assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
//! ```

// Every HashMap in this module is Mix64Build-hashed (that is the point
// of ShardedMap); clippy's type ban cannot see hasher parameters.
#![allow(clippy::disallowed_types)]

use crate::hash::Mix64Build;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// log2 of the shard count: 32 shards keeps lock contention negligible for
/// the worker-pool sizes the engine uses (≤ hardware threads) while the
/// whole shard array stays a few cache lines of mutexes.
const SHARD_BITS: u32 = 5;
const SHARDS: usize = 1 << SHARD_BITS;

type Shard<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>, Mix64Build>>;

/// Aggregate counters for one [`ShardedMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MapStats {
    /// Lookups served from an already-computed entry.
    pub hits: u64,
    /// Lookups that had to run (or wait for) the computation.
    pub misses: u64,
    /// Entries currently resident (computed or in flight).
    pub entries: u64,
}

impl MapStats {
    /// Fraction of lookups served from cache; 0 when the map is untouched.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent memoization map sharded over [`SHARDS`] mutexes.
///
/// Values are cloned out on every lookup, so `V` is typically an
/// `Arc<...>` (or another cheap-to-clone handle). The per-key
/// [`OnceLock`](std::sync::OnceLock) guarantees the closure passed to
/// [`get_or_compute`](ShardedMap::get_or_compute) runs at most once per
/// key per process, even under races — losers of the race block until the
/// winner's result is ready and then share it.
///
/// The compute closure must not re-enter the map with the *same* key
/// (that would deadlock on the key's `OnceLock`); computing *different*
/// keys from inside a closure is fine because the shard lock is released
/// before the closure runs.
pub struct ShardedMap<K, V> {
    shards: [Shard<K, V>; SHARDS],
    hasher: Mix64Build,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K, V> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &SHARDS)
            .finish_non_exhaustive()
    }
}

impl<K, V> Default for ShardedMap<K, V>
where
    K: Eq + Hash,
    V: Clone,
{
    fn default() -> Self {
        ShardedMap::new()
    }
}

impl<K, V> ShardedMap<K, V>
where
    K: Eq + Hash,
    V: Clone,
{
    /// An empty map.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            hasher: Mix64Build,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The shard guarding `key`, selected from the high hash bits (the
    /// hash map inside the shard uses the low bits for its buckets).
    fn shard(&self, key: &K) -> &Shard<K, V> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h >> (64 - SHARD_BITS)) as usize]
    }

    /// The memoized value for `key`, computing it with `f` on first use.
    ///
    /// Exactly one caller per key ever runs `f`; concurrent callers for
    /// the same key wait and receive a clone of the winner's result. The
    /// shard lock is held only to find or create the key's slot, never
    /// while `f` runs.
    pub fn get_or_compute(&self, key: K, f: impl FnOnce() -> V) -> V {
        let slot = {
            let mut shard = self.shard(&key).lock().expect("sharded map lock");
            Arc::clone(shard.entry(key).or_default())
        };
        let mut computed = false;
        let value = slot
            .get_or_init(|| {
                computed = true;
                f()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// The value for `key` if it has been computed, without counting a
    /// hit or a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key).lock().expect("sharded map lock");
        shard.get(key).and_then(|slot| slot.get().cloned())
    }

    /// Stores `value` under `key` (write-through), overwriting any
    /// previous entry. Counts as a miss: the caller computed the value.
    pub fn insert(&self, key: K, value: V) {
        let slot = OnceLock::new();
        slot.set(value).ok().expect("fresh OnceLock is empty");
        let mut shard = self.shard(&key).lock().expect("sharded map lock");
        shard.insert(key, Arc::new(slot));
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores `value` under `key` only if no value is resident yet,
    /// without touching the hit/miss counters. This is the warm-start
    /// path: entries loaded from a persistent store are neither hits nor
    /// misses of *this* process, and a seed must never clobber a value a
    /// thread has already computed (or raced to).
    pub fn seed(&self, key: K, value: V) {
        let mut shard = self.shard(&key).lock().expect("sharded map lock");
        let slot = Arc::clone(shard.entry(key).or_default());
        drop(shard);
        let _ = slot.set(value);
    }

    /// A snapshot of every completed entry, for persisting the map.
    /// In-flight computations are skipped.
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("sharded map lock")
                    .iter()
                    .filter_map(|(k, slot)| slot.get().map(|v| (k.clone(), v.clone())))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Number of entries whose computation has completed.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("sharded map lock")
                    .values()
                    .filter(|slot| slot.get().is_some())
                    .count()
            })
            .sum()
    }

    /// True when no completed entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("sharded map lock").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// A snapshot of the hit/miss counters and resident entry count.
    pub fn stats(&self) -> MapStats {
        MapStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_each_key_once_under_concurrency() {
        let map: ShardedMap<u64, Arc<u64>> = ShardedMap::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    for key in 0..64u64 {
                        let v = map.get_or_compute(key, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            Arc::new(key * 3)
                        });
                        assert_eq!(*v, key * 3);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 64, "one compute per key");
        let stats = map.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.hits + stats.misses, 8 * 64);
        assert_eq!(stats.misses, 64);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let map: ShardedMap<u32, u32> = ShardedMap::new();
        assert_eq!(map.stats(), MapStats::default());
        assert_eq!(map.stats().hit_rate(), 0.0);
        map.get_or_compute(1, || 10);
        map.get_or_compute(1, || unreachable!());
        map.get_or_compute(2, || 20);
        let stats = map.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn insert_and_get_round_trip() {
        let map: ShardedMap<String, Arc<str>> = ShardedMap::new();
        assert_eq!(map.get(&"a".to_string()), None);
        map.insert("a".to_string(), Arc::from("alpha"));
        assert_eq!(map.get(&"a".to_string()).as_deref(), Some("alpha"));
        // get() is a pure probe: no hit/miss accounting.
        assert_eq!(map.stats().hits, 0);
        assert_eq!(map.stats().misses, 1);
        // A memoized lookup now hits the inserted value.
        let v = map.get_or_compute("a".to_string(), || unreachable!());
        assert_eq!(&*v, "alpha");
        assert_eq!(map.stats().hits, 1);
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for k in 0..10 {
            map.get_or_compute(k, || k);
        }
        assert_eq!(map.len(), 10);
        assert!(!map.is_empty());
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.stats(), MapStats::default());
    }

    #[test]
    fn seed_and_snapshot_bypass_the_counters() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        map.seed(1, 10);
        map.seed(2, 20);
        // Seeding does not count as a hit or a miss.
        assert_eq!(map.stats().hits + map.stats().misses, 0);
        // A seeded entry serves later lookups as a hit.
        assert_eq!(map.get_or_compute(1, || unreachable!()), 10);
        // Seeding never clobbers a resident value.
        map.seed(1, 99);
        assert_eq!(map.get(&1), Some(10));
        let mut snap = map.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn keys_spread_across_shards() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for k in 0..512 {
            map.get_or_compute(k, || k);
        }
        let occupied = map
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(occupied > SHARDS / 2, "only {occupied} shards occupied");
    }
}
