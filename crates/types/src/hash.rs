//! A cheap deterministic 64-bit mixer used wherever the hardware hashes an
//! address (VTB descriptor indexing, UMON set sampling, bank striping).
//!
//! Table-lookup-plus-hash is all the Jigsaw/Jumanji hardware needs
//! (Sec. IV-A), so a single well-mixed integer hash shared by every
//! component keeps the simulation self-consistent and reproducible.

/// Mixes a 64-bit value (splitmix64 finalizer).
///
/// # Examples
///
/// ```
/// use nuca_types::hash::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
pub fn mix64(v: u64) -> u64 {
    let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 128-bit content fingerprint of a byte string, for cache keys that
/// must identify an input *by value* across threads and call sites.
///
/// Two independent [`mix64`] streams fold the input's 8-byte words (the
/// second stream rotates each word and offsets its state so the streams
/// decorrelate), and the length is mixed in last so a zero-padded tail
/// cannot alias a shorter input. With 128 bits, the collision probability
/// over even millions of distinct keys is ≪ 2⁻⁸⁰ — far below any other
/// failure mode of the process — so fingerprints are safe to use as the
/// *whole* identity of a memoized computation's input.
///
/// # Examples
///
/// ```
/// use nuca_types::hash::fingerprint128;
/// assert_ne!(fingerprint128(b"abc"), fingerprint128(b"abd"));
/// assert_ne!(fingerprint128(b"a"), fingerprint128(b"a\0"));
/// assert_eq!(fingerprint128(b"same"), fingerprint128(b"same"));
/// ```
pub fn fingerprint128(bytes: &[u8]) -> u128 {
    let mut a: u64 = 0x243F_6A88_85A3_08D3; // digits of pi: nothing-up-my-sleeve
    let mut b: u64 = 0x1319_8A2E_0370_7344;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let w = u64::from_le_bytes(word);
        a = mix64(a ^ w);
        b = mix64(b ^ w.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15);
    }
    let len = bytes.len() as u64;
    a = mix64(a ^ len);
    b = mix64(b ^ len.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (u128::from(a) << 64) | u128::from(b)
}

/// A [`std::hash::BuildHasher`] wrapping [`mix64`], for hot-path hash maps
/// keyed by addresses or ids.
///
/// SipHash (the standard-library default) costs tens of nanoseconds per
/// lookup; the simulator's keys are already well-distributed integers, so
/// a single splitmix64 round is both faster and — unlike `RandomState` —
/// deterministic across runs, which the byte-identical-output guarantee
/// requires of every structure on the simulated path.
///
/// # Examples
///
/// ```
/// use nuca_types::hash::Mix64Build;
/// use std::collections::HashMap;
/// let mut m: HashMap<u64, u32, Mix64Build> = HashMap::default();
/// m.insert(7, 1);
/// assert_eq!(m.get(&7), Some(&1));
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct Mix64Build;

impl std::hash::BuildHasher for Mix64Build {
    type Hasher = Mix64Hasher;
    fn build_hasher(&self) -> Mix64Hasher {
        Mix64Hasher { state: 0 }
    }
}

/// The hasher produced by [`Mix64Build`]: folds every written word through
/// [`mix64`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Mix64Hasher {
    state: u64,
}

impl std::hash::Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (e.g. tuple or struct keys): fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = mix64(self.state ^ v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only scratch sets; order never observed
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mixes_low_bits_into_high_entropy() {
        // Consecutive inputs should land in different buckets of a small
        // modulus almost always.
        let buckets: HashSet<u64> = (0..128u64).map(|i| mix64(i) % 128).collect();
        assert!(buckets.len() > 70, "got {} distinct buckets", buckets.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(mix64(0xDEAD_BEEF), mix64(0xDEAD_BEEF));
    }

    #[test]
    fn uniformity_over_banks() {
        // Hashing a large address range modulo 20 banks should be near
        // uniform (within 5% relative).
        let mut counts = [0u64; 20];
        let n = 200_000u64;
        for i in 0..n {
            counts[(mix64(i) % 20) as usize] += 1;
        }
        let expect = n as f64 / 20.0;
        for c in counts {
            assert!((c as f64 - expect).abs() / expect < 0.05);
        }
    }
}
