//! Attack lab: demonstrate the three LLC attack surfaces of the paper
//! (Fig. 10) and how bank isolation defends them.
//!
//! ```sh
//! cargo run --release --example attack_lab
//! ```

use jumanji::attacks::conflict::prime_probe;
use jumanji::attacks::covert::{test_message, transmit, CovertConfig};
use jumanji::attacks::leakage::{leakage_experiment, LeakageConfig};
use jumanji::attacks::port::{run_port_attack, PortAttackConfig};

fn main() {
    println!("== 1. Conflict attack (prime+probe on shared cache sets) ==");
    let victim: Vec<u64> = (100..108u64).map(|i| i * 64).collect();
    let open = prime_probe(8, &victim, false);
    let defended = prime_probe(8, &victim, true);
    let idle = prime_probe(8, &[], true);
    println!(
        "   unpartitioned: attacker sees {} evictions -> victim detected",
        open.evictions
    );
    println!(
        "   way-partitioned: {} evictions with active victim, {} with idle victim -> indistinguishable",
        defended.evictions, idle.evictions
    );

    println!("\n== 2. Port attack (timing on shared bank ports, paper Fig. 11) ==");
    let trace = run_port_attack(PortAttackConfig::default());
    println!(
        "   attacker access time: {:.1} cycles idle, {:.1} when victim on other banks,",
        trace.baseline(),
        trace.other_bank_level()
    );
    println!(
        "   {:.1} when victim floods the attacker's bank -> bank identified: {}",
        trace.same_bank_level(),
        trace.detects_victim(2.0)
    );
    println!("   (way-partitioning does NOT defend this; Jumanji's bank isolation does)");

    println!("\n== 3. Performance leakage (DRRIP set-dueling, paper Fig. 12) ==");
    let r = leakage_experiment(LeakageConfig {
        num_mixes: 12,
        steps: 60_000,
        seed: 5,
    });
    println!(
        "   S-NUCA fixed partition: victim tail varies {:.1}% across co-runner mixes",
        r.snuca_spread() * 100.0
    );
    println!(
        "   D-NUCA own banks:       victim tail varies {:.3}% (private replacement state)",
        r.dnuca_spread() * 100.0
    );

    println!("\n== 4. Cross-VM covert channel over port contention (extension) ==");
    let msg = test_message(64, 42);
    let shared = transmit(CovertConfig::default(), &msg, true);
    let isolated = transmit(CovertConfig::default(), &msg, false);
    println!(
        "   shared bank:   BER {:.1}% at {:.0} bits/Mcycle ({:.0} kb/s at 2.66 GHz)",
        shared.bit_error_rate * 100.0,
        shared.bits_per_mcycle,
        shared.bits_per_mcycle * 2660.0 / 1000.0
    );
    println!(
        "   isolated bank: BER {:.1}% — the channel is dead under Jumanji",
        isolated.bit_error_rate * 100.0
    );
}
