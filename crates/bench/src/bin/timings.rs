//! Times the experiment-heavy figure binaries and writes `BENCH_suite.json`
//! at the repo root (or the directory given with `--out DIR`).
//!
//! Each binary runs with `--mixes 4` so the suite finishes in minutes while
//! still exercising the full mix × design fan-out. If a `BENCH_baseline.json`
//! with the same schema exists next to the output (e.g., measured on an
//! older tree), the report includes the combined speedup against it.
//!
//! Usage: `timings [--out DIR] [--threads N]` (`--threads` is forwarded to
//! the figure binaries).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use jumanji_bench::exec::{flag_value, thread_count};

/// The binaries whose wall-clock the suite tracks, in run order.
const SUITE: &[&str] = &[
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "sensitivity",
    "ablation",
];

/// Mix count forwarded to every binary: small enough for a quick suite,
/// large enough to exercise the fan-out.
const SUITE_MIXES: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = flag_value(&args, "--out").map_or_else(|| PathBuf::from("."), PathBuf::from);
    let threads = thread_count();

    let bin_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("binaries live in a directory")
        .to_path_buf();

    let mut rows: Vec<(String, f64)> = Vec::new();
    for name in SUITE {
        let t = Instant::now();
        let status = Command::new(bin_dir.join(name))
            .args(["--mixes", &SUITE_MIXES.to_string()])
            .args(["--threads", &threads.to_string()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert!(status.success(), "{name} exited with {status}");
        let secs = t.elapsed().as_secs_f64();
        eprintln!("{name}: {secs:.2}s");
        rows.push((name.to_string(), secs));
    }
    let total: f64 = rows.iter().map(|(_, s)| s).sum();
    eprintln!("total: {total:.2}s");

    let baseline = read_baseline(&out_dir.join("BENCH_baseline.json"));
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"mixes\": {SUITE_MIXES},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"binaries\": {\n");
    for (i, (name, secs)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"seconds\": {secs:.3} }}{comma}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_seconds\": {total:.3}"));
    if let Some(base_total) = baseline {
        json.push_str(&format!(
            ",\n  \"baseline_total_seconds\": {base_total:.3},\n  \"speedup_vs_baseline\": {:.2}",
            base_total / total
        ));
        eprintln!("speedup vs baseline: {:.2}x", base_total / total);
    }
    json.push_str("\n}\n");

    let out_path = out_dir.join("BENCH_suite.json");
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
    f.write_all(json.as_bytes()).expect("write suite report");
    eprintln!("wrote {}", out_path.display());
}

/// Pulls `total_seconds` out of a baseline report, if one exists.
///
/// The file is our own schema, so a full JSON parser would be overkill
/// (and the container bakes in no JSON crate): scan for the key and parse
/// the number after the colon.
fn read_baseline(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"total_seconds\":";
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == ' ' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
