//! Execution-driven detailed simulation.
//!
//! Where the epoch model ([`crate::perf`]) evaluates closed-form formulas,
//! this module actually *drives the hardware*: per-application synthetic
//! address streams ([`nuca_workloads::StreamGenerator`]) are translated by
//! real [`nuca_vc::PlacementDescriptor`]s, queue on per-bank
//! [`nuca_noc::BankPorts`], hit or miss in real [`nuca_cache::CacheBank`]s
//! with way-partitioning, and pay DRAM channel occupancy on misses.
//!
//! It exists for three reasons:
//!
//! 1. **Cross-validation** — the detailed miss ratios and latencies must
//!    agree with the analytic model where their domains overlap (see
//!    `tests/substrate_crosscheck.rs` and the `validate` binary).
//! 2. **Security ground truth** — bank occupancy comes from actual cache
//!    contents, so VM isolation can be checked against real state rather
//!    than the allocation's intent.
//! 3. **Attack realism** — the port/leakage demonstrations share these
//!    structures.

use crate::perf::Profile;
use jumanji_core::Allocation;
use jumanji_telemetry::{Event, NoopSink, Telemetry};
use nuca_cache::{BankConfig, CacheBank, PartitionId, ReplPolicy, WayMask};
use nuca_mem::MemSystem;
use nuca_noc::{BankPorts, MeshNoc};
use nuca_types::{AppId, CoreId, SystemConfig, VmId};
use nuca_vc::{page_of_line, PlacementDescriptor, Tlb, Vtb};
use nuca_workloads::StreamGenerator;

/// Options for one detailed run.
#[derive(Debug, Clone)]
pub struct DetailOptions {
    /// Machine configuration.
    pub cfg: SystemConfig,
    /// LLC accesses each application issues.
    pub accesses_per_app: usize,
    /// Replacement policy in the LLC banks.
    pub policy: ReplPolicy,
    /// Fraction of accesses that are writes (dirty their lines).
    pub write_frac: f64,
    /// Entries in each core's TLB (which carries the page's VC id).
    pub tlb_entries: usize,
    /// Page-walk latency charged on a TLB miss, in cycles.
    pub tlb_miss_cycles: u64,
    /// Stream RNG seed.
    pub seed: u64,
}

impl Default for DetailOptions {
    fn default() -> DetailOptions {
        DetailOptions {
            cfg: SystemConfig::micro2020(),
            accesses_per_app: 50_000,
            policy: ReplPolicy::Drrip,
            write_frac: 0.3,
            tlb_entries: 64,
            tlb_miss_cycles: 50,
            seed: 1,
        }
    }
}

/// Per-application statistics from a detailed run.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct DetailAppStats {
    /// LLC accesses issued.
    pub accesses: u64,
    /// LLC misses.
    pub misses: u64,
    /// Summed end-to-end access latency in cycles.
    pub total_latency: f64,
    /// Summed hop distance of the accesses.
    pub total_hops: f64,
    /// Cycles spent waiting on bank ports.
    pub port_wait: u64,
    /// TLB misses (each pays a page walk).
    pub tlb_misses: u64,
    /// Dirty lines written back to memory on eviction.
    pub writebacks: u64,
}

impl DetailAppStats {
    /// Measured miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Average access latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency / self.accesses as f64
        }
    }

    /// Average hops to data.
    pub fn avg_hops(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_hops / self.accesses as f64
        }
    }
}

/// The outcome of a detailed run.
#[derive(Debug, Clone)]
pub struct DetailReport {
    /// Per-application statistics, indexed by `AppId`.
    pub apps: Vec<DetailAppStats>,
    /// For each bank, the set of apps with at least one resident line at
    /// the end of the run — *observed* occupancy, from real cache state.
    pub bank_occupants: Vec<Vec<AppId>>,
}

impl DetailReport {
    /// True if no bank holds lines from two different VMs (ground-truth
    /// check of Jumanji's isolation guarantee).
    pub fn vm_isolated(&self, vms: &[VmId]) -> bool {
        self.bank_occupants.iter().all(|occ| {
            let mut it = occ.iter().map(|a| vms[a.index()]);
            match it.next() {
                Some(first) => it.all(|v| v == first),
                None => true,
            }
        })
    }
}

/// Builds per-bank way masks realizing `alloc` (partitions rounded to
/// whole ways; pools share one mask among members).
fn build_masks(cfg: &SystemConfig, alloc: &Allocation, n_apps: usize) -> Vec<Vec<WayMask>> {
    let nbanks = cfg.llc.num_banks;
    let way_bytes = cfg.llc.way_bytes() as f64;
    let ways = cfg.llc.ways;
    // masks[bank][app]
    let mut masks = vec![vec![WayMask(0); n_apps]; nbanks];
    let mut next_way = vec![0u32; nbanks];
    let grant = |bank: usize, bytes: f64, next_way: &mut Vec<u32>| -> WayMask {
        let want = (bytes / way_bytes).round() as u32;
        let have = ways - next_way[bank];
        let take = want.min(have);
        let mask = WayMask::range(next_way[bank], take);
        next_way[bank] += take;
        mask
    };
    for a in &alloc.apps {
        for &(bank, bytes) in &a.placement {
            if bytes > 0.0 {
                masks[bank.index()][a.app.index()] = grant(bank.index(), bytes, &mut next_way);
            }
        }
    }
    for pool in &alloc.pools {
        for &(bank, bytes) in &pool.placement {
            if bytes > 0.0 {
                let mask = grant(bank.index(), bytes, &mut next_way);
                for m in &pool.members {
                    masks[bank.index()][m.index()] = mask;
                }
            }
        }
    }
    masks
}

/// Runs the detailed simulation of `alloc` for the given applications.
///
/// `apps` supplies each application's behavioural profile, core, and VM in
/// `AppId` order. Applications issue their streams round-robin (one access
/// per turn), each with its own clock; contention meets at the banks'
/// ports and the memory channels.
///
/// Untraced callers pass [`&NoopSink`](NoopSink); with an enabled sink,
/// per-bank contention counters ([`Event::DetailBank`]) are accumulated
/// during the run and emitted at the end, one event per bank. Tracing
/// never perturbs the simulation — a traced run returns a bit-identical
/// [`DetailReport`].
///
/// # Panics
///
/// Panics if `apps`, `cores`, and the allocation disagree in length.
pub fn run_detailed<T: Telemetry + ?Sized>(
    opts: &DetailOptions,
    profiles: &[Profile],
    cores: &[CoreId],
    vms: &[VmId],
    alloc: &Allocation,
    tel: &T,
) -> DetailReport {
    // Streams realize each profile's miss-curve shape.
    let mut gens: Vec<StreamGenerator> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let shape = match p {
                Profile::Batch(b) => &b.shape,
                Profile::Lc(l, _) => &l.shape,
            };
            StreamGenerator::from_shape(shape, opts.cfg.llc.line_bytes, i, opts.seed)
        })
        .collect();
    run_with(opts, profiles.len(), cores, vms, alloc, tel, |a, _| {
        gens[a].next_line()
    })
}

/// Runs the detailed simulation on user-supplied address traces (one trace
/// of line addresses per application, cycled if shorter than
/// `opts.accesses_per_app`).
///
/// # Panics
///
/// Panics if any trace is empty or counts disagree.
pub fn run_traces(
    opts: &DetailOptions,
    traces: &[Vec<nuca_cache::LineAddr>],
    cores: &[CoreId],
    vms: &[VmId],
    alloc: &Allocation,
) -> DetailReport {
    assert!(
        traces.iter().all(|t| !t.is_empty()),
        "every trace needs at least one access"
    );
    run_with(opts, traces.len(), cores, vms, alloc, &NoopSink, |a, k| {
        traces[a][k % traces[a].len()]
    })
}

/// Per-bank contention counters accumulated during a traced run.
#[derive(Debug, Default, Clone, Copy)]
struct BankTrace {
    accesses: u64,
    misses: u64,
    port_conflicts: u64,
    port_wait_cycles: u64,
}

/// Shared engine: `next(app, access_index)` supplies the address stream.
fn run_with<T: Telemetry + ?Sized>(
    opts: &DetailOptions,
    n: usize,
    cores: &[CoreId],
    vms: &[VmId],
    alloc: &Allocation,
    tel: &T,
    mut next: impl FnMut(usize, usize) -> nuca_cache::LineAddr,
) -> DetailReport {
    let tracing = tel.enabled();
    let cfg = &opts.cfg;
    assert_eq!(n, cores.len(), "one core per app");
    assert_eq!(n, vms.len(), "one VM per app");
    assert_eq!(n, alloc.apps.len(), "allocation covers every app");
    let noc = MeshNoc::new(cfg);
    let mem = MemSystem::new(cfg);
    let mesh = cfg.mesh();

    // Hardware state.
    let mut banks: Vec<CacheBank> = (0..cfg.llc.num_banks)
        .map(|_| {
            CacheBank::new(BankConfig {
                sets: cfg.llc.sets_per_bank() as usize,
                ways: cfg.llc.ways,
                policy: opts.policy,
            })
        })
        .collect();
    let masks = build_masks(cfg, alloc, n);
    for (b, bank) in banks.iter_mut().enumerate() {
        for (a, &mask) in masks[b].iter().enumerate() {
            bank.set_mask(PartitionId(a), mask);
        }
    }
    let mut ports: Vec<BankPorts> = (0..cfg.llc.num_banks)
        .map(|_| BankPorts::new(cfg.llc.bank_ports, nuca_types::Cycles(4)))
        .collect();
    let mut channels: Vec<BankPorts> = (0..mem.num_controllers())
        .map(|_| mem.event_channel())
        .collect();

    // Virtual caches: one descriptor per app from its placement shares.
    let mut vtb = Vtb::new();
    for a in 0..n {
        let placement = alloc.placement_of(AppId(a));
        let desc = if placement.iter().any(|(_, b)| *b > 0.0) {
            PlacementDescriptor::from_shares(placement)
        } else {
            // No LLC space at all: stripe (accesses will simply miss).
            PlacementDescriptor::uniform(cfg.llc.num_banks)
        };
        vtb.install(AppId(a), desc);
    }

    // Per-app clocks.
    let mut clocks = vec![0u64; n];
    let mut stats = vec![DetailAppStats::default(); n];
    let mut tlbs: Vec<Tlb> = (0..n).map(|_| Tlb::new(opts.tlb_entries)).collect();
    // Cheap deterministic write-marking LCG. The draw is a 31-bit integer
    // x compared against `frac` as x * 2^-31 < frac; both sides of that
    // float compare are exact (scaling by a power of two never rounds), so
    // it is equivalent to the pure integer compare x < ceil(frac * 2^31) —
    // bit-identical outcome, no int→float conversion in the loop.
    let wthresh = (opts.write_frac * (1u64 << 31) as f64).ceil() as u64;
    let mut wstate: u64 = 0x5DEECE66D ^ opts.seed;
    let mut is_write = || {
        wstate = wstate
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (wstate >> 33) < wthresh
    };

    // Everything the per-access code needs that depends only on
    // (core, bank) or bank alone is table-driven: the mesh geometry and
    // NoC latencies are loop invariants, so the hot loop does flat-array
    // reads instead of re-deriving hop counts and flit serialization.
    let nbanks = cfg.llc.num_banks;
    let ncores = cores.iter().map(|c| c.index()).max().unwrap_or(0) + 1;
    let mut hops_tab = vec![0u64; ncores * nbanks];
    let mut req_tab = vec![0u64; ncores * nbanks];
    let mut tail_tab = vec![0u64; ncores * nbanks];
    for c in 0..ncores {
        for b in 0..nbanks {
            let hops = mesh.hops_core_to_bank(CoreId(c), nuca_types::BankId(b));
            hops_tab[c * nbanks + b] = hops as u64;
            req_tab[c * nbanks + b] = noc.oneway(hops, 8).as_u64();
            tail_tab[c * nbanks + b] =
                cfg.llc.bank_latency.as_u64() + noc.oneway(hops, 64).as_u64();
        }
    }
    let mut corner_tab = vec![0u64; nbanks];
    let mut pen_tab = vec![0u64; nbanks];
    let mut ctrl_tab = vec![0usize; nbanks];
    for b in 0..nbanks {
        let bank = nuca_types::BankId(b);
        corner_tab[b] = noc
            .oneway(mesh.hops_to_nearest_corner(mesh.bank_tile(bank)), 8)
            .as_u64();
        pen_tab[b] = noc.miss_penalty(bank).as_u64();
        ctrl_tab[b] = mem.controller_for_bank(bank);
    }
    let core_base: Vec<usize> = cores.iter().map(|c| c.index() * nbanks).collect();

    // Latency and hop totals are integers; accumulate them as integers and
    // convert once at the end. Summing exact integers below 2^53 in f64
    // would give the same bits, so the reported floats are unchanged — but
    // the loop drops two int→float conversions and float adds per access.
    let mut lat_acc = vec![0u64; n];
    let mut hop_acc = vec![0u64; n];
    // Tracing-only per-bank counters; the hot loop touches them behind
    // `tracing`, which constant-folds away under `NoopSink`.
    let mut bank_trace = vec![BankTrace::default(); if tracing { nbanks } else { 0 }];

    for k in 0..opts.accesses_per_app {
        for a in 0..n {
            let line = next(a, k);
            // The TLB carries the page's VC id; a miss pays a page walk
            // before the LLC access can even be routed (Sec. IV-A).
            let tlb_hit = tlbs[a].access(page_of_line(line));
            let walk = if tlb_hit { 0 } else { opts.tlb_miss_cycles };
            clocks[a] += walk;
            let bank = vtb.lookup(AppId(a), line);
            let bi = bank.index();
            let cell = core_base[a] + bi;
            let hops = hops_tab[cell];
            let req = req_tab[cell];
            let arrival = clocks[a] + req;
            let grant = ports[bi].request(nuca_types::Cycles(arrival));
            let wait = grant.start.as_u64() - arrival;
            let write = is_write();
            let outcome = banks[bi].access_untracked(line, PartitionId(a), write);
            let mut latency = req + wait + tail_tab[cell];
            if !outcome.hit {
                let ctrl = ctrl_tab[bi];
                let mem_arrival = grant.done.as_u64() + corner_tab[bi];
                let mgrant = channels[ctrl].request(nuca_types::Cycles(mem_arrival));
                let mwait = mgrant.start.as_u64() - mem_arrival;
                latency += pen_tab[bi] + mwait;
                if outcome.writeback {
                    // Write-backs consume channel bandwidth off the
                    // critical path; charge occupancy only.
                    channels[ctrl].request(nuca_types::Cycles(mgrant.done.as_u64()));
                    stats[a].writebacks += 1;
                }
            }
            if tracing {
                let t = &mut bank_trace[bi];
                t.accesses += 1;
                t.misses += u64::from(!outcome.hit);
                t.port_conflicts += u64::from(wait > 0);
                t.port_wait_cycles += wait;
            }
            let s = &mut stats[a];
            s.accesses += 1;
            s.misses += u64::from(!outcome.hit);
            s.port_wait += wait;
            s.tlb_misses += u64::from(!tlb_hit);
            lat_acc[a] += latency + walk;
            hop_acc[a] += hops;
            clocks[a] += latency;
        }
    }
    for (s, (&lat, &hop)) in stats.iter_mut().zip(lat_acc.iter().zip(&hop_acc)) {
        s.total_latency = lat as f64;
        s.total_hops = hop as f64;
    }
    if tracing {
        for (b, t) in bank_trace.iter().enumerate() {
            tel.emit(&Event::DetailBank {
                bank: b,
                accesses: t.accesses,
                misses: t.misses,
                port_conflicts: t.port_conflicts,
                port_wait_cycles: t.port_wait_cycles,
            });
        }
    }

    let bank_occupants = (0..cfg.llc.num_banks)
        .map(|b| {
            (0..n)
                .map(AppId)
                .filter(|a| banks[b].occupancy(PartitionId(a.index())) > 0)
                .collect()
        })
        .collect();
    DetailReport {
        apps: stats,
        bank_occupants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji_core::{DesignKind, PlacementInput};
    use nuca_workloads::{spec2006, tailbench, LcLoad};

    fn setup() -> (
        SystemConfig,
        Vec<Profile>,
        Vec<CoreId>,
        Vec<VmId>,
        PlacementInput,
    ) {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let lc = tailbench();
        let batch = spec2006();
        let mut profiles = Vec::new();
        for (i, a) in input.apps.iter().enumerate() {
            profiles.push(match a.kind {
                jumanji_core::AppKind::LatencyCritical => {
                    Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High)
                }
                jumanji_core::AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
            });
        }
        let cores = input.apps.iter().map(|a| a.core).collect();
        let vms = input.apps.iter().map(|a| a.vm).collect();
        (cfg, profiles, cores, vms, input)
    }

    fn quick_opts(cfg: &SystemConfig) -> DetailOptions {
        DetailOptions {
            cfg: cfg.clone(),
            accesses_per_app: 20_000,
            policy: ReplPolicy::Drrip,
            seed: 3,
            ..DetailOptions::default()
        }
    }

    #[test]
    fn jumanji_allocation_isolates_vms_in_real_cache_state() {
        let (cfg, profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Jumanji.allocate(&input);
        let report = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &alloc,
            &NoopSink,
        );
        assert!(
            report.vm_isolated(&vms),
            "occupancy: {:?}",
            report.bank_occupants
        );
    }

    #[test]
    fn snuca_allocation_mixes_vms_in_real_cache_state() {
        let (cfg, profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Adaptive.allocate(&input);
        let report = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &alloc,
            &NoopSink,
        );
        assert!(!report.vm_isolated(&vms));
    }

    #[test]
    fn dnuca_measured_latency_beats_snuca() {
        let (cfg, profiles, cores, vms, input) = setup();
        let snuca = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &DesignKind::Adaptive.allocate(&input),
            &NoopSink,
        );
        let dnuca = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &DesignKind::Jumanji.allocate(&input),
            &NoopSink,
        );
        let avg = |r: &DetailReport| {
            r.apps.iter().map(|a| a.avg_hops()).sum::<f64>() / r.apps.len() as f64
        };
        assert!(
            avg(&dnuca) < 0.6 * avg(&snuca),
            "dnuca hops {:.2} vs snuca {:.2}",
            avg(&dnuca),
            avg(&snuca)
        );
    }

    #[test]
    fn measured_miss_ratio_tracks_analytic_shape() {
        let (cfg, profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Jumanji.allocate(&input);
        let mut opts = quick_opts(&cfg);
        opts.accesses_per_app = 60_000;
        let report = run_detailed(&opts, &profiles, &cores, &vms, &alloc, &NoopSink);
        let mut checked = 0;
        for a in &input.apps {
            let cap = alloc.of(a.id).total_bytes();
            if cap < 512.0 * 1024.0 {
                continue; // tiny allocations are cold-miss dominated
            }
            let want = profiles[a.id.index()].miss_ratio(cap);
            let got = report.apps[a.id.index()].miss_ratio();
            assert!(
                (got - want).abs() < 0.3,
                "{}: measured {got:.3} vs analytic {want:.3} at {cap:.0} B",
                a.id
            );
            checked += 1;
        }
        assert!(checked >= 6, "checked only {checked} apps");
    }

    #[test]
    fn trace_driven_mode_matches_known_traces() {
        let (cfg, _profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Jumanji.allocate(&input);
        // Every app scans a tiny 8-line working set: after the cold pass,
        // everything hits.
        let traces: Vec<Vec<u64>> = (0..20u64)
            .map(|a| (0..8u64).map(|l| (a + 1) * 1_000_000 + l).collect())
            .collect();
        let mut opts = quick_opts(&cfg);
        opts.accesses_per_app = 4_000;
        let report = run_traces(&opts, &traces, &cores, &vms, &alloc);
        for (i, s) in report.apps.iter().enumerate() {
            assert!(
                s.miss_ratio() < 0.02,
                "app {i}: tiny scan should almost always hit ({:.3})",
                s.miss_ratio()
            );
        }
    }

    #[test]
    fn detailed_run_is_deterministic() {
        let (cfg, profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Jumanji.allocate(&input);
        let r1 = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &alloc,
            &NoopSink,
        );
        let r2 = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &alloc,
            &NoopSink,
        );
        assert_eq!(r1.apps, r2.apps);
    }

    #[test]
    fn writebacks_occur_and_scale_with_write_fraction() {
        let (cfg, profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Jumanji.allocate(&input);
        let mut lo = quick_opts(&cfg);
        lo.write_frac = 0.05;
        let mut hi = quick_opts(&cfg);
        hi.write_frac = 0.6;
        let rl = run_detailed(&lo, &profiles, &cores, &vms, &alloc, &NoopSink);
        let rh = run_detailed(&hi, &profiles, &cores, &vms, &alloc, &NoopSink);
        let wb = |r: &DetailReport| r.apps.iter().map(|a| a.writebacks).sum::<u64>();
        assert!(wb(&rh) > 2 * wb(&rl), "lo {} hi {}", wb(&rl), wb(&rh));
        assert!(wb(&rl) > 0);
    }

    #[test]
    fn tlbs_capture_page_locality() {
        let (cfg, profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Jumanji.allocate(&input);
        let report = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &alloc,
            &NoopSink,
        );
        for (i, s) in report.apps.iter().enumerate() {
            // Hot regions have strong page locality; even streaming apps
            // get some spatial reuse within a page. TLB misses must be
            // non-trivial but far below 100%.
            let rate = s.tlb_misses as f64 / s.accesses as f64;
            assert!(rate < 0.9, "app {i}: tlb miss rate {rate}");
        }
        let any_misses: u64 = report.apps.iter().map(|s| s.tlb_misses).sum();
        assert!(any_misses > 0);
    }

    #[test]
    fn port_waits_are_recorded() {
        let (cfg, profiles, cores, vms, input) = setup();
        let alloc = DesignKind::Adaptive.allocate(&input);
        let report = run_detailed(
            &quick_opts(&cfg),
            &profiles,
            &cores,
            &vms,
            &alloc,
            &NoopSink,
        );
        let total_wait: u64 = report.apps.iter().map(|a| a.port_wait).sum();
        // Twenty apps striped over twenty banks collide occasionally.
        assert!(total_wait > 0, "some port contention must occur");
    }
}
