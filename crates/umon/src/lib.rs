//! Utility monitors (UMONs): sampled hardware miss-curve profilers.
//!
//! Jumanji borrows Jigsaw's UMONs \[8, 69\] to learn how each virtual cache
//! would behave at different allocations (Sec. IV-A): the monitor samples
//! ≈1 % of accesses into a small auxiliary tag directory and counts hits by
//! LRU stack position, yielding an LRU miss curve at way granularity. The
//! DRRIP curve the allocator actually uses is that curve's convex hull
//! (Talus \[7\]).
//!
//! # Examples
//!
//! ```
//! use nuca_umon::Umon;
//!
//! let mut umon = Umon::new(32, 32, 1024);
//! // A small working set that fits in a few ways.
//! for _ in 0..200 {
//!     for line in 0..512u64 {
//!         umon.observe(line);
//!     }
//! }
//! let curve = umon.lru_curve();
//! // More capacity never hurts, and the curve flattens once the set fits.
//! assert!(curve.at(32) <= curve.at(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nuca_cache::{LineAddr, MissCurve};

/// A sampled, set-associative utility monitor.
///
/// The monitor emulates `ways`-way fully-LRU auxiliary sets for a cache
/// with `modeled_sets` sets, but only instantiates `monitor_sets` of them
/// (sampling factor `modeled_sets / monitor_sets`). Hits increment a
/// counter at the line's LRU depth; the miss curve at `w` ways is
/// `misses + Σ_{d ≥ w} hits[d]`, scaled back up by the sampling factor.
#[derive(Debug, Clone)]
pub struct Umon {
    ways: usize,
    monitor_sets: usize,
    modeled_sets: usize,
    /// One LRU array per monitored set; index 0 is MRU.
    sets: Vec<Vec<LineAddr>>,
    hit_at_depth: Vec<u64>,
    misses: u64,
    sampled: u64,
    observed: u64,
}

impl Umon {
    /// Creates a monitor with `ways` ways per set, instantiating
    /// `monitor_sets` out of `modeled_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `monitor_sets > modeled_sets`.
    pub fn new(ways: usize, monitor_sets: usize, modeled_sets: usize) -> Umon {
        assert!(ways > 0 && monitor_sets > 0 && modeled_sets > 0);
        assert!(monitor_sets <= modeled_sets);
        Umon {
            ways,
            monitor_sets,
            modeled_sets,
            sets: vec![Vec::with_capacity(ways); monitor_sets],
            hit_at_depth: vec![0; ways],
            misses: 0,
            sampled: 0,
            observed: 0,
        }
    }

    /// Number of ways the monitor models.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total accesses offered to the monitor (sampled or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Accesses that fell into a monitored set.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Cheap deterministic line hash (xorshift-multiply), spreading lines
    /// across modeled sets the way the VTB's hash spreads them over
    /// descriptor entries.
    #[inline]
    fn hash(line: LineAddr) -> u64 {
        let mut x = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        x ^ (x >> 29)
    }

    /// Observes one access; updates monitor state if the line maps to a
    /// monitored set.
    pub fn observe(&mut self, line: LineAddr) {
        self.observed += 1;
        let set = (Self::hash(line) % self.modeled_sets as u64) as usize;
        if !set.is_multiple_of(self.modeled_sets / self.monitor_sets) {
            return;
        }
        let mset = set / (self.modeled_sets / self.monitor_sets);
        let mset = mset % self.monitor_sets;
        self.sampled += 1;
        let arr = &mut self.sets[mset];
        if let Some(depth) = arr.iter().position(|&l| l == line) {
            arr.remove(depth);
            arr.insert(0, line);
            self.hit_at_depth[depth] += 1;
        } else {
            self.misses += 1;
            if arr.len() == self.ways {
                arr.pop();
            }
            arr.insert(0, line);
        }
    }

    /// Sampling upscale factor.
    fn scale(&self) -> f64 {
        self.modeled_sets as f64 / self.monitor_sets as f64
    }

    /// LRU miss curve at way granularity: point `w` is the estimated miss
    /// count with `w` ways. `unit_bytes` is `modeled_sets × 64` per way.
    pub fn lru_curve(&self) -> MissCurve {
        let unit_bytes = (self.modeled_sets * 64) as u64;
        let mut points = Vec::with_capacity(self.ways + 1);
        for w in 0..=self.ways {
            let reuse: u64 = self.hit_at_depth[w..].iter().sum();
            points.push((self.misses + reuse) as f64 * self.scale());
        }
        MissCurve::new(unit_bytes, points)
    }

    /// DRRIP miss-curve approximation: the convex hull of the LRU curve
    /// (Talus, paper Sec. IV-A).
    pub fn drrip_curve(&self) -> MissCurve {
        self.lru_curve().convex_hull()
    }

    /// Clears all counters and tags (done at each reconfiguration epoch).
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hit_at_depth.fill(0);
        self.misses = 0;
        self.sampled = 0;
        self.observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_cache::StackProfiler;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn unsampled_monitor_matches_exact_profiler() {
        // With monitor_sets == modeled_sets == 1, the UMON *is* a Mattson
        // profiler truncated at `ways`.
        let mut umon = Umon::new(8, 1, 1);
        let mut exact = StackProfiler::new();
        let stream: Vec<u64> = (0..2000u64).map(|i| (i * 13 + i / 7) % 23).collect();
        for &l in &stream {
            umon.observe(l);
            exact.record(l);
        }
        let ucurve = umon.lru_curve();
        let ecurve = exact.miss_curve(1, 8);
        for w in 0..=8usize {
            assert_eq!(ucurve.at(w), ecurve.at(w), "way {w}");
        }
    }

    #[test]
    fn sampled_estimate_tracks_exact_curve() {
        let mut umon = Umon::new(16, 64, 512);
        let mut exact = StackProfiler::new();
        let mut rng = StdRng::seed_from_u64(42);
        // Zipf-ish reuse: hot region + occasional cold lines.
        for i in 0..400_000u64 {
            let line = if rng.gen_bool(0.8) {
                rng.gen_range(0..4096u64)
            } else {
                1_000_000 + i
            };
            umon.observe(line);
            exact.record(line);
        }
        let est = umon.lru_curve();
        // Exact curve at the same capacity granularity (512 sets * 1 way
        // = 512 lines per unit).
        let truth = exact.miss_curve(512, 16);
        for w in [0usize, 4, 8, 16] {
            let e = est.at(w);
            let t = truth.at(w);
            let rel = (e - t).abs() / t.max(1.0);
            assert!(rel < 0.25, "way {w}: est {e:.0} vs true {t:.0} ({rel:.2})");
        }
    }

    #[test]
    fn sampling_rate_is_close_to_nominal() {
        let mut umon = Umon::new(8, 8, 512);
        for i in 0..100_000u64 {
            umon.observe(i);
        }
        let rate = umon.sampled() as f64 / umon.observed() as f64;
        let nominal = 8.0 / 512.0;
        assert!((rate - nominal).abs() / nominal < 0.2, "rate {rate}");
    }

    #[test]
    fn drrip_curve_is_hull() {
        let mut umon = Umon::new(8, 1, 1);
        for _ in 0..100 {
            for l in 0..6u64 {
                umon.observe(l);
            }
        }
        let drrip = umon.drrip_curve();
        assert!(drrip.is_convex());
        let lru = umon.lru_curve();
        for w in 0..=8usize {
            assert!(drrip.at(w) <= lru.at(w) + 1e-9);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut umon = Umon::new(4, 1, 1);
        umon.observe(1);
        umon.observe(1);
        umon.reset();
        assert_eq!(umon.observed(), 0);
        assert_eq!(umon.sampled(), 0);
        assert_eq!(umon.lru_curve().at(0), 0.0);
    }
}
