//! A detailed set-associative cache bank with way-partitioning and
//! set-dueling DRRIP.
//!
//! The bank models exactly the shared microarchitectural state the paper's
//! security analysis cares about (Fig. 10):
//!
//! - **Cache sets** (① conflict attacks): partitions restrict *insertions*
//!   to a [`WayMask`], like Intel CAT, so disjoint masks eliminate conflict
//!   evictions between partitions.
//! - **Replacement state** (③ performance leakage): DRRIP's PSEL counter is
//!   a single, bank-wide register shared by *all* partitions, so co-running
//!   applications still influence each other's replacement policy even when
//!   their way masks are disjoint.
//!
//! Bank *port* contention (② port attacks) is timing behaviour and is
//! modeled by `nuca-noc`'s port simulator.

use crate::replacement::{InsertFlavor, ReplState, BRRIP_LONG_INTERVAL, RRPV_MAX};
use crate::{LineAddr, ReplPolicy};
use core::fmt;

/// Identifies a way-partition within a bank (e.g., one per application or
/// one per VM, depending on the LLC design).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub usize);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part{}", self.0)
    }
}

/// A bitmask over the ways of one bank, restricting where a partition may
/// insert lines (Intel CAT-style capacity bitmask).
///
/// # Examples
///
/// ```
/// use nuca_cache::WayMask;
/// let m = WayMask::first_n(4);
/// assert_eq!(m.count(), 4);
/// assert!(m.contains(3));
/// assert!(!m.contains(4));
/// assert!(WayMask::first_n(2).intersects(WayMask::first_n(4)));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMask(pub u64);

impl WayMask {
    /// A mask allowing every way of a `ways`-way bank.
    ///
    /// # Panics
    ///
    /// Panics if `ways > 64`.
    pub fn all(ways: u32) -> WayMask {
        assert!(ways <= 64, "way masks support at most 64 ways");
        if ways == 64 {
            WayMask(u64::MAX)
        } else {
            WayMask((1u64 << ways) - 1)
        }
    }

    /// A mask of the lowest `n` ways.
    pub fn first_n(n: u32) -> WayMask {
        WayMask::all(n)
    }

    /// A contiguous mask of `n` ways starting at way `start`.
    pub fn range(start: u32, n: u32) -> WayMask {
        WayMask(WayMask::all(n).0 << start)
    }

    /// Number of ways in the mask.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether way `w` is in the mask.
    pub fn contains(self, w: u32) -> bool {
        w < 64 && (self.0 >> w) & 1 == 1
    }

    /// Whether two masks share any way.
    pub fn intersects(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no ways are allowed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Configuration of one [`CacheBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Number of sets.
    pub sets: usize,
    /// Number of ways (≤ 64).
    pub ways: u32,
    /// Replacement policy.
    pub policy: ReplPolicy,
}

/// Result of one access to a [`CacheBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// A line evicted to make room for the fill, if any.
    pub evicted: Option<(LineAddr, PartitionId)>,
    /// Whether the evicted line was dirty and must be written back to
    /// memory.
    pub writeback: bool,
}

/// Aggregate and per-partition access statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BankStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Per-partition `(accesses, hits)`.
    pub per_partition: Vec<(u64, u64)>,
}

impl BankStats {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio over all partitions (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Miss ratio of one partition (0 when it made no accesses).
    pub fn partition_miss_ratio(&self, part: PartitionId) -> f64 {
        match self.per_partition.get(part.0) {
            Some(&(acc, hits)) if acc > 0 => (acc - hits) as f64 / acc as f64,
            _ => 0.0,
        }
    }

    fn record(&mut self, part: PartitionId, hit: bool) {
        self.accesses += 1;
        if self.per_partition.len() <= part.0 {
            self.per_partition.resize(part.0 + 1, (0, 0));
        }
        // Branch-free: `hit` alternates unpredictably on the simulator hot
        // path, so counting with an add beats a ~50% mispredicted branch.
        let entry = &mut self.per_partition[part.0];
        entry.0 += 1;
        entry.1 += u64::from(hit);
        self.hits += u64::from(hit);
    }
}

/// A set-associative cache bank with way-partitioning and (for DRRIP) a
/// bank-wide shared set-dueling PSEL counter.
///
/// See the crate-level docs for the security-relevant sharing this
/// structure models.
///
/// # Layout
///
/// The bank is a flat arena rather than a `Vec<Vec<Option<Line>>>`, and
/// the layout is driven by cache-line traffic per simulated access:
///
/// - `meta` interleaves, per set, a row of 8-bit **partial tags** (a hash
///   of each resident line's address) and the row of RRPV counters. For a
///   32-way set both rows together span 64 bytes — one host cache line
///   carries everything a lookup *and* a victim scan need.
/// - A lookup scans the partial-tag row first (SWAR, eight ways per `u64`)
///   and touches the full 8-byte tag array only for candidate ways — on a
///   miss, usually never. False positives are rejected by the full tag
///   compare; false negatives cannot happen because fills always write the
///   hash.
/// - Each way's full tag and owning partition share one 8-byte [`Slot`]:
///   the tag is stored *set-relative* (`line / sets` — the set index adds
///   no information) so it fits in 32 bits, and a fill writes tag and
///   owner through a single cache line instead of two parallel arrays.
/// - `vd` packs each set's valid and dirty bitmasks side by side.
#[derive(Debug, Clone)]
pub struct CacheBank {
    cfg: BankConfig,
    /// `cfg.ways` as a `usize` stride.
    ways: usize,
    /// Tag/owner arena, `sets * ways` entries; empty slots hold
    /// [`NO_TAG`].
    slots: Vec<Slot>,
    /// Interleaved per-set metadata, `2 * ways` bytes per set: the partial
    /// tag row at `si * 2 * ways`, then the RRPV row (unused under LRU).
    meta: Vec<u8>,
    /// LRU timestamp per way slot (LRU policy; empty under RRIP).
    stamps: Vec<u64>,
    /// Per-set `[valid, dirty]` way bitmask pair (bit `w` set = way `w`
    /// holds a line / holds a dirty line).
    vd: Vec<[u64; 2]>,
    masks: Vec<WayMask>,
    /// 10-bit saturating policy selector shared across the whole bank.
    /// High values mean SRRIP is missing more, so followers use BRRIP.
    psel: u32,
    brrip_ctr: u32,
    stamp: u64,
    stats: BankStats,
}

const PSEL_MAX: u32 = 1023;
const PSEL_INIT: u32 = 512;
/// Leader-set stride for set-dueling (one SRRIP and one BRRIP leader per 32
/// sets).
const DUEL_STRIDE: usize = 32;
/// Set-relative tag stored in empty way slots, so an equality compare
/// against any real tag fails without a separate validity check.
/// [`CacheBank`] asserts that real line addresses stay below
/// `NO_TAG * sets`, which for realistic geometries allows multi-terabyte
/// address spaces.
const NO_TAG: u32 = u32::MAX;
/// Valid-mask index within a [`CacheBank::vd`] pair.
const VD_VALID: usize = 0;
/// Dirty-mask index within a [`CacheBank::vd`] pair.
const VD_DIRTY: usize = 1;

/// One way's tag and owner, fused so a fill touches a single cache line.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Set-relative tag (`line / sets`), or [`NO_TAG`] when empty.
    tag: u32,
    /// Owning partition (16 bits are plenty: partitions are per-app or
    /// per-VM).
    part: u16,
}

const EMPTY_SLOT: Slot = Slot {
    tag: NO_TAG,
    part: 0,
};

impl CacheBank {
    /// Creates an empty bank.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`, `ways == 0`, or `ways > 64`.
    pub fn new(cfg: BankConfig) -> CacheBank {
        assert!(cfg.sets > 0, "bank needs at least one set");
        assert!(cfg.ways > 0 && cfg.ways <= 64, "ways must be in 1..=64");
        let ways = cfg.ways as usize;
        let slots = cfg.sets * ways;
        let lru = cfg.policy == ReplPolicy::Lru;
        CacheBank {
            cfg,
            ways,
            slots: vec![EMPTY_SLOT; slots],
            meta: vec![0; 2 * slots],
            stamps: if lru { vec![0; slots] } else { Vec::new() },
            vd: vec![[0, 0]; cfg.sets],
            masks: Vec::new(),
            psel: PSEL_INIT,
            brrip_ctr: 0,
            stamp: 0,
            stats: BankStats::default(),
        }
    }

    /// Bitmask selecting the bank's physical ways.
    #[inline]
    fn ways_mask(&self) -> u64 {
        WayMask::all(self.cfg.ways).0
    }

    /// Offset of set `si`'s partial-tag row in [`CacheBank::meta`]; the
    /// RRPV row follows at `meta_base + ways`.
    #[inline]
    fn meta_base(&self, si: usize) -> usize {
        si * 2 * self.ways
    }

    /// Splits a line address into its set index and set-relative tag.
    ///
    /// # Panics
    ///
    /// Panics if the tag would collide with the [`NO_TAG`] sentinel —
    /// i.e. if `line >= u32::MAX * sets`, far beyond any simulated
    /// footprint.
    #[inline]
    fn split(&self, line: LineAddr) -> (usize, u32) {
        let sets = self.cfg.sets as u64;
        // Power-of-two geometries strength-reduce to mask and shift; the
        // branch is on a loop invariant and predicts perfectly.
        let (si, tag) = if sets.is_power_of_two() {
            (line & (sets - 1), line >> sets.trailing_zeros())
        } else {
            (line % sets, line / sets)
        };
        assert!(
            tag < u64::from(NO_TAG),
            "line address out of range for 32-bit set-relative tags"
        );
        (si as usize, tag as u32)
    }

    /// Reconstructs the line address stored in set `si` with tag `tag`.
    #[inline]
    fn join(&self, si: usize, tag: u32) -> LineAddr {
        u64::from(tag) * self.cfg.sets as u64 + si as u64
    }

    /// 8-bit partial tag of a set-relative tag (top byte of a Fibonacci
    /// hash).
    #[inline]
    fn tag_hash(tag: u32) -> u8 {
        (u64::from(tag).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
    }

    /// Narrows a partition id to the arena's 16-bit owner slots.
    #[inline]
    fn owner_of(part: PartitionId) -> u16 {
        assert!(
            part.0 <= u16::MAX as usize,
            "partition ids must fit in 16 bits"
        );
        part.0 as u16
    }

    /// This bank's configuration.
    pub fn config(&self) -> BankConfig {
        self.cfg
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = BankStats::default();
    }

    /// Sets the way mask for `part`. Partitions without an explicit mask may
    /// insert into any way.
    pub fn set_mask(&mut self, part: PartitionId, mask: WayMask) {
        if self.masks.len() <= part.0 {
            self.masks.resize(part.0 + 1, WayMask::all(self.cfg.ways));
        }
        self.masks[part.0] = mask;
    }

    /// The way mask in effect for `part`.
    pub fn mask(&self, part: PartitionId) -> WayMask {
        self.masks
            .get(part.0)
            .copied()
            .unwrap_or_else(|| WayMask::all(self.cfg.ways))
    }

    /// Current value of the shared DRRIP policy selector.
    ///
    /// Exposed so the performance-leakage experiment (paper Fig. 12) can
    /// observe how co-runners drag the shared policy around.
    pub fn psel(&self) -> u32 {
        self.psel
    }

    /// The insertion flavour follower sets currently resolve to (only
    /// meaningful under [`ReplPolicy::Drrip`]).
    pub fn follower_flavor(&self) -> ReplPolicy {
        if self.psel > PSEL_INIT {
            ReplPolicy::Brrip
        } else {
            ReplPolicy::Srrip
        }
    }

    /// Set index for a line address.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        // Real bank geometries have power-of-two set counts, where the
        // modulo strength-reduces to a mask; the branch is on a loop
        // invariant and predicts perfectly.
        let sets = self.cfg.sets as u64;
        if sets.is_power_of_two() {
            (line & (sets - 1)) as usize
        } else {
            (line % sets) as usize
        }
    }

    /// Whether `line` is currently resident.
    pub fn resident(&self, line: LineAddr) -> bool {
        let (si, tag) = self.split(line);
        self.find_way(si, tag).is_some()
    }

    /// Invalidates `line` if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let (si, tag) = self.split(line);
        match self.find_way(si, tag) {
            Some(w) => {
                self.slots[si * self.ways + w].tag = NO_TAG;
                self.vd[si][VD_VALID] &= !(1u64 << w);
                self.vd[si][VD_DIRTY] &= !(1u64 << w);
                true
            }
            None => false,
        }
    }

    /// Invalidates every line owned by `part`; returns how many were
    /// dropped. Used when flushing a partition on VM context switch
    /// (Sec. IV-B).
    pub fn flush_partition(&mut self, part: PartitionId) -> u64 {
        let owner = Self::owner_of(part);
        let mut dropped = 0;
        for si in 0..self.cfg.sets {
            let base = si * self.ways;
            let mut v = self.vd[si][VD_VALID];
            while v != 0 {
                let w = v.trailing_zeros() as usize;
                if self.slots[base + w].part == owner {
                    self.slots[base + w].tag = NO_TAG;
                    self.vd[si][VD_VALID] &= !(1u64 << w);
                    self.vd[si][VD_DIRTY] &= !(1u64 << w);
                    dropped += 1;
                }
                v &= v - 1;
            }
        }
        dropped
    }

    /// Number of resident lines owned by `part`.
    pub fn occupancy(&self, part: PartitionId) -> u64 {
        let owner = Self::owner_of(part);
        let mut count = 0;
        for si in 0..self.cfg.sets {
            let base = si * self.ways;
            let mut v = self.vd[si][VD_VALID];
            while v != 0 {
                let w = v.trailing_zeros() as usize;
                count += u64::from(self.slots[base + w].part == owner);
                v &= v - 1;
            }
        }
        count
    }

    /// Performs one read access on behalf of `part`, filling on a miss.
    ///
    /// Shorthand for [`CacheBank::access_rw`] with `is_write == false`.
    pub fn access(&mut self, line: LineAddr, part: PartitionId) -> AccessOutcome {
        self.access_rw(line, part, false)
    }

    /// Performs one access on behalf of `part`, filling on a miss. Writes
    /// mark the line dirty; evicting a dirty line reports a write-back.
    ///
    /// On a miss the victim is chosen only among ways in `part`'s
    /// [`WayMask`]; if the mask is empty the access bypasses the cache (miss
    /// without fill).
    pub fn access_rw(
        &mut self,
        line: LineAddr,
        part: PartitionId,
        is_write: bool,
    ) -> AccessOutcome {
        self.access_impl::<true>(line, part, is_write)
    }

    /// [`CacheBank::access_rw`] without materializing the evicted line.
    ///
    /// The replacement decision, statistics, and returned `hit`/`writeback`
    /// are identical to `access_rw`; only `evicted` is always `None`. The
    /// detailed simulator uses this entry point: it never consumes the
    /// evicted address, and skipping it removes two dependent loads from
    /// the victim slot on every fill.
    #[inline]
    pub fn access_untracked(
        &mut self,
        line: LineAddr,
        part: PartitionId,
        is_write: bool,
    ) -> AccessOutcome {
        self.access_impl::<false>(line, part, is_write)
    }

    /// Shared access core; `TRACK` selects whether the evicted line is
    /// reported (monomorphized, so the untracked path pays nothing).
    #[inline]
    fn access_impl<const TRACK: bool>(
        &mut self,
        line: LineAddr,
        part: PartitionId,
        is_write: bool,
    ) -> AccessOutcome {
        self.stamp += 1;
        let (si, tag) = self.split(line);
        let base = si * self.ways;

        // Hit path: hits are allowed anywhere in the set (CAT restricts
        // insertion, not lookup).
        if let Some(w) = self.find_way(si, tag) {
            let rslot = self.meta_base(si) + self.ways + w;
            match self.cfg.policy {
                ReplPolicy::Lru => self.stamps[base + w] = self.stamp,
                _ => self.meta[rslot] = 0,
            }
            self.vd[si][VD_DIRTY] |= u64::from(is_write) << w;
            self.stats.record(part, true);
            return AccessOutcome {
                hit: true,
                evicted: None,
                writeback: false,
            };
        }

        // Miss path.
        self.stats.record(part, false);
        self.duel_on_miss(si);
        let mask = self.mask(part);
        if mask.is_empty() {
            return AccessOutcome {
                hit: false,
                evicted: None,
                writeback: false,
            };
        }
        let w = self.pick_victim(si, mask);
        let slot = base + w;
        let bit = 1u64 << w;
        let was_valid = self.vd[si][VD_VALID] & bit != 0;
        let evicted = if TRACK && was_valid {
            let s = self.slots[slot];
            Some((self.join(si, s.tag), PartitionId(s.part as usize)))
        } else {
            None
        };
        let writeback = was_valid && self.vd[si][VD_DIRTY] & bit != 0;
        let mb = self.meta_base(si);
        match self.insertion_state(si) {
            ReplState::Lru { stamp } => self.stamps[slot] = stamp,
            ReplState::Rrip { rrpv } => self.meta[mb + self.ways + w] = rrpv,
        }
        self.slots[slot] = Slot {
            tag,
            part: Self::owner_of(part),
        };
        self.meta[mb + w] = Self::tag_hash(tag);
        self.vd[si][VD_VALID] |= bit;
        self.vd[si][VD_DIRTY] = (self.vd[si][VD_DIRTY] & !bit) | (u64::from(is_write) << w);
        AccessOutcome {
            hit: false,
            evicted,
            writeback,
        }
    }

    /// First way of set `si` holding set-relative tag `tag` (ascending way
    /// order, matching a physical parallel tag compare).
    ///
    /// Scans the set's 8-bit partial-tag row eight ways at a time (SWAR
    /// zero-byte detection on a `u64`), then verifies candidate ways
    /// against the full tags in ascending order. A miss usually never
    /// touches the slot array at all — one 32-byte filter row replaces a
    /// 256-byte slot row on the most common path. The zero-byte formula
    /// may flag the byte after a genuine match (borrow propagation); such
    /// false candidates are rejected by the full tag compare, which also
    /// rejects empty slots ([`NO_TAG`] never equals a real tag).
    #[inline]
    fn find_way(&self, si: usize, tag: u32) -> Option<usize> {
        const LO: u64 = 0x0101_0101_0101_0101;
        const HI: u64 = 0x8080_8080_8080_8080;
        let bcast = LO * u64::from(Self::tag_hash(tag));
        let mb = self.meta_base(si);
        let frow = &self.meta[mb..mb + self.ways];
        let base = si * self.ways;
        // Accumulate one candidate bit per way across all chunks before
        // branching at all: per-chunk early exits would add a ~50%
        // mispredicted branch per chunk, and the scan is pure ALU work.
        let mut cand: u64 = 0;
        let mut chunks = frow.chunks_exact(8);
        let mut start = 0usize;
        for c in chunks.by_ref() {
            let v = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")) ^ bcast;
            let z = v.wrapping_sub(LO) & !v & HI;
            // Gather the per-byte match bits into 8 contiguous candidate
            // bits (the classic LSB-gather multiplier: byte k's bit lands
            // at position 56 + k, collision- and carry-free).
            const PACK: u64 = 0x0102_0408_1020_4080;
            let m8 = (z >> 7).wrapping_mul(PACK) >> 56;
            cand |= m8 << start;
            start += 8;
        }
        let h = Self::tag_hash(tag);
        for (i, &f) in chunks.remainder().iter().enumerate() {
            cand |= u64::from(f == h) << (start + i);
        }
        while cand != 0 {
            let w = cand.trailing_zeros() as usize;
            if self.slots[base + w].tag == tag {
                return Some(w);
            }
            cand &= cand - 1;
        }
        None
    }

    /// Role of a set in DRRIP set-dueling.
    fn duel_role(&self, si: usize) -> Option<InsertFlavor> {
        if self.cfg.policy != ReplPolicy::Drrip {
            return None;
        }
        match si % DUEL_STRIDE {
            0 => Some(InsertFlavor::Srrip),
            16 => Some(InsertFlavor::Brrip),
            _ => None,
        }
    }

    fn duel_on_miss(&mut self, si: usize) {
        match self.duel_role(si) {
            Some(InsertFlavor::Srrip) => self.psel = (self.psel + 1).min(PSEL_MAX),
            Some(InsertFlavor::Brrip) => self.psel = self.psel.saturating_sub(1),
            None => {}
        }
    }

    fn insertion_flavor(&mut self, si: usize) -> InsertFlavor {
        match self.cfg.policy {
            ReplPolicy::Lru | ReplPolicy::Nru => InsertFlavor::Srrip, // unused / fixed
            ReplPolicy::Srrip => InsertFlavor::Srrip,
            ReplPolicy::Brrip => InsertFlavor::Brrip,
            ReplPolicy::Drrip => match self.duel_role(si) {
                Some(f) => f,
                None => {
                    if self.psel > PSEL_INIT {
                        InsertFlavor::Brrip
                    } else {
                        InsertFlavor::Srrip
                    }
                }
            },
        }
    }

    fn insertion_state(&mut self, si: usize) -> ReplState {
        match self.cfg.policy {
            ReplPolicy::Lru => ReplState::Lru { stamp: self.stamp },
            // NRU inserts recently-used (ref bit clear).
            ReplPolicy::Nru => ReplState::Rrip { rrpv: 0 },
            _ => {
                let rrpv = match self.insertion_flavor(si) {
                    InsertFlavor::Srrip => RRPV_MAX - 1,
                    InsertFlavor::Brrip => {
                        self.brrip_ctr = (self.brrip_ctr + 1) % BRRIP_LONG_INTERVAL;
                        if self.brrip_ctr == 0 {
                            RRPV_MAX - 1
                        } else {
                            RRPV_MAX
                        }
                    }
                };
                ReplState::Rrip { rrpv }
            }
        }
    }

    /// Picks a victim way within `mask`, preferring invalid ways.
    fn pick_victim(&mut self, si: usize, mask: WayMask) -> usize {
        debug_assert!(!mask.is_empty());
        let base = si * self.ways;
        let rbase = self.meta_base(si) + self.ways;
        let avail = mask.0 & self.ways_mask();
        // Invalid way first: lowest allowed way whose valid bit is clear.
        let invalid = avail & !self.vd[si][VD_VALID];
        if invalid != 0 {
            return invalid.trailing_zeros() as usize;
        }
        // Every allowed way is valid from here on.
        match self.cfg.policy {
            ReplPolicy::Lru => {
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                let mut v = avail;
                while v != 0 {
                    let w = v.trailing_zeros() as usize;
                    let stamp = self.stamps[base + w];
                    if stamp < best_stamp {
                        best_stamp = stamp;
                        best = w;
                    }
                    v &= v - 1;
                }
                best
            }
            _ => {
                // Find the lowest way at the policy's max RRPV within the
                // mask; otherwise age the masked ways and retry. Aging is
                // restricted to the mask so partitions cannot perturb each
                // other's RRPVs (content isolation); the *policy choice*
                // still leaks via PSEL.
                //
                // Both the scan and the aging are SWAR over the contiguous
                // RRPV row, eight ways per `u64`: masked RRPVs never exceed
                // `rrpv_max() <= 3`, so byte-wise adds cannot carry, and
                // the exact zero-byte formula (no borrow propagation, so no
                // false positives that could change the victim) finds
                // `rrpv == max` bytes. `trailing_zeros` preserves the
                // lowest-way-first order of the scalar loop.
                const LO: u64 = 0x0101_0101_0101_0101;
                const HI: u64 = 0x8080_8080_8080_8080;
                /// High bit of each byte whose way-mask bit is set.
                #[inline]
                fn byte_mask(m8: u8) -> u64 {
                    const LO: u64 = 0x0101_0101_0101_0101;
                    const HI: u64 = 0x8080_8080_8080_8080;
                    const SPREAD: u64 = 0x8040_2010_0804_0201;
                    ((u64::from(m8) * LO) & SPREAD).wrapping_add(!HI) & HI
                }
                let max = self.cfg.policy.rrpv_max();
                let bmax = LO * u64::from(max);
                let full = self.ways & !7;
                loop {
                    let mut start = 0usize;
                    while start < full {
                        let m8 = (avail >> start) as u8;
                        if m8 != 0 {
                            let row = u64::from_le_bytes(
                                self.meta[rbase + start..rbase + start + 8]
                                    .try_into()
                                    .expect("row chunk is 8 bytes"),
                            );
                            // High bit per byte equal to `max` (exact — an
                            // inexact zero-detect could pick a wrong way).
                            let x = row ^ bmax;
                            let z = !(((x & !HI).wrapping_add(!HI)) | x) & byte_mask(m8);
                            if z != 0 {
                                return start + (z.trailing_zeros() as usize >> 3);
                            }
                        }
                        start += 8;
                    }
                    let mut v = avail >> full;
                    while v != 0 {
                        let w = full + v.trailing_zeros() as usize;
                        if self.meta[rbase + w] >= max {
                            return w;
                        }
                        v &= v - 1;
                    }
                    let mut start = 0usize;
                    while start < full {
                        let m8 = (avail >> start) as u8;
                        if m8 != 0 {
                            let inc = byte_mask(m8) >> 7;
                            let span = &mut self.meta[rbase + start..rbase + start + 8];
                            let row =
                                u64::from_le_bytes(span.try_into().expect("row chunk is 8 bytes"));
                            span.copy_from_slice(&row.wrapping_add(inc).to_le_bytes());
                        }
                        start += 8;
                    }
                    let mut v = avail >> full;
                    while v != 0 {
                        let w = full + v.trailing_zeros() as usize;
                        self.meta[rbase + w] += 1;
                        v &= v - 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(sets: usize, ways: u32, policy: ReplPolicy) -> CacheBank {
        CacheBank::new(BankConfig { sets, ways, policy })
    }

    /// Addresses that all map to set 0 of a `sets`-set bank.
    fn same_set_lines(sets: usize, n: usize) -> Vec<LineAddr> {
        (1..=n as u64).map(|i| i * sets as u64).collect()
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut b = bank(16, 2, ReplPolicy::Lru);
        let lines = same_set_lines(16, 3);
        b.access(lines[0], PartitionId(0));
        b.access(lines[1], PartitionId(0));
        // Touch line 0 so line 1 is LRU.
        assert!(b.access(lines[0], PartitionId(0)).hit);
        let out = b.access(lines[2], PartitionId(0));
        assert!(!out.hit);
        assert_eq!(out.evicted.unwrap().0, lines[1]);
        assert!(b.resident(lines[0]));
        assert!(!b.resident(lines[1]));
    }

    #[test]
    fn lru_exact_reuse_within_capacity() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        let lines = same_set_lines(16, 4);
        for &l in &lines {
            assert!(!b.access(l, PartitionId(0)).hit);
        }
        for &l in &lines {
            assert!(b.access(l, PartitionId(0)).hit, "working set fits");
        }
        assert_eq!(b.stats().hits, 4);
        assert_eq!(b.stats().misses(), 4);
    }

    #[test]
    fn way_partitioning_isolates_insertions() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        let victim = PartitionId(0);
        let attacker = PartitionId(1);
        b.set_mask(victim, WayMask::range(0, 2));
        b.set_mask(attacker, WayMask::range(2, 2));

        let lines = same_set_lines(16, 8);
        // Victim fills its two ways.
        b.access(lines[0], victim);
        b.access(lines[1], victim);
        // Attacker thrashes the same set with many lines.
        for &l in &lines[2..8] {
            b.access(l, attacker);
        }
        // Victim's lines must survive: the attacker cannot evict them.
        assert!(b.resident(lines[0]));
        assert!(b.resident(lines[1]));
    }

    #[test]
    fn unpartitioned_sharing_allows_conflict_evictions() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        let victim = PartitionId(0);
        let attacker = PartitionId(1);
        let lines = same_set_lines(16, 8);
        b.access(lines[0], victim);
        for &l in &lines[2..8] {
            b.access(l, attacker);
        }
        // Without partitioning the attacker primed the set and evicted the
        // victim — this is the conflict attack surface.
        assert!(!b.resident(lines[0]));
    }

    #[test]
    fn empty_mask_bypasses() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.set_mask(PartitionId(0), WayMask(0));
        let out = b.access(64, PartitionId(0));
        assert!(!out.hit);
        assert!(out.evicted.is_none());
        assert!(!b.resident(64));
    }

    #[test]
    fn srrip_hit_promotion_protects_reused_lines() {
        let mut b = bank(16, 2, ReplPolicy::Srrip);
        let lines = same_set_lines(16, 3);
        b.access(lines[0], PartitionId(0));
        b.access(lines[1], PartitionId(0));
        // Promote line 0 to RRPV 0.
        assert!(b.access(lines[0], PartitionId(0)).hit);
        // The new line should displace the non-promoted one.
        let out = b.access(lines[2], PartitionId(0));
        assert_eq!(out.evicted.unwrap().0, lines[1]);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut b = bank(64, 4, ReplPolicy::Brrip);
        // Stream many lines through one set; BRRIP keeps thrashing traffic
        // at distant RRPV, so a resident reused line survives a long scan.
        let keep = 64u64; // set 0
        b.access(keep, PartitionId(0));
        assert!(b.access(keep, PartitionId(0)).hit); // promote to RRPV 0
        for i in 2..40u64 {
            b.access(i * 64, PartitionId(0));
            b.access(keep, PartitionId(0)); // keep re-referencing
        }
        assert!(b.resident(keep), "BRRIP is scan-resistant");
    }

    #[test]
    fn drrip_leader_sets_move_psel() {
        let mut b = bank(64, 2, ReplPolicy::Drrip);
        let init = b.psel();
        // Misses in set 0 (SRRIP leader) increment PSEL.
        for i in 1..20u64 {
            b.access(i * 64, PartitionId(0));
        }
        assert!(b.psel() > init);
        // Misses in set 16 (BRRIP leader) decrement PSEL.
        let before = b.psel();
        for i in 1..40u64 {
            b.access(i * 64 + 16, PartitionId(0));
        }
        assert!(b.psel() < before);
    }

    #[test]
    fn drrip_psel_is_shared_across_partitions() {
        // The performance-leakage channel: partition 1's misses in leader
        // sets change the policy partition 0's follower sets use.
        let mut b = bank(64, 2, ReplPolicy::Drrip);
        b.set_mask(PartitionId(0), WayMask::range(0, 1));
        b.set_mask(PartitionId(1), WayMask::range(1, 1));
        assert_eq!(b.follower_flavor(), ReplPolicy::Srrip);
        // Partition 1 hammers the SRRIP leader set with misses.
        for i in 1..2000u64 {
            b.access(i * 64, PartitionId(1));
        }
        assert_eq!(
            b.follower_flavor(),
            ReplPolicy::Brrip,
            "a co-runner flipped the shared policy despite disjoint masks"
        );
    }

    #[test]
    fn nru_behaves_like_coarse_lru() {
        let mut b = bank(16, 2, ReplPolicy::Nru);
        let lines = same_set_lines(16, 3);
        b.access(lines[0], PartitionId(0));
        b.access(lines[1], PartitionId(0));
        // Touch line 0 so it is recently-used; line 1 ages on the victim
        // scan and gets evicted.
        assert!(b.access(lines[0], PartitionId(0)).hit);
        b.access(lines[2], PartitionId(0));
        assert!(b.resident(lines[0]) || b.resident(lines[2]));
        // NRU keeps reused data across small working sets exactly.
        let mut b2 = bank(16, 4, ReplPolicy::Nru);
        for _ in 0..3 {
            for &l in &same_set_lines(16, 4) {
                b2.access(l, PartitionId(0));
            }
        }
        assert_eq!(b2.stats().misses(), 4, "only cold misses");
    }

    #[test]
    fn nru_has_no_set_dueling_state() {
        let mut b = bank(64, 2, ReplPolicy::Nru);
        let before = b.psel();
        for i in 1..200u64 {
            b.access(i * 64, PartitionId(0)); // leader-set misses
        }
        assert_eq!(b.psel(), before, "NRU never touches PSEL");
    }

    #[test]
    fn flush_partition_drops_only_that_partition() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.access(16, PartitionId(0));
        b.access(32, PartitionId(1));
        assert_eq!(b.occupancy(PartitionId(0)), 1);
        let dropped = b.flush_partition(PartitionId(0));
        assert_eq!(dropped, 1);
        assert!(!b.resident(16));
        assert!(b.resident(32));
    }

    #[test]
    fn invalidate_single_line() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.access(16, PartitionId(0));
        assert!(b.invalidate(16));
        assert!(!b.invalidate(16));
        assert!(!b.resident(16));
    }

    #[test]
    fn stats_track_partitions_separately() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.access(16, PartitionId(0));
        b.access(16, PartitionId(0));
        b.access(32, PartitionId(1));
        let s = b.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert!((s.partition_miss_ratio(PartitionId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(s.partition_miss_ratio(PartitionId(1)), 1.0);
        assert_eq!(s.partition_miss_ratio(PartitionId(9)), 0.0);
    }

    #[test]
    fn writebacks_follow_dirty_evictions() {
        let mut b = bank(16, 1, ReplPolicy::Lru);
        let lines = same_set_lines(16, 3);
        // Write line 0 (dirty), then displace it: write-back.
        b.access_rw(lines[0], PartitionId(0), true);
        let out = b.access(lines[1], PartitionId(0));
        assert!(out.writeback, "dirty victim must be written back");
        // Clean line displaced: no write-back.
        let out2 = b.access(lines[2], PartitionId(0));
        assert!(!out2.writeback);
        // A write HIT dirties an existing clean line.
        let mut b2 = bank(16, 2, ReplPolicy::Lru);
        b2.access(lines[0], PartitionId(0)); // clean fill
        b2.access_rw(lines[0], PartitionId(0), true); // dirty it
        b2.access(lines[1], PartitionId(0));
        let out3 = b2.access(lines[2], PartitionId(0)); // evicts line 0 (LRU)
        assert!(out3.writeback);
    }

    #[test]
    fn way_mask_helpers() {
        assert_eq!(WayMask::all(64).count(), 64);
        assert_eq!(WayMask::range(2, 2).0, 0b1100);
        assert!(!WayMask::range(0, 2).intersects(WayMask::range(2, 2)));
        assert!(WayMask(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "ways must be in 1..=64")]
    fn too_many_ways_panics() {
        bank(16, 65, ReplPolicy::Lru);
    }
}
