//! Set-associative cache banks, replacement policies, way-partitioning, and
//! miss-curve models for the Jumanji NUCA stack.
//!
//! This crate provides both of the cache abstractions the simulator needs:
//!
//! 1. **Detailed structures** — a real set-associative [`CacheBank`] with
//!    line-granularity state, pluggable replacement ([`ReplPolicy`]: LRU,
//!    SRRIP, BRRIP, and DRRIP with per-bank set-dueling), and Intel-CAT-style
//!    way-partitioning via [`WayMask`]s. These are used by the attack
//!    demonstrations (port attack, performance leakage) and to validate the
//!    analytic models.
//! 2. **Analytic models** — [`MissCurve`]s (misses as a function of
//!    allocated capacity), their convex hulls (the Talus approximation of
//!    DRRIP used by the paper, Sec. IV-A), optimal convex combining (the
//!    Whirlpool-style VM-combined curve), and an [`analytic`] sharing /
//!    associativity model used by the epoch-based performance simulator.
//!
//! # Examples
//!
//! ```
//! use nuca_cache::{CacheBank, BankConfig, ReplPolicy, PartitionId};
//!
//! let mut bank = CacheBank::new(BankConfig {
//!     sets: 64,
//!     ways: 8,
//!     policy: ReplPolicy::Lru,
//! });
//! let part = PartitionId(0);
//! assert!(!bank.access(0x1000, part).hit); // cold miss
//! assert!(bank.access(0x1000, part).hit); // now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod bank;
mod misscurve;
mod replacement;
mod stack;

pub use bank::{AccessOutcome, BankConfig, BankStats, CacheBank, PartitionId, WayMask};
pub use misscurve::MissCurve;
pub use replacement::ReplPolicy;
pub use stack::StackProfiler;

/// A full physical address (byte-granular).
pub type Addr = u64;

/// A cache-line address: the physical address with the line offset stripped.
pub type LineAddr = u64;

/// Strips the byte offset within a 64 B line from an address.
///
/// # Examples
///
/// ```
/// use nuca_cache::line_of;
/// assert_eq!(line_of(0x1040), 0x41);
/// assert_eq!(line_of(0x107f), 0x41);
/// ```
#[inline]
pub fn line_of(addr: Addr) -> LineAddr {
    addr >> 6
}
