//! Table II: system parameters of the simulated multicore.

use jumanji::prelude::*;

fn main() {
    let cfg = SystemConfig::micro2020();
    cfg.validate().expect("paper configuration is valid");
    println!("# Table II: system parameters (paper Sec. VII)");
    println!("parameter\tvalue");
    println!(
        "cores\t{} cores, x86-64, {:.2} GHz OOO",
        cfg.num_cores,
        cfg.freq_hz / 1e9
    );
    println!(
        "l1\t{} KB, {}-way, {}-cycle",
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways,
        cfg.l1.latency.as_u64()
    );
    println!(
        "l2\t{} KB private, {}-way, {}-cycle",
        cfg.l2.size_bytes / 1024,
        cfg.l2.ways,
        cfg.l2.latency.as_u64()
    );
    println!(
        "llc\t{} MB shared, {}x{} MB banks, {}-way, {}-cycle bank latency",
        cfg.llc.total_bytes() >> 20,
        cfg.llc.num_banks,
        cfg.llc.bank_bytes >> 20,
        cfg.llc.ways,
        cfg.llc.bank_latency.as_u64()
    );
    println!(
        "noc\t{}x{} mesh, {}-bit flits, {}-cycle routers, {}-cycle links, X-Y routing",
        cfg.mesh_cols, cfg.mesh_rows, cfg.noc.flit_bits, cfg.noc.router_cycles, cfg.noc.link_cycles
    );
    println!(
        "memory\t{} controllers at chip corners, {}-cycle latency",
        cfg.mem.num_controllers,
        cfg.mem.latency.as_u64()
    );
    println!(
        "derived\t{} total ways, {} sets/bank, {} B lines",
        cfg.llc.total_ways(),
        cfg.llc.sets_per_bank(),
        cfg.llc.line_bytes
    );
}
