//! Fig. 9: sensitivity of Jumanji to the feedback controller's
//! parameters — target latency range, panic threshold, and step size.
//! Bars: gmean batch speedup; lines: worst normalized tail latency.

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji_bench::mix_count;

fn run(params: ControllerParams, mixes: usize) -> (f64, f64) {
    let mut speedups = Vec::new();
    let mut worst_tail: f64 = 0.0;
    for seed in 0..mixes as u64 {
        let opts = SimOptions {
            controller: Some(params),
            ..SimOptions::default()
        };
        let exp = Experiment::new(case_study_mix(seed), LcLoad::High, opts);
        let baseline = exp.run(DesignKind::Static);
        let r = exp.run(DesignKind::Jumanji);
        speedups.push(r.weighted_speedup_vs(&baseline));
        worst_tail = worst_tail.max(r.max_norm_tail());
    }
    (gmean(&speedups), worst_tail)
}

fn main() {
    let mixes = mix_count(5);
    let llc = SystemConfig::micro2020().llc.total_bytes() as f64;
    let base = ControllerParams::micro2020(llc);
    println!("# Fig. 9: controller parameter sensitivity ({mixes} mixes, case study)");
    println!("group\tvariant\tgmean_speedup_pct\tworst_norm_tail");
    let cases: Vec<(&str, &str, ControllerParams)> = vec![
        (
            "target",
            "75-85%",
            ControllerParams {
                target_low: 0.75,
                target_high: 0.85,
                ..base
            },
        ),
        ("target", "85-95% (default)", base),
        (
            "target",
            "90-100%",
            ControllerParams {
                target_low: 0.90,
                target_high: 1.00,
                ..base
            },
        ),
        (
            "panic",
            "105%",
            ControllerParams {
                panic_threshold: 1.05,
                ..base
            },
        ),
        ("panic", "110% (default)", base),
        (
            "panic",
            "120%",
            ControllerParams {
                panic_threshold: 1.20,
                ..base
            },
        ),
        ("step", "5%", ControllerParams { step: 0.05, ..base }),
        ("step", "10% (default)", base),
        ("step", "20%", ControllerParams { step: 0.20, ..base }),
    ];
    for (group, label, params) in cases {
        let (speedup, tail) = run(params, mixes);
        println!(
            "{group}\t{label}\t{:.2}\t{:.3}",
            (speedup - 1.0) * 100.0,
            tail
        );
    }
    println!("# expected: results change very little across parameter values (Sec. V-C).");
}
