//! `JumanjiPlacer` (paper Listing 3) and its sensitivity variants.
//!
//! The placer runs in three steps, mirroring Fig. 6:
//!
//! 1. [`lat_crit_placer`] reserves controller-assigned space for
//!    latency-critical applications in their nearest banks (deadlines).
//! 2. [`jumanji_lookahead`] divides the remaining capacity among VMs at
//!    whole-bank granularity, and banks are assigned round-robin by
//!    proximity (security: no bank is ever shared across VMs).
//! 3. Jigsaw's placement optimizes batch data within each VM's banks
//!    (data movement).
//!
//! The *Insecure* variant skips the bank-isolation step (sizing batch
//! partitions globally), and the *Ideal-Batch* variant additionally lets
//! batch applications place into a pristine copy of the LLC, eliminating
//! competition with latency-critical reservations (Sec. VIII-C).

use crate::allocation::{Allocation, AppAlloc};
use crate::jigsaw::{place_near, refine_placement, PlaceRequest};
use crate::latcrit::lat_crit_placer;
use crate::lookahead::{jumanji_lookahead, lookahead};
use crate::model::{AppKind, PlacementInput};
use nuca_cache::MissCurve;
use nuca_types::{BankId, VmId};

/// Runs the full Jumanji placement (Listing 3).
///
/// With `secure == true` this is Jumanji; with `secure == false` it is the
/// "Jumanji: Insecure" sensitivity variant that keeps deadline awareness
/// and proximity placement but drops VM bank isolation.
pub fn jumanji_placer(input: &PlacementInput, secure: bool) -> Allocation {
    let cfg = &input.cfg;
    let nbanks = cfg.llc.num_banks;
    let unit = input.unit_bytes() as f64;
    let ways_per_bank = cfg.llc.ways as usize;
    let mut balance = vec![cfg.llc.bank_bytes as f64; nbanks];

    // Step 1: reserve latency-critical space nearest to its cores.
    let mut claims: Vec<Option<VmId>> = vec![None; nbanks];
    let lc_placements = if secure {
        lat_crit_placer(input, &mut balance, Some(&mut claims))
    } else {
        lat_crit_placer(input, &mut balance, None)
    };

    let num_vms = input.num_vms();
    let mut apps: Vec<AppAlloc> = input
        .apps
        .iter()
        .map(|a| AppAlloc {
            app: a.id,
            placement: Vec::new(),
            pool: None,
            copy: 0,
        })
        .collect();
    for (app, placement) in &lc_placements {
        apps[app.index()].placement = placement.clone();
    }

    let batch_placements = if secure {
        // Step 2: whole-bank VM allocations.
        let vm_curves = vm_batch_curves(input, num_vms);
        let mut lc_units = vec![0.0f64; num_vms];
        let mut claimed_count = vec![0usize; num_vms];
        for (app, placement) in &lc_placements {
            let vm = input.apps[app.index()].vm.index();
            lc_units[vm] += placement.iter().map(|(_, b)| b / unit).sum::<f64>();
        }
        for c in claims.iter().flatten() {
            claimed_count[c.index()] += 1;
        }
        // The LC placer may touch more banks than ceil(lc/bank) when
        // several LC apps leave fractional tails; reflect that in the
        // lower bound handed to the lookahead.
        let effective_lc: Vec<f64> = lc_units
            .iter()
            .zip(&claimed_count)
            .map(|(&u, &c)| u.max(((c.max(1) - 1) * ways_per_bank) as f64 + 1e-9))
            .collect();
        // With many VMs the mandatory bank counts can exceed the machine
        // (the paper notes VMs become restricted to single banks as their
        // count grows, Sec. VIII-C). Degrade gracefully: trim the largest
        // reservations' bank bounds until they fit.
        let mut mandatory: Vec<usize> = effective_lc
            .iter()
            .map(|&u| ((u / ways_per_bank as f64).ceil() as usize).max(1))
            .collect();
        while mandatory.iter().sum::<usize>() > nbanks {
            let largest = (0..num_vms)
                .filter(|&v| mandatory[v] > 1)
                .max_by_key(|&v| mandatory[v])
                .expect("some VM has more than one mandatory bank");
            mandatory[largest] -= 1;
        }
        let effective_lc: Vec<f64> = mandatory
            .iter()
            .zip(&effective_lc)
            .map(|(&m, &u)| u.min((m * ways_per_bank) as f64 - 1e-6))
            .collect();
        let banks_per_vm = jumanji_lookahead(&vm_curves, &effective_lc, nbanks, ways_per_bank);

        // Assign whole banks to VMs: LC-claimed banks first, then
        // round-robin, each VM taking its closest remaining bank.
        let vm_banks = assign_banks(input, &banks_per_vm, &claims);

        // Step 3: batch sizing and Jigsaw placement within each VM.
        let mut out = Vec::new();
        for vm in 0..num_vms {
            let members: Vec<&crate::model::AppModel> = input
                .vm_apps(VmId(vm))
                .filter(|a| a.kind == AppKind::Batch)
                .collect();
            if members.is_empty() {
                continue;
            }
            let batch_units = ((banks_per_vm[vm] * ways_per_bank) as f64 - lc_units[vm])
                .max(0.0)
                .floor() as usize;
            let curves: Vec<&MissCurve> = members.iter().map(|a| &a.curve).collect();
            let sizes = lookahead(&curves, batch_units);
            let requests: Vec<PlaceRequest> = members
                .iter()
                .zip(&sizes)
                .map(|(a, &u)| PlaceRequest {
                    app: a.id,
                    core: a.core,
                    bytes: u as f64 * unit,
                    priority: a.access_rate,
                })
                .collect();
            let allowed: Vec<bool> = (0..nbanks).map(|b| vm_banks[b] == Some(vm)).collect();
            let mut placed = place_near(&requests, &mut balance, cfg.mesh(), Some(&allowed));
            // Jigsaw's local-search refinement within the VM's banks
            // (Listing 3, line 12 runs the full Jigsaw placement).
            refine_placement(&requests, &mut placed, cfg.mesh(), 4);
            out.extend(placed);
        }
        out
    } else {
        // Insecure: size batch partitions globally, place anywhere.
        let members: Vec<&crate::model::AppModel> = input
            .apps
            .iter()
            .filter(|a| a.kind == AppKind::Batch)
            .collect();
        let remaining_units = (balance.iter().sum::<f64>() / unit).floor() as usize;
        let curves: Vec<&MissCurve> = members.iter().map(|a| &a.curve).collect();
        let sizes = if members.is_empty() {
            Vec::new()
        } else {
            lookahead(&curves, remaining_units)
        };
        let requests: Vec<PlaceRequest> = members
            .iter()
            .zip(&sizes)
            .map(|(a, &u)| PlaceRequest {
                app: a.id,
                core: a.core,
                bytes: u as f64 * unit,
                priority: a.access_rate,
            })
            .collect();
        place_near(&requests, &mut balance, cfg.mesh(), None)
    };

    for (app, placement) in batch_placements {
        apps[app.index()].placement = placement;
    }
    Allocation {
        apps,
        pools: Vec::new(),
        ideal_batch: false,
    }
}

/// The infeasible "Jumanji: Ideal Batch" design: latency-critical
/// reservations and batch placements live in separate copies of the LLC,
/// eliminating their competition, while total allocated capacity still
/// fits the original LLC and VMs stay isolated (Sec. VIII-C).
pub fn ideal_batch_placer(input: &PlacementInput) -> Allocation {
    let cfg = &input.cfg;
    let nbanks = cfg.llc.num_banks;
    let unit = input.unit_bytes() as f64;
    let ways_per_bank = cfg.llc.ways as usize;
    let num_vms = input.num_vms();

    // Latency-critical side: own pristine LLC copy, VM-isolated.
    let mut lc_balance = vec![cfg.llc.bank_bytes as f64; nbanks];
    let mut lc_claims: Vec<Option<VmId>> = vec![None; nbanks];
    let lc_placements = lat_crit_placer(input, &mut lc_balance, Some(&mut lc_claims));
    let lc_total_units: f64 = lc_placements
        .iter()
        .flat_map(|(_, p)| p.iter().map(|(_, b)| b / unit))
        .sum();

    // Batch side: optimal global sizes within the capacity that remains
    // after honouring the LC reservations.
    let members: Vec<&crate::model::AppModel> = input
        .apps
        .iter()
        .filter(|a| a.kind == AppKind::Batch)
        .collect();
    let budget_units = (input.total_units() as f64 - lc_total_units).max(0.0) as usize;
    let curves: Vec<&MissCurve> = members.iter().map(|a| &a.curve).collect();
    let sizes = if members.is_empty() {
        Vec::new()
    } else {
        lookahead(&curves, budget_units)
    };

    // VM-isolated placement in a pristine copy: whole banks per VM sized
    // by each VM's batch demand.
    let mut vm_units = vec![0.0f64; num_vms];
    for (a, &u) in members.iter().zip(&sizes) {
        vm_units[a.vm.index()] += u as f64;
    }
    let mut banks_needed: Vec<usize> = vm_units
        .iter()
        .map(|&u| (u / ways_per_bank as f64).ceil() as usize)
        .collect();
    // Ceil rounding can oversubscribe; trim the slackest VMs.
    while banks_needed.iter().sum::<usize>() > nbanks {
        let worst = (0..num_vms)
            .max_by(|&a, &b| {
                let slack_a = banks_needed[a] as f64 * ways_per_bank as f64 - vm_units[a];
                let slack_b = banks_needed[b] as f64 * ways_per_bank as f64 - vm_units[b];
                slack_a.partial_cmp(&slack_b).expect("slack is finite")
            })
            .expect("at least one VM");
        banks_needed[worst] -= 1;
        vm_units[worst] = vm_units[worst].min((banks_needed[worst] * ways_per_bank) as f64);
    }
    let no_claims = vec![None; nbanks];
    let vm_banks = assign_banks(input, &banks_needed, &no_claims);
    let mut batch_balance = vec![cfg.llc.bank_bytes as f64; nbanks];
    let mut apps: Vec<AppAlloc> = input
        .apps
        .iter()
        .map(|a| AppAlloc {
            app: a.id,
            placement: Vec::new(),
            pool: None,
            copy: 0,
        })
        .collect();
    for (app, placement) in &lc_placements {
        apps[app.index()].placement = placement.clone();
    }
    for vm in 0..num_vms {
        let vm_members: Vec<(&&crate::model::AppModel, &usize)> = members
            .iter()
            .zip(&sizes)
            .filter(|(a, _)| a.vm.index() == vm)
            .collect();
        if vm_members.is_empty() {
            continue;
        }
        let requests: Vec<PlaceRequest> = vm_members
            .iter()
            .map(|(a, &u)| PlaceRequest {
                app: a.id,
                core: a.core,
                bytes: u as f64 * unit,
                priority: a.access_rate,
            })
            .collect();
        let allowed: Vec<bool> = (0..nbanks).map(|b| vm_banks[b] == Some(vm)).collect();
        for (app, placement) in
            place_near(&requests, &mut batch_balance, cfg.mesh(), Some(&allowed))
        {
            apps[app.index()].placement = placement;
            apps[app.index()].copy = 1;
        }
    }
    Allocation {
        apps,
        pools: Vec::new(),
        ideal_batch: true,
    }
}

/// Computes each VM's combined batch miss curve (Whirlpool-style optimal
/// combining over the members' convex hulls).
fn vm_batch_curves(input: &PlacementInput, num_vms: usize) -> Vec<MissCurve> {
    (0..num_vms)
        .map(|vm| {
            let curves: Vec<&MissCurve> = input
                .vm_apps(VmId(vm))
                .filter(|a| a.kind == AppKind::Batch)
                .map(|a| &a.curve)
                .collect();
            if curves.is_empty() {
                MissCurve::flat(input.unit_bytes(), input.total_units(), 0.0)
            } else {
                MissCurve::combine_convex_curve(&curves, input.total_units())
            }
        })
        .collect()
}

/// Assigns whole banks to VMs: pre-claimed banks stick with their claimant;
/// the rest are taken round-robin, each VM grabbing the unassigned bank
/// closest to its cores.
fn assign_banks(
    input: &PlacementInput,
    banks_per_vm: &[usize],
    claims: &[Option<VmId>],
) -> Vec<Option<usize>> {
    let nbanks = input.cfg.llc.num_banks;
    let mesh = input.cfg.mesh();
    let num_vms = banks_per_vm.len();
    let mut owner: Vec<Option<usize>> = vec![None; nbanks];
    let mut count = vec![0usize; num_vms];
    for (b, c) in claims.iter().enumerate() {
        if let Some(vm) = c {
            owner[b] = Some(vm.index());
            count[vm.index()] += 1;
        }
    }
    // Distance from a bank to a VM: minimum hops to any of its cores.
    let vm_cores: Vec<Vec<_>> = (0..num_vms)
        .map(|vm| input.vm_apps(VmId(vm)).map(|a| a.core).collect())
        .collect();
    let dist = |vm: usize, bank: usize| -> usize {
        vm_cores[vm]
            .iter()
            .map(|&c| mesh.hops_core_to_bank(c, BankId(bank)))
            .min()
            .unwrap_or(0)
    };
    loop {
        let mut progress = false;
        for vm in 0..num_vms {
            if count[vm] >= banks_per_vm[vm] {
                continue;
            }
            let pick = (0..nbanks)
                .filter(|&b| owner[b].is_none())
                .min_by_key(|&b| (dist(vm, b), b));
            if let Some(b) = pick {
                owner[b] = Some(vm);
                count[vm] += 1;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    owner
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only scratch sets; order never observed
mod tests {
    use super::*;
    use nuca_types::SystemConfig;

    fn input() -> PlacementInput {
        PlacementInput::example(&SystemConfig::micro2020())
    }

    #[test]
    fn secure_placer_is_vm_isolated_and_valid() {
        let inp = input();
        let alloc = jumanji_placer(&inp, true);
        alloc.validate(&inp.cfg).unwrap();
        assert!(alloc.vm_isolated(&inp));
    }

    #[test]
    fn secure_placer_honours_lc_sizes() {
        let inp = input();
        let alloc = jumanji_placer(&inp, true);
        for a in &inp.apps {
            if a.kind == AppKind::LatencyCritical {
                let got = alloc.of(a.id).total_bytes();
                assert!((got - inp.lc_size(a.id)).abs() < 1e-6, "{} got {got}", a.id);
            }
        }
    }

    #[test]
    fn secure_placer_uses_whole_llc() {
        let inp = input();
        let alloc = jumanji_placer(&inp, true);
        let total: f64 = inp.apps.iter().map(|a| alloc.of(a.id).total_bytes()).sum();
        let llc = inp.cfg.llc.total_bytes() as f64;
        // Everything except sub-unit rounding slack is allocated.
        assert!(total > 0.98 * llc, "allocated {total} of {llc}");
    }

    #[test]
    fn insecure_placer_valid_but_not_isolated() {
        let inp = input();
        let alloc = jumanji_placer(&inp, false);
        alloc.validate(&inp.cfg).unwrap();
        // With four VMs contending for central banks, the insecure variant
        // essentially always shares some bank.
        assert!(!alloc.vm_isolated(&inp));
    }

    #[test]
    fn placements_are_near_cores() {
        let inp = input();
        let alloc = jumanji_placer(&inp, true);
        let mesh = inp.cfg.mesh();
        for a in &inp.apps {
            let d = alloc.avg_distance(&inp, a.id);
            let snuca = mesh.snuca_avg_distance(a.core);
            assert!(
                d < snuca,
                "{} placed at avg distance {d:.2} vs S-NUCA {snuca:.2}",
                a.id
            );
        }
    }

    #[test]
    fn ideal_batch_is_valid_isolated_and_capacity_bounded() {
        let inp = input();
        let alloc = ideal_batch_placer(&inp);
        alloc.validate(&inp.cfg).unwrap();
        assert!(alloc.ideal_batch);
        // Total capacity (LC + batch) still fits the original LLC.
        let total: f64 = inp.apps.iter().map(|a| alloc.of(a.id).total_bytes()).sum();
        assert!(total <= inp.cfg.llc.total_bytes() as f64 * (1.0 + 1e-6));
        // Batch side is VM-isolated by construction: check per-bank.
        for bank in inp.banks() {
            let vms: std::collections::HashSet<_> = inp
                .apps
                .iter()
                .filter(|a| a.kind == AppKind::Batch)
                .filter(|a| {
                    alloc
                        .of(a.id)
                        .placement
                        .iter()
                        .any(|(b, bytes)| *b == bank && *bytes > 0.0)
                })
                .map(|a| a.vm)
                .collect();
            assert!(vms.len() <= 1, "batch bank {bank} shared across VMs");
        }
    }

    #[test]
    fn ideal_batch_distance_not_worse_than_secure() {
        let inp = input();
        let secure = jumanji_placer(&inp, true);
        let ideal = ideal_batch_placer(&inp);
        let avg = |alloc: &Allocation| -> f64 {
            let batch: Vec<_> = inp
                .apps
                .iter()
                .filter(|a| a.kind == AppKind::Batch)
                .collect();
            batch
                .iter()
                .map(|a| alloc.avg_distance(&inp, a.id))
                .sum::<f64>()
                / batch.len() as f64
        };
        assert!(avg(&ideal) <= avg(&secure) + 0.25);
    }
}
