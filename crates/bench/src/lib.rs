//! Shared harness code for the figure-reproduction binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` (`fig04` … `fig18`, `table2`, `table3`) that regenerates the
//! corresponding rows/series as TSV on stdout. This library holds the
//! common machinery: design matrices over random mixes, box-plot summary
//! statistics, and output helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;

/// Number of random batch mixes per configuration in the paper (Fig. 13).
pub const PAPER_MIXES: usize = 40;

/// Reads the mix count from the command line (`--mixes N`), the
/// `JUMANJI_MIXES` env var, or defaults to `default`.
pub fn mix_count(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    exec::resolve_count(
        exec::flag_value(&args, "--mixes").as_deref(),
        std::env::var("JUMANJI_MIXES").ok().as_deref(),
        default,
    )
}

/// Five-number summary for box-and-whisker figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum (lower whisker).
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Maximum (upper whisker).
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> BoxStats {
        assert!(!values.is_empty(), "need at least one value");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        BoxStats {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: v[v.len() - 1],
        }
    }

    /// TSV fields `min q1 median q3 max`.
    pub fn tsv(&self) -> String {
        format!(
            "{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Result of running one (workload group, load, design) cell of Fig. 13:
/// distributions over mixes.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignCell {
    /// Worst LC normalized tail latency per mix.
    pub norm_tails: Vec<f64>,
    /// Batch weighted speedup vs. Static per mix.
    pub speedups: Vec<f64>,
    /// Mean vulnerability per mix.
    pub vulnerability: Vec<f64>,
    /// Energy components per mix `(l1, l2, llc, noc, mem)`.
    pub energy: Vec<(f64, f64, f64, f64, f64)>,
}

impl DesignCell {
    /// An empty cell with room for `mixes` entries per metric.
    pub fn with_capacity(mixes: usize) -> DesignCell {
        DesignCell {
            norm_tails: Vec::with_capacity(mixes),
            speedups: Vec::with_capacity(mixes),
            vulnerability: Vec::with_capacity(mixes),
            energy: Vec::with_capacity(mixes),
        }
    }

    /// Appends one mix's metrics.
    pub fn push(&mut self, m: &MixMetrics) {
        self.norm_tails.push(m.norm_tail);
        self.speedups.push(m.speedup);
        self.vulnerability.push(m.vulnerability);
        self.energy.push(m.energy);
    }

    /// Geometric-mean speedup over mixes.
    pub fn gmean_speedup(&self) -> f64 {
        gmean(&self.speedups)
    }

    /// Mean vulnerability over mixes.
    pub fn mean_vulnerability(&self) -> f64 {
        self.vulnerability.iter().sum::<f64>() / self.vulnerability.len() as f64
    }
}

/// Metrics of one design on one mix (one column entry of a [`DesignCell`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixMetrics {
    /// Worst LC normalized tail latency.
    pub norm_tail: f64,
    /// Batch weighted speedup vs. the Static baseline.
    pub speedup: f64,
    /// Mean vulnerability.
    pub vulnerability: f64,
    /// Energy per instruction `(l1, l2, llc, noc, mem)`.
    pub energy: (f64, f64, f64, f64, f64),
}

impl MixMetrics {
    fn of(r: &ExperimentResult, baseline: &ExperimentResult) -> MixMetrics {
        let e = r.energy_per_instruction();
        MixMetrics {
            norm_tail: r.max_norm_tail(),
            speedup: r.weighted_speedup_vs(baseline),
            vulnerability: r.vulnerability,
            energy: (e.l1, e.l2, e.llc, e.noc, e.mem),
        }
    }
}

/// Workload selector for a Fig. 13 group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcGroup {
    /// Four instances of the named TailBench server.
    Same(&'static str),
    /// Four random distinct servers per mix.
    Mixed,
}

impl LcGroup {
    /// The six groups of Fig. 13, in plotting order.
    pub fn all() -> [LcGroup; 6] {
        [
            LcGroup::Same("masstree"),
            LcGroup::Same("xapian"),
            LcGroup::Same("img-dnn"),
            LcGroup::Same("silo"),
            LcGroup::Same("moses"),
            LcGroup::Mixed,
        ]
    }

    /// Display label.
    pub fn label(self) -> String {
        match self {
            LcGroup::Same(n) => n.to_string(),
            LcGroup::Mixed => "Mixed".to_string(),
        }
    }

    /// Builds the mix for seed `seed`.
    pub fn mix(self, seed: u64) -> WorkloadMix {
        match self {
            LcGroup::Same(name) => {
                let lc = tailbench()
                    .into_iter()
                    .find(|p| p.name == name)
                    .unwrap_or_else(|| panic!("unknown LC app {name}"));
                WorkloadMix::uniform_lc(&lc, seed)
            }
            LcGroup::Mixed => WorkloadMix::mixed_lc(seed),
        }
    }
}

/// Runs every design on one `(group, load)` mix, sharing a single Static
/// baseline run. Returns per-design metrics in `designs` order.
///
/// Seed derivation matches the serial harness exactly
/// (`opts.seed ^ seed · 0x9E37_79B9`), so this is safe to fan out across
/// threads: each mix's RNG streams depend only on its own seed.
pub fn run_mix(
    group: LcGroup,
    load: LcLoad,
    designs: &[DesignKind],
    seed: u64,
    opts: &SimOptions,
) -> Vec<MixMetrics> {
    let mut opts = opts.clone();
    opts.seed ^= seed.wrapping_mul(0x9E37_79B9);
    let exp = Experiment::new(group.mix(seed), load, opts);
    let baseline = exp.run(DesignKind::Static);
    designs
        .iter()
        .map(|&design| {
            if design == DesignKind::Static {
                MixMetrics::of(&baseline, &baseline)
            } else {
                MixMetrics::of(&exp.run(design), &baseline)
            }
        })
        .collect()
}

/// Runs `design` and the Static baseline over `mixes` random mixes of one
/// workload group at one load, collecting the Fig. 13 distributions.
pub fn run_cell(
    group: LcGroup,
    load: LcLoad,
    design: DesignKind,
    mixes: usize,
    opts: &SimOptions,
) -> DesignCell {
    run_matrix(group, load, &[design], mixes, opts)
        .pop()
        .expect("one design in, one cell out")
}

/// Runs every design (plus baseline) over mixes, returning per-design
/// cells in `designs` order — shares the Static baseline across designs
/// and fans mixes across [`exec::thread_count`] workers.
pub fn run_matrix(
    group: LcGroup,
    load: LcLoad,
    designs: &[DesignKind],
    mixes: usize,
    opts: &SimOptions,
) -> Vec<DesignCell> {
    run_matrix_threads(group, load, designs, mixes, opts, exec::thread_count())
}

/// [`run_matrix`] with an explicit worker count (`1` = reference serial
/// order; any other count produces identical results).
pub fn run_matrix_threads(
    group: LcGroup,
    load: LcLoad,
    designs: &[DesignKind],
    mixes: usize,
    opts: &SimOptions,
    threads: usize,
) -> Vec<DesignCell> {
    let per_mix = exec::parallel_map(mixes, threads, |seed| {
        run_mix(group, load, designs, seed as u64, opts)
    });
    collect_cells(designs.len(), mixes, &per_mix)
}

/// Runs a whole batch of `(group, load)` matrices in one thread-pool
/// fan-out, so parallelism spans cells as well as mixes (a figure run with
/// `--mixes 4` still keeps every worker busy). Returns one `Vec<DesignCell>`
/// per input matrix, in order, each identical to a [`run_matrix`] call.
pub fn run_matrices(
    matrices: &[(LcGroup, LcLoad)],
    designs: &[DesignKind],
    mixes: usize,
    opts: &SimOptions,
) -> Vec<Vec<DesignCell>> {
    let per_job = exec::parallel_map(matrices.len() * mixes, exec::thread_count(), |i| {
        let (group, load) = matrices[i / mixes];
        run_mix(group, load, designs, (i % mixes) as u64, opts)
    });
    per_job
        .chunks(mixes)
        .map(|chunk| collect_cells(designs.len(), mixes, chunk))
        .collect()
}

/// Transposes per-mix metric rows into per-design cells.
fn collect_cells(designs: usize, mixes: usize, per_mix: &[Vec<MixMetrics>]) -> Vec<DesignCell> {
    let mut cells: Vec<DesignCell> = (0..designs)
        .map(|_| DesignCell::with_capacity(mixes))
        .collect();
    for row in per_mix {
        for (cell, m) in cells.iter_mut().zip(row) {
            cell.push(m);
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_quartiles() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn groups_enumerate_the_paper_order() {
        let labels: Vec<String> = LcGroup::all().iter().map(|g| g.label()).collect();
        assert_eq!(
            labels,
            vec!["masstree", "xapian", "img-dnn", "silo", "moses", "Mixed"]
        );
    }

    #[test]
    fn mix_count_default() {
        assert_eq!(mix_count(12), 12);
    }

    fn quick_opts() -> SimOptions {
        SimOptions {
            duration: jumanji::types::Seconds(0.5),
            ..SimOptions::default()
        }
    }

    #[test]
    fn parallel_matrix_matches_serial_exactly() {
        // The engine must be a pure wall-clock optimization: same seeds,
        // same results, bit for bit, at any worker count.
        let designs = [DesignKind::Static, DesignKind::Jigsaw, DesignKind::Jumanji];
        let serial = run_matrix_threads(
            LcGroup::Same("xapian"),
            LcLoad::High,
            &designs,
            2,
            &quick_opts(),
            1,
        );
        let parallel = run_matrix_threads(
            LcGroup::Same("xapian"),
            LcLoad::High,
            &designs,
            2,
            &quick_opts(),
            4,
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_matrices_matches_individual_matrices() {
        let designs = [DesignKind::Static, DesignKind::Jumanji];
        let matrices = [
            (LcGroup::Same("silo"), LcLoad::Low),
            (LcGroup::Mixed, LcLoad::High),
        ];
        let batched = run_matrices(&matrices, &designs, 2, &quick_opts());
        for ((group, load), cells) in matrices.iter().zip(&batched) {
            let single = run_matrix_threads(*group, *load, &designs, 2, &quick_opts(), 1);
            assert_eq!(*cells, single);
        }
    }
}
