//! The per-interval analytic performance model.
//!
//! Given an [`Allocation`] and each application's profile, this module
//! computes the quantities the rest of the simulator consumes:
//!
//! - **Effective capacity**: partitioned applications own their bytes;
//!   members of an unpartitioned pool settle to the occupancy equilibrium
//!   of [`nuca_cache::analytic::shared_occupancy`].
//! - **Miss ratio**: the profile's curve at the effective capacity,
//!   inflated by the way-partitioning associativity penalty
//!   ([`nuca_cache::analytic::assoc_penalty`]). D-NUCA allocations occupy
//!   whole banks at full associativity and pay no penalty — one of the two
//!   mechanisms behind Fig. 8.
//! - **LLC access latency**: bank latency + NoC round trip at the
//!   placement's average hop distance (the other Fig. 8 mechanism) + M/D/1
//!   port queueing.
//! - **Miss penalty**: DRAM latency + bank↔controller hops + bandwidth
//!   queueing at the per-controller demand.

use jumanji_core::{Allocation, AppKind};
use nuca_cache::analytic::{assoc_penalty, shared_occupancy_into, OccupancyScratch};
use nuca_cache::MissCurve;
use nuca_mem::MemSystem;
use nuca_noc::queueing::md1_wait;
use nuca_noc::{LinkLoads, MeshNoc, RouteTable};
use nuca_types::{AppId, BankId, CoreId, SystemConfig};
use nuca_workloads::{BatchProfile, LcLoad, LcProfile};
use std::sync::Arc;

/// Cycles one access occupies a bank port (data transfer of a 64 B line
/// over a 128-bit port).
const PORT_OCCUPANCY: f64 = 4.0;

/// Flits moved per LLC access (1-flit request + 4-flit line response),
/// charged on the request path; the symmetric response path is charged by
/// [`LinkLoads::from_flows`] itself.
const FLITS_PER_ACCESS: f64 = 2.5;

/// Extra contention misses suffered by members of an *unpartitioned* pool,
/// beyond the occupancy equilibrium: co-runners' insertions evict lines in
/// flight between uses. This transient-interference term is exactly what
/// utility-based partitioning removes \[69\]; its magnitude scales with
/// how much of the pool belongs to others.
const POOL_CHURN: f64 = 0.06;

/// An application as the simulator sees it.
#[derive(Debug, Clone)]
pub enum Profile {
    /// A batch application.
    Batch(BatchProfile),
    /// A latency-critical application and its load level.
    Lc(LcProfile, LcLoad),
}

impl Profile {
    /// The application's miss-ratio shape evaluated at `bytes`.
    pub fn miss_ratio(&self, bytes: f64) -> f64 {
        let b = bytes.max(0.0) as u64;
        match self {
            Profile::Batch(p) => p.shape.ratio(b),
            Profile::Lc(p, _) => p.shape.ratio(b),
        }
    }

    /// The kind used by placement algorithms.
    pub fn kind(&self) -> AppKind {
        match self {
            Profile::Batch(_) => AppKind::Batch,
            Profile::Lc(..) => AppKind::LatencyCritical,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Batch(p) => p.name,
            Profile::Lc(p, _) => p.name,
        }
    }
}

/// Per-application outputs of the performance model for one interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AppPerf {
    /// Effective cache capacity in bytes (equilibrium share for pooled
    /// apps).
    pub capacity_bytes: f64,
    /// Miss ratio after the associativity penalty.
    pub miss_ratio: f64,
    /// Average hops from the core to the data.
    pub avg_hops: f64,
    /// Average LLC access latency in cycles (bank + network + port wait).
    pub llc_latency: f64,
    /// Average additional latency of a miss, in cycles.
    pub miss_penalty: f64,
    /// Instructions per second (batch apps; 0 for LC).
    pub ips: f64,
    /// Service time per request in cycles (LC apps; 0 for batch).
    pub service_cycles: f64,
    /// LLC accesses per second generated at this operating point.
    pub access_rate: f64,
}

/// Reusable buffers for [`evaluate_with`]: per-bank port loads, per-
/// controller bandwidth demand, the per-link flow map, and the pooled-
/// capacity machinery (per-app sampled ratio curves, scaled absolute
/// curves, and occupancy fixed-point buffers). The interval loop in the
/// runner evaluates the model hundreds of times on the same geometry;
/// keeping one scratch per experiment makes each evaluation allocation-
/// free instead of re-sampling, re-scaling, and reallocating per call.
#[derive(Debug, Default)]
pub struct EvalScratch {
    bank_load: Vec<f64>,
    ctrl_load: Vec<f64>,
    link_loads: LinkLoads,
    /// Precomputed core↔bank routes (geometry is fixed per experiment).
    routes: Option<RouteTable>,
    /// Per bank: nearest controller index and unloaded miss penalty —
    /// pure geometry, computed once instead of per (app, bank) pair.
    bank_ctrl_pen: Vec<(usize, f64)>,
    /// Memoized unit-granularity ratio curve per app index; filled lazily
    /// (profiles are fixed for the lifetime of a scratch).
    sampled: Vec<Option<Arc<MissCurve>>>,
    /// Reusable scaled absolute-miss-rate curves for pool members.
    pool_scaled: Vec<MissCurve>,
    /// Occupancy equilibrium output and iteration buffers.
    occ: Vec<f64>,
    occ_scratch: OccupancyScratch,
    /// Per-app effective capacities.
    caps: Vec<f64>,
    /// Fixed-point access-rate iterate.
    rates: Vec<f64>,
    /// Per-bank port wait, per-link M/D/1 wait, and per-controller queue
    /// delay for the current iterate. Each is a pure function of the load
    /// on that one resource, so computing it once per iteration and
    /// sharing it across every application that touches the resource adds
    /// the exact same values in the exact same order as recomputing it
    /// per (app, bank) pair did.
    port_delay: Vec<f64>,
    link_delay: Vec<f64>,
    ctrl_delay: Vec<f64>,
}

impl EvalScratch {
    /// A fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized unit-granularity ratio curve of app `i`, sampling it on
    /// first use. Valid only while the scratch is used with one fixed
    /// profile set — which is the contract of the scratch (one experiment).
    fn sampled_curve(
        &mut self,
        profiles: &[Profile],
        i: usize,
        unit: u64,
        units: usize,
    ) -> Arc<MissCurve> {
        if self.sampled.len() < profiles.len() {
            self.sampled.resize(profiles.len(), None);
        }
        Arc::clone(
            self.sampled[i].get_or_insert_with(|| sampled_ratio_curve(&profiles[i], unit, units)),
        )
    }
}

/// Per-application quantities that are fixed by the allocation and thus
/// loop-invariant across the fixed-point iterations: the fixed point only
/// moves `rates`, while capacity, geometry, and the miss-ratio at that
/// capacity stay put.
struct AppStatics<'a> {
    /// Miss ratio after associativity penalty and pool churn (the value
    /// reported in [`AppPerf::miss_ratio`]).
    miss_ratio: f64,
    /// Raw curve miss ratio at the effective capacity (drives DRAM
    /// traffic; associativity conflicts refetch from the LLC itself).
    traffic_miss_ratio: f64,
    /// Average hop distance from the core to the data.
    hops: f64,
    /// `(bank, placement bytes)` pairs, as stored in the allocation.
    placement: &'a [(BankId, f64)],
    /// Total placed bytes (0 when the placement is unknown).
    total_bytes: f64,
}

/// Evaluates the performance model for every application.
///
/// `prev_rates[a]` is the previous interval's access rate estimate
/// (accesses/second), used to seed the fixed point between IPS and
/// latency; pass the profile-based initial guess on the first interval.
pub fn evaluate(
    cfg: &SystemConfig,
    profiles: &[Profile],
    cores: &[CoreId],
    alloc: &Allocation,
    prev_rates: &[f64],
) -> Vec<AppPerf> {
    let mut scratch = EvalScratch::new();
    evaluate_with(cfg, profiles, cores, alloc, prev_rates, &mut scratch)
}

/// [`evaluate`] with caller-provided scratch buffers (see [`EvalScratch`]).
pub fn evaluate_with(
    cfg: &SystemConfig,
    profiles: &[Profile],
    cores: &[CoreId],
    alloc: &Allocation,
    prev_rates: &[f64],
    scratch: &mut EvalScratch,
) -> Vec<AppPerf> {
    let mut out = Vec::new();
    evaluate_into(cfg, profiles, cores, alloc, prev_rates, scratch, &mut out);
    out
}

/// [`evaluate_with`] writing into a caller-provided vector, so the epoch
/// loop can reuse one perf buffer across intervals.
pub fn evaluate_into(
    cfg: &SystemConfig,
    profiles: &[Profile],
    cores: &[CoreId],
    alloc: &Allocation,
    prev_rates: &[f64],
    scratch: &mut EvalScratch,
    out: &mut Vec<AppPerf>,
) {
    assert_eq!(profiles.len(), cores.len(), "one core per application");
    let noc = MeshNoc::new(cfg);
    let mem = MemSystem::new(cfg);
    let n = profiles.len();
    out.clear();
    out.resize(n, AppPerf::default());
    if scratch.routes.is_none() {
        scratch.routes = Some(RouteTable::new(
            cfg.mesh(),
            cfg.num_cores,
            cfg.llc.num_banks,
        ));
    }
    if scratch.bank_ctrl_pen.is_empty() {
        scratch.bank_ctrl_pen = (0..cfg.llc.num_banks)
            .map(|b| {
                let b = BankId(b);
                (
                    mem.controller_for_bank(b),
                    noc.miss_penalty(b).as_u64() as f64,
                )
            })
            .collect();
    }

    // Geometry and capacity are fixed by the allocation; latency and rates
    // need a few fixed-point iterations. Everything that depends only on
    // the allocation is computed once, outside the fixed point.
    effective_capacities_into(cfg, profiles, alloc, prev_rates, scratch);
    // The capacity and rate buffers are lifted out of the scratch for the
    // duration of the call so the per-iteration borrows stay disjoint.
    let capacities = std::mem::take(&mut scratch.caps);
    let mut rates = std::mem::take(&mut scratch.rates);
    rates.clear();
    rates.extend_from_slice(prev_rates);
    let statics: Vec<AppStatics> = profiles
        .iter()
        .enumerate()
        .map(|(i, prof)| {
            let app = AppId(i);
            let cap = capacities[i];
            let ways = avg_ways(cfg, alloc, app);
            // Unpartitioned sharing adds transient contention misses on
            // top of the equilibrium, proportional to the pool share held
            // by co-runners.
            let churn = match alloc.of(app).pool {
                Some(p) => {
                    let pool_bytes = alloc.pools[p].total_bytes().max(1.0);
                    1.0 + POOL_CHURN * (1.0 - cap / pool_bytes)
                }
                None => 1.0,
            };
            let raw_mr = prof.miss_ratio(cap);
            let placement = alloc.placement_of(app);
            AppStatics {
                miss_ratio: (raw_mr * assoc_penalty(ways, cfg.llc.ways) * churn).min(1.0),
                traffic_miss_ratio: raw_mr.min(1.0),
                hops: alloc_distance(cfg, alloc, app, cores[i]),
                placement,
                total_bytes: placement.iter().map(|(_, b)| b).sum(),
            }
        })
        .collect();
    for _ in 0..3 {
        traffic(cfg, &statics, cores, &rates, &mem, scratch);
        let EvalScratch {
            bank_load,
            ctrl_load,
            link_loads,
            routes,
            bank_ctrl_pen,
            port_delay,
            link_delay,
            ctrl_delay,
            ..
        } = scratch;
        let routes = routes.as_ref().expect("routes built above");
        // Hoist the per-resource waits out of the per-application loop:
        // every app crossing a link (or hitting a bank port / memory
        // controller) sees the same wait at the same load, so one
        // evaluation per resource replaces one per (app, bank) pair.
        port_delay.clear();
        port_delay.extend(bank_load.iter().map(|&u| md1_wait(u, PORT_OCCUPANCY)));
        link_delay.clear();
        link_delay.extend(link_loads.flows().iter().map(|&f| md1_wait(f, 1.0)));
        ctrl_delay.clear();
        ctrl_delay.extend(ctrl_load.iter().map(|&u| mem.queue_delay(u)));
        for (i, prof) in profiles.iter().enumerate() {
            let st = &statics[i];
            let total_bytes = st.total_bytes;
            // Port wait averaged over the banks this app touches, and
            // link congestion along the app's paths, weighted by its
            // per-bank traffic shares.
            let (port_wait, link_wait) = if total_bytes > 0.0 {
                st.placement
                    .iter()
                    .map(|&(b, bytes)| {
                        let w = bytes / total_bytes;
                        (
                            port_delay[b.index()] * w,
                            routes.round_trip_sum(link_delay, cores[i], b) * w,
                        )
                    })
                    .fold((0.0, 0.0), |(p, l), (dp, dl)| (p + dp, l + dl))
            } else {
                (0.0, 0.0)
            };
            let llc_lat = cfg.llc.bank_latency.as_u64() as f64
                + noc.round_trip_for_hops(st.hops)
                + port_wait
                + link_wait;
            // Miss penalty: bank to nearest controller and back + DRAM +
            // bandwidth queueing at that controller.
            let miss_pen = if total_bytes > 0.0 {
                st.placement
                    .iter()
                    .map(|&(b, bytes)| {
                        let (ctrl, base) = bank_ctrl_pen[b.index()];
                        (base + ctrl_delay[ctrl]) * bytes / total_bytes
                    })
                    .sum()
            } else {
                noc.avg_miss_penalty() + mem.queue_delay(ctrl_load.iter().sum::<f64>() / 4.0)
            };
            let mr = st.miss_ratio;
            let perf = &mut out[i];
            perf.capacity_bytes = capacities[i];
            perf.miss_ratio = mr;
            perf.avg_hops = st.hops;
            perf.llc_latency = llc_lat;
            perf.miss_penalty = miss_pen;
            match prof {
                Profile::Batch(p) => {
                    perf.ips = p.ips(llc_lat, mr, miss_pen, cfg.freq_hz);
                    perf.access_rate = perf.ips * p.llc_apki / 1000.0;
                    perf.service_cycles = 0.0;
                }
                Profile::Lc(p, load) => {
                    perf.service_cycles = p.service_cycles(llc_lat, mr, miss_pen);
                    // Served request rate cannot exceed the service rate.
                    let offered = p.qps(*load);
                    let served = offered.min(cfg.freq_hz / perf.service_cycles);
                    perf.access_rate = served * p.accesses_per_req;
                    perf.ips = 0.0;
                }
            }
        }
        for i in 0..n {
            rates[i] = out[i].access_rate;
        }
    }
    scratch.caps = capacities;
    scratch.rates = rates;
}

/// Resolves each application's effective capacity: partition bytes, or the
/// equilibrium share of its pool.
pub fn effective_capacities(
    cfg: &SystemConfig,
    profiles: &[Profile],
    alloc: &Allocation,
    rates: &[f64],
) -> Vec<f64> {
    let mut scratch = EvalScratch::new();
    effective_capacities_into(cfg, profiles, alloc, rates, &mut scratch);
    std::mem::take(&mut scratch.caps)
}

/// [`effective_capacities`] writing into `scratch.caps`, reusing the
/// scratch's sampled curves, scaled-curve slots, and occupancy buffers so
/// the per-interval pool equilibrium allocates nothing.
fn effective_capacities_into(
    cfg: &SystemConfig,
    profiles: &[Profile],
    alloc: &Allocation,
    rates: &[f64],
    scratch: &mut EvalScratch,
) {
    let unit = cfg.llc.way_bytes();
    let units = cfg.llc.total_ways() as usize;
    scratch.caps.clear();
    scratch
        .caps
        .extend(alloc.apps.iter().map(|a| a.total_bytes()));
    for pool in &alloc.pools {
        let pool_units = pool.total_bytes() / unit as f64;
        // Members' absolute miss-rate curves at unit granularity. The
        // sampled ratio curve depends only on (profile, unit, ways) — the
        // per-interval access rate just scales it — so the expensive
        // sampling is memoized in the scratch and only the cheap in-place
        // scaling runs per call.
        let k = pool.members.len();
        while scratch.pool_scaled.len() < k {
            scratch.pool_scaled.push(MissCurve::new(1, vec![0.0]));
        }
        for (j, m) in pool.members.iter().enumerate() {
            let rate = rates[m.index()].max(1.0);
            let base = scratch.sampled_curve(profiles, m.index(), unit, units);
            scratch.pool_scaled[j].clone_scaled_from(&base, rate);
        }
        {
            let EvalScratch {
                pool_scaled,
                occ,
                occ_scratch,
                ..
            } = scratch;
            shared_occupancy_into(&pool_scaled[..k], pool_units, occ, occ_scratch);
        }
        for (j, m) in pool.members.iter().enumerate() {
            scratch.caps[m.index()] = scratch.occ[j] * unit as f64;
        }
    }
}

/// The process-wide memo of sampled miss-ratio curves (see
/// [`sampled_ratio_curve`]). Shared by every worker thread, so each
/// profile is sampled once per process instead of once per thread.
static SAMPLED_CURVES: std::sync::LazyLock<nuca_types::ShardedMap<u128, Arc<MissCurve>>> =
    std::sync::LazyLock::new(nuca_types::ShardedMap::new);

/// Memoized unit-granularity sampling of a profile's miss-ratio curve.
///
/// Sampling evaluates `units + 1` parametric curve points (each a `powf`
/// per smooth component), and pooled designs resample every member on
/// every interval; the cache turns that into one sampling per profile per
/// process, keyed by the content fingerprint of the full input. Returns an
/// `Arc` so per-scratch memoization shares the curve without copying the
/// point vector.
fn sampled_ratio_curve(prof: &Profile, unit: u64, units: usize) -> Arc<MissCurve> {
    let key = nuca_types::hash::fingerprint128(format!("{prof:?}|{unit}|{units}").as_bytes());
    SAMPLED_CURVES.get_or_compute(key, || {
        let pts: Vec<f64> = (0..=units)
            .map(|u| prof.miss_ratio((u as u64 * unit) as f64))
            .collect();
        Arc::new(MissCurve::new(unit, pts))
    })
}

/// Average ways available to the app where its data lives (pool ways for
/// pooled apps).
fn avg_ways(cfg: &SystemConfig, alloc: &Allocation, app: AppId) -> f64 {
    let a = alloc.of(app);
    match a.pool {
        Some(p) => alloc.pools[p].avg_ways(cfg),
        None => a.avg_ways(cfg),
    }
}

/// Average hop distance for `app` under `alloc`.
fn alloc_distance(cfg: &SystemConfig, alloc: &Allocation, app: AppId, core: CoreId) -> f64 {
    let mesh = cfg.mesh();
    let placement = alloc.placement_of(app);
    if placement.is_empty() {
        // No data in the LLC at all: misses travel the S-NUCA average.
        return mesh.snuca_avg_distance(core);
    }
    mesh.weighted_distance(core, placement.iter().copied())
}

/// Per-bank port utilization and per-controller bandwidth demand for the
/// current rates, written into `scratch`.
fn traffic(
    cfg: &SystemConfig,
    statics: &[AppStatics],
    cores: &[CoreId],
    rates: &[f64],
    mem: &MemSystem,
    scratch: &mut EvalScratch,
) {
    let nbanks = cfg.llc.num_banks;
    let mesh = cfg.mesh();
    scratch.bank_load.clear();
    scratch.bank_load.resize(nbanks, 0.0); // utilization per bank port
    scratch.ctrl_load.clear();
    scratch.ctrl_load.resize(mem.num_controllers(), 0.0); // lines/cycle
    scratch.link_loads.reset(mesh);
    let routes = scratch.routes.as_ref().expect("routes built by caller");
    let bank_ctrl_pen = &scratch.bank_ctrl_pen;
    for (i, st) in statics.iter().enumerate() {
        let rate_cyc = rates[i] / cfg.freq_hz; // accesses per cycle
        let mr = st.traffic_miss_ratio;
        if st.total_bytes <= 0.0 {
            // Uniform striping assumption when no placement is known.
            for (b, load) in scratch.bank_load.iter_mut().enumerate() {
                *load += rate_cyc / nbanks as f64 * PORT_OCCUPANCY;
                let c = bank_ctrl_pen[b].0;
                scratch.ctrl_load[c] += rate_cyc * mr / nbanks as f64;
                scratch.link_loads.add_flow_routed(
                    routes,
                    cores[i],
                    BankId(b),
                    rate_cyc / nbanks as f64 * FLITS_PER_ACCESS,
                );
            }
            continue;
        }
        for &(b, bytes) in st.placement {
            let share = bytes / st.total_bytes;
            scratch.bank_load[b.index()] += rate_cyc * share * PORT_OCCUPANCY;
            scratch.ctrl_load[bank_ctrl_pen[b.index()].0] += rate_cyc * mr * share;
            scratch.link_loads.add_flow_routed(
                routes,
                cores[i],
                b,
                rate_cyc * share * FLITS_PER_ACCESS,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji_core::{DesignKind, PlacementInput};
    use nuca_workloads::{spec2006, tailbench};

    fn profiles() -> Vec<Profile> {
        // Mirror PlacementInput::example's 4 VMs x (1 LC + 4 batch).
        let lc = tailbench();
        let batch = spec2006();
        let mut out = Vec::new();
        for vm in 0..4 {
            out.push(Profile::Lc(lc[vm % lc.len()].clone(), LcLoad::High));
            for i in 0..4 {
                out.push(Profile::Batch(batch[(vm * 4 + i) % batch.len()].clone()));
            }
        }
        out
    }

    fn cores() -> Vec<CoreId> {
        let quadrants: [[usize; 5]; 4] = [
            [0, 1, 5, 6, 2],
            [4, 3, 9, 8, 7],
            [15, 16, 10, 11, 12],
            [19, 18, 14, 13, 17],
        ];
        quadrants.iter().flatten().map(|&c| CoreId(c)).collect()
    }

    fn initial_rates(profiles: &[Profile]) -> Vec<f64> {
        profiles
            .iter()
            .map(|p| match p {
                Profile::Batch(b) => 1.5e9 * b.llc_apki / 1000.0,
                Profile::Lc(l, load) => l.qps(*load) * l.accesses_per_req,
            })
            .collect()
    }

    #[test]
    fn dnuca_latency_beats_snuca() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let profs = profiles();
        let rates = initial_rates(&profs);
        let snuca = evaluate(
            &cfg,
            &profs,
            &cores(),
            &DesignKind::Adaptive.allocate(&input),
            &rates,
        );
        let dnuca = evaluate(
            &cfg,
            &profs,
            &cores(),
            &DesignKind::Jumanji.allocate(&input),
            &rates,
        );
        let avg = |v: &[AppPerf]| v.iter().map(|p| p.llc_latency).sum::<f64>() / v.len() as f64;
        assert!(
            avg(&dnuca) < avg(&snuca) - 5.0,
            "D-NUCA {:.1} vs S-NUCA {:.1}",
            avg(&dnuca),
            avg(&snuca)
        );
    }

    #[test]
    fn batch_ips_positive_and_bounded() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let profs = profiles();
        let rates = initial_rates(&profs);
        let perf = evaluate(
            &cfg,
            &profs,
            &cores(),
            &DesignKind::Static.allocate(&input),
            &rates,
        );
        for (p, prof) in perf.iter().zip(&profs) {
            if let Profile::Batch(b) = prof {
                assert!(p.ips > 1e8, "{}: ips {}", b.name, p.ips);
                assert!(p.ips < cfg.freq_hz / b.base_cpi);
            }
        }
    }

    #[test]
    fn lc_service_time_reflects_capacity() {
        let cfg = SystemConfig::micro2020();
        let mut input = PlacementInput::example(&cfg);
        let profs = profiles();
        let rates = initial_rates(&profs);
        // Starved LC allocation.
        for a in 0..input.lc_sizes.len() {
            if input.lc_sizes[a] > 0.0 {
                input.lc_sizes[a] = 512.0 * 1024.0;
            }
        }
        let starved = evaluate(
            &cfg,
            &profs,
            &cores(),
            &DesignKind::Jumanji.allocate(&input),
            &rates,
        );
        // Generous LC allocation.
        for a in 0..input.lc_sizes.len() {
            if input.lc_sizes[a] > 0.0 {
                input.lc_sizes[a] = 4.0 * 1024.0 * 1024.0;
            }
        }
        let fed = evaluate(
            &cfg,
            &profs,
            &cores(),
            &DesignKind::Jumanji.allocate(&input),
            &rates,
        );
        for i in (0..20).step_by(5) {
            assert!(
                starved[i].service_cycles > fed[i].service_cycles * 1.2,
                "app {i}: starved {} vs fed {}",
                starved[i].service_cycles,
                fed[i].service_cycles
            );
        }
    }

    #[test]
    fn pooled_capacity_sums_to_pool() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let profs = profiles();
        let rates = initial_rates(&profs);
        let alloc = DesignKind::Adaptive.allocate(&input);
        let caps = effective_capacities(&cfg, &profs, &alloc, &rates);
        let pool_cap: f64 = alloc.pools[0].total_bytes();
        let member_caps: f64 = alloc.pools[0].members.iter().map(|m| caps[m.index()]).sum();
        assert!(
            (member_caps - pool_cap).abs() / pool_cap < 0.02,
            "members hold {member_caps} of pool {pool_cap}"
        );
    }

    #[test]
    fn narrow_partitions_pay_associativity() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let profs = profiles();
        let rates = initial_rates(&profs);
        // VM-Part stripes small VM pools across all banks: few ways each.
        let vmpart = evaluate(
            &cfg,
            &profs,
            &cores(),
            &DesignKind::VmPart.allocate(&input),
            &rates,
        );
        let jumanji = evaluate(
            &cfg,
            &profs,
            &cores(),
            &DesignKind::Jumanji.allocate(&input),
            &rates,
        );
        // Compare miss ratios at (roughly) matched capacity for a batch app.
        let i = 1; // a batch app
        let vm_mr_per_cap = vmpart[i].miss_ratio / profs[i].miss_ratio(vmpart[i].capacity_bytes);
        let ju_mr_per_cap = jumanji[i].miss_ratio / profs[i].miss_ratio(jumanji[i].capacity_bytes);
        assert!(
            vm_mr_per_cap > ju_mr_per_cap,
            "VM-Part pays associativity penalty: {vm_mr_per_cap} vs {ju_mr_per_cap}"
        );
    }
}
