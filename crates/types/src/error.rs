//! Error types for configuration validation and the experiment harness.

use core::fmt;

/// The workspace-wide error type for fallible harness operations:
/// experiment-spec parsing, figure emission, and statistics over samples.
///
/// Binaries map these to exit codes — flag/usage errors exit 2, runtime
/// errors exit 1 — instead of panicking.
///
/// # Examples
///
/// ```
/// use nuca_types::Error;
/// let e = Error::flag("--mixes", "expected a positive integer, got 'x'");
/// assert!(e.to_string().contains("--mixes"));
/// assert!(e.is_usage());
/// ```
#[derive(Debug)]
pub enum Error {
    /// An invalid system configuration.
    Config(ConfigError),
    /// A statistic was requested over an empty sample.
    EmptySample {
        /// What was being summarized (e.g., `"norm_tails"`).
        what: String,
    },
    /// A malformed or incomplete command-line flag / environment knob.
    Flag {
        /// The flag or variable at fault (e.g., `"--mixes"`).
        flag: String,
        /// Why it was rejected.
        message: String,
    },
    /// A workload name that matches nothing in the rosters.
    UnknownWorkload {
        /// The offending name.
        name: String,
    },
    /// An I/O failure (trace files, figure output).
    Io(std::io::Error),
}

impl Error {
    /// Convenience constructor for an empty-sample error.
    pub fn empty_sample(what: impl Into<String>) -> Error {
        Error::EmptySample { what: what.into() }
    }

    /// Convenience constructor for a flag error.
    pub fn flag(flag: impl Into<String>, message: impl Into<String>) -> Error {
        Error::Flag {
            flag: flag.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for an unknown-workload error.
    pub fn unknown_workload(name: impl Into<String>) -> Error {
        Error::UnknownWorkload { name: name.into() }
    }

    /// True for errors the user caused on the command line — binaries
    /// print usage and exit 2 for these, 1 for everything else.
    pub fn is_usage(&self) -> bool {
        matches!(self, Error::Flag { .. } | Error::UnknownWorkload { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "{e}"),
            Error::EmptySample { what } => {
                write!(f, "cannot summarize an empty sample of {what}")
            }
            Error::Flag { flag, message } => write!(f, "invalid {flag}: {message}"),
            Error::UnknownWorkload { name } => write!(f, "unknown workload '{name}'"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Error {
        Error::Config(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

/// An invalid system configuration.
///
/// # Examples
///
/// ```
/// use nuca_types::{ConfigError, SystemConfig};
/// let mut cfg = SystemConfig::micro2020();
/// cfg.num_cores = 3;
/// let err: ConfigError = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("num_cores"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> ConfigError {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid configuration: boom");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<Error>();
    }

    #[test]
    fn harness_error_displays_and_classifies() {
        assert!(Error::flag("--mixes", "bad").is_usage());
        assert!(Error::unknown_workload("nope").is_usage());
        assert!(!Error::empty_sample("speedups").is_usage());
        assert!(!Error::from(ConfigError::new("x")).is_usage());
        let io = Error::from(std::io::Error::other("disk"));
        assert!(!io.is_usage());
        assert_eq!(
            Error::empty_sample("speedups").to_string(),
            "cannot summarize an empty sample of speedups"
        );
        assert_eq!(
            Error::flag("--mixes", "expected integer").to_string(),
            "invalid --mixes: expected integer"
        );
        assert_eq!(
            Error::unknown_workload("nope").to_string(),
            "unknown workload 'nope'"
        );
    }
}
