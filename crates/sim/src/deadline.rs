//! Tail-latency deadline derivation (paper Sec. VII).
//!
//! "For all experiments, the deadline for a latency-critical application is
//! determined by the 95th percentile tail latency when the application is
//! run in isolation on high load with four cache ways using
//! way-partitioning." We reproduce that definition: the server runs alone
//! on an S-NUCA machine with a 4-way partition (4 ways × 20 banks =
//! 2.5 MB), its queue is simulated to steady state, and the measured
//! p95 becomes the deadline.

use crate::metrics::percentile;
use crate::queueing::LcQueue;
use nuca_cache::analytic::assoc_penalty;
use nuca_noc::MeshNoc;
use nuca_types::{CoreId, SystemConfig};
use nuca_workloads::{LcLoad, LcProfile};

/// Ways of each bank granted in the deadline-derivation run.
const DEADLINE_WAYS: f64 = 4.0;
/// Requests simulated to estimate the p95 (well above Table III's query
/// counts for a stable estimate).
const DEADLINE_REQUESTS: usize = 20_000;

/// Service time (cycles) of `profile` in the isolation configuration.
pub fn isolation_service_cycles(profile: &LcProfile, cfg: &SystemConfig) -> f64 {
    let noc = MeshNoc::new(cfg);
    let hops = cfg.mesh().snuca_avg_distance(CoreId(0));
    let llc_lat = cfg.llc.bank_latency.as_u64() as f64 + noc.round_trip_for_hops(hops);
    let capacity = DEADLINE_WAYS * cfg.llc.way_bytes() as f64 * cfg.llc.num_banks as f64;
    let mr = (profile.shape.ratio(capacity as u64) * assoc_penalty(DEADLINE_WAYS, cfg.llc.ways))
        .min(1.0);
    profile.service_cycles(llc_lat, mr, noc.avg_miss_penalty())
}

/// The process-wide deadline memo: one isolation run per distinct
/// `(profile, cfg)` per process, shared by every worker thread.
static DEADLINES: std::sync::LazyLock<nuca_types::ShardedMap<u128, f64>> =
    std::sync::LazyLock::new(nuca_types::ShardedMap::new);

/// The deadline, in cycles, for `profile` per the paper's methodology.
///
/// Deterministic: the arrival stream is seeded from the profile name.
///
/// The isolation run simulates [`DEADLINE_REQUESTS`] requests, which is by
/// far the most expensive step of `Experiment::new` — and it is a pure
/// function of `(profile, cfg)`, both of which repeat across the thousands
/// of experiments a figure sweep runs. The result is therefore memoized
/// process-wide, keyed by the content fingerprint of the full input.
pub fn deadline_cycles(profile: &LcProfile, cfg: &SystemConfig) -> f64 {
    // Debug formatting captures every field (including the curve shape),
    // so any change to the profile or machine gets its own entry.
    let key = nuca_types::hash::fingerprint128(format!("{profile:?}|{cfg:?}").as_bytes());
    DEADLINES.get_or_compute(key, || deadline_cycles_uncached(profile, cfg))
}

/// Every completed entry of the deadline memo, for persisting it to a
/// disk-backed store. Keys are the same content fingerprints
/// [`deadline_cycles`] computes from its inputs.
pub fn export_deadlines() -> Vec<(u128, f64)> {
    DEADLINES.snapshot()
}

/// Warm-starts the deadline memo with an entry loaded from a persistent
/// store. Never clobbers a deadline this process already computed, and
/// counts neither a hit nor a miss.
pub fn seed_deadline(key: u128, cycles: f64) {
    DEADLINES.seed(key, cycles);
}

fn deadline_cycles_uncached(profile: &LcProfile, cfg: &SystemConfig) -> f64 {
    let service = isolation_service_cycles(profile, cfg);
    let interarrival = profile.interarrival_cycles(LcLoad::High, cfg.freq_hz);
    let seed = profile
        .name
        .bytes()
        .fold(0xBEEFu64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    let mut queue = LcQueue::new(interarrival, seed);
    let horizon = (interarrival * DEADLINE_REQUESTS as f64 * 1.05) as u64;
    let completions = queue.advance(horizon, service);
    let latencies: Vec<f64> = completions.iter().map(|c| c.latency as f64).collect();
    percentile(&latencies, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_workloads::tailbench;

    #[test]
    fn deadlines_are_stable_and_reasonable() {
        let cfg = SystemConfig::micro2020();
        for p in tailbench() {
            let d1 = deadline_cycles(&p, &cfg);
            let d2 = deadline_cycles(&p, &cfg);
            assert_eq!(d1, d2, "{} deadline must be deterministic", p.name);
            let service = isolation_service_cycles(&p, &cfg);
            // p95 includes queueing: above one service time, below the
            // saturation regime.
            assert!(
                d1 > service,
                "{}: deadline {d1} vs service {service}",
                p.name
            );
            assert!(
                d1 < 20.0 * service,
                "{}: deadline {d1} suspiciously large vs {service}",
                p.name
            );
        }
    }

    #[test]
    fn isolation_utilization_is_stable_at_high_load() {
        // The 4-way isolation point must be below saturation, or the
        // methodology would not define a finite deadline.
        let cfg = SystemConfig::micro2020();
        for p in tailbench() {
            let rho = isolation_service_cycles(&p, &cfg)
                / p.interarrival_cycles(LcLoad::High, cfg.freq_hz);
            assert!(rho < 0.9, "{}: isolation utilization {rho:.2}", p.name);
        }
    }

    #[test]
    fn deadlines_scale_with_service_time() {
        // Slower servers (moses, img-dnn) must have longer deadlines than
        // fast ones (silo, masstree).
        let cfg = SystemConfig::micro2020();
        let lc = tailbench();
        let find = |n: &str| lc.iter().find(|p| p.name == n).unwrap();
        let d = |n: &str| deadline_cycles(find(n), &cfg);
        assert!(d("moses") > d("silo"));
        assert!(d("img-dnn") > d("masstree"));
    }
}
