//! `LatCritPlacer` (paper Listing 2): greedily reserves each
//! latency-critical application's controller-assigned space in the banks
//! closest to its core.
//!
//! The greedy placement is deliberately simple — the paper found a
//! trade-based refinement "was rarely a net win" (Sec. V-D, Sec. VIII-C) —
//! but it guarantees the space is reserved *before* batch placement runs,
//! so deadlines do not depend on batch behaviour.

use crate::model::{AppKind, PlacementInput};
use nuca_types::{AppId, BankId, VmId};

/// A latency-critical reservation: bytes per bank, nearest-first.
pub type LcPlacement = Vec<(AppId, Vec<(BankId, f64)>)>;

/// Places every latency-critical application's `lc_size` in the nearest
/// banks with remaining balance, decrementing `bank_balance` in place.
///
/// When `claims` is provided (Jumanji), a bank already claimed by another
/// VM is skipped, and every bank touched is claimed for the app's VM —
/// this preserves bank isolation even between latency-critical
/// applications of different VMs. Without `claims` (the Insecure variant
/// and Fig. 8-style studies), any bank with balance is fair game.
///
/// If the machine runs out of balance the reservation is truncated — the
/// feedback controller will observe the consequences and panic if needed.
///
/// # Panics
///
/// Panics if `bank_balance` does not cover every bank of the mesh.
pub fn lat_crit_placer(
    input: &PlacementInput,
    bank_balance: &mut [f64],
    mut claims: Option<&mut Vec<Option<VmId>>>,
) -> LcPlacement {
    let mesh = input.cfg.mesh();
    assert_eq!(
        bank_balance.len(),
        mesh.num_tiles(),
        "one balance entry per bank"
    );
    let mut out = Vec::new();
    for app in input
        .apps
        .iter()
        .filter(|a| a.kind == AppKind::LatencyCritical)
    {
        let mut need = input.lc_size(app.id);
        let mut placement = Vec::new();
        for bank in mesh.banks_by_distance(app.core) {
            if need <= 0.0 {
                break;
            }
            if let Some(claims) = claims.as_deref() {
                if matches!(claims[bank.index()], Some(vm) if vm != app.vm) {
                    continue;
                }
            }
            let take = bank_balance[bank.index()].min(need);
            if take > 0.0 {
                bank_balance[bank.index()] -= take;
                need -= take;
                placement.push((bank, take));
                if let Some(claims) = claims.as_deref_mut() {
                    claims[bank.index()] = Some(app.vm);
                }
            }
        }
        out.push((app.id, placement));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_types::SystemConfig;

    const MB: f64 = 1024.0 * 1024.0;

    fn input() -> PlacementInput {
        PlacementInput::example(&SystemConfig::micro2020())
    }

    fn full_balance(input: &PlacementInput) -> Vec<f64> {
        vec![input.cfg.llc.bank_bytes as f64; input.cfg.llc.num_banks]
    }

    #[test]
    fn reserves_exactly_the_requested_size() {
        let inp = input();
        let mut balance = full_balance(&inp);
        let placed = lat_crit_placer(&inp, &mut balance, None);
        assert_eq!(placed.len(), 4);
        for (app, placement) in &placed {
            let total: f64 = placement.iter().map(|(_, b)| b).sum();
            assert!((total - inp.lc_size(*app)).abs() < 1e-6);
        }
        let used: f64 = full_balance(&inp).iter().sum::<f64>() - balance.iter().sum::<f64>();
        assert!((used - 8.0 * MB).abs() < 1e-6); // 4 apps x 2 MB
    }

    #[test]
    fn places_in_nearest_banks_first() {
        let inp = input();
        let mut balance = full_balance(&inp);
        let placed = lat_crit_placer(&inp, &mut balance, None);
        // App 0 runs on core 0 (corner): 2 MB fits in the local bank plus
        // one neighbour.
        let (app, placement) = &placed[0];
        assert_eq!(app.index(), 0);
        assert_eq!(placement[0].0, BankId(0));
        assert_eq!(placement[0].1, MB);
        assert_eq!(placement[1].0, BankId(1));
        assert_eq!(placement[1].1, MB);
    }

    #[test]
    fn claims_prevent_cross_vm_bank_sharing() {
        let mut inp = input();
        // Make LC sizes big enough (5 MB each) that unclaimed placement
        // would overlap quadrant boundaries.
        for a in 0..inp.lc_sizes.len() {
            if inp.apps[a].kind == AppKind::LatencyCritical {
                inp.lc_sizes[a] = 5.0 * MB;
            }
        }
        let mut balance = full_balance(&inp);
        let mut claims = vec![None; inp.cfg.llc.num_banks];
        let placed = lat_crit_placer(&inp, &mut balance, Some(&mut claims));
        // Each touched bank is claimed by exactly the owner VM.
        for (app, placement) in &placed {
            let vm = inp.apps[app.index()].vm;
            for (bank, bytes) in placement {
                assert!(*bytes > 0.0);
                assert_eq!(claims[bank.index()], Some(vm));
            }
        }
        // Full reservations were still possible (plenty of capacity).
        for (app, placement) in &placed {
            let total: f64 = placement.iter().map(|(_, b)| b).sum();
            assert!((total - inp.lc_size(*app)).abs() < 1e-6);
        }
    }

    #[test]
    fn truncates_when_machine_is_full() {
        let inp = input();
        let mut balance = vec![0.25 * MB; inp.cfg.llc.num_banks]; // only 5 MB total
        let placed = lat_crit_placer(&inp, &mut balance, None);
        let total: f64 = placed
            .iter()
            .flat_map(|(_, p)| p.iter().map(|(_, b)| *b))
            .sum();
        assert!(
            (total - 5.0 * MB).abs() < 1e-6,
            "everything available was used"
        );
        assert!(balance.iter().all(|&b| b.abs() < 1e-9));
    }

    #[test]
    fn second_app_spills_around_first() {
        let mut inp = input();
        // Give app 0 the entire corner region.
        inp.lc_sizes[0] = 4.0 * MB;
        let mut balance = full_balance(&inp);
        let placed = lat_crit_placer(&inp, &mut balance, None);
        // App 0 consumed banks 0,1,5,6 (its 4 nearest); app 5 (core 4, the
        // NE corner) is unaffected and takes bank 4 first.
        let (_, p1) = &placed[1];
        assert_eq!(p1[0].0, BankId(4));
    }
}
