//! Attack demonstrations: the LLC port attack (Fig. 11) and DRRIP
//! set-dueling performance leakage (Fig. 12). Both run fixed scenarios;
//! the spec's knobs don't apply.

use crate::spec::ExperimentSpec;
use jumanji::attacks::leakage::{leakage_experiment, LeakageConfig};
use jumanji::attacks::port::{run_port_attack, PortAttackConfig};
use jumanji::prelude::Telemetry;
use jumanji::types::Error;
use std::io::Write;

/// Fig. 11: LLC port attack demonstration — attacker access times vs.
/// wall-clock time while a 3-thread victim rotates through flooding each
/// of the 12 LLC banks.
pub fn fig11(
    _spec: &ExperimentSpec,
    _tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let cfg = PortAttackConfig::default();
    let trace = run_port_attack(cfg);
    writeln!(
        out,
        "# Fig. 11: attacker timing (cycles per access, sampled every 100 accesses)"
    )?;
    writeln!(out, "t_kcycles\tcycles_per_access\tvictim_bank")?;
    for s in &trace.samples {
        writeln!(
            out,
            "{:.1}\t{:.2}\t{}",
            s.at as f64 / 1e3,
            s.cycles_per_access,
            s.victim_bank
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_string())
        )?;
    }
    writeln!(out, "# summary:")?;
    writeln!(
        out,
        "# baseline (victim idle): {:.1} cycles/access",
        trace.baseline()
    )?;
    writeln!(
        out,
        "# victim on other banks (NoC contention): {:.1} cycles/access",
        trace.other_bank_level()
    )?;
    writeln!(
        out,
        "# victim on attacker's bank (port contention): {:.1} cycles/access",
        trace.same_bank_level()
    )?;
    writeln!(
        out,
        "# attacker detects victim's bank: {}",
        trace.detects_victim(2.0)
    )?;
    writeln!(
        out,
        "# expected: 12 bumps (one per victim bank), with the attacker-bank bump highest"
    )?;
    writeln!(
        out,
        "# (paper: avg time > 32 cycles during same-bank contention)."
    )?;
    Ok(())
}

/// Fig. 12: performance leakage through DRRIP set-dueling — img-dnn's
/// tail latency across 40 batch mixes with a fixed S-NUCA partition
/// (red) vs. a fixed D-NUCA allocation in its own banks (blue),
/// normalized to img-dnn running alone.
pub fn fig12(
    _spec: &ExperimentSpec,
    _tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let r = leakage_experiment(LeakageConfig::default());
    writeln!(
        out,
        "# Fig. 12: img-dnn normalized tail latency, 40 mixes sorted best to worst"
    )?;
    writeln!(out, "mix_rank\tsnuca_norm_tail\tdnuca_norm_tail")?;
    for (i, (s, d)) in r
        .snuca_norm_tails
        .iter()
        .zip(&r.dnuca_norm_tails)
        .enumerate()
    {
        writeln!(out, "{}\t{:.4}\t{:.4}", i + 1, s, d)?;
    }
    writeln!(
        out,
        "# S-NUCA spread (max/min - 1): {:.1}% — the fixed partition does NOT isolate performance",
        r.snuca_spread() * 100.0
    )?;
    writeln!(
        out,
        "# D-NUCA spread: {:.3}% — private banks, private replacement state",
        r.dnuca_spread() * 100.0
    )?;
    writeln!(
        out,
        "# expected: S-NUCA varies by >10% across mixes; D-NUCA flat and lower."
    )?;
    Ok(())
}
