//! Cost of the allocation-algorithm building blocks: Lookahead (convex and
//! cliff inputs), bank placement (`place_near`), VM-curve combining,
//! convex hulls, and placement descriptor construction.

use criterion::{criterion_group, criterion_main, Criterion};
use jumanji::cache::MissCurve;
use jumanji::core::jigsaw::{place_near, refine_placement, PlaceRequest};
use jumanji::core::lookahead::{jumanji_lookahead, lookahead};
use jumanji::core::PlacementInput;
use jumanji::prelude::SystemConfig;
use jumanji::types::BankId;
use jumanji::vc::PlacementDescriptor;
use std::hint::black_box;

fn convex_curves(n: usize, units: usize) -> Vec<MissCurve> {
    (0..n)
        .map(|i| {
            let ws = 20.0 + 30.0 * i as f64;
            let pts: Vec<f64> = (0..=units).map(|u| 1e7 / (1.0 + u as f64 / ws)).collect();
            MissCurve::new(32 * 1024, pts)
        })
        .collect()
}

fn cliff_curves(n: usize, units: usize) -> Vec<MissCurve> {
    (0..n)
        .map(|i| {
            let cliff = 40 + 25 * i;
            let pts: Vec<f64> = (0..=units)
                .map(|u| if u < cliff { 1e7 } else { 1e6 })
                .collect();
            MissCurve::new(32 * 1024, pts)
        })
        .collect()
}

fn lookahead_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookahead");
    let convex = convex_curves(20, 640);
    group.bench_function("convex_20apps_640units", |b| {
        b.iter(|| black_box(lookahead(black_box(&convex), 640)))
    });
    let cliffs = cliff_curves(8, 640);
    group.bench_function("cliffs_8apps_640units", |b| {
        b.iter(|| black_box(lookahead(black_box(&cliffs), 640)))
    });
    let vm_curves = convex_curves(4, 640);
    let lc = [40.0, 55.0, 33.0, 61.0];
    group.bench_function("jumanji_bank_granular", |b| {
        b.iter(|| black_box(jumanji_lookahead(black_box(&vm_curves), &lc, 20, 32)))
    });
    group.finish();
}

fn place_near_benches(c: &mut Criterion) {
    // The Jigsaw/Jumanji bank-placement step on the paper-sized problem:
    // 20 apps on the 4x5 mesh, Lookahead-sized capacity requests.
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let curves: Vec<&MissCurve> = input.apps.iter().map(|a| &a.curve).collect();
    let sizes = lookahead(&curves, cfg.llc.total_ways() as usize);
    let unit = cfg.llc.way_bytes() as f64;
    let requests: Vec<PlaceRequest> = input
        .apps
        .iter()
        .zip(&sizes)
        .map(|(a, &u)| PlaceRequest {
            app: a.id,
            core: a.core,
            bytes: u as f64 * unit,
            priority: a.access_rate,
        })
        .collect();
    let mut group = c.benchmark_group("place_near");
    group.bench_function("20apps_20banks", |b| {
        b.iter(|| {
            let mut balance = vec![cfg.llc.bank_bytes as f64; cfg.llc.num_banks];
            black_box(place_near(
                black_box(&requests),
                &mut balance,
                cfg.mesh(),
                None,
            ))
        })
    });
    let mut balance = vec![cfg.llc.bank_bytes as f64; cfg.llc.num_banks];
    let placed = place_near(&requests, &mut balance, cfg.mesh(), None);
    group.bench_function("refine_4rounds", |b| {
        b.iter(|| {
            let mut p = placed.clone();
            refine_placement(black_box(&requests), &mut p, cfg.mesh(), 4);
            black_box(p)
        })
    });
    group.finish();
}

fn curve_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("miss_curves");
    let raw = MissCurve::new(
        32 * 1024,
        (0..=640)
            .map(|u| 1e7 / (1.0 + (u % 97) as f64) + 1e6 * ((640 - u) as f64 / 640.0))
            .collect(),
    );
    group.bench_function("convex_hull_640", |b| {
        b.iter(|| black_box(black_box(&raw).convex_hull()))
    });
    let members = convex_curves(4, 640);
    group.bench_function("combine_convex_4x640", |b| {
        b.iter(|| black_box(MissCurve::combine_convex(black_box(&members))))
    });
    group.finish();
}

fn descriptor_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("vtb");
    let shares: Vec<(BankId, f64)> = (0..5).map(|i| (BankId(i), 1.0 + i as f64)).collect();
    group.bench_function("descriptor_from_shares", |b| {
        b.iter(|| black_box(PlacementDescriptor::from_shares(black_box(&shares))))
    });
    let desc = PlacementDescriptor::from_shares(&shares);
    group.bench_function("descriptor_lookup", |b| {
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(1);
            black_box(desc.bank_for(line))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    lookahead_benches,
    place_near_benches,
    curve_benches,
    descriptor_benches
);
criterion_main!(benches);
