//! Event-level request queue for latency-critical applications.
//!
//! Each latency-critical application is a single FIFO server fed by a
//! Poisson arrival stream ([`nuca_workloads::RequestGenerator`]). Service
//! times come from the performance model and change at reconfiguration
//! boundaries, which is exactly how queueing explosions build up when a
//! design under-allocates the server (Fig. 4a, Fig. 8).

use nuca_workloads::RequestGenerator;

/// A completed request: completion time and end-to-end latency (both in
/// cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Cycle at which service finished.
    pub at: u64,
    /// Queueing plus service latency.
    pub latency: u64,
}

/// FIFO single-server queue with Poisson arrivals.
#[derive(Debug, Clone)]
pub struct LcQueue {
    gen: RequestGenerator,
    next_arrival: u64,
    server_free: u64,
}

impl LcQueue {
    /// Creates a queue with the given mean interarrival time (cycles) and
    /// RNG seed.
    pub fn new(mean_interarrival: f64, seed: u64) -> LcQueue {
        let mut gen = RequestGenerator::new(mean_interarrival, seed);
        let first = gen.next_arrival();
        LcQueue {
            gen,
            next_arrival: first,
            server_free: 0,
        }
    }

    /// Advances the queue until `until` (exclusive), serving every request
    /// that *arrives* before then with the given deterministic
    /// `service_cycles`. Returns the completions (their completion times
    /// may exceed `until`; the server carries over).
    pub fn advance(&mut self, until: u64, service_cycles: f64) -> Vec<Completion> {
        let mut out = Vec::new();
        self.advance_into(until, service_cycles, &mut out);
        out
    }

    /// [`advance`](LcQueue::advance) writing into a caller-provided buffer
    /// (cleared first), so the interval loop reuses one completion vector.
    pub fn advance_into(&mut self, until: u64, service_cycles: f64, out: &mut Vec<Completion>) {
        let service = service_cycles.max(1.0) as u64;
        out.clear();
        while self.next_arrival < until {
            let arrival = self.next_arrival;
            self.next_arrival = self.gen.next_arrival();
            let start = self.server_free.max(arrival);
            let done = start + service;
            self.server_free = done;
            out.push(Completion {
                at: done,
                latency: done - arrival,
            });
        }
    }

    /// Current backlog delay: how far the server lags behind `now`.
    pub fn backlog(&self, now: u64) -> u64 {
        self.server_free.saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_latency_is_service_time() {
        // Interarrival 100x the service time: essentially no queueing.
        let mut q = LcQueue::new(100_000.0, 1);
        let completions = q.advance(10_000_000, 1_000.0);
        assert!(!completions.is_empty());
        let avg: f64 =
            completions.iter().map(|c| c.latency as f64).sum::<f64>() / completions.len() as f64;
        assert!(avg < 1_200.0, "avg latency {avg}");
    }

    #[test]
    fn overload_latency_grows_without_bound() {
        // Service time 2x the interarrival: the queue diverges.
        let mut q = LcQueue::new(1_000.0, 2);
        let completions = q.advance(2_000_000, 2_000.0);
        let early = completions[10].latency;
        let late = completions[completions.len() - 10].latency;
        assert!(
            late > 50 * early,
            "latency must diverge: early {early}, late {late}"
        );
        assert!(q.backlog(2_000_000) > 0);
    }

    #[test]
    fn utilization_half_has_moderate_tail() {
        let mut q = LcQueue::new(2_000.0, 3);
        let completions = q.advance(50_000_000, 1_000.0);
        let mut lats: Vec<u64> = completions.iter().map(|c| c.latency).collect();
        lats.sort();
        let p95 = lats[(lats.len() as f64 * 0.95) as usize - 1];
        // M/D/1 at rho=0.5: p95 well under 5x service time.
        assert!(p95 < 5_000, "p95 {p95}");
        assert!(p95 > 1_000, "p95 must include some queueing");
    }

    #[test]
    fn service_change_at_boundary_applies_to_later_requests() {
        let mut q = LcQueue::new(10_000.0, 4);
        let c1 = q.advance(1_000_000, 1_000.0);
        let c2 = q.advance(2_000_000, 50_000.0);
        assert!(!c1.is_empty() && !c2.is_empty());
        assert!(c2.last().unwrap().latency > c1.last().unwrap().latency);
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut q = LcQueue::new(5_000.0, seed);
            q.advance(1_000_000, 2_500.0)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
