//! Fig. 16: what Jumanji's security and simplicity cost — batch speedup of
//! Jumanji vs. "Jumanji: Insecure" (no bank isolation) and "Jumanji: Ideal
//! Batch" (no competition with latency-critical placement), at high and
//! low load.

use jumanji::prelude::*;
use jumanji_bench::{mix_count, run_matrices, LcGroup};

fn main() {
    let mixes = mix_count(8);
    let designs = [
        DesignKind::Jumanji,
        DesignKind::JumanjiInsecure,
        DesignKind::JumanjiIdealBatch,
    ];
    let opts = SimOptions::default();
    println!("# Fig. 16: Jumanji vs Insecure vs Ideal Batch ({mixes} mixes/group)");
    println!("load\tgroup\tjumanji_pct\tinsecure_pct\tideal_pct");
    let loads = [LcLoad::High, LcLoad::Low];
    let matrices: Vec<(LcGroup, LcLoad)> = loads
        .into_iter()
        .flat_map(|load| LcGroup::all().into_iter().map(move |g| (g, load)))
        .collect();
    let results = run_matrices(&matrices, &designs, mixes, &opts);
    let groups_per_load = LcGroup::all().len();
    for (load, chunk) in loads.iter().zip(results.chunks(groups_per_load)) {
        let label = match load {
            LcLoad::High => "high",
            LcLoad::Low => "low",
        };
        let mut sums = [0.0f64; 3];
        let mut count = 0.0;
        for (group, cells) in LcGroup::all().iter().zip(chunk) {
            let g: Vec<f64> = cells
                .iter()
                .map(|c| (c.gmean_speedup() - 1.0) * 100.0)
                .collect();
            println!(
                "{label}\t{}\t{:.2}\t{:.2}\t{:.2}",
                group.label(),
                g[0],
                g[1],
                g[2]
            );
            for i in 0..3 {
                sums[i] += g[i];
            }
            count += 1.0;
        }
        println!(
            "# {label} averages: jumanji {:.2}%, insecure {:.2}%, ideal {:.2}%",
            sums[0] / count,
            sums[1] / count,
            sums[2] / count
        );
    }
    println!("# expected: Jumanji within ~3% of Insecure and ~2% of Ideal Batch (gmean).");
}
