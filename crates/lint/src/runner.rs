//! Workspace walking, per-crate unsafe budgets, and the fixture
//! self-test.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::{check_file, in_paths};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// The known-bad corpus (scanned only by [`self_test`]).
pub const FIXTURE_DIR: &str = "crates/lint/fixtures/";

/// Result of a workspace scan.
pub struct RunOutcome {
    /// All findings, sorted by (path, line, col, rule).
    pub diags: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files: usize,
    /// Per-crate `unsafe` keyword counts (informational; budget
    /// violations are already in `diags`).
    pub unsafe_counts: BTreeMap<String, u64>,
}

/// Collects `.rs` files under `dir` (recursive, sorted, deterministic).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate a repo-relative path belongs to (`crates/<name>/…` →
/// `<name>`; everything else → `root`).
fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
        .to_string()
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Scans the source trees under `root` (skipping the fixture corpus)
/// and applies every rule plus the per-crate unsafe budgets.
pub fn run(root: &Path, cfg: &LintConfig) -> Result<RunOutcome, String> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut diags = Vec::new();
    let mut unsafe_sites: BTreeMap<String, Vec<(String, u32, u32)>> = BTreeMap::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = rel_of(root, path);
        if rel.starts_with(FIXTURE_DIR) {
            continue;
        }
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let check = check_file(&rel, &src, cfg);
        diags.extend(check.diags);
        let per_crate = unsafe_sites.entry(crate_of(&rel)).or_default();
        for (line, col) in check.unsafe_sites {
            per_crate.push((rel.clone(), line, col));
        }
        scanned += 1;
    }
    let mut unsafe_counts = BTreeMap::new();
    for (krate, sites) in &unsafe_sites {
        let count = sites.len() as u64;
        if count > 0 {
            unsafe_counts.insert(krate.clone(), count);
        }
        let budget = cfg.budget_of(krate);
        if count > budget {
            // Point at the first over-budget site so the diagnostic
            // lands on the newly added `unsafe`, not a pre-existing one.
            let (path, line, col) = sites[budget as usize].clone();
            if !cfg.allows_site("unsafe-budget", &path) {
                diags.push(Diagnostic {
                    path,
                    line,
                    col,
                    rule: "unsafe-budget",
                    message: format!(
                        "crate `{krate}` has {count} `unsafe` occurrence(s), over its \
                         budget of {budget}"
                    ),
                    help: "remove the unsafe code or raise the crate's `[unsafe_budget]` \
                           entry in lint.toml alongside a SAFETY argument"
                        .to_string(),
                });
            }
        }
    }
    sort_diags(&mut diags);
    Ok(RunOutcome {
        diags,
        files: scanned,
        unsafe_counts,
    })
}

/// The fixed policy the fixture corpus is linted under — independent
/// of the workspace `lint.toml` so the expected diagnostic set is
/// stable.
pub fn fixture_config() -> LintConfig {
    LintConfig {
        determinism: vec![FIXTURE_DIR.to_string()],
        determinism_exempt: Vec::new(),
        timing_allow: Vec::new(),
        env_allow: Vec::new(),
        figures: vec![format!("{FIXTURE_DIR}figures/")],
        plan_helpers: vec!["mix_cell_inputs".to_string(), "fig17_mix".to_string()],
        unsafe_default: 0,
        unsafe_budget: BTreeMap::new(),
        allows: Vec::new(),
    }
}

/// Scans only the fixture corpus under the fixed fixture policy.
pub fn run_fixtures(root: &Path) -> Result<RunOutcome, String> {
    let cfg = fixture_config();
    let dir = root.join(FIXTURE_DIR);
    let mut files = Vec::new();
    collect_rs(&dir, &mut files)?;
    let mut diags = Vec::new();
    let mut sites: Vec<(String, u32, u32)> = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = rel_of(root, path);
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let check = check_file(&rel, &src, &cfg);
        diags.extend(check.diags);
        for (line, col) in check.unsafe_sites {
            sites.push((rel.clone(), line, col));
        }
        scanned += 1;
    }
    // The fixture corpus is one logical crate with a budget of 0.
    if !sites.is_empty() {
        let (path, line, col) = sites[0].clone();
        let count = sites.len();
        diags.push(Diagnostic {
            path,
            line,
            col,
            rule: "unsafe-budget",
            message: format!(
                "crate `fixtures` has {count} `unsafe` occurrence(s), over its budget of 0"
            ),
            help: "remove the unsafe code or raise the crate's `[unsafe_budget]` entry \
                   in lint.toml alongside a SAFETY argument"
                .to_string(),
        });
    }
    sort_diags(&mut diags);
    Ok(RunOutcome {
        diags,
        files: scanned,
        unsafe_counts: BTreeMap::new(),
    })
}

/// Runs the lint over the known-bad fixture corpus and compares the
/// findings against `fixtures/expected.txt` (lines of
/// `path:line:rule`, `#` comments allowed).
///
/// Returns the number of expected findings on success; on mismatch,
/// an error report listing missed and unexpected findings.
pub fn self_test(root: &Path) -> Result<usize, String> {
    let expected_path = root.join(FIXTURE_DIR).join("expected.txt");
    let text = std::fs::read_to_string(&expected_path)
        .map_err(|e| format!("{}: {e}", expected_path.display()))?;
    let mut expected: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    expected.sort();
    let outcome = run_fixtures(root)?;
    let mut got: Vec<String> = outcome
        .diags
        .iter()
        .map(|d| format!("{}:{}:{}", d.path, d.line, d.rule))
        .collect();
    got.sort();
    if got == expected {
        return Ok(expected.len());
    }
    let mut report = String::from("fixture self-test mismatch\n");
    for m in expected.iter().filter(|e| !got.contains(e)) {
        report.push_str(&format!("  missed:     {m}\n"));
    }
    for u in got.iter().filter(|g| !expected.contains(g)) {
        report.push_str(&format!("  unexpected: {u}\n"));
    }
    Err(report)
}

/// True when `rel` is inside the fixture corpus (shared with `main`
/// for reporting).
pub fn is_fixture(rel: &str) -> bool {
    in_paths(rel, &[FIXTURE_DIR.to_string()])
}
