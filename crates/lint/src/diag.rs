//! Diagnostics: rustc-style text rendering and a `--format json`
//! machine encoding (hand-rolled; the workspace has no serde).

use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Rule id (stable, kebab-case — the `lint:allow` key).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// The fix-it hint.
    pub help: String,
}

impl Diagnostic {
    /// `file:line:col` prefix shared by both formats.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.path, self.line, self.col)
    }

    /// Rustc-style two-line rendering.
    pub fn render_text(&self) -> String {
        format!(
            "{}: error[{}]: {}\n  help: {}",
            self.location(),
            self.rule,
            self.message,
            self.help
        )
    }
}

/// Escapes `s` for a JSON string body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders all diagnostics as a JSON array (one object per finding),
/// stable field order, for tooling.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"path\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\
             \"message\":\"{}\",\"help\":\"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.col,
            d.rule,
            json_escape(&d.message),
            json_escape(&d.help)
        );
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            rule: "wall-clock",
            message: "Instant::now() outside the timing allowlist".into(),
            help: "thread wall-clock in from the caller".into(),
        }
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let t = diag().render_text();
        assert!(t.starts_with("crates/x/src/lib.rs:3:9: error[wall-clock]: "));
        assert!(t.contains("\n  help: "));
    }

    #[test]
    fn json_rendering_escapes_and_lists() {
        let mut d = diag();
        d.message = "quote \" and\nnewline".into();
        let j = render_json(&[d]);
        assert!(j.contains("\"message\":\"quote \\\" and\\nnewline\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(render_json(&[]), "[]");
    }
}
