//! Quickstart: run the paper's case study (Sec. III) and compare the five
//! LLC designs on tail latency, batch throughput, and security.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jumanji::prelude::*;

fn main() {
    // Four VMs, each running one xapian server and four random SPEC-like
    // batch applications, on the paper's 20-core machine (Table II).
    let mix = case_study_mix(1);
    let exp = Experiment::new(mix, LcLoad::High, SimOptions::default());

    println!("Case study: 4 VMs x (1 xapian + 4 batch), high load\n");
    println!(
        "{:<22} {:>14} {:>14} {:>16}",
        "design", "worst tail", "batch speedup", "attackers/access"
    );

    let baseline = exp.run(DesignKind::Static, &NoopSink);
    for design in [
        DesignKind::Static,
        DesignKind::Adaptive,
        DesignKind::VmPart,
        DesignKind::Jigsaw,
        DesignKind::Jumanji,
    ] {
        let r = if design == DesignKind::Static {
            baseline.clone()
        } else {
            exp.run(design, &NoopSink)
        };
        let tail = r.max_norm_tail();
        // Allow a small margin over the isolation-measured deadline for
        // contention and p95 sampling noise, as the paper's plots do.
        let verdict = if tail <= 1.25 { "meets" } else { "VIOLATES" };
        println!(
            "{:<22} {:>6.2}x {:>6} {:>+13.1}% {:>16.2}",
            design.name(),
            tail,
            verdict,
            (r.weighted_speedup_vs(&baseline) - 1.0) * 100.0,
            r.vulnerability,
        );
    }

    println!();
    println!("Jumanji is the only design that meets deadlines, accelerates batch");
    println!("applications, and never shares an LLC bank across VMs.");
}
