// Fixture: malformed allow markers (not compiled; linted by --self-test).
// lint:allow(wall-clock)
// lint:allow(nonesuch): believable reason
// lint:allow(env-var):
pub fn f() {}
