//! The rule checkers.
//!
//! All rules are *lexical*: they pattern-match the token stream from
//! [`crate::lexer`], so nothing inside string literals or comments can
//! ever trigger them. Context that a parser would give us — test
//! modules, enclosing functions, attributes — is recovered with small
//! brace-matching passes over the same stream.
//!
//! | rule id          | invariant                                                  |
//! |------------------|------------------------------------------------------------|
//! | `default-hasher` | no `RandomState` maps/sets in determinism-critical crates  |
//! | `wall-clock`     | no `Instant::now`/`SystemTime::now` outside the allowlist  |
//! | `thread-local`   | no `thread_local!` (PR 5 removed the per-thread memos)     |
//! | `plan-bypass`    | figure renderers get cell inputs via shared plan helpers   |
//! | `safety-comment` | every `unsafe` carries a `// SAFETY:` comment              |
//! | `unsafe-budget`  | per-crate `unsafe` counts stay within `lint.toml` budgets  |
//! | `env-var`        | `JUMANJI_*` env reads only in the config surface           |
//! | `allow-syntax`   | `// lint:allow(rule): reason` is well-formed and justified |
//!
//! Escape hatch: `// lint:allow(<rule>): <justification>` on the line
//! of (or the line above) the finding suppresses it; placed immediately
//! above a `fn` item it covers the whole function body. The
//! justification string is mandatory — an allow without one is itself
//! a violation (`allow-syntax`).

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};

/// Every rule id, in severity-agnostic display order. `lint.toml`
/// entries and `lint:allow` markers must name one of these.
pub const RULES: &[&str] = &[
    "default-hasher",
    "wall-clock",
    "thread-local",
    "plan-bypass",
    "safety-comment",
    "unsafe-budget",
    "env-var",
    "allow-syntax",
];

/// `CellCache` run methods covered by `plan-bypass`.
const RUN_METHODS: &[&str] = &["run", "run_sourced", "run_detail", "run_detail_sourced"];

/// `HashMap`/`HashSet` constructors that only exist for the default
/// `RandomState` hasher (`with_hasher` / `with_capacity_and_hasher`
/// deliberately absent).
const HASHER_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// How many lines above an `unsafe` keyword a `// SAFETY:` comment may
/// sit and still count.
const SAFETY_WINDOW: u32 = 5;

/// Result of checking one file.
pub struct FileCheck {
    /// Findings, already filtered by inline allows and `lint.toml`.
    pub diags: Vec<Diagnostic>,
    /// Every `unsafe` keyword site (line, col) — the runner sums these
    /// per crate against the `unsafe-budget`.
    pub unsafe_sites: Vec<(u32, u32)>,
}

/// An inline `lint:allow` marker and the line range it covers.
struct InlineAllow {
    rule: String,
    from_line: u32,
    to_line: u32,
}

/// A `fn` item: name token plus its body's code-index span.
struct FnSpan {
    name: usize,
    open: usize,
    close: usize,
}

/// Does `rel` (repo-relative, `/`-separated) fall under `list`? An
/// entry matches as an exact file or as a directory prefix when it
/// ends with `/`.
pub fn in_paths(rel: &str, list: &[String]) -> bool {
    list.iter()
        .any(|p| rel == p.as_str() || (p.ends_with('/') && rel.starts_with(p.as_str())))
}

struct Ctx<'a> {
    rel: &'a str,
    src: &'a str,
    toks: &'a [Token],
    /// Indices into `toks` of non-comment tokens.
    code: Vec<usize>,
    cfg: &'a LintConfig,
    /// Byte ranges under `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Whole file is test/bench code (path-derived).
    file_is_test: bool,
    allows: Vec<InlineAllow>,
    fns: Vec<FnSpan>,
    diags: Vec<Diagnostic>,
}

impl<'a> Ctx<'a> {
    fn tok(&self, ci: usize) -> &Token {
        &self.toks[self.code[ci]]
    }

    fn text(&self, ci: usize) -> &str {
        self.tok(ci).text(self.src)
    }

    fn is_punct(&self, ci: usize, ch: char) -> bool {
        ci < self.code.len()
            && self.tok(ci).kind == TokenKind::Punct
            && self.text(ci) == ch.to_string().as_str()
    }

    fn is_ident(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.tok(ci).kind == TokenKind::Ident && self.text(ci) == s
    }

    fn push(&mut self, ci: usize, rule: &'static str, message: String, help: &str) {
        let t = *self.tok(ci);
        self.diags.push(Diagnostic {
            path: self.rel.to_string(),
            line: t.line,
            col: t.col,
            rule,
            message,
            help: help.to_string(),
        });
    }

    /// Index of the matching close delimiter for the open one at `ci`,
    /// honouring nesting of the same pair.
    fn matching(&self, ci: usize, open: char, close: char) -> Option<usize> {
        let mut depth = 0usize;
        for i in ci..self.code.len() {
            if self.is_punct(i, open) {
                depth += 1;
            } else if self.is_punct(i, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// If the code token at `ci` starts an attribute (`#` `[`), the
    /// index just past its closing `]`; otherwise `ci`.
    fn skip_attr(&self, ci: usize) -> usize {
        if self.is_punct(ci, '#') && self.is_punct(ci + 1, '[') {
            if let Some(close) = self.matching(ci + 1, '[', ']') {
                return close + 1;
            }
        }
        ci
    }

    /// From an item's first token (attributes already skipped), the
    /// index of its body's `{` — or `None` for a body-less item
    /// (`mod x;`, trait method declarations).
    fn body_open(&self, mut ci: usize) -> Option<usize> {
        let mut depth = 0usize; // () and [] — a signature's `[u8; 3]` hides its `;`
        while ci < self.code.len() {
            if self.is_punct(ci, '(') || self.is_punct(ci, '[') {
                depth += 1;
            } else if self.is_punct(ci, ')') || self.is_punct(ci, ']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 {
                if self.is_punct(ci, '{') {
                    return Some(ci);
                }
                if self.is_punct(ci, ';') {
                    return None;
                }
            }
            ci += 1;
        }
        None
    }

    /// Innermost `fn` whose body spans code index `ci`.
    fn enclosing_fn(&self, ci: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.open < ci && ci < f.close)
            .min_by_key(|f| f.close - f.open)
    }

    fn in_test(&self, byte: usize) -> bool {
        self.file_is_test || self.test_ranges.iter().any(|&(s, e)| s <= byte && byte < e)
    }

    fn token_in_test(&self, ci: usize) -> bool {
        self.in_test(self.tok(ci).start)
    }
}

/// Collects `fn` item spans (name + body code-index range).
fn scan_fns(ctx: &mut Ctx) {
    let mut spans = Vec::new();
    for ci in 0..ctx.code.len() {
        if !ctx.is_ident(ci, "fn") || ci + 1 >= ctx.code.len() {
            continue;
        }
        if ctx.tok(ci + 1).kind != TokenKind::Ident {
            continue; // `fn(` pointer type
        }
        if let Some(open) = ctx.body_open(ci + 2) {
            if let Some(close) = ctx.matching(open, '{', '}') {
                spans.push(FnSpan {
                    name: ci + 1,
                    open,
                    close,
                });
            }
        }
    }
    ctx.fns = spans;
}

/// Collects `#[cfg(test)]` / `#[test]` item byte ranges.
fn scan_test_ranges(ctx: &mut Ctx) {
    let mut ranges = Vec::new();
    let mut ci = 0;
    while ci < ctx.code.len() {
        if !(ctx.is_punct(ci, '#') && ctx.is_punct(ci + 1, '[')) {
            ci += 1;
            continue;
        }
        let Some(close) = ctx.matching(ci + 1, '[', ']') else {
            break;
        };
        let is_test_attr = {
            let body: Vec<&str> = (ci + 2..close).map(|i| ctx.text(i)).collect();
            body == ["test"] || (body.first() == Some(&"cfg") && body.contains(&"test"))
        };
        if is_test_attr {
            // Skip any further attributes, then take the item body.
            let mut item = close + 1;
            loop {
                let next = ctx.skip_attr(item);
                if next == item {
                    break;
                }
                item = next;
            }
            if let Some(open) = ctx.body_open(item) {
                if let Some(body_close) = ctx.matching(open, '{', '}') {
                    ranges.push((ctx.tok(open).start, ctx.tok(body_close).end));
                    ci = open + 1; // ranges may nest; keep scanning inside
                    continue;
                }
            }
        }
        ci = close + 1;
    }
    ctx.test_ranges = ranges;
}

/// Parses `lint:allow` markers out of comments; malformed ones become
/// `allow-syntax` findings.
fn scan_inline_allows(ctx: &mut Ctx) {
    let help = "write `// lint:allow(<rule>): <justification>` with a known rule id";
    let toks = ctx.toks;
    for t in toks {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(ctx.src);
        // A marker is a directive: it must start the comment. Doc
        // comments are prose and never markers.
        let body = if t.kind == TokenKind::LineComment {
            let rest = text.strip_prefix("//").unwrap_or(text);
            if rest.starts_with('/') || rest.starts_with('!') {
                continue;
            }
            rest
        } else {
            let rest = text.strip_prefix("/*").unwrap_or(text);
            if rest.starts_with('*') || rest.starts_with('!') {
                continue;
            }
            rest.strip_suffix("*/").unwrap_or(rest)
        };
        let body = body.trim();
        if !body.starts_with("lint:allow") {
            continue;
        }
        let rest = &body["lint:allow".len()..];
        let parsed = rest.strip_prefix('(').and_then(|r| {
            let (rule, tail) = r.split_once(')')?;
            let reason = tail.trim_start().strip_prefix(':')?.trim();
            Some((rule.trim().to_string(), reason.to_string()))
        });
        let bad = |ctx: &mut Ctx, msg: String| {
            ctx.diags.push(Diagnostic {
                path: ctx.rel.to_string(),
                line: t.line,
                col: t.col,
                rule: "allow-syntax",
                message: msg,
                help: help.to_string(),
            });
        };
        let Some((rule, reason)) = parsed else {
            bad(ctx, "malformed `lint:allow` marker".to_string());
            continue;
        };
        if !RULES.contains(&rule.as_str()) {
            bad(ctx, format!("`lint:allow` names unknown rule `{rule}`"));
            continue;
        }
        if reason.is_empty() {
            bad(ctx, format!("`lint:allow({rule})` has no justification"));
            continue;
        }
        // Coverage: the marker's own line plus the next code line; if
        // the next item is a `fn`, the whole function body.
        let mut to_line = t.line;
        if let Some(&first) = ctx.code.iter().find(|&&i| ctx.toks[i].start >= t.end) {
            let mut ci = ctx.code.iter().position(|&i| i == first).unwrap();
            to_line = ctx.toks[first].line;
            // Skip attributes and item modifiers to see whether a fn
            // follows (`pub(crate) async fn …`).
            loop {
                let next = ctx.skip_attr(ci);
                if next != ci {
                    ci = next;
                    continue;
                }
                let modifier = ci < ctx.code.len()
                    && ([
                        "pub", "const", "async", "unsafe", "extern", "crate", "in", "super", "self",
                    ]
                    .iter()
                    .any(|m| ctx.is_ident(ci, m))
                        || ctx.is_punct(ci, '(')
                        || ctx.is_punct(ci, ')')
                        || ctx.tok(ci).kind == TokenKind::Str);
                if modifier {
                    ci += 1;
                    continue;
                }
                break;
            }
            if ci < ctx.code.len() && ctx.is_ident(ci, "fn") {
                if let Some(close) = ctx.fns.iter().find(|f| f.name == ci + 1).map(|f| f.close) {
                    to_line = ctx.tok(close).line;
                }
            }
        }
        ctx.allows.push(InlineAllow {
            rule,
            from_line: t.line,
            to_line,
        });
    }
}

/// Counts top-level generic arguments of the `<…>` starting at `ci`
/// (which must be the `<`). Returns `None` when the bracket run never
/// closes (a comparison, not generics).
fn generic_args(ctx: &Ctx, ci: usize) -> Option<usize> {
    // A number right after `<` means a comparison (`count < 3`), not a
    // generic application — neither map type takes const generics.
    if ci + 1 < ctx.code.len() && ctx.tok(ci + 1).kind == TokenKind::Number {
        return None;
    }
    let mut angle = 0usize;
    let mut paren = 0usize;
    let mut args = 0usize;
    let mut any = false;
    for i in ci..ctx.code.len().min(ci + 256) {
        if ctx.is_punct(i, '<') {
            angle += 1;
        } else if ctx.is_punct(i, '>') {
            angle = angle.checked_sub(1)?;
            if angle == 0 {
                return Some(if any { args + 1 } else { 0 });
            }
        } else if ctx.is_punct(i, '(') || ctx.is_punct(i, '[') {
            paren += 1;
        } else if ctx.is_punct(i, ')') || ctx.is_punct(i, ']') {
            paren = paren.saturating_sub(1);
        } else if ctx.is_punct(i, ',') && angle == 1 && paren == 0 {
            args += 1;
        } else if ctx.is_punct(i, ';') && angle == 1 {
            return None; // statement boundary: was a comparison
        } else if i > ci {
            any = true;
        }
    }
    None
}

/// `default-hasher`: `HashMap`/`HashSet` with the implicit
/// `RandomState` in determinism-critical, non-test code.
fn rule_default_hasher(ctx: &mut Ctx) {
    let applies =
        in_paths(ctx.rel, &ctx.cfg.determinism) && !in_paths(ctx.rel, &ctx.cfg.determinism_exempt);
    if !applies {
        return;
    }
    for ci in 0..ctx.code.len() {
        let (name, full_args) = if ctx.is_ident(ci, "HashMap") {
            ("HashMap", 3)
        } else if ctx.is_ident(ci, "HashSet") {
            ("HashSet", 2)
        } else {
            continue;
        };
        if ctx.token_in_test(ci) {
            continue;
        }
        // `Name<…>` or `Name::<…>`: flag when the hasher slot is
        // defaulted; `Name::new()` etc.: RandomState-only constructors.
        let mut angle_at = None;
        if ctx.is_punct(ci + 1, '<') {
            angle_at = Some(ci + 1);
        } else if ctx.is_punct(ci + 1, ':') && ctx.is_punct(ci + 2, ':') {
            if ctx.is_punct(ci + 3, '<') {
                angle_at = Some(ci + 3);
            } else if HASHER_CTORS.iter().any(|m| ctx.is_ident(ci + 3, m)) {
                let method = ctx.text(ci + 3).to_string();
                ctx.push(
                    ci,
                    "default-hasher",
                    format!(
                        "`{name}::{method}` builds a `RandomState`-hashed {name} in a \
                         determinism-critical path"
                    ),
                    "use `Mix64Build` (nuca_types::hash), `ShardedMap`, or `BTreeMap` so \
                     iteration order cannot vary per process",
                );
                continue;
            }
        }
        if let Some(at) = angle_at {
            if let Some(args) = generic_args(ctx, at) {
                if args > 0 && args < full_args {
                    ctx.push(
                        ci,
                        "default-hasher",
                        format!(
                            "`{name}` type with the hasher parameter defaulted to \
                             `RandomState` in a determinism-critical path"
                        ),
                        "name the hasher: `HashMap<K, V, Mix64Build>` / \
                         `HashSet<T, Mix64Build>`, or switch to `BTreeMap`",
                    );
                }
            }
        }
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime::now` outside the
/// timing allowlist.
fn rule_wall_clock(ctx: &mut Ctx) {
    if in_paths(ctx.rel, &ctx.cfg.timing_allow) {
        return;
    }
    for ci in 0..ctx.code.len() {
        let name = if ctx.is_ident(ci, "Instant") {
            "Instant"
        } else if ctx.is_ident(ci, "SystemTime") {
            "SystemTime"
        } else {
            continue;
        };
        if ctx.is_punct(ci + 1, ':') && ctx.is_punct(ci + 2, ':') && ctx.is_ident(ci + 3, "now") {
            if ctx.token_in_test(ci) {
                continue;
            }
            ctx.push(
                ci,
                "wall-clock",
                format!("`{name}::now()` outside the timing allowlist"),
                "fingerprinted outputs must not read the wall clock; measure in `exec/` \
                 or the suite-stats layer and thread the value through",
            );
        }
    }
}

/// `thread-local`: no new `thread_local!` declarations.
fn rule_thread_local(ctx: &mut Ctx) {
    for ci in 0..ctx.code.len() {
        if ctx.is_ident(ci, "thread_local") && ctx.is_punct(ci + 1, '!') {
            if ctx.token_in_test(ci) {
                continue;
            }
            ctx.push(
                ci,
                "thread-local",
                "`thread_local!` declaration (per-thread state broke determinism before; \
                 PR 5 removed the memos)"
                    .to_string(),
                "use a fingerprint-keyed `ShardedMap`, or add a justified `lint.toml` \
                 allow if this is genuinely scratch space",
            );
        }
    }
}

/// `env-var`: `env::var("JUMANJI_*")` outside the config surface.
fn rule_env_var(ctx: &mut Ctx) {
    if in_paths(ctx.rel, &ctx.cfg.env_allow) {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.is_ident(ci, "env") {
            continue;
        }
        if !(ctx.is_punct(ci + 1, ':') && ctx.is_punct(ci + 2, ':')) {
            continue;
        }
        if !(ctx.is_ident(ci + 3, "var") || ctx.is_ident(ci + 3, "var_os")) {
            continue;
        }
        if !ctx.is_punct(ci + 4, '(') {
            continue;
        }
        let is_jumanji = ci + 5 < ctx.code.len()
            && ctx.tok(ci + 5).kind == TokenKind::Str
            && ctx.text(ci + 5).contains("JUMANJI_");
        if !is_jumanji || ctx.token_in_test(ci) {
            continue;
        }
        ctx.push(
            ci,
            "env-var",
            format!(
                "`JUMANJI_*` environment read ({}) outside the config surface",
                ctx.text(ci + 5)
            ),
            "route ambient configuration through `spec.rs`/`exec/mod.rs` so every knob \
             is visible in one place",
        );
    }
}

/// `plan-bypass`: in figure renderers, `CellCache` run calls whose
/// enclosing function never touches a shared plan helper.
fn rule_plan_bypass(ctx: &mut Ctx) {
    if !in_paths(ctx.rel, &ctx.cfg.figures) || ctx.cfg.plan_helpers.is_empty() {
        return;
    }
    for ci in 0..ctx.code.len() {
        let is_path_call = (ctx.is_punct(ci, '.')
            || (ctx.is_punct(ci, ':') && ci > 0 && ctx.is_punct(ci - 1, ':')))
            && ci + 2 < ctx.code.len()
            && RUN_METHODS.iter().any(|m| ctx.is_ident(ci + 1, m))
            && ctx.is_punct(ci + 2, '(');
        if !is_path_call || ctx.token_in_test(ci + 1) {
            continue;
        }
        let method = ctx.text(ci + 1).to_string();
        let ok = match ctx.enclosing_fn(ci) {
            Some(f) => {
                let fname = ctx.text(f.name);
                ctx.cfg.plan_helpers.iter().any(|h| h == fname)
                    || (f.open..=f.close).any(|i| {
                        ctx.tok(i).kind == TokenKind::Ident
                            && ctx.cfg.plan_helpers.iter().any(|h| h == ctx.text(i))
                    })
            }
            None => false,
        };
        if !ok {
            ctx.push(
                ci + 1,
                "plan-bypass",
                format!(
                    "`{method}` call whose enclosing function builds cell inputs without \
                     any shared plan helper"
                ),
                "construct the cell's mix/opts via a plan helper (mix_cell_inputs, \
                 fig09_cases, fig17_mix, …) so plan and render fingerprints cannot drift",
            );
        }
    }
}

/// `safety-comment`: every `unsafe` keyword needs `// SAFETY:` within
/// the preceding window. Also records all unsafe sites for the budget.
fn rule_safety_comment(ctx: &mut Ctx) -> Vec<(u32, u32)> {
    let mut sites = Vec::new();
    for ti in 0..ctx.toks.len() {
        let t = ctx.toks[ti];
        if t.kind != TokenKind::Ident || t.text(ctx.src) != "unsafe" {
            continue;
        }
        sites.push((t.line, t.col));
        let documented = ctx.toks[..ti].iter().rev().any(|c| {
            matches!(c.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && c.line + SAFETY_WINDOW >= t.line
                && c.line <= t.line
                && c.text(ctx.src).contains("SAFETY:")
        });
        if !documented {
            ctx.diags.push(Diagnostic {
                path: ctx.rel.to_string(),
                line: t.line,
                col: t.col,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment".to_string(),
                help: format!(
                    "state the invariant that makes this sound in a `// SAFETY:` comment \
                     within {SAFETY_WINDOW} lines above"
                ),
            });
        }
    }
    sites
}

/// Checks one file and returns filtered findings plus unsafe sites.
pub fn check_file(rel: &str, src: &str, cfg: &LintConfig) -> FileCheck {
    let toks = lex(src);
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| {
            !matches!(
                toks[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let file_is_test = rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/");
    let mut ctx = Ctx {
        rel,
        src,
        toks: &toks,
        code,
        cfg,
        test_ranges: Vec::new(),
        file_is_test,
        allows: Vec::new(),
        fns: Vec::new(),
        diags: Vec::new(),
    };
    scan_fns(&mut ctx);
    scan_test_ranges(&mut ctx);
    scan_inline_allows(&mut ctx);
    rule_default_hasher(&mut ctx);
    rule_wall_clock(&mut ctx);
    rule_thread_local(&mut ctx);
    rule_env_var(&mut ctx);
    rule_plan_bypass(&mut ctx);
    let unsafe_sites = rule_safety_comment(&mut ctx);
    let Ctx { allows, diags, .. } = ctx;
    let keep = |d: &Diagnostic| {
        if cfg.allows_site(d.rule, rel) {
            return false;
        }
        // `allow-syntax` cannot be silenced by the marker that caused it.
        d.rule == "allow-syntax"
            || !allows
                .iter()
                .any(|a| a.rule == d.rule && a.from_line <= d.line && d.line <= a.to_line)
    };
    let diags = diags.into_iter().filter(keep).collect();
    FileCheck {
        diags,
        unsafe_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig {
            determinism: vec!["crates/".into()],
            determinism_exempt: vec!["crates/rand_shim/".into()],
            timing_allow: vec!["crates/bench/src/exec/".into()],
            env_allow: vec!["crates/bench/src/spec.rs".into()],
            figures: vec!["crates/bench/src/figures/".into()],
            plan_helpers: vec!["mix_cell_inputs".into(), "fig17_mix".into()],
            ..LintConfig::default()
        }
    }

    fn rules_hit(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_file(rel, src, &cfg())
            .diags
            .iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn default_hasher_ctor_and_type_forms() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                   let m = HashMap::new();\n\
                   let t: HashMap<u32, u32> = HashMap::with_capacity(4);\n\
                   let ok: HashMap<u32, u32, Mix64Build> = HashMap::default();\n\
                   let s: HashSet<u8> = HashSet::from([1]);\n\
                   }\n";
        let hits = rules_hit("crates/x/src/lib.rs", src);
        assert_eq!(
            hits,
            vec![
                ("default-hasher", 3),
                ("default-hasher", 4),
                ("default-hasher", 4),
                ("default-hasher", 6),
                ("default-hasher", 6),
            ]
        );
    }

    #[test]
    fn default_hasher_ignores_strings_tests_and_exempt_paths() {
        let src = "fn f() { let s = \"HashMap::new()\"; }\n\
                   #[cfg(test)]\nmod tests {\n fn g() { let m = HashMap::new(); }\n}\n";
        assert!(rules_hit("crates/x/src/lib.rs", src).is_empty());
        let bad = "fn f() { let m = HashMap::new(); }\n";
        assert!(rules_hit("crates/rand_shim/src/lib.rs", bad).is_empty());
        assert!(!rules_hit("crates/x/src/lib.rs", bad).is_empty());
        assert!(rules_hit("crates/x/tests/t.rs", bad).is_empty());
    }

    #[test]
    fn comparisons_are_not_generics() {
        let src = "fn f(a: usize) -> bool { let HashMap = a; HashMap < 3 && 4 > a }\n";
        // Degenerate shadowing: `HashMap < 3 && 4 > a` must not parse
        // as a 2-argument generic application.
        let hits = rules_hit("crates/x/src/lib.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn wall_clock_outside_allowlist() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }\n";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", src),
            vec![("wall-clock", 1), ("wall-clock", 1)]
        );
        assert!(rules_hit("crates/bench/src/exec/sched.rs", src).is_empty());
    }

    #[test]
    fn thread_local_flagged_outside_tests() {
        let src = "thread_local! { static X: u32 = 0; }\n";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", src),
            vec![("thread-local", 1)]
        );
    }

    #[test]
    fn env_var_only_for_jumanji_keys_outside_surface() {
        let src = "fn f() { let a = std::env::var(\"JUMANJI_THREADS\"); \
                   let b = std::env::var(\"HOME\"); }\n";
        assert_eq!(rules_hit("crates/x/src/lib.rs", src), vec![("env-var", 1)]);
        assert!(rules_hit("crates/bench/src/spec.rs", src).is_empty());
    }

    #[test]
    fn plan_bypass_checks_enclosing_fn_for_helpers() {
        let good = "fn fig(cache: &CellCache) {\n\
                    let (mix, opts) = mix_cell_inputs(7);\n\
                    cache.run(&mix, &opts);\n}\n";
        assert!(rules_hit("crates/bench/src/figures/f.rs", good).is_empty());
        let bad = "fn fig(cache: &CellCache) {\n\
                   let mix = WorkloadMix::lc_only(7);\n\
                   cache.run_detail(&mix, &opts);\n}\n";
        assert_eq!(
            rules_hit("crates/bench/src/figures/f.rs", bad),
            vec![("plan-bypass", 3)]
        );
        // Outside figure paths the rule is silent.
        assert!(rules_hit("crates/bench/src/suite.rs", bad).is_empty());
    }

    #[test]
    fn helper_definitions_do_not_flag_themselves() {
        let src = "pub(crate) fn fig17_mix(seed: u64) -> Mix {\n\
                   CellCache::global().run(&x, &y)\n}\n";
        assert!(rules_hit("crates/bench/src/figures/f.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_window() {
        let bad = "fn f() { unsafe { core() } }\n";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", bad),
            vec![("safety-comment", 1)]
        );
        let good = "// SAFETY: bounds checked above.\nfn f() { unsafe { core() } }\n";
        assert!(rules_hit("crates/x/src/lib.rs", good).is_empty());
        let far = "// SAFETY: too far away.\n\n\n\n\n\n\nfn f() { unsafe { core() } }\n";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", far),
            vec![("safety-comment", 8)]
        );
    }

    #[test]
    fn unsafe_sites_counted_even_when_documented() {
        let src = "// SAFETY: fine.\nfn f() { unsafe { a() } }\n";
        let check = check_file("crates/x/src/lib.rs", src, &cfg());
        assert!(check.diags.is_empty());
        assert_eq!(check.unsafe_sites.len(), 1);
    }

    #[test]
    fn inline_allow_suppresses_line_and_fn_scope() {
        let line = "fn f() {\n\
                    // lint:allow(wall-clock): coarse progress display only.\n\
                    let t = Instant::now();\n}\n";
        assert!(rules_hit("crates/x/src/lib.rs", line).is_empty());
        let fn_scope = "// lint:allow(wall-clock): whole fn is display-only.\n\
                        pub fn f() {\n\
                        let a = Instant::now();\n\
                        let b = Instant::now();\n}\n";
        assert!(rules_hit("crates/x/src/lib.rs", fn_scope).is_empty());
        let elsewhere = "// lint:allow(wall-clock): wrong rule for the site below.\n\
                         let x = 1;\n\
                         fn g() { let t = SystemTime::now(); }\n";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", elsewhere),
            vec![("wall-clock", 3)]
        );
    }

    #[test]
    fn malformed_allows_are_their_own_finding() {
        let hits = rules_hit(
            "crates/x/src/lib.rs",
            "// lint:allow(wall-clock)\n// lint:allow(nonesuch): r\n// lint:allow broken\n",
        );
        assert_eq!(
            hits,
            vec![
                ("allow-syntax", 1),
                ("allow-syntax", 2),
                ("allow-syntax", 3)
            ]
        );
    }

    #[test]
    fn toml_allowlist_suppresses_by_path() {
        let mut c = cfg();
        c.allows.push(crate::config::AllowEntry {
            rule: "thread-local".into(),
            path: "crates/x/src/lib.rs".into(),
            reason: "scratch".into(),
        });
        let src = "thread_local! { static X: u32 = 0; }\n";
        assert!(check_file("crates/x/src/lib.rs", src, &c).diags.is_empty());
        assert!(!check_file("crates/y/src/lib.rs", src, &c).diags.is_empty());
    }
}
