//! Miss curves: misses as a function of allocated cache capacity.
//!
//! Miss curves are the currency of every capacity-allocation algorithm in
//! the paper: UCP Lookahead, Jigsaw, and `JumanjiLookahead` all consume
//! them, and the hardware UMONs produce them. A curve stores one value per
//! *allocation unit* (one way of one bank, 32 KB in the paper's
//! configuration).
//!
//! Two transformations matter for fidelity to the paper:
//!
//! - [`MissCurve::convex_hull`] — the paper approximates DRRIP's miss curve
//!   by the convex hull of LRU's curve (Talus \[7\], Sec. IV-A).
//! - [`MissCurve::combine_convex`] — the Whirlpool-style model (\[61\],
//!   App. B) for a VM's combined curve: the best achievable misses when a
//!   total budget is split optimally among member applications.

use core::fmt;

/// Misses (in any consistent unit: ratio, MPKI, or absolute per epoch) as a
/// non-increasing function of allocated capacity.
///
/// Point `i` is the miss value at `i * unit_bytes` of capacity. Evaluation
/// between points interpolates linearly; beyond the last point the curve is
/// flat.
///
/// # Examples
///
/// ```
/// use nuca_cache::MissCurve;
/// // 100 misses with no cache, 40 with one unit, 10 with two.
/// let c = MissCurve::new(1024, vec![100.0, 40.0, 10.0]);
/// assert_eq!(c.eval_units(1.0), 40.0);
/// assert_eq!(c.eval_bytes(512), 70.0); // halfway between points 0 and 1
/// assert_eq!(c.eval_bytes(1 << 20), 10.0); // flat beyond the end
/// ```
#[derive(Debug, Clone)]
pub struct MissCurve {
    unit_bytes: u64,
    misses: Vec<f64>,
    /// Cached [`MissCurve::is_convex`] answer. Convexity is checked on
    /// every Lookahead call (to pick the cheap greedy path), so it is
    /// computed once at construction instead of re-scanning the points.
    convex: bool,
}

// `convex` is derived from `misses`, so it is excluded from equality.
impl PartialEq for MissCurve {
    fn eq(&self, other: &MissCurve) -> bool {
        self.unit_bytes == other.unit_bytes && self.misses == other.misses
    }
}

impl MissCurve {
    /// Creates a curve from raw points, enforcing monotonicity by taking the
    /// running minimum (a real cache never misses more with more space under
    /// the policies we model).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, contains a negative or non-finite value,
    /// or if `unit_bytes == 0`.
    pub fn new(unit_bytes: u64, points: Vec<f64>) -> MissCurve {
        assert!(unit_bytes > 0, "unit_bytes must be nonzero");
        assert!(!points.is_empty(), "a miss curve needs at least one point");
        let mut misses = points;
        let mut running = f64::INFINITY;
        for p in &mut misses {
            assert!(
                p.is_finite() && *p >= 0.0,
                "miss values must be finite and non-negative"
            );
            running = running.min(*p);
            *p = running;
        }
        let convex = points_convex(&misses);
        MissCurve {
            unit_bytes,
            misses,
            convex,
        }
    }

    /// A flat curve: the same miss value at every allocation (an app that
    /// gets no benefit from this cache level).
    pub fn flat(unit_bytes: u64, units: usize, value: f64) -> MissCurve {
        MissCurve::new(unit_bytes, vec![value; units + 1])
    }

    /// Capacity granularity of the points, in bytes.
    pub fn unit_bytes(&self) -> u64 {
        self.unit_bytes
    }

    /// Number of points (allocations `0..=max_units`).
    pub fn len(&self) -> usize {
        self.misses.len()
    }

    /// True if the curve has a single point (capacity 0 only).
    pub fn is_empty(&self) -> bool {
        self.misses.len() <= 1
    }

    /// Largest allocation, in units, described by the curve.
    pub fn max_units(&self) -> usize {
        self.misses.len() - 1
    }

    /// The raw points.
    pub fn points(&self) -> &[f64] {
        &self.misses
    }

    /// Miss value at an integral allocation of `units` (clamped to the
    /// curve's domain).
    pub fn at(&self, units: usize) -> f64 {
        let i = units.min(self.max_units());
        self.misses[i]
    }

    /// Miss value at a fractional allocation of `units`, interpolating
    /// linearly and clamping to the domain.
    pub fn eval_units(&self, units: f64) -> f64 {
        if units <= 0.0 {
            return self.misses[0];
        }
        let max = self.max_units() as f64;
        if units >= max {
            return *self.misses.last().expect("curve is non-empty");
        }
        let lo = units.floor() as usize;
        let frac = units - lo as f64;
        self.misses[lo] * (1.0 - frac) + self.misses[lo + 1] * frac
    }

    /// Miss value at a byte-granular allocation.
    pub fn eval_bytes(&self, bytes: u64) -> f64 {
        self.eval_units(bytes as f64 / self.unit_bytes as f64)
    }

    /// Multiplies every point by `factor` (e.g., converting a miss ratio to
    /// absolute misses for an epoch's access count).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> MissCurve {
        assert!(factor.is_finite() && factor >= 0.0);
        MissCurve {
            unit_bytes: self.unit_bytes,
            misses: self.misses.iter().map(|m| m * factor).collect(),
            // Scaling by a non-negative factor multiplies both the gain
            // differences and the relative tolerance, so convexity (as
            // is_convex measures it) is preserved exactly.
            convex: self.convex,
        }
    }

    /// In-place variant of [`MissCurve::scaled`]: overwrites `self` with
    /// `src`'s points multiplied by `factor`, reusing `self`'s buffer.
    ///
    /// The epoch engine rescales every application's hull on every
    /// reconfiguration (access rates move each interval); doing it into a
    /// persistent curve makes the interval loop allocation-free. The
    /// multiplication is elementwise, exactly as in [`MissCurve::scaled`],
    /// so the resulting points are bit-identical.
    pub fn clone_scaled_from(&mut self, src: &MissCurve, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0);
        self.unit_bytes = src.unit_bytes;
        self.convex = src.convex;
        self.misses.clear();
        self.misses.extend(src.misses.iter().map(|m| m * factor));
    }

    /// The lower convex hull of the curve.
    ///
    /// The paper approximates DRRIP's miss curve by the convex hull of the
    /// LRU curve, which Talus \[7\] shows is achievable and which can be
    /// measured much more cheaply than DRRIP itself (Sec. IV-A).
    #[must_use]
    pub fn convex_hull(&self) -> MissCurve {
        let n = self.misses.len();
        if n <= 2 {
            return self.clone();
        }
        // Monotone-chain lower hull over (index, miss) points.
        let mut hull: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Remove b if it lies on or above segment a->i.
                let cross = (b as f64 - a as f64) * (self.misses[i] - self.misses[a])
                    - (i as f64 - a as f64) * (self.misses[b] - self.misses[a]);
                if cross <= 0.0 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(i);
        }
        // Re-sample the hull at every integer point.
        let mut out = Vec::with_capacity(n);
        let mut seg = 0;
        for i in 0..n {
            while seg + 1 < hull.len() && hull[seg + 1] < i {
                seg += 1;
            }
            if hull[seg] == i {
                out.push(self.misses[i]);
            } else {
                let a = hull[seg];
                let b = hull[seg + 1];
                let t = (i - a) as f64 / (b - a) as f64;
                out.push(self.misses[a] * (1.0 - t) + self.misses[b] * t);
            }
        }
        let convex = points_convex(&out);
        MissCurve {
            unit_bytes: self.unit_bytes,
            misses: out,
            convex,
        }
    }

    /// Whether the curve is convex (marginal utility non-increasing), within
    /// floating-point tolerance. The tolerance is relative to the curve's
    /// magnitude: hulls scaled to absolute misses (10⁹-range values) carry
    /// rounding noise far above any fixed epsilon.
    ///
    /// Computed once at construction and cached; this accessor is O(1).
    pub fn is_convex(&self) -> bool {
        self.convex
    }

    /// Optimally combines several *convex* curves into the curve of the
    /// group: point `i` is the minimum total misses achievable by splitting
    /// `i` units among the members.
    ///
    /// This is the model the paper uses (via Whirlpool \[61, App. B\]) to
    /// compute a combined miss curve per VM for `JumanjiLookahead`. For
    /// convex curves the greedy steepest-marginal-gain split is exactly
    /// optimal. Non-convex inputs are replaced by their convex hulls first.
    ///
    /// Returns the combined curve and, for each total size, the per-member
    /// split `splits[total][member]`.
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty or units disagree.
    pub fn combine_convex(curves: &[MissCurve]) -> (MissCurve, Vec<Vec<usize>>) {
        assert!(!curves.is_empty(), "need at least one curve to combine");
        let unit = curves[0].unit_bytes;
        assert!(
            curves.iter().all(|c| c.unit_bytes == unit),
            "all curves must share unit_bytes"
        );
        let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull()).collect();
        let total_units: usize = hulls.iter().map(|c| c.max_units()).sum();
        let mut alloc = vec![0usize; hulls.len()];
        let mut combined = Vec::with_capacity(total_units + 1);
        let mut splits = Vec::with_capacity(total_units + 1);
        let mut current: f64 = hulls.iter().map(|c| c.at(0)).sum();
        combined.push(current);
        splits.push(alloc.clone());
        for _ in 0..total_units {
            // Give the next unit to the member with the steepest drop.
            let mut best = None;
            let mut best_gain = -1.0;
            for (k, h) in hulls.iter().enumerate() {
                if alloc[k] >= h.max_units() {
                    continue;
                }
                let gain = h.at(alloc[k]) - h.at(alloc[k] + 1);
                if gain > best_gain {
                    best_gain = gain;
                    best = Some(k);
                }
            }
            let k = best.expect("some member still has headroom");
            alloc[k] += 1;
            current -= best_gain;
            combined.push(current);
            splits.push(alloc.clone());
        }
        (MissCurve::new(unit, combined), splits)
    }

    /// [`MissCurve::combine_convex`] without the per-size split table.
    ///
    /// The placement algorithms only need the combined curve (they re-derive
    /// member sizes with Lookahead afterwards), and they call this on every
    /// reconfiguration, so this variant skips the hull recomputation for
    /// already-convex inputs (the common case: DRRIP hulls), caches each
    /// member's current marginal gain instead of re-reading the curve twice
    /// per candidate, and never materializes the split vectors. Accepts
    /// borrowed curves to spare callers the clone, and stops at `cap_units`
    /// (callers never evaluate the combined curve past the capacity they
    /// are dividing, while the members' domains can sum to several times
    /// that).
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty or units disagree.
    pub fn combine_convex_curve<C: std::borrow::Borrow<MissCurve>>(
        curves: &[C],
        cap_units: usize,
    ) -> MissCurve {
        assert!(!curves.is_empty(), "need at least one curve to combine");
        let unit = curves[0].borrow().unit_bytes;
        assert!(
            curves.iter().all(|c| c.borrow().unit_bytes == unit),
            "all curves must share unit_bytes"
        );
        // Hull only the non-convex inputs; borrow the rest as-is.
        let owned: Vec<Option<MissCurve>> = curves
            .iter()
            .map(|c| {
                let c = c.borrow();
                (!c.is_convex()).then(|| c.convex_hull())
            })
            .collect();
        let hulls: Vec<&[f64]> = curves
            .iter()
            .zip(&owned)
            .map(|(c, o)| o.as_ref().unwrap_or(c.borrow()).points())
            .collect();
        let total_units: usize = hulls
            .iter()
            .map(|h| h.len() - 1)
            .sum::<usize>()
            .min(cap_units);
        let mut alloc = vec![0usize; hulls.len()];
        // A convex curve's marginal gains are non-increasing, so only the
        // winner's cached gain changes per step.
        let gain_at = |h: &[f64], a: usize| {
            if a + 1 < h.len() {
                h[a] - h[a + 1]
            } else {
                f64::NEG_INFINITY // exhausted member never wins
            }
        };
        let mut gains: Vec<f64> = hulls.iter().map(|h| gain_at(h, 0)).collect();
        let mut combined = Vec::with_capacity(total_units + 1);
        let mut current: f64 = hulls.iter().map(|h| h[0]).sum();
        combined.push(current);
        for _ in 0..total_units {
            // Last-wins max scan: `>=` keeps the later of equal gains,
            // matching `max_by`'s tie behaviour exactly.
            let mut k = 0;
            let mut g = gains[0];
            for (j, &gj) in gains.iter().enumerate().skip(1) {
                if gj >= g {
                    k = j;
                    g = gj;
                }
            }
            alloc[k] += 1;
            current -= g;
            gains[k] = gain_at(hulls[k], alloc[k]);
            combined.push(current);
        }
        MissCurve::new(unit, combined)
    }
}

/// Convexity test used to populate [`MissCurve::is_convex`]'s cache; see
/// that method for the tolerance rationale.
fn points_convex(misses: &[f64]) -> bool {
    let tol = 1e-9 * misses.first().copied().unwrap_or(0.0).abs().max(1.0);
    misses.windows(3).all(|w| {
        let d1 = w[0] - w[1];
        let d2 = w[1] - w[2];
        d1 + tol >= d2
    })
}

impl fmt::Display for MissCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MissCurve[{} pts, unit {} B, {:.3}..{:.3}]",
            self.misses.len(),
            self.unit_bytes,
            self.misses.first().copied().unwrap_or(0.0),
            self.misses.last().copied().unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_normalization() {
        let c = MissCurve::new(1, vec![5.0, 7.0, 3.0, 4.0]);
        assert_eq!(c.points(), &[5.0, 5.0, 3.0, 3.0]);
    }

    #[test]
    fn evaluation_interpolates_and_clamps() {
        let c = MissCurve::new(10, vec![100.0, 50.0, 20.0]);
        assert_eq!(c.eval_units(-1.0), 100.0);
        assert_eq!(c.eval_units(0.5), 75.0);
        assert_eq!(c.eval_units(5.0), 20.0);
        assert_eq!(c.eval_bytes(15), 35.0);
        assert_eq!(c.at(1), 50.0);
        assert_eq!(c.at(99), 20.0);
    }

    #[test]
    fn flat_curve() {
        let c = MissCurve::flat(1, 4, 3.0);
        assert_eq!(c.len(), 5);
        assert!(c.points().iter().all(|&p| p == 3.0));
        assert!(c.is_convex());
    }

    #[test]
    fn scaling() {
        let c = MissCurve::new(1, vec![4.0, 2.0]).scaled(2.5);
        assert_eq!(c.points(), &[10.0, 5.0]);
    }

    #[test]
    fn convex_hull_of_cliff_curve() {
        // A "cliff" curve: no benefit until the working set fits, then a
        // sharp drop. Its hull is the straight line to the cliff.
        let c = MissCurve::new(1, vec![100.0, 100.0, 100.0, 100.0, 0.0]);
        let h = c.convex_hull();
        assert_eq!(h.points(), &[100.0, 75.0, 50.0, 25.0, 0.0]);
        assert!(h.is_convex());
    }

    #[test]
    fn convex_hull_is_below_and_ends_match() {
        let c = MissCurve::new(1, vec![10.0, 9.5, 4.0, 3.9, 1.0, 0.9]);
        let h = c.convex_hull();
        assert_eq!(h.points()[0], c.points()[0]);
        assert_eq!(h.points().last(), c.points().last());
        for i in 0..c.len() {
            assert!(h.points()[i] <= c.points()[i] + 1e-12);
        }
        assert!(h.is_convex());
    }

    #[test]
    fn hull_of_convex_curve_is_identity() {
        let c = MissCurve::new(1, vec![8.0, 4.0, 2.0, 1.0, 0.5]);
        assert_eq!(c.convex_hull(), c);
    }

    #[test]
    fn combine_two_identical_curves() {
        let c = MissCurve::new(1, vec![10.0, 4.0, 1.0]);
        let (comb, splits) = MissCurve::combine_convex(&[c.clone(), c]);
        // Optimal split alternates between the two members.
        assert_eq!(comb.points(), &[20.0, 14.0, 8.0, 5.0, 2.0]);
        assert_eq!(splits[2], vec![1, 1]);
        assert_eq!(splits[4], vec![2, 2]);
    }

    #[test]
    fn combine_prefers_steeper_curve() {
        let steep = MissCurve::new(1, vec![100.0, 10.0]);
        let shallow = MissCurve::new(1, vec![10.0, 9.0]);
        let (comb, splits) = MissCurve::combine_convex(&[steep, shallow]);
        // First unit goes to the steep member.
        assert_eq!(splits[1], vec![1, 0]);
        assert_eq!(comb.at(1), 20.0);
        assert_eq!(comb.at(2), 19.0);
    }

    #[test]
    fn combine_matches_brute_force() {
        let a = MissCurve::new(1, vec![50.0, 20.0, 15.0, 14.0]);
        let b = MissCurve::new(1, vec![30.0, 10.0, 5.0, 4.0]);
        let (comb, _) = MissCurve::combine_convex(&[a.clone(), b.clone()]);
        let (ha, hb) = (a.convex_hull(), b.convex_hull());
        for total in 0..=6usize {
            let mut best = f64::INFINITY;
            for x in 0..=total.min(3) {
                let y = total - x;
                if y > 3 {
                    continue;
                }
                best = best.min(ha.at(x) + hb.at(y));
            }
            assert!(
                (comb.at(total) - best).abs() < 1e-9,
                "total {total}: greedy {} vs brute {best}",
                comb.at(total)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_panic() {
        MissCurve::new(1, vec![]);
    }

    #[test]
    #[should_panic(expected = "share unit_bytes")]
    fn combine_mismatched_units_panics() {
        let a = MissCurve::new(1, vec![1.0]);
        let b = MissCurve::new(2, vec![1.0]);
        MissCurve::combine_convex(&[a, b]);
    }

    #[test]
    fn display_summarizes() {
        let c = MissCurve::new(32 * 1024, vec![9.0, 1.0]);
        let s = c.to_string();
        assert!(s.contains("2 pts"));
        assert!(s.contains("32768 B"));
    }
}
