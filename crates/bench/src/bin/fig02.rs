//! Fig. 2: representative data placements under each LLC design for the
//! case-study workload, rendered as ASCII maps of the 5×4 LLC.
//!
//! Each bank cell lists the VMs occupying it (`0`–`3`), `*` marking banks
//! that hold latency-critical data. Compare: S-NUCA designs put every VM
//! in every bank; Jigsaw clusters by traffic; Jumanji never shares a bank
//! across VMs.
//!
//! Two maps per design: the *descriptor* placement (what the allocator
//! asked for) and the *observed* occupancy (which VMs' lines actually sit
//! in each bank after a detailed simulation of the allocation). The four
//! designs are independent cells fanned across the worker pool
//! (`--threads N`); output is byte-identical at any thread count.

use jumanji::core::AppKind;
use jumanji::prelude::*;
use jumanji::sim::detail::{run_detailed, DetailOptions, DetailReport};
use jumanji::sim::perf::Profile;
use jumanji::types::{AppId, BankId, CoreId, VmId};
use jumanji::workloads::LcLoad;
use jumanji_bench::exec::{parallel_map, thread_count};

/// Renders one 5×4 ASCII map; `occ_of` yields the apps present in a bank.
fn render_map(
    cfg: &SystemConfig,
    input: &PlacementInput,
    occ_of: impl Fn(BankId) -> Vec<AppId>,
) -> String {
    let mesh = cfg.mesh();
    let mut out = String::new();
    for row in 0..mesh.rows() {
        for col in 0..mesh.cols() {
            let bank = BankId(row * mesh.cols() + col);
            let occ = occ_of(bank);
            let mut vms: Vec<usize> = occ
                .iter()
                .map(|a| input.apps[a.index()].vm.index())
                .collect();
            vms.sort();
            vms.dedup();
            let has_lc = occ
                .iter()
                .any(|a| input.apps[a.index()].kind == AppKind::LatencyCritical);
            let cell: String = vms.iter().map(|v| v.to_string()).collect();
            let cell = if cell.is_empty() {
                "-".to_string()
            } else {
                cell
            };
            out.push_str(&format!("[{:>4}{}]", cell, if has_lc { "*" } else { " " }));
        }
        out.push('\n');
    }
    out
}

fn main() {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let mesh = cfg.mesh();
    let lc = tailbench();
    let batch = spec2006();
    let profiles: Vec<Profile> = input
        .apps
        .iter()
        .enumerate()
        .map(|(i, a)| match a.kind {
            AppKind::LatencyCritical => Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High),
            AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
        })
        .collect();
    let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
    let designs = [
        DesignKind::Adaptive,
        DesignKind::VmPart,
        DesignKind::Jigsaw,
        DesignKind::Jumanji,
    ];

    // Each design's detailed simulation is an independent cell.
    let reports: Vec<(Allocation, DetailReport)> =
        parallel_map(designs.len(), thread_count(), |i| {
            let alloc = designs[i].allocate(&input);
            let report = run_detailed(
                &DetailOptions {
                    cfg: cfg.clone(),
                    accesses_per_app: 40_000,
                    ..DetailOptions::default()
                },
                &profiles,
                &cores,
                &vms,
                &alloc,
            );
            (alloc, report)
        });

    for (design, (alloc, report)) in designs.iter().zip(&reports) {
        println!(
            "# {design} placement ({}x{} banks)",
            mesh.cols(),
            mesh.rows()
        );
        print!("{}", render_map(&cfg, &input, |b| alloc.occupants(b)));
        println!("# {design} observed occupancy (detailed sim, end of run)");
        print!(
            "{}",
            render_map(&cfg, &input, |b| report.bank_occupants[b.index()].clone())
        );
        println!(
            "# VM-isolated: placement {}, observed {}\n",
            if alloc.vm_isolated(&input) {
                "yes"
            } else {
                "no"
            },
            if report.vm_isolated(&vms) {
                "yes"
            } else {
                "no"
            }
        );
    }
}
