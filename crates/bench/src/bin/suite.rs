//! One-process suite runner: renders any subset of the 18 figures over
//! the shared [`CellCache`], so identical experiment cells are computed
//! once and every figure renders from the cached result.
//!
//! fig13 and fig14 run the *same* experiment matrix and differ only in
//! rendering; the sensitivity study's default rows duplicate the
//! main-results cells; the ablation re-runs case-study seeds. Running
//! them in one process turns all of that duplicated simulation into
//! cache hits — with byte-identical TSVs, enforced by the golden tests
//! and `scripts/verify.sh`.
//!
//! Usage:
//!
//! ```text
//! suite [--figures fig13,fig14,…] [--out DIR] [--stats PATH]
//!       [--mixes N] [--threads N] [--seed N] [--accesses N]
//!       [--trace PATH] [--no-cache]
//! ```
//!
//! - `--figures` — comma-separated [`FigureKind`] names (default: all 18,
//!   in figure order).
//! - `--out DIR` — write each figure to `DIR/<name>.tsv` (created if
//!   missing) instead of concatenating everything to stdout.
//! - `--stats PATH` — write a JSON cache-statistics report.
//! - `--mixes` / `--threads` / `--seed` / `--accesses` — forwarded to
//!   every figure exactly as the standalone binaries resolve them
//!   (CLI beats `JUMANJI_*` env beats the per-figure default).
//! - `--trace PATH` — one shared JSONL sink for the whole suite (also
//!   honours `JUMANJI_TRACE`); note tracing bypasses cache *reads*.
//! - `--no-cache` — disable the shared cache: every cell computes fresh.
//!
//! Per-figure timing and cache-delta lines go to stderr; exit codes match
//! the figure binaries (usage → 2, runtime → 1).

use jumanji::telemetry::{Event, JsonlSink, Telemetry};
use jumanji::types::Error;
use jumanji_bench::cell_cache::{apply_cache_flags, CellCache, CellCacheStats};
use jumanji_bench::exec::flag_value;
use jumanji_bench::{run_spec_to, ExperimentSpec, FigureKind};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// One figure's timing and cache-delta report.
struct FigureReport {
    name: &'static str,
    seconds: f64,
    computed: u64,
    reused: u64,
}

/// The figures to run: `--figures a,b,c` or all 18 in figure order.
fn parse_figures(args: &[String]) -> Result<Vec<FigureKind>, Error> {
    let Some(list) = flag_value(args, "--figures") else {
        return Ok(FigureKind::all().to_vec());
    };
    if list.is_empty() {
        return Err(Error::flag("--figures", "expected a value"));
    }
    list.split(',')
        .map(|name| {
            let name = name.trim();
            FigureKind::from_name(name)
                .ok_or_else(|| Error::flag("--figures", format!("unknown figure `{name}`")))
        })
        .collect()
}

/// The shared trace sink, if tracing: `--trace PATH` beats
/// `JUMANJI_TRACE`. One sink for the whole suite, so per-figure runs
/// append instead of truncating each other.
fn trace_sink(args: &[String]) -> Result<Option<Arc<JsonlSink>>, Error> {
    let path = match flag_value(args, "--trace") {
        Some(p) if !p.is_empty() => Some(PathBuf::from(p)),
        Some(_) => return Err(Error::flag("--trace", "expected a value")),
        None => match std::env::var_os("JUMANJI_TRACE") {
            Some(p) if !p.is_empty() => Some(PathBuf::from(p)),
            _ => None,
        },
    };
    Ok(match path {
        Some(p) => Some(Arc::new(JsonlSink::create(&p)?)),
        None => None,
    })
}

fn cells_of(stats: &CellCacheStats) -> (u64, u64) {
    (stats.runs.misses, stats.runs.hits)
}

fn write_stats(
    path: &PathBuf,
    reports: &[FigureReport],
    total_seconds: f64,
    stats: &CellCacheStats,
) -> std::io::Result<()> {
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    let (computed, reused) = cells_of(stats);
    let lookups = computed + reused;
    let reuse_rate = if lookups == 0 {
        0.0
    } else {
        reused as f64 / lookups as f64
    };
    writeln!(f, "{{")?;
    writeln!(f, "  \"figures\": [")?;
    for (i, r) in reports.iter().enumerate() {
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"seconds\": {:.3}, \"computed\": {}, \"reused\": {}}}{}",
            r.name,
            r.seconds,
            r.computed,
            r.reused,
            if i + 1 < reports.len() { "," } else { "" }
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"total_seconds\": {total_seconds:.3},")?;
    writeln!(f, "  \"cells_computed\": {computed},")?;
    writeln!(f, "  \"cells_reused\": {reused},")?;
    writeln!(f, "  \"cell_reuse_rate\": {reuse_rate:.4},")?;
    writeln!(
        f,
        "  \"experiments\": {{\"hits\": {}, \"misses\": {}}},",
        stats.experiments.hits, stats.experiments.misses
    )?;
    writeln!(
        f,
        "  \"hulls\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}}",
        stats.hulls.hits, stats.hulls.misses, stats.hulls.entries
    )?;
    writeln!(f, "}}")?;
    f.flush()
}

fn run(args: &[String]) -> Result<(), Error> {
    apply_cache_flags(args);
    let figures = parse_figures(args)?;
    let out_dir = flag_value(args, "--out").map(PathBuf::from);
    let stats_path = flag_value(args, "--stats").map(PathBuf::from);
    let sink = trace_sink(args)?;
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)?;
    }

    let cache = CellCache::global();
    let mut reports = Vec::with_capacity(figures.len());
    let suite_start = Instant::now();
    for kind in figures {
        let mut spec = ExperimentSpec::from_args_env(kind)?;
        if let Some(sink) = &sink {
            // One shared sink for the whole suite; the per-figure trace
            // path (same for every figure) would truncate on each open.
            spec.trace = None;
            spec.telemetry = Some(Arc::clone(sink) as Arc<dyn Telemetry>);
        }
        let before = cells_of(&cache.stats());
        let start = Instant::now();
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.tsv", kind.name()));
            let mut out = BufWriter::new(std::fs::File::create(&path)?);
            run_spec_to(&spec, &mut out)?;
        } else {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            run_spec_to(&spec, &mut out)?;
        }
        let seconds = start.elapsed().as_secs_f64();
        let after = cells_of(&cache.stats());
        let report = FigureReport {
            name: kind.name(),
            seconds,
            computed: after.0 - before.0,
            reused: after.1 - before.1,
        };
        eprintln!(
            "[suite] {}: {:.2}s ({} cells computed, {} reused)",
            report.name, report.seconds, report.computed, report.reused
        );
        reports.push(report);
    }
    let total_seconds = suite_start.elapsed().as_secs_f64();

    let stats = cache.stats();
    let (computed, reused) = cells_of(&stats);
    let lookups = computed + reused;
    let reuse_pct = if lookups == 0 {
        0.0
    } else {
        100.0 * reused as f64 / lookups as f64
    };
    eprintln!(
        "[suite] total {:.2}s; cells: {} computed, {} reused ({:.1}% reuse); \
         hulls: {} computed, {} reused",
        total_seconds, computed, reused, reuse_pct, stats.hulls.misses, stats.hulls.hits
    );

    if let Some(sink) = &sink {
        for (scope, m) in [
            ("runs", stats.runs),
            ("experiments", stats.experiments),
            ("allocs", stats.allocs),
            ("hulls", stats.hulls),
        ] {
            sink.emit(&Event::CacheStats {
                scope,
                hits: m.hits,
                misses: m.misses,
                entries: m.entries,
            });
        }
        sink.flush()?;
    }
    if let Some(path) = &stats_path {
        write_stats(path, &reports, total_seconds, &stats)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("suite: {e}");
            ExitCode::from(if e.is_usage() { 2 } else { 1 })
        }
    }
}
