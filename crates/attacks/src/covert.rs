//! A cross-VM covert channel over LLC bank-port contention.
//!
//! The paper demonstrates the port side channel as an *eavesdropping*
//! primitive (Sec. VI-B). The same contention supports deliberate
//! cross-VM communication: a transmitter floods the shared bank to send a
//! `1` and idles to send a `0`, while a receiver times its own accesses to
//! that bank. Way-partitioning cannot stop this (no cache content is
//! shared); Jumanji's bank isolation removes the shared port entirely,
//! collapsing the channel to a coin flip.

use nuca_noc::BankPorts;
use nuca_types::Cycles;

/// Configuration of the covert-channel experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovertConfig {
    /// Cycles per transmitted bit.
    pub bit_cycles: u64,
    /// Port occupancy per access.
    pub port_occupancy: u64,
    /// Receiver's round-trip overhead between its accesses.
    pub receiver_overhead: u64,
    /// Transmitter outstanding accesses while signalling a `1`.
    pub tx_mlp: u32,
}

impl Default for CovertConfig {
    fn default() -> CovertConfig {
        CovertConfig {
            bit_cycles: 4_000,
            port_occupancy: 4,
            receiver_overhead: 24,
            tx_mlp: 4,
        }
    }
}

/// Result of transmitting a message across the channel.
#[derive(Debug, Clone, PartialEq)]
pub struct CovertResult {
    /// Bits the receiver decoded.
    pub decoded: Vec<bool>,
    /// Fraction of bits decoded incorrectly.
    pub bit_error_rate: f64,
    /// Channel bandwidth in bits per million cycles (at the configured bit
    /// period).
    pub bits_per_mcycle: f64,
}

/// Transmits `message` over a bank's port; `shared` selects whether the
/// receiver actually shares the transmitter's bank (S-NUCA) or sits in its
/// own bank (Jumanji's isolation).
pub fn transmit(cfg: CovertConfig, message: &[bool], shared: bool) -> CovertResult {
    assert!(!message.is_empty(), "need at least one bit");
    let mut port = BankPorts::new(1, Cycles(cfg.port_occupancy));
    // The receiver's bank when isolated is a different physical resource.
    let mut own_port = BankPorts::new(1, Cycles(cfg.port_occupancy));
    let mut t: u64 = 0;
    let mut decoded = Vec::with_capacity(message.len());
    // Calibrated idle interval per access.
    let idle_interval = (cfg.port_occupancy + cfg.receiver_overhead) as f64;
    for (bit_idx, &bit) in message.iter().enumerate() {
        let bit_end = (bit_idx as u64 + 1) * cfg.bit_cycles;
        // Transmitter behaviour over this window (only touches the shared
        // port when it exists): closed loop with tx_mlp outstanding.
        let mut tx_next = t;
        let mut samples = 0u64;
        let window_start = t;
        while t < bit_end {
            if bit && shared {
                while tx_next <= t {
                    let mut done = tx_next;
                    for k in 0..cfg.tx_mlp {
                        let g = port.request(Cycles(tx_next + k as u64));
                        done = g.done.as_u64();
                    }
                    tx_next = done + cfg.receiver_overhead;
                }
            }
            let g = if shared {
                port.request(Cycles(t))
            } else {
                own_port.request(Cycles(t))
            };
            t = g.done.as_u64() + cfg.receiver_overhead;
            samples += 1;
        }
        let avg = (t - window_start) as f64 / samples.max(1) as f64;
        decoded.push(avg > idle_interval * 1.15);
    }
    let errors = decoded.iter().zip(message).filter(|(d, m)| d != m).count();
    CovertResult {
        bit_error_rate: errors as f64 / message.len() as f64,
        bits_per_mcycle: 1e6 / cfg.bit_cycles as f64,
        decoded,
    }
}

/// A deterministic pseudo-random message of `n` bits.
pub fn test_message(n: usize, seed: u64) -> Vec<bool> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_bank_transmits_reliably() {
        let msg = test_message(64, 42);
        let r = transmit(CovertConfig::default(), &msg, true);
        assert_eq!(
            r.bit_error_rate, 0.0,
            "decoded {:?} vs sent {:?}",
            r.decoded, msg
        );
        assert!(r.bits_per_mcycle > 100.0, "usable bandwidth");
    }

    #[test]
    fn isolated_banks_kill_the_channel() {
        let msg = test_message(64, 42);
        let r = transmit(CovertConfig::default(), &msg, false);
        // Without sharing, the receiver sees only its idle timing: every
        // bit decodes as 0, so roughly half the (random) message is wrong.
        let ones = msg.iter().filter(|&&b| b).count();
        assert_eq!(
            (r.bit_error_rate * msg.len() as f64).round() as usize,
            ones,
            "all 1-bits must be lost"
        );
        assert!(r.decoded.iter().all(|&b| !b));
    }

    #[test]
    fn faster_bit_periods_still_work_when_shared() {
        let msg = test_message(32, 7);
        let cfg = CovertConfig {
            bit_cycles: 1_000,
            ..CovertConfig::default()
        };
        let r = transmit(cfg, &msg, true);
        assert!(r.bit_error_rate < 0.1, "ber {}", r.bit_error_rate);
        assert!(r.bits_per_mcycle > 500.0);
    }

    #[test]
    fn message_generator_is_deterministic() {
        assert_eq!(test_message(16, 5), test_message(16, 5));
        assert_ne!(test_message(16, 5), test_message(16, 6));
    }
}
