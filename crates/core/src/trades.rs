//! The trade-based placement refinement the paper explored and rejected
//! (Sec. V-D and Sec. VIII-C).
//!
//! After `JumanjiPlacer` runs, this pass tries to move batch data closer by
//! relocating slices of latency-critical reservations to farther banks
//! *within the same VM*, compensating the latency-critical application with
//! extra capacity so its service time — and therefore its deadline — is
//! unaffected. A trade is accepted only when the batch cycles saved by the
//! shorter distance exceed the batch cycles lost to the donated capacity.
//!
//! The paper found that because trades "cannot penalize latency-critical
//! applications", beneficial ones are rare and the refinement "generally
//! behaves like Jumanji's simple LatCritPlacer in practice". This module
//! exists to reproduce that negative result (see the `ablation` binary).

use crate::allocation::Allocation;
use crate::model::{AppKind, PlacementInput};
use crate::placer::jumanji_placer;
use nuca_types::AppId;

/// Outcome counters of the trade pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TradeStats {
    /// Candidate trades evaluated.
    pub attempted: u64,
    /// Trades that passed both the deadline constraint and the batch
    /// benefit test.
    pub accepted: u64,
}

/// Capacity slice considered per trade: one way of one bank.
fn slice_bytes(input: &PlacementInput) -> f64 {
    input.unit_bytes() as f64
}

/// Runs `JumanjiPlacer` and then the trade refinement; returns the refined
/// allocation and the trade counters.
pub fn jumanji_with_trades(input: &PlacementInput) -> (Allocation, TradeStats) {
    let mut alloc = jumanji_placer(input, true);
    let mut stats = TradeStats::default();
    let mesh = input.cfg.mesh();
    let hop_cycles = 2.0 * input.cfg.noc.hop_latency().as_u64() as f64; // round trip per hop
    let slice = slice_bytes(input);

    for lc in input
        .apps
        .iter()
        .filter(|a| a.kind == AppKind::LatencyCritical)
    {
        // Batch apps in the same VM, by traffic (heaviest first).
        let mut batch: Vec<&crate::model::AppModel> = input
            .vm_apps(lc.vm)
            .filter(|a| a.kind == AppKind::Batch)
            .collect();
        batch.sort_by(|a, b| {
            b.access_rate
                .partial_cmp(&a.access_rate)
                .expect("rates are finite")
        });
        for b in batch {
            stats.attempted += 1;
            // Candidate: the LC bank closest to the batch app's core that
            // holds at least one slice of LC data.
            let lc_banks = alloc.of(lc.id).placement.clone();
            let Some(&(near_bank, near_bytes)) = lc_banks
                .iter()
                .filter(|(_, bytes)| *bytes >= slice)
                .min_by_key(|(bank, _)| mesh.hops_core_to_bank(b.core, *bank))
            else {
                continue;
            };
            // Destination for the displaced LC slice: the farthest (from
            // the batch app) bank where the *batch* app currently holds at
            // least one slice — the two swap.
            // The batch app must hold two slices there: one to swap and
            // one to donate as compensation.
            let Some(&(far_bank, far_bytes)) = alloc
                .of(b.id)
                .placement
                .iter()
                .filter(|(_, bytes)| *bytes >= 2.0 * slice)
                .max_by_key(|(bank, _)| mesh.hops_core_to_bank(b.core, *bank))
            else {
                continue;
            };
            if near_bank == far_bank {
                continue;
            }
            let d_near = mesh.hops_core_to_bank(b.core, near_bank) as f64;
            let d_far = mesh.hops_core_to_bank(b.core, far_bank) as f64;
            if d_far <= d_near {
                continue; // nothing to gain
            }
            // LC latency increase from moving its slice farther (relative
            // to its own core).
            let lc_d_near = mesh.hops_core_to_bank(lc.core, near_bank) as f64;
            let lc_d_far = mesh.hops_core_to_bank(lc.core, far_bank) as f64;
            let lc_frac = slice / alloc.of(lc.id).total_bytes().max(slice);
            let lc_extra_cycles =
                lc.access_rate * lc_frac * (lc_d_far - lc_d_near).max(0.0) * hop_cycles;
            // Compensation: how much extra capacity restores the LC app's
            // miss budget (curve is absolute misses/s; one slice's drop).
            let lc_cap = alloc.of(lc.id).total_bytes();
            let comp_gain = (lc.curve.eval_bytes(lc_cap as u64)
                - lc.curve.eval_bytes((lc_cap + slice) as u64))
                * input.cfg.mem.latency.as_u64() as f64;
            if comp_gain < lc_extra_cycles {
                // One compensation slice cannot pay for the move without
                // penalizing the LC app: the deadline constraint rejects
                // the trade (this is the common case the paper reports).
                continue;
            }
            // Batch benefit: its slice moves near; it loses the slice it
            // donates as compensation.
            let batch_gain = b.access_rate
                * (slice / alloc.of(b.id).total_bytes().max(slice))
                * (d_far - d_near)
                * hop_cycles;
            let batch_cap = alloc.of(b.id).total_bytes();
            let batch_loss = (b.curve.eval_bytes((batch_cap - slice).max(0.0) as u64)
                - b.curve.eval_bytes(batch_cap as u64))
                * input.cfg.mem.latency.as_u64() as f64;
            if batch_gain <= batch_loss {
                continue;
            }
            // Execute: the LC slice relocates near→far; the batch app
            // takes the freed near slice and donates one far slice to the
            // LC app as capacity compensation. Per-bank capacity is
            // conserved: near {LC −1, batch +1}, far {LC +2, batch −2}.
            stats.accepted += 1;
            move_bytes(&mut alloc, lc.id, near_bank, -slice);
            move_bytes(&mut alloc, lc.id, far_bank, 2.0 * slice);
            move_bytes(&mut alloc, b.id, far_bank, -2.0 * slice);
            move_bytes(&mut alloc, b.id, near_bank, slice);
            let _ = (near_bytes, far_bytes);
        }
    }
    (alloc, stats)
}

/// Adjusts `app`'s bytes in `bank` by `delta`, dropping empty entries.
fn move_bytes(alloc: &mut Allocation, app: AppId, bank: nuca_types::BankId, delta: f64) {
    let placement = &mut alloc.apps[app.index()].placement;
    match placement.iter_mut().find(|(b, _)| *b == bank) {
        Some((_, bytes)) => {
            *bytes = (*bytes + delta).max(0.0);
        }
        None if delta > 0.0 => placement.push((bank, delta)),
        None => {}
    }
    placement.retain(|(_, bytes)| *bytes > 1e-9);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuca_types::SystemConfig;

    #[test]
    fn trades_preserve_validity_and_isolation() {
        let input = PlacementInput::example(&SystemConfig::micro2020());
        let (alloc, stats) = jumanji_with_trades(&input);
        alloc.validate(&input.cfg).unwrap();
        assert!(alloc.vm_isolated(&input), "trades stay within VMs");
        assert!(stats.attempted > 0);
    }

    #[test]
    fn trades_are_rare() {
        // The paper's negative result: the deadline constraint rejects
        // almost every candidate.
        let input = PlacementInput::example(&SystemConfig::micro2020());
        let (_, stats) = jumanji_with_trades(&input);
        assert!(
            stats.accepted * 4 <= stats.attempted,
            "{} of {} trades accepted — should be rare",
            stats.accepted,
            stats.attempted
        );
    }

    #[test]
    fn lc_capacity_never_shrinks() {
        let input = PlacementInput::example(&SystemConfig::micro2020());
        let base = jumanji_placer(&input, true);
        let (traded, _) = jumanji_with_trades(&input);
        for a in &input.apps {
            if a.kind == AppKind::LatencyCritical {
                assert!(
                    traded.of(a.id).total_bytes() >= base.of(a.id).total_bytes() - 1.0,
                    "{} lost capacity",
                    a.id
                );
            }
        }
    }
}
