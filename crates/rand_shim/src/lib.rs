//! A hermetic, dependency-free PRNG shim exposing the subset of the
//! `rand` 0.8 API this workspace uses.
//!
//! The workspace must build with `cargo build --offline` on machines with
//! no crates.io mirror, so the real `rand` crate is replaced by this shim
//! via a `[workspace.dependencies]` rename (`rand = { path =
//! "crates/rand_shim", package = "nuca-rand" }`). Generators are
//! deterministic splitmix64-seeded xoshiro256 variants:
//!
//! - [`rngs::SmallRng`]: xoshiro256++ (the same core algorithm `rand`
//!   0.8's `SmallRng` uses on 64-bit targets);
//! - [`rngs::StdRng`]: xoshiro256**, seeded from a domain-separated
//!   splitmix64 stream.
//!
//! The streams are *not* bit-compatible with the real `rand` crate
//! (`StdRng` there is ChaCha12); every checked-in `results/*.tsv` was
//! regenerated against this shim. Determinism per seed is what the
//! experiments rely on, and this shim keeps that property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The splitmix64 mixing step used for seeding and for hashing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift: unbiased enough for simulation,
                // one draw per sample, deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
int_range!(u64, u32, usize, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        self.start + (self.end - self.start) * u
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Shared 256-bit xoshiro state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct State256([u64; 4]);

    impl State256 {
        fn from_seed(seed: u64, domain: u64) -> State256 {
            let mut s = seed ^ domain;
            let mut out = [0u64; 4];
            for w in &mut out {
                *w = splitmix64(&mut s);
            }
            // xoshiro must not start from the all-zero state.
            if out == [0, 0, 0, 0] {
                out[0] = 0x9E37_79B9_7F4A_7C15;
            }
            State256(out)
        }

        #[inline]
        fn step(&mut self) -> &[u64; 4] {
            let s = &mut self.0;
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            &self.0
        }
    }

    /// xoshiro256++ — the fast small generator (`rand`'s 64-bit
    /// `SmallRng` uses the same core algorithm).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: State256,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng {
                state: State256::from_seed(seed, 0),
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &self.state.0;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            self.state.step();
            out
        }
    }

    /// xoshiro256** — the "default" generator, seeded from a
    /// domain-separated stream so `StdRng` and `SmallRng` with the same
    /// seed stay uncorrelated.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: State256,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: State256::from_seed(seed, 0x5D04_2D04_7E8D_7A6B),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &self.state.0;
            let out = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            self.state.step();
            out
        }
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..32).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut small = SmallRng::seed_from_u64(1);
        let mut std = StdRng::seed_from_u64(1);
        let a: Vec<u64> = (0..8).map(|_| small.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| std.gen()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            let expect = n / 8;
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "measured {frac}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements essentially never stay sorted");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(9);
        let v = [1usize, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
