//! Fig. 5: end-to-end case-study results — normalized tail latency and
//! batch weighted speedup for each LLC design.

use jumanji::prelude::*;

fn main() {
    let opts = SimOptions::default();
    let mix = case_study_mix(1);
    let exp = Experiment::new(mix, LcLoad::High, opts);
    let baseline = exp.run(DesignKind::Static);
    println!("# Fig. 5: case study end-to-end (normalized to Static)");
    println!("design\tworst_norm_tail\tbatch_speedup_pct\tvulnerability");
    for design in DesignKind::main_four() {
        let r = exp.run(design);
        println!(
            "{}\t{:.3}\t{:.2}\t{:.2}",
            design,
            r.max_norm_tail(),
            (r.weighted_speedup_vs(&baseline) - 1.0) * 100.0,
            r.vulnerability
        );
    }
    println!("# expected: Adaptive/VM-Part meet deadlines with ~0% speedup;");
    println!("# Jigsaw violates deadlines badly; Jumanji meets deadlines near Jigsaw's speedup.");
}
