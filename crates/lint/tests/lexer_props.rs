//! Property tests for the hand-rolled lexer: tokenization must
//! partition any input losslessly, and rule patterns must never fire
//! inside string/char literals or comments, no matter how they nest.

use jumanji_lint::config::LintConfig;
use jumanji_lint::lexer::{lex, TokenKind};
use jumanji_lint::rules::check_file;
use proptest::prelude::*;

/// Atoms whose text *looks* like a violation but lives entirely inside
/// a literal or comment. Joined in any order (newline-separated, so
/// line comments stay bounded) they must produce zero findings.
const HAZARD_LITERALS: &[&str] = &[
    "\"HashMap::new()\"",
    "\"std::env::var(\\\"JUMANJI_THREADS\\\")\"",
    "r\"Instant::now()\"",
    "r#\"SystemTime::now() \"quoted\" tail\"#",
    "r##\"thread_local! { r#\"inner\"# }\"##",
    "b\"HashMap::with_capacity(4)\"",
    "br#\"unsafe { } \"#",
    "c\"HashSet::from([1])\"",
    "'\\''",
    "'a'",
    "b'\\xFF'",
    "// HashMap::new() at end of line",
    "// lint is not fooled by env::var(\"JUMANJI_X\") here",
    "/* Instant::now() */",
    "/* outer /* nested SystemTime::now() */ still comment */",
    "/* unsafe { *p } */",
];

/// Neutral filler: idents, numbers, lifetimes, punctuation that can
/// never combine into a flagged pattern.
const FILLER: &[&str] = &[
    "fn", "foo", "bar", "let", "x", "=", ";", "{", "}", "(", ")", ",", "&", "'a", "1.5e-3", "0xFF",
    "0", "..", "10", "r#type",
];

/// The strictest possible policy: every rule armed for the probed path.
fn strict() -> LintConfig {
    LintConfig {
        determinism: vec!["crates/".into()],
        determinism_exempt: Vec::new(),
        timing_allow: Vec::new(),
        env_allow: Vec::new(),
        figures: vec!["crates/".into()],
        plan_helpers: vec!["mix_cell_inputs".into()],
        ..LintConfig::default()
    }
}

/// Rebuilds a source from atom indices drawn over both pools.
fn assemble(indices: &[usize]) -> String {
    let mut src = String::new();
    for &i in indices {
        let pool = if i % 2 == 0 { HAZARD_LITERALS } else { FILLER };
        src.push_str(pool[(i / 2) % pool.len()]);
        src.push('\n');
    }
    src
}

/// The partition invariant: tokens are in-bounds, non-overlapping, in
/// order, and the bytes between them are pure whitespace.
fn assert_partitions(src: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        assert!(t.start >= pos, "overlapping tokens at byte {}", t.start);
        assert!(t.end <= src.len() && t.start < t.end);
        assert!(
            src[pos..t.start].bytes().all(|b| b.is_ascii_whitespace()),
            "non-whitespace gap before byte {}",
            t.start
        );
        pos = t.end;
    }
    assert!(src[pos..].bytes().all(|b| b.is_ascii_whitespace()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokenization_partitions_arbitrary_atom_sequences(
        indices in proptest::collection::vec(0usize..1024, 0..40),
    ) {
        let src = assemble(&indices);
        assert_partitions(&src);
    }

    #[test]
    fn no_rule_fires_inside_literals_or_comments(
        indices in proptest::collection::vec(0usize..1024, 0..40),
    ) {
        let src = assemble(&indices);
        let check = check_file("crates/x/src/lib.rs", &src, &strict());
        prop_assert!(
            check.diags.is_empty(),
            "false positives in:\n{src}\n{:?}",
            check.diags.iter().map(|d| d.render_text()).collect::<Vec<_>>()
        );
        prop_assert!(check.unsafe_sites.is_empty());
    }

    #[test]
    fn nested_block_comments_swallow_hazards_at_any_depth(depth in 1usize..12) {
        let src = format!(
            "ok {}Instant::now() thread_local! unsafe{} tail",
            "/* ".repeat(depth),
            " */".repeat(depth)
        );
        let tokens = lex(&src);
        prop_assert_eq!(tokens.len(), 3);
        prop_assert_eq!(tokens[1].kind, TokenKind::BlockComment);
        assert_partitions(&src);
        let check = check_file("crates/x/src/lib.rs", &src, &strict());
        prop_assert!(check.diags.is_empty());
    }

    #[test]
    fn raw_strings_swallow_hazards_at_any_hash_depth(depth in 1usize..10) {
        let hashes = "#".repeat(depth);
        // The body embeds a quote-hash run one hash short of the
        // terminator, plus hazard patterns — none of it may end the string.
        let body = format!("HashMap::new() \"{} SystemTime::now()", "#".repeat(depth - 1));
        let src = format!("ok r{hashes}\"{body}\"{hashes} tail");
        let tokens = lex(&src);
        prop_assert_eq!(tokens.len(), 3);
        prop_assert_eq!(tokens[1].kind, TokenKind::Str);
        assert_partitions(&src);
        let check = check_file("crates/x/src/lib.rs", &src, &strict());
        prop_assert!(check.diags.is_empty());
    }
}

/// Every hazard atom lexes to exactly one literal/comment token — the
/// static table the properties above build on.
#[test]
fn hazard_atoms_each_lex_to_one_token() {
    for atom in HAZARD_LITERALS {
        let tokens = lex(atom);
        assert_eq!(tokens.len(), 1, "atom {atom:?} -> {tokens:?}");
        assert!(
            matches!(
                tokens[0].kind,
                TokenKind::Str | TokenKind::Char | TokenKind::LineComment | TokenKind::BlockComment
            ),
            "atom {atom:?} lexed as {:?}",
            tokens[0].kind
        );
    }
}
