//! # Jumanji: Dynamic NUCA for tail latency and security
//!
//! A from-scratch Rust reproduction of *"Jumanji: The Case for Dynamic
//! NUCA in the Datacenter"* (Schwedock & Beckmann, MICRO 2020): the
//! Jumanji data-placement policy, the prior LLC designs it is compared
//! against, and the entire simulation substrate the paper's evaluation
//! rests on — set-associative cache banks with DRRIP set-dueling, a mesh
//! NoC with port contention, memory controllers, utility monitors,
//! virtual-cache placement hardware, synthetic SPEC/TailBench workload
//! models, and an epoch-based multicore simulator.
//!
//! ## Quickstart
//!
//! ```no_run
//! use jumanji::prelude::*;
//!
//! // The paper's case study: 4 VMs, each one xapian + four batch apps.
//! let mix = case_study_mix(1);
//! let exp = Experiment::new(mix, LcLoad::High, SimOptions::default());
//!
//! let baseline = exp.run(DesignKind::Static, &NoopSink);
//! let jumanji = exp.run(DesignKind::Jumanji, &NoopSink);
//!
//! println!("tail latency (ms): {:?}", jumanji.lc_tail_latency_ms);
//! println!("deadline met: {}", jumanji.max_norm_tail() <= 1.0);
//! println!(
//!     "batch speedup vs Static: {:.2}%",
//!     (jumanji.weighted_speedup_vs(&baseline) - 1.0) * 100.0
//! );
//! println!("potential attackers/access: {}", jumanji.vulnerability);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`types`] | ids, mesh topology, Table II system config |
//! | [`cache`] | cache banks, replacement (LRU/RRIP/DRRIP), way masks, miss curves |
//! | [`noc`] | mesh latency, flit serialization, bank-port contention |
//! | [`mem`] | corner memory controllers, bandwidth partitioning |
//! | [`umon`] | sampled utility monitors |
//! | [`vc`] | virtual caches, placement descriptors, VTB |
//! | [`workloads`] | synthetic SPEC-like & TailBench-like app models |
//! | [`core`] | **the paper's algorithms**: controller, LatCritPlacer, Lookahead, Jigsaw, JumanjiPlacer, designs |
//! | [`sim`] | epoch simulator, queueing, metrics, energy |
//! | [`attacks`] | port attack, conflict attack, set-dueling leakage |
//! | [`telemetry`] | zero-cost-when-disabled tracing sinks and JSONL events |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jumanji_core as core;
pub use jumanji_telemetry as telemetry;
pub use nuca_attacks as attacks;
pub use nuca_cache as cache;
pub use nuca_mem as mem;
pub use nuca_noc as noc;
pub use nuca_sim as sim;
pub use nuca_types as types;
pub use nuca_umon as umon;
pub use nuca_vc as vc;
pub use nuca_workloads as workloads;

/// The most common imports for running experiments.
pub mod prelude {
    pub use jumanji_core::{
        Allocation, AppKind, AppModel, ControllerParams, DesignKind, FeedbackController,
        PlacementInput,
    };
    pub use jumanji_telemetry::{Event, JsonlSink, NoopSink, RecordingSink, Telemetry};
    pub use nuca_sim::{Experiment, ExperimentResult, SimOptions};
    pub use nuca_types::{AppId, BankId, CoreId, Seconds, SystemConfig, VmId};
    pub use nuca_workloads::{
        case_study_mix, fig17_configs, spec2006, tailbench, LcLoad, WorkloadMix,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_the_stack() {
        use crate::prelude::*;
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        let alloc = DesignKind::Jumanji.allocate(&input);
        assert!(alloc.vm_isolated(&input));
    }
}
