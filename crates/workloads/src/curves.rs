//! Parametric miss-ratio curve shapes.
//!
//! A [`CurveShape`] composes a miss *ratio* (fraction of LLC accesses that
//! miss) as a function of allocated capacity from working-set components:
//!
//! - **Smooth** components model gradual reuse: the ratio contribution
//!   decays as `w / (1 + (c / ws)^p)`, reaching half-value when the
//!   allocation equals the working-set size.
//! - **Cliff** components model all-or-nothing working sets (loops over a
//!   fixed structure): full contribution below `ws`, zero at or above. These
//!   produce the non-convex cliffs that Talus/convex hulls exist to fix.
//!
//! A constant `floor` models compulsory/streaming misses that no amount of
//! capacity removes.

use nuca_cache::MissCurve;

/// One working-set component of a miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Component {
    /// Gradual decay with working-set size `ws_bytes` and sharpness `p`.
    Smooth {
        /// Miss-ratio contribution at zero capacity.
        weight: f64,
        /// Working-set size in bytes (half-value point).
        ws_bytes: u64,
        /// Decay sharpness (larger = closer to a step).
        sharpness: f64,
    },
    /// A hard cliff: contributes `weight` below `ws_bytes`, nothing above.
    Cliff {
        /// Miss-ratio contribution below the cliff.
        weight: f64,
        /// Capacity at which the working set suddenly fits.
        ws_bytes: u64,
    },
}

/// A parametric miss-ratio curve: `floor` plus the sum of components.
///
/// # Examples
///
/// ```
/// use nuca_workloads::curves::{Component, CurveShape};
/// let shape = CurveShape::new(0.1, vec![Component::Cliff {
///     weight: 0.5,
///     ws_bytes: 1024,
/// }]);
/// assert_eq!(shape.ratio(0), 0.6);
/// assert_eq!(shape.ratio(2048), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CurveShape {
    floor: f64,
    components: Vec<Component>,
}

impl CurveShape {
    /// Creates a shape; the ratio at zero capacity is `floor + Σ weights`.
    ///
    /// # Panics
    ///
    /// Panics if the zero-capacity ratio exceeds 1 or any parameter is
    /// negative.
    pub fn new(floor: f64, components: Vec<Component>) -> CurveShape {
        assert!((0.0..=1.0).contains(&floor), "floor must be in [0,1]");
        let total: f64 = floor
            + components
                .iter()
                .map(|c| match c {
                    Component::Smooth { weight, .. } | Component::Cliff { weight, .. } => {
                        assert!(*weight >= 0.0, "weights must be non-negative");
                        *weight
                    }
                })
                .sum::<f64>();
        assert!(
            total <= 1.0 + 1e-9,
            "miss ratio at zero capacity ({total}) must not exceed 1"
        );
        CurveShape { floor, components }
    }

    /// A flat curve: streaming behaviour with no capacity benefit.
    pub fn streaming(ratio: f64) -> CurveShape {
        CurveShape::new(ratio, Vec::new())
    }

    /// The constant compulsory/streaming floor.
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The working-set components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Miss ratio at `bytes` of allocated capacity.
    pub fn ratio(&self, bytes: u64) -> f64 {
        let c = bytes as f64;
        let mut r = self.floor;
        for comp in &self.components {
            r += match *comp {
                Component::Smooth {
                    weight,
                    ws_bytes,
                    sharpness,
                } => weight / (1.0 + (c / ws_bytes as f64).powf(sharpness)),
                Component::Cliff { weight, ws_bytes } => {
                    if bytes < ws_bytes {
                        weight
                    } else {
                        0.0
                    }
                }
            };
        }
        r
    }

    /// Samples the shape into a [`MissCurve`] of miss ratios with points at
    /// `0, unit_bytes, 2*unit_bytes, …, units*unit_bytes`.
    pub fn miss_curve(&self, unit_bytes: u64, units: usize) -> MissCurve {
        let points = (0..=units)
            .map(|u| self.ratio(u as u64 * unit_bytes))
            .collect();
        MissCurve::new(unit_bytes, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_component_half_value_at_ws() {
        let s = CurveShape::new(
            0.0,
            vec![Component::Smooth {
                weight: 0.8,
                ws_bytes: 1 << 20,
                sharpness: 2.0,
            }],
        );
        assert!((s.ratio(1 << 20) - 0.4).abs() < 1e-12);
        assert!((s.ratio(0) - 0.8).abs() < 1e-12);
        assert!(s.ratio(100 << 20) < 0.01);
    }

    #[test]
    fn cliff_component_is_a_step() {
        let s = CurveShape::new(
            0.05,
            vec![Component::Cliff {
                weight: 0.6,
                ws_bytes: 4096,
            }],
        );
        assert_eq!(s.ratio(4095), 0.65);
        assert_eq!(s.ratio(4096), 0.05);
    }

    #[test]
    fn streaming_is_flat() {
        let s = CurveShape::streaming(0.95);
        assert_eq!(s.ratio(0), s.ratio(1 << 30));
    }

    #[test]
    fn sampled_curve_is_monotone_and_matches_ratio() {
        let s = CurveShape::new(
            0.1,
            vec![
                Component::Smooth {
                    weight: 0.5,
                    ws_bytes: 2 << 20,
                    sharpness: 1.5,
                },
                Component::Cliff {
                    weight: 0.2,
                    ws_bytes: 6 << 20,
                },
            ],
        );
        let c = s.miss_curve(1 << 20, 20);
        assert_eq!(c.len(), 21);
        for w in c.points().windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!((c.at(0) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn overweight_panics() {
        CurveShape::new(
            0.5,
            vec![Component::Smooth {
                weight: 0.6,
                ws_bytes: 1,
                sharpness: 1.0,
            }],
        );
    }
}
