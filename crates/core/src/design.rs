//! The LLC designs compared throughout the paper (Sec. III and Sec. VII).
//!
//! | Design            | Tail-aware | Conflict defense | Bank isolation | NUCA |
//! |-------------------|-----------|------------------|----------------|------|
//! | Static            | no (fixed)| LC only          | no             | S    |
//! | Adaptive          | yes       | LC only          | no             | S    |
//! | VM-Part           | yes       | yes              | no             | S    |
//! | Jigsaw            | no        | yes              | heuristic      | D    |
//! | Jumanji           | yes       | yes              | guaranteed     | D    |
//! | Jumanji: Insecure | yes       | yes              | no             | D    |
//! | Jumanji: Ideal    | yes       | yes              | guaranteed     | D    |

use crate::allocation::{Allocation, AppAlloc, Pool};
use crate::jigsaw::{place_near, refine_placement, PlaceRequest};
use crate::lookahead::lookahead;
use crate::model::{AppKind, PlacementInput};
use crate::placer::{ideal_batch_placer, jumanji_placer};
use core::fmt;
use nuca_cache::MissCurve;
use nuca_types::{BankId, VmId};

/// Which LLC design decides allocations and placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Naïve baseline: every LC app gets a fixed 4-way partition; batch
    /// shares the rest. All results are normalized to this design.
    Static,
    /// S-NUCA with feedback-controlled LC partitions (Heracles/Parties
    /// style); batch space is unpartitioned.
    Adaptive,
    /// Adaptive plus per-VM way-partitions for batch data (defends
    /// conflict attacks only).
    VmPart,
    /// Data-movement-only D-NUCA \[6, 8\]: per-app Lookahead sizes, placed
    /// near cores; ignores deadlines and trust domains.
    Jigsaw,
    /// This paper: deadline-aware, VM-bank-isolated D-NUCA.
    Jumanji,
    /// Sensitivity variant: Jumanji without bank isolation.
    JumanjiInsecure,
    /// Sensitivity variant: batch placed in a pristine LLC copy.
    JumanjiIdealBatch,
}

impl DesignKind {
    /// All designs in the paper's plotting order.
    pub fn all() -> [DesignKind; 7] {
        [
            DesignKind::Static,
            DesignKind::Adaptive,
            DesignKind::VmPart,
            DesignKind::Jigsaw,
            DesignKind::Jumanji,
            DesignKind::JumanjiInsecure,
            DesignKind::JumanjiIdealBatch,
        ]
    }

    /// The four designs of the main evaluation (Fig. 13).
    pub fn main_four() -> [DesignKind; 4] {
        [
            DesignKind::Adaptive,
            DesignKind::VmPart,
            DesignKind::Jigsaw,
            DesignKind::Jumanji,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DesignKind::Static => "Static",
            DesignKind::Adaptive => "Adaptive",
            DesignKind::VmPart => "VM-Part",
            DesignKind::Jigsaw => "Jigsaw",
            DesignKind::Jumanji => "Jumanji",
            DesignKind::JumanjiInsecure => "Jumanji: Insecure",
            DesignKind::JumanjiIdealBatch => "Jumanji: Ideal Batch",
        }
    }

    /// Whether the design resizes LC allocations by feedback control.
    pub fn is_tail_aware(self) -> bool {
        !matches!(self, DesignKind::Static | DesignKind::Jigsaw)
    }

    /// Whether the design places data in nearby banks (D-NUCA).
    pub fn is_dnuca(self) -> bool {
        matches!(
            self,
            DesignKind::Jigsaw
                | DesignKind::Jumanji
                | DesignKind::JumanjiInsecure
                | DesignKind::JumanjiIdealBatch
        )
    }

    /// Whether VM bank isolation is *guaranteed* (defends port attacks and
    /// performance leakage, Sec. VI).
    pub fn guarantees_bank_isolation(self) -> bool {
        matches!(self, DesignKind::Jumanji | DesignKind::JumanjiIdealBatch)
    }

    /// Computes the allocation for one reconfiguration interval.
    pub fn allocate(self, input: &PlacementInput) -> Allocation {
        match self {
            DesignKind::Static => snuca_allocate(input, SnucaBatch::SharedPool, true),
            DesignKind::Adaptive => snuca_allocate(input, SnucaBatch::SharedPool, false),
            DesignKind::VmPart => snuca_allocate(input, SnucaBatch::PerVmPools, false),
            DesignKind::Jigsaw => jigsaw_allocate(input),
            DesignKind::Jumanji => jumanji_placer(input, true),
            DesignKind::JumanjiInsecure => jumanji_placer(input, false),
            DesignKind::JumanjiIdealBatch => ideal_batch_placer(input),
        }
    }
}

impl fmt::Display for DesignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How an S-NUCA design handles batch space.
enum SnucaBatch {
    /// One unpartitioned pool shared by every batch app (Static, Adaptive).
    SharedPool,
    /// One pool per VM, way-partitioned within every bank (VM-Part).
    PerVmPools,
}

/// Ways each LC app receives under the naïve Static design.
const STATIC_LC_WAYS: f64 = 4.0;

/// Builds an S-NUCA allocation: LC partitions striped over every bank,
/// batch space striped as pool(s).
fn snuca_allocate(input: &PlacementInput, batch: SnucaBatch, fixed_lc: bool) -> Allocation {
    let cfg = &input.cfg;
    let nbanks = cfg.llc.num_banks;
    let bank_bytes = cfg.llc.bank_bytes as f64;
    let way_bytes = cfg.llc.way_bytes() as f64;
    let mut per_bank_free = bank_bytes;

    let mut apps: Vec<AppAlloc> = Vec::with_capacity(input.num_apps());
    for a in &input.apps {
        let placement = if a.kind == AppKind::LatencyCritical {
            let total = if fixed_lc {
                STATIC_LC_WAYS * way_bytes * nbanks as f64
            } else {
                input.lc_size(a.id)
            };
            let per_bank = (total / nbanks as f64).min(per_bank_free);
            per_bank_free -= per_bank;
            (0..nbanks).map(|b| (BankId(b), per_bank)).collect()
        } else {
            Vec::new()
        };
        apps.push(AppAlloc {
            app: a.id,
            placement,
            pool: None,
            copy: 0,
        });
    }
    // Keep at least one way per bank for batch data.
    per_bank_free = per_bank_free.max(way_bytes);

    let pools = match batch {
        SnucaBatch::SharedPool => {
            let members: Vec<_> = input
                .apps
                .iter()
                .filter(|a| a.kind == AppKind::Batch)
                .map(|a| a.id)
                .collect();
            for a in &members {
                apps[a.index()].pool = Some(0);
            }
            vec![Pool {
                members,
                placement: (0..nbanks).map(|b| (BankId(b), per_bank_free)).collect(),
            }]
        }
        SnucaBatch::PerVmPools => {
            // Size VM pools by utility over each VM's combined batch curve.
            let num_vms = input.num_vms();
            let unit = input.unit_bytes();
            let vm_members: Vec<Vec<_>> = (0..num_vms)
                .map(|vm| {
                    input
                        .vm_apps(VmId(vm))
                        .filter(|a| a.kind == AppKind::Batch)
                        .collect::<Vec<_>>()
                })
                .collect();
            let curves: Vec<MissCurve> = vm_members
                .iter()
                .map(|members| {
                    let cs: Vec<&MissCurve> = members.iter().map(|a| &a.curve).collect();
                    if cs.is_empty() {
                        MissCurve::flat(unit, input.total_units(), 0.0)
                    } else {
                        MissCurve::combine_convex_curve(&cs, input.total_units())
                    }
                })
                .collect();
            let total_units = (per_bank_free * nbanks as f64 / unit as f64).floor() as usize;
            // Every VM with batch data keeps at least one way per bank —
            // its partition always exists in hardware, which is what makes
            // all VM-Part accesses observable chip-wide (Fig. 14).
            let active = vm_members.iter().filter(|m| !m.is_empty()).count();
            let min_units = nbanks.min(total_units / active.max(1));
            let sizes = lookahead(&curves, total_units - min_units * active);
            let mut pools = Vec::new();
            for (vm, members) in vm_members.iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                let idx = pools.len();
                for a in members {
                    apps[a.id.index()].pool = Some(idx);
                }
                let per_bank = (sizes[vm] + min_units) as f64 * unit as f64 / nbanks as f64;
                pools.push(Pool {
                    members: members.iter().map(|a| a.id).collect(),
                    placement: (0..nbanks).map(|b| (BankId(b), per_bank)).collect(),
                });
            }
            pools
        }
    };
    Allocation {
        apps,
        pools,
        ideal_batch: false,
    }
}

/// Jigsaw: per-app Lookahead sizes over every application's miss curve,
/// placed near cores. Deadlines and VMs are invisible to it.
fn jigsaw_allocate(input: &PlacementInput) -> Allocation {
    let cfg = &input.cfg;
    let unit = input.unit_bytes() as f64;
    let curves: Vec<&MissCurve> = input.apps.iter().map(|a| &a.curve).collect();
    let sizes = lookahead(&curves, input.total_units());
    let requests: Vec<PlaceRequest> = input
        .apps
        .iter()
        .zip(&sizes)
        .map(|(a, &u)| PlaceRequest {
            app: a.id,
            core: a.core,
            bytes: u as f64 * unit,
            priority: a.access_rate,
        })
        .collect();
    let mut balance = vec![cfg.llc.bank_bytes as f64; cfg.llc.num_banks];
    let mut placed = place_near(&requests, &mut balance, cfg.mesh(), None);
    // Jigsaw iteratively refines its placement [8]; a few local-search
    // sweeps recover most of what greedy rounds leave on the table.
    refine_placement(&requests, &mut placed, cfg.mesh(), 4);
    let mut apps: Vec<AppAlloc> = input
        .apps
        .iter()
        .map(|a| AppAlloc {
            app: a.id,
            placement: Vec::new(),
            pool: None,
            copy: 0,
        })
        .collect();
    for (app, placement) in placed {
        apps[app.index()].placement = placement;
    }
    Allocation {
        apps,
        pools: Vec::new(),
        ideal_batch: false,
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only scratch sets; order never observed
mod tests {
    use super::*;
    use nuca_types::{AppId, SystemConfig};

    const MB: f64 = 1024.0 * 1024.0;

    fn input() -> PlacementInput {
        PlacementInput::example(&SystemConfig::micro2020())
    }

    #[test]
    fn every_design_produces_a_valid_allocation() {
        let inp = input();
        for d in DesignKind::all() {
            let alloc = d.allocate(&inp);
            alloc
                .validate(&inp.cfg)
                .unwrap_or_else(|e| panic!("{d}: {e}"));
        }
    }

    #[test]
    fn static_gives_lc_four_ways() {
        let inp = input();
        let alloc = DesignKind::Static.allocate(&inp);
        for a in &inp.apps {
            if a.kind == AppKind::LatencyCritical {
                // 4 ways x 32 KB x 20 banks = 2.5 MB.
                assert!((alloc.of(a.id).total_bytes() - 2.5 * MB).abs() < 1e-6);
            }
        }
        // Batch pool is striped across every bank.
        assert_eq!(alloc.pools.len(), 1);
        assert_eq!(alloc.pools[0].placement.len(), 20);
    }

    #[test]
    fn adaptive_follows_controller_sizes() {
        let inp = input();
        let alloc = DesignKind::Adaptive.allocate(&inp);
        for a in &inp.apps {
            if a.kind == AppKind::LatencyCritical {
                assert!((alloc.of(a.id).total_bytes() - inp.lc_size(a.id)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn snuca_designs_share_every_bank() {
        let inp = input();
        for d in [DesignKind::Static, DesignKind::Adaptive, DesignKind::VmPart] {
            let alloc = d.allocate(&inp);
            // Every bank hosts apps from several VMs: maximally exposed to
            // bank attacks.
            assert!(!alloc.vm_isolated(&inp), "{d} is S-NUCA");
            let occ = alloc.occupants(BankId(7));
            assert!(occ.len() >= 10, "{d}: bank 7 has {} occupants", occ.len());
        }
    }

    #[test]
    fn vmpart_isolates_vm_pools_within_banks() {
        let inp = input();
        let alloc = DesignKind::VmPart.allocate(&inp);
        assert_eq!(alloc.pools.len(), 4);
        // Pools are disjoint by construction (separate partitions); check
        // membership covers all 16 batch apps exactly once.
        let mut seen = std::collections::HashSet::new();
        for p in &alloc.pools {
            for m in &p.members {
                assert!(seen.insert(*m));
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn jigsaw_starves_low_traffic_lc_apps() {
        let inp = input();
        let alloc = DesignKind::Jigsaw.allocate(&inp);
        // LC apps generate ~10x less traffic, so Jigsaw gives them far
        // less space than the controller wanted (the paper's core
        // complaint about data-movement-only D-NUCA).
        for a in &inp.apps {
            if a.kind == AppKind::LatencyCritical {
                let got = alloc.of(a.id).total_bytes();
                assert!(
                    got < inp.lc_size(a.id),
                    "{}: jigsaw gave {got} >= requested {}",
                    a.id,
                    inp.lc_size(a.id)
                );
            }
        }
    }

    #[test]
    fn jumanji_only_design_with_guaranteed_isolation() {
        let inp = input();
        for d in DesignKind::all() {
            let alloc = d.allocate(&inp);
            if d.guarantees_bank_isolation() && !alloc.ideal_batch {
                assert!(alloc.vm_isolated(&inp), "{d} must isolate");
            }
        }
    }

    #[test]
    fn properties_match_table1() {
        use DesignKind::*;
        assert!(!Static.is_tail_aware() && !Jigsaw.is_tail_aware());
        assert!(Adaptive.is_tail_aware() && VmPart.is_tail_aware() && Jumanji.is_tail_aware());
        assert!(Jigsaw.is_dnuca() && Jumanji.is_dnuca());
        assert!(!Adaptive.is_dnuca() && !VmPart.is_dnuca());
        assert!(Jumanji.guarantees_bank_isolation());
        assert!(!JumanjiInsecure.guarantees_bank_isolation());
    }

    #[test]
    fn dnuca_distance_beats_snuca_distance() {
        let inp = input();
        let snuca = DesignKind::Adaptive.allocate(&inp);
        let dnuca = DesignKind::Jumanji.allocate(&inp);
        let avg = |alloc: &Allocation| {
            (0..20)
                .map(|i| alloc.avg_distance(&inp, AppId(i)))
                .sum::<f64>()
                / 20.0
        };
        assert!(avg(&dnuca) < 0.6 * avg(&snuca));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DesignKind::Jumanji.to_string(), "Jumanji");
        assert_eq!(DesignKind::VmPart.name(), "VM-Part");
        assert_eq!(DesignKind::main_four().len(), 4);
    }
}
