//! Times the experiment-heavy figure binaries and writes `BENCH_suite.json`
//! at the repo root (or the directory given with `--out DIR`).
//!
//! Each binary runs with `--mixes 4` so the suite finishes in minutes while
//! still exercising the full mix × design fan-out. If a `BENCH_baseline.json`
//! with the same schema exists next to the output (e.g., measured on an
//! older tree), the report includes the combined speedup against it.
//!
//! After timing the standalone binaries, the same figure set runs once
//! through the one-process `suite` binary; the report's `"suite"` section
//! pins its wall-clock, speedup over the summed standalone times, and the
//! shared-cache dedup counts.
//!
//! Usage: `timings [--out DIR] [--threads N]` (`--threads` is forwarded to
//! the figure binaries).

// Wall-clock measurement is this binary's entire purpose; lint.toml's
// [paths].timing_allow sanctions it, and this mirrors that for clippy.
#![allow(clippy::disallowed_methods)]

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use jumanji::core::{AppKind, DesignKind, PlacementInput};
use jumanji::prelude::*;
use jumanji::sim::detail::{run_detailed, DetailOptions};
use jumanji::sim::perf::Profile;
use jumanji::types::{CoreId, VmId};
use jumanji::workloads::LcLoad;
use jumanji_bench::exec::{flag_value, thread_count};

/// The binaries whose wall-clock the suite tracks, in run order.
const SUITE: &[&str] = &[
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "sensitivity",
    "ablation",
];

/// Mix count forwarded to every binary: small enough for a quick suite,
/// large enough to exercise the fan-out.
const SUITE_MIXES: usize = 4;

/// Accesses per application for the single-core detailed-simulator
/// throughput probe — the `validate` binary's scale.
const DETAIL_ACCESSES: usize = 80_000;

/// Measures detailed-simulator throughput (accesses/sec) on one core at
/// `validate` scale: the example placement input, both the S-NUCA and
/// Jumanji allocations, `DETAIL_ACCESSES` accesses per app.
fn detail_throughput() -> (u64, f64) {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let lc = tailbench();
    let batch = spec2006();
    let profiles: Vec<Profile> = input
        .apps
        .iter()
        .enumerate()
        .map(|(i, a)| match a.kind {
            AppKind::LatencyCritical => Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High),
            AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
        })
        .collect();
    let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
    let opts = DetailOptions {
        cfg,
        accesses_per_app: DETAIL_ACCESSES,
        ..DetailOptions::default()
    };
    let allocs = [
        DesignKind::Adaptive.allocate(&input),
        DesignKind::Jumanji.allocate(&input),
    ];
    let total_accesses = (allocs.len() * profiles.len() * DETAIL_ACCESSES) as u64;
    let t = Instant::now();
    for alloc in &allocs {
        let report = run_detailed(&opts, &profiles, &cores, &vms, alloc, &NoopSink);
        assert_eq!(report.apps.len(), profiles.len());
    }
    let secs = t.elapsed().as_secs_f64();
    (total_accesses, total_accesses as f64 / secs)
}

/// Measures the analytic epoch engine: one `case_study_mix(4)` cell run
/// through `Experiment::run` for all five designs on one core. Returns the
/// total interval count and sustained intervals/sec — the number that the
/// incremental, allocation-free epoch loop is supposed to keep high.
fn analytic_throughput() -> (u64, f64) {
    let opts = SimOptions::default();
    let per_run = (opts.duration.as_f64() / opts.reconfig.as_f64()).round() as u64;
    let exp = Experiment::new(case_study_mix(4), LcLoad::High, opts);
    let designs = DesignKind::all();
    const REPS: u64 = 3;
    let t = Instant::now();
    for _ in 0..REPS {
        for &design in &designs {
            let result = exp.run(design, &NoopSink);
            assert!(!result.batch_names.is_empty());
        }
    }
    let secs = t.elapsed().as_secs_f64();
    let intervals = REPS * designs.len() as u64 * per_run;
    (intervals, intervals as f64 / secs)
}

/// Runs the one-process `suite` binary over the whole [`SUITE`] at the
/// same mix/thread settings and returns `(seconds, cells_computed,
/// cells_reused)`. The suite shares one [`CellCache`] across figures, so
/// this wall-clock is the dedup headline the report compares against the
/// summed standalone times.
///
/// [`CellCache`]: jumanji_bench::cell_cache::CellCache
fn suite_timing(bin_dir: &Path, out_dir: &Path, threads: usize) -> (f64, u64, u64) {
    let tsv_dir = out_dir.join("suite_tsv");
    let stats_path = out_dir.join("suite_stats.json");
    let t = Instant::now();
    let status = Command::new(bin_dir.join("suite"))
        .args(["--figures", &SUITE.join(",")])
        .args(["--mixes", &SUITE_MIXES.to_string()])
        .args(["--threads", &threads.to_string()])
        .args(["--out".as_ref(), tsv_dir.as_os_str()])
        .args(["--stats".as_ref(), stats_path.as_os_str()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn suite: {e}"));
    assert!(status.success(), "suite exited with {status}");
    let secs = t.elapsed().as_secs_f64();
    let stats = std::fs::read_to_string(&stats_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", stats_path.display()));
    let computed = read_number(&stats, "\"cells_computed\":").expect("cells_computed") as u64;
    let reused = read_number(&stats, "\"cells_reused\":").expect("cells_reused") as u64;
    let _ = std::fs::remove_dir_all(&tsv_dir);
    let _ = std::fs::remove_file(&stats_path);
    (secs, computed, reused)
}

/// Scheduler A/B measurements over the [`SUITE`] figure set.
struct SchedTiming {
    threads: usize,
    seconds: f64,
    sequential_seconds: f64,
    planned_runs: u64,
    nodes: u64,
    edges: u64,
    steals: u64,
    critical_path_us: u64,
    elapsed_us: u64,
}

/// Runs the `suite` binary over [`SUITE`] twice at a fixed `--threads 4`
/// — once through the work-graph scheduler, once `--sequential` — in
/// separate processes (cold caches both), asserts the TSVs are
/// byte-identical, and returns both wall-clocks plus the scheduler's
/// own stats.
fn sched_timing(bin_dir: &Path, out_dir: &Path) -> SchedTiming {
    const THREADS: usize = 4;
    let run = |mode_dir: &Path, stats: Option<&Path>, sequential: bool| -> f64 {
        let mut cmd = Command::new(bin_dir.join("suite"));
        cmd.args(["--figures", &SUITE.join(",")])
            .args(["--mixes", &SUITE_MIXES.to_string()])
            .args(["--threads", &THREADS.to_string()])
            .args(["--out".as_ref(), mode_dir.as_os_str()]);
        if let Some(stats) = stats {
            cmd.args(["--stats".as_ref(), stats.as_os_str()]);
        }
        if sequential {
            cmd.arg("--sequential");
        }
        let t = Instant::now();
        let status = cmd
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn suite: {e}"));
        assert!(status.success(), "suite exited with {status}");
        t.elapsed().as_secs_f64()
    };

    let sched_dir = out_dir.join("sched_tsv");
    let seq_dir = out_dir.join("sched_seq_tsv");
    let stats_path = out_dir.join("sched_stats.json");
    let seconds = run(&sched_dir, Some(&stats_path), false);
    let sequential_seconds = run(&seq_dir, None, true);
    for name in SUITE {
        let a = std::fs::read(sched_dir.join(format!("{name}.tsv"))).expect("scheduled tsv");
        let b = std::fs::read(seq_dir.join(format!("{name}.tsv"))).expect("sequential tsv");
        assert_eq!(a, b, "{name}: scheduled and sequential TSVs differ");
    }
    let stats = std::fs::read_to_string(&stats_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", stats_path.display()));
    let field = |key: &str| read_number(&stats, key).unwrap_or_else(|| panic!("missing {key}"));
    let timing = SchedTiming {
        threads: THREADS,
        seconds,
        sequential_seconds,
        planned_runs: field("\"planned_runs\":") as u64,
        nodes: field("\"nodes\":") as u64,
        edges: field("\"edges\":") as u64,
        steals: field("\"steals\":") as u64,
        critical_path_us: field("\"critical_path_us\":") as u64,
        elapsed_us: field("\"elapsed_us\":") as u64,
    };
    let _ = std::fs::remove_dir_all(&sched_dir);
    let _ = std::fs::remove_dir_all(&seq_dir);
    let _ = std::fs::remove_file(&stats_path);
    timing
}

/// Persistent-store A/B measurements over the [`SUITE`] figure set.
struct DiskTiming {
    cold_seconds: f64,
    warm_seconds: f64,
    entries_written: u64,
    warm_disk_hits: u64,
}

/// Runs the `suite` binary twice against one fresh `--cache-dir` — a
/// cold run that populates the store, then a warm run in a new process
/// that should serve (nearly) everything from disk — asserts the TSVs
/// are byte-identical, and returns both wall-clocks plus the store's
/// write and hit counts.
fn disk_timing(bin_dir: &Path, out_dir: &Path) -> DiskTiming {
    let cache_dir = out_dir.join("disk_cache_probe");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run = |mode_dir: &Path, stats: &Path| -> f64 {
        let t = Instant::now();
        let status = Command::new(bin_dir.join("suite"))
            .args(["--figures", &SUITE.join(",")])
            .args(["--mixes", &SUITE_MIXES.to_string()])
            .args(["--out".as_ref(), mode_dir.as_os_str()])
            .args(["--stats".as_ref(), stats.as_os_str()])
            .args(["--cache-dir".as_ref(), cache_dir.as_os_str()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn suite: {e}"));
        assert!(status.success(), "suite exited with {status}");
        t.elapsed().as_secs_f64()
    };

    let cold_dir = out_dir.join("disk_cold_tsv");
    let warm_dir = out_dir.join("disk_warm_tsv");
    let cold_stats_path = out_dir.join("disk_cold_stats.json");
    let warm_stats_path = out_dir.join("disk_warm_stats.json");
    let cold_seconds = run(&cold_dir, &cold_stats_path);
    let warm_seconds = run(&warm_dir, &warm_stats_path);
    for name in SUITE {
        let a = std::fs::read(cold_dir.join(format!("{name}.tsv"))).expect("cold tsv");
        let b = std::fs::read(warm_dir.join(format!("{name}.tsv"))).expect("warm tsv");
        assert_eq!(a, b, "{name}: cold and warm TSVs differ");
    }
    let cold_stats = std::fs::read_to_string(&cold_stats_path).expect("cold stats");
    let warm_stats = std::fs::read_to_string(&warm_stats_path).expect("warm stats");
    let entries_written = read_number(&cold_stats, "\"writes\":").expect("cold writes") as u64;
    let warm_disk_hits = read_number(&warm_stats, "\"disk_run_hits\":").expect("warm hits") as u64;
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_file(&cold_stats_path);
    let _ = std::fs::remove_file(&warm_stats_path);
    DiskTiming {
        cold_seconds,
        warm_seconds,
        entries_written,
        warm_disk_hits,
    }
}

/// Detailed-cell store A/B measurements over the fig02 + validate set.
struct DetailCacheTiming {
    cold_seconds: f64,
    warm_seconds: f64,
    entries_written: u64,
    warm_detail_hits: u64,
}

/// The detailed-simulator figures and the settings their probe runs at:
/// equal `--accesses` across both figures, so validate's mix-0 cells
/// dedup against fig02's in the work graph.
const DETAIL_FIGURES: &[&str] = &["fig02", "validate"];
const DETAIL_MIXES: usize = 2;
const DETAIL_CACHE_ACCESSES: usize = 60_000;

/// [`disk_timing`], for the detailed-simulator cells: runs the `suite`
/// binary over fig02 + validate twice against one fresh `--cache-dir`,
/// asserts cold and warm TSVs are byte-identical, and returns both
/// wall-clocks plus the store's write and detail-hit counts.
fn detail_cache_timing(bin_dir: &Path, out_dir: &Path) -> DetailCacheTiming {
    let cache_dir = out_dir.join("detail_cache_probe");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run = |mode_dir: &Path, stats: &Path| -> f64 {
        let t = Instant::now();
        let status = Command::new(bin_dir.join("suite"))
            .args(["--figures", &DETAIL_FIGURES.join(",")])
            .args(["--mixes", &DETAIL_MIXES.to_string()])
            .args(["--accesses", &DETAIL_CACHE_ACCESSES.to_string()])
            .args(["--out".as_ref(), mode_dir.as_os_str()])
            .args(["--stats".as_ref(), stats.as_os_str()])
            .args(["--cache-dir".as_ref(), cache_dir.as_os_str()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn suite: {e}"));
        assert!(status.success(), "suite exited with {status}");
        t.elapsed().as_secs_f64()
    };

    let cold_dir = out_dir.join("detail_cold_tsv");
    let warm_dir = out_dir.join("detail_warm_tsv");
    let cold_stats_path = out_dir.join("detail_cold_stats.json");
    let warm_stats_path = out_dir.join("detail_warm_stats.json");
    let cold_seconds = run(&cold_dir, &cold_stats_path);
    let warm_seconds = run(&warm_dir, &warm_stats_path);
    for name in DETAIL_FIGURES {
        let a = std::fs::read(cold_dir.join(format!("{name}.tsv"))).expect("cold tsv");
        let b = std::fs::read(warm_dir.join(format!("{name}.tsv"))).expect("warm tsv");
        assert_eq!(a, b, "{name}: cold and warm TSVs differ");
    }
    let cold_stats = std::fs::read_to_string(&cold_stats_path).expect("cold stats");
    let warm_stats = std::fs::read_to_string(&warm_stats_path).expect("warm stats");
    let entries_written = read_number(&cold_stats, "\"writes\":").expect("cold writes") as u64;
    let warm_detail_hits =
        read_number(&warm_stats, "\"detail_disk_hits\":").expect("warm detail hits") as u64;
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_file(&cold_stats_path);
    let _ = std::fs::remove_file(&warm_stats_path);
    DetailCacheTiming {
        cold_seconds,
        warm_seconds,
        entries_written,
        warm_detail_hits,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = flag_value(&args, "--out").map_or_else(|| PathBuf::from("."), PathBuf::from);
    let threads = thread_count();

    let bin_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("binaries live in a directory")
        .to_path_buf();

    let mut rows: Vec<(String, f64)> = Vec::new();
    for name in SUITE {
        let t = Instant::now();
        let status = Command::new(bin_dir.join(name))
            .args(["--mixes", &SUITE_MIXES.to_string()])
            .args(["--threads", &threads.to_string()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert!(status.success(), "{name} exited with {status}");
        let secs = t.elapsed().as_secs_f64();
        eprintln!("{name}: {secs:.2}s");
        rows.push((name.to_string(), secs));
    }
    let total: f64 = rows.iter().map(|(_, s)| s).sum();
    eprintln!("total: {total:.2}s");

    let (suite_secs, cells_computed, cells_reused) = suite_timing(&bin_dir, &out_dir, threads);
    let lookups = cells_computed + cells_reused;
    let reuse_rate = if lookups == 0 {
        0.0
    } else {
        cells_reused as f64 / lookups as f64
    };
    eprintln!(
        "suite: {suite_secs:.2}s ({:.2}x vs summed standalone; {cells_computed} cells computed, \
         {cells_reused} reused)",
        total / suite_secs
    );

    let sched = sched_timing(&bin_dir, &out_dir);
    eprintln!(
        "sched: {:.2}s scheduled vs {:.2}s sequential at {} threads \
         ({:.2}x; {} nodes, {} steals, critical path {:.2}s)",
        sched.seconds,
        sched.sequential_seconds,
        sched.threads,
        sched.sequential_seconds / sched.seconds,
        sched.nodes,
        sched.steals,
        sched.critical_path_us as f64 / 1e6
    );

    let disk = disk_timing(&bin_dir, &out_dir);
    eprintln!(
        "disk cache: {:.2}s cold vs {:.2}s warm ({:.2}x; {} entries written, \
         {} warm disk hits)",
        disk.cold_seconds,
        disk.warm_seconds,
        disk.cold_seconds / disk.warm_seconds,
        disk.entries_written,
        disk.warm_disk_hits
    );

    let detail_cache = detail_cache_timing(&bin_dir, &out_dir);
    eprintln!(
        "detail cache: {:.2}s cold vs {:.2}s warm ({:.2}x; {} entries written, \
         {} warm detail hits)",
        detail_cache.cold_seconds,
        detail_cache.warm_seconds,
        detail_cache.cold_seconds / detail_cache.warm_seconds,
        detail_cache.entries_written,
        detail_cache.warm_detail_hits
    );

    let (detail_accesses, detail_rate) = detail_throughput();
    eprintln!("detail: {detail_rate:.3e} accesses/sec ({detail_accesses} accesses, 1 core)");

    let (analytic_intervals, analytic_rate) = analytic_throughput();
    eprintln!(
        "analytic: {analytic_rate:.0} intervals/sec ({analytic_intervals} intervals, 1 core)"
    );

    let baseline_text = std::fs::read_to_string(out_dir.join("BENCH_baseline.json")).ok();
    let baseline = baseline_text
        .as_deref()
        .and_then(|t| read_number(t, "\"total_seconds\":"));
    let detail_base = baseline_text
        .as_deref()
        .and_then(|t| read_number(t, "\"detail_accesses_per_sec\":"));
    let analytic_base = baseline_text
        .as_deref()
        .and_then(|t| read_number(t, "\"analytic_intervals_per_sec\":"));
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"mixes\": {SUITE_MIXES},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"binaries\": {\n");
    for (i, (name, secs)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"seconds\": {secs:.3} }}{comma}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"detail\": {\n");
    json.push_str(&format!(
        "    \"accesses\": {detail_accesses},\n    \"accesses_per_sec\": {detail_rate:.0}"
    ));
    if let Some(base) = detail_base {
        json.push_str(&format!(
            ",\n    \"baseline_accesses_per_sec\": {base:.0},\n    \"speedup_vs_baseline\": {:.2}",
            detail_rate / base
        ));
        eprintln!("detail speedup vs baseline: {:.2}x", detail_rate / base);
    }
    json.push_str("\n  },\n");
    json.push_str("  \"analytic\": {\n");
    json.push_str(&format!(
        "    \"intervals\": {analytic_intervals},\n    \"intervals_per_sec\": {analytic_rate:.0}"
    ));
    for fig in ["fig13", "fig14"] {
        if let Some((_, secs)) = rows.iter().find(|(name, _)| name == fig) {
            json.push_str(&format!(",\n    \"{fig}_seconds\": {secs:.3}"));
        }
    }
    if let Some(base) = analytic_base {
        json.push_str(&format!(
            ",\n    \"baseline_intervals_per_sec\": {base:.0},\n    \"speedup_vs_baseline\": {:.2}",
            analytic_rate / base
        ));
        eprintln!("analytic speedup vs baseline: {:.2}x", analytic_rate / base);
    }
    json.push_str("\n  },\n");
    json.push_str("  \"suite\": {\n");
    json.push_str(&format!(
        "    \"seconds\": {suite_secs:.3},\n    \"standalone_total_seconds\": {total:.3},\n    \
         \"speedup_vs_standalone\": {:.2},\n    \"dedup_cells_computed\": {cells_computed},\n    \
         \"dedup_cells_reused\": {cells_reused},\n    \"dedup_reuse_rate\": {reuse_rate:.4}\n",
        total / suite_secs
    ));
    json.push_str("  },\n");
    json.push_str("  \"sched\": {\n");
    json.push_str(&format!(
        "    \"threads\": {},\n    \"seconds\": {:.3},\n    \
         \"sequential_seconds\": {:.3},\n    \"speedup_vs_sequential\": {:.2},\n    \
         \"planned_runs\": {},\n    \"nodes\": {},\n    \"edges\": {},\n    \
         \"steals\": {},\n    \"critical_path_us\": {},\n    \"elapsed_us\": {}\n",
        sched.threads,
        sched.seconds,
        sched.sequential_seconds,
        sched.sequential_seconds / sched.seconds,
        sched.planned_runs,
        sched.nodes,
        sched.edges,
        sched.steals,
        sched.critical_path_us,
        sched.elapsed_us
    ));
    json.push_str("  },\n");
    json.push_str("  \"disk_cache\": {\n");
    json.push_str(&format!(
        "    \"cold_seconds\": {:.3},\n    \"warm_seconds\": {:.3},\n    \
         \"speedup_warm_vs_cold\": {:.2},\n    \"entries_written\": {},\n    \
         \"warm_disk_hits\": {}\n",
        disk.cold_seconds,
        disk.warm_seconds,
        disk.cold_seconds / disk.warm_seconds,
        disk.entries_written,
        disk.warm_disk_hits
    ));
    json.push_str("  },\n");
    json.push_str("  \"detail_cache\": {\n");
    json.push_str(&format!(
        "    \"figures\": \"{}\",\n    \"accesses\": {DETAIL_CACHE_ACCESSES},\n    \
         \"cold_seconds\": {:.3},\n    \"warm_seconds\": {:.3},\n    \
         \"speedup_warm_vs_cold\": {:.2},\n    \"entries_written\": {},\n    \
         \"warm_detail_hits\": {}\n",
        DETAIL_FIGURES.join(","),
        detail_cache.cold_seconds,
        detail_cache.warm_seconds,
        detail_cache.cold_seconds / detail_cache.warm_seconds,
        detail_cache.entries_written,
        detail_cache.warm_detail_hits
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_seconds\": {total:.3}"));
    if let Some(base_total) = baseline {
        json.push_str(&format!(
            ",\n  \"baseline_total_seconds\": {base_total:.3},\n  \"speedup_vs_baseline\": {:.2}",
            base_total / total
        ));
        eprintln!("speedup vs baseline: {:.2}x", base_total / total);
    }
    json.push_str("\n}\n");

    let out_path = out_dir.join("BENCH_suite.json");
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
    f.write_all(json.as_bytes()).expect("write suite report");
    eprintln!("wrote {}", out_path.display());
}

/// Pulls one numeric field out of a baseline report.
///
/// The file is our own schema, so a full JSON parser would be overkill
/// (and the container bakes in no JSON crate): scan for the key and parse
/// the number after the colon.
fn read_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == ' ' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
