// Fixture: default-hasher violations (not compiled; linted by --self-test).
use std::collections::{HashMap, HashSet};

pub fn build() {
    let a = HashMap::new();
    let b: HashMap<u32, String> = HashMap::with_capacity(8);
    let c: HashSet<u64> = HashSet::from([1, 2]);
    let ok: HashMap<u32, u32, Mix64Build> = HashMap::default();
    let _ = (a, b, c, ok);
}
