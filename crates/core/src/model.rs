//! Inputs to the placement algorithms: per-application models and the
//! full placement problem.

use nuca_cache::MissCurve;
use nuca_types::{AppId, BankId, CoreId, SystemConfig, VmId};
use std::sync::Arc;

/// Whether an application is latency-critical or batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Has a tail-latency deadline; sized by the feedback controller.
    LatencyCritical,
    /// Throughput-oriented; sized by utility (Lookahead).
    Batch,
}

/// Everything a placement algorithm knows about one application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppModel {
    /// Application id (also its virtual-cache id).
    pub id: AppId,
    /// Trust domain.
    pub vm: VmId,
    /// The core the application is pinned to.
    pub core: CoreId,
    /// Latency-critical or batch.
    pub kind: AppKind,
    /// Absolute miss-rate curve (misses per second) vs. capacity, already
    /// convex-hulled for DRRIP, with `unit_bytes` equal to one way of one
    /// bank.
    pub curve: MissCurve,
    /// LLC accesses per second the application generates.
    pub access_rate: f64,
}

/// One placement problem: the applications, their controller-assigned LC
/// sizes, and the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementInput {
    /// System configuration (bank sizes, mesh, ways). Shared by reference
    /// so the interval loop can rebuild inputs without copying the config
    /// (and so clones of the input are cheap).
    pub cfg: Arc<SystemConfig>,
    /// Applications indexed by `AppId`.
    pub apps: Vec<AppModel>,
    /// Feedback-controller target size in bytes for each LC app
    /// (`lc_sizes[app.id]`; ignored entries for batch apps are 0).
    pub lc_sizes: Vec<f64>,
}

impl PlacementInput {
    /// Number of applications.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Number of distinct VMs (assumes contiguous VM ids starting at 0).
    pub fn num_vms(&self) -> usize {
        self.apps
            .iter()
            .map(|a| a.vm.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The LC size for `app` in bytes (0 for batch apps).
    pub fn lc_size(&self, app: AppId) -> f64 {
        self.lc_sizes.get(app.index()).copied().unwrap_or(0.0)
    }

    /// Applications in VM `vm`.
    pub fn vm_apps(&self, vm: VmId) -> impl Iterator<Item = &AppModel> {
        self.apps.iter().filter(move |a| a.vm == vm)
    }

    /// The capacity of one allocation unit (one way of one bank).
    pub fn unit_bytes(&self) -> u64 {
        self.cfg.llc.way_bytes()
    }

    /// Total LLC units (ways × banks).
    pub fn total_units(&self) -> usize {
        self.cfg.llc.total_ways() as usize
    }

    /// Banks of the machine in id order.
    pub fn banks(&self) -> impl Iterator<Item = BankId> {
        (0..self.cfg.llc.num_banks).map(BankId)
    }

    /// A 128-bit content fingerprint of the whole placement problem —
    /// config, every app model (ids, cores, curves bit-for-bit), and the
    /// controller-assigned LC sizes.
    ///
    /// Two inputs share a key exactly when a placement algorithm would see
    /// the same problem, which is what makes memoizing `allocate` results
    /// across figures sound. Debug formatting is the serialization: it
    /// prints every field (including each `f64` with full precision via
    /// `{:?}`), so any change to the input changes the key.
    pub fn content_key(&self) -> u128 {
        nuca_types::hash::fingerprint128(format!("{self:?}").as_bytes())
    }

    /// A small synthetic 4-VM input for documentation examples and tests:
    /// one latency-critical and four batch applications per VM, on the
    /// paper's quadrant layout.
    pub fn example(cfg: &SystemConfig) -> PlacementInput {
        let unit = cfg.llc.way_bytes();
        let units = cfg.llc.total_ways() as usize;
        let quadrant_cores: [[usize; 5]; 4] = [
            [0, 1, 5, 6, 2],
            [4, 3, 9, 8, 7],
            [15, 16, 10, 11, 12],
            [19, 18, 14, 13, 17],
        ];
        let mut apps = Vec::new();
        let mut lc_sizes = Vec::new();
        for (vm, cores) in quadrant_cores.iter().enumerate() {
            for (i, &core) in cores.iter().enumerate() {
                let id = AppId(apps.len());
                let kind = if i == 0 {
                    AppKind::LatencyCritical
                } else {
                    AppKind::Batch
                };
                // Simple convex synthetic curves: LC apps are low-traffic,
                // batch apps higher-traffic with varied working sets.
                let (rate, scale, ws_units) = match kind {
                    AppKind::LatencyCritical => (2e6, 1e6, 60.0 + 10.0 * vm as f64),
                    AppKind::Batch => (2e7, 1e7, 30.0 + 25.0 * i as f64),
                };
                let points: Vec<f64> = (0..=units)
                    .map(|u| scale / (1.0 + u as f64 / ws_units))
                    .collect();
                apps.push(AppModel {
                    id,
                    vm: VmId(vm),
                    core: CoreId(core),
                    kind,
                    curve: MissCurve::new(unit, points),
                    access_rate: rate,
                });
                lc_sizes.push(if kind == AppKind::LatencyCritical {
                    2.0 * 1024.0 * 1024.0
                } else {
                    0.0
                });
            }
        }
        PlacementInput {
            cfg: Arc::new(cfg.clone()),
            apps,
            lc_sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_input_is_well_formed() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        assert_eq!(input.num_apps(), 20);
        assert_eq!(input.num_vms(), 4);
        assert_eq!(input.total_units(), 640);
        assert_eq!(input.unit_bytes(), 32 * 1024);
        let lc_count = input
            .apps
            .iter()
            .filter(|a| a.kind == AppKind::LatencyCritical)
            .count();
        assert_eq!(lc_count, 4);
        for a in &input.apps {
            assert_eq!(a.curve.unit_bytes(), input.unit_bytes());
            assert_eq!(a.curve.max_units(), 640);
        }
    }

    #[test]
    fn lc_sizes_only_for_lc_apps() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        for a in &input.apps {
            match a.kind {
                AppKind::LatencyCritical => assert!(input.lc_size(a.id) > 0.0),
                AppKind::Batch => assert_eq!(input.lc_size(a.id), 0.0),
            }
        }
        assert_eq!(input.lc_size(AppId(999)), 0.0);
    }

    #[test]
    fn content_key_is_stable_and_input_sensitive() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        assert_eq!(input.content_key(), input.content_key());
        assert_eq!(input.clone().content_key(), input.content_key());

        let mut moved = input.clone();
        moved.apps[3].core = CoreId(19);
        assert_ne!(moved.content_key(), input.content_key());

        let mut resized = input.clone();
        resized.lc_sizes[0] += 1.0;
        assert_ne!(resized.content_key(), input.content_key());
    }

    #[test]
    fn vm_apps_filters_by_vm() {
        let cfg = SystemConfig::micro2020();
        let input = PlacementInput::example(&cfg);
        assert_eq!(input.vm_apps(VmId(2)).count(), 5);
    }
}
