//! Cross-validation of the two simulator layers: for each application,
//! the analytic epoch model's miss ratio and hop distance vs. the
//! detailed execution-driven simulation of the same allocation.

use crate::cell_cache::CellCache;
use crate::exec::parallel_map_traced;
use crate::spec::ExperimentSpec;
use jumanji::core::AppKind;
use jumanji::prelude::*;
use jumanji::sim::detail::{DetailOptions, DetailReport};
use jumanji::sim::perf::{evaluate, AppPerf, Profile};
use jumanji::types::{CoreId, Error, VmId};
use std::io::Write;
use std::sync::Arc;

/// The two designs validate cross-checks (shared with the plan pass).
pub(crate) const DESIGNS: [DesignKind; 2] = [DesignKind::Adaptive, DesignKind::Jumanji];

/// Builds the profile list for one mix by rotating the LC and batch
/// rosters; mix 0 is the canonical assignment the seed tree used.
/// Shared with the plan pass, which must name the exact same cells.
pub(crate) fn profiles_for_mix(input: &PlacementInput, mix: usize) -> Vec<Profile> {
    let lc = tailbench();
    let batch = spec2006();
    input
        .apps
        .iter()
        .enumerate()
        .map(|(i, a)| match a.kind {
            AppKind::LatencyCritical => Profile::Lc(lc[(i + mix) % lc.len()].clone(), LcLoad::High),
            AppKind::Batch => Profile::Batch(batch[(i + 2 * mix) % batch.len()].clone()),
        })
        .collect()
}

/// The detailed-run options for one validate mix: per-cell seeds derive
/// from the mix index alone, so output is byte-identical at any thread
/// count. Shared with the plan pass.
pub(crate) fn detail_opts(cfg: &SystemConfig, accesses: usize, mix: usize) -> DetailOptions {
    DetailOptions {
        cfg: cfg.clone(),
        accesses_per_app: accesses,
        seed: DetailOptions::default().seed ^ (mix as u64).wrapping_mul(0x9E37_79B9),
        ..DetailOptions::default()
    }
}

struct Cell {
    design: DesignKind,
    mix: usize,
    profiles: Vec<Profile>,
    analytic: Vec<AppPerf>,
    detail: Arc<DetailReport>,
    isolated: bool,
}

/// Analytic-vs-detailed cross-validation over `(design, mix)` cells.
///
/// Cells are independent, so they fan out across the worker pool;
/// per-cell seeds derive from the mix index alone, so output is
/// byte-identical at any thread count.
pub fn validate(
    spec: &ExperimentSpec,
    tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let mixes = spec.mixes;
    let accesses = spec.accesses;
    let threads = spec.threads;

    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();

    // One cell per (design, mix); index = design * mixes + mix.
    let cells = parallel_map_traced(DESIGNS.len() * mixes, threads, tel, |idx| {
        let design = DESIGNS[idx / mixes];
        let mix = idx % mixes;
        let profiles = profiles_for_mix(&input, mix);
        let rates: Vec<f64> = profiles
            .iter()
            .map(|p| match p {
                Profile::Batch(b) => 1.5e9 * b.llc_apki / 1000.0,
                Profile::Lc(l, load) => l.qps(*load) * l.accesses_per_req,
            })
            .collect();
        let alloc = CellCache::global().allocate(design, &input);
        let analytic = evaluate(&cfg, &profiles, &cores, &alloc, &rates);
        let opts = detail_opts(&cfg, accesses, mix);
        let detail = CellCache::global().run_detail(&opts, &profiles, &cores, &vms, &alloc, tel);
        let isolated = detail.vm_isolated(&vms);
        Cell {
            design,
            mix,
            profiles,
            analytic,
            detail,
            isolated,
        }
    });

    writeln!(
        out,
        "# Analytic vs detailed simulation, per app, {mixes} mixes, two designs"
    )?;
    writeln!(
        out,
        "design\tmix\tapp\tcap_mb\tmr_analytic\tmr_detailed\thops_analytic\thops_detailed"
    )?;
    for cell in &cells {
        for i in 0..cell.profiles.len() {
            writeln!(
                out,
                "{}\t{}\t{}\t{:.2}\t{:.3}\t{:.3}\t{:.2}\t{:.2}",
                cell.design,
                cell.mix,
                cell.profiles[i].name(),
                cell.analytic[i].capacity_bytes / 1048576.0,
                cell.analytic[i].miss_ratio,
                cell.detail.apps[i].miss_ratio(),
                cell.analytic[i].avg_hops,
                cell.detail.apps[i].avg_hops(),
            )?;
        }
        writeln!(
            out,
            "# {} mix {}: VM-isolated in real cache state: {}",
            cell.design, cell.mix, cell.isolated
        )?;
    }
    writeln!(
        out,
        "# expected: columns agree within coarse tolerance; Jumanji isolated, Adaptive not."
    )?;
    Ok(())
}
