//! Virtual caches: placement descriptors, the virtual-cache translation
//! buffer (VTB), page→VC mapping, and the coherence cost of moving data.
//!
//! Jumanji reuses Jigsaw's single-lookup D-NUCA hardware (Sec. IV-A): every
//! page belongs to a *virtual cache* (VC, one per application here), and
//! each core's [`Vtb`] maps a VC id to a [`PlacementDescriptor`] — a
//! 128-entry array of bank ids. An address is hashed to pick a descriptor
//! entry, which names the unique LLC bank holding that address. Software
//! controls placement simply by rewriting descriptor entries.
//!
//! # Examples
//!
//! ```
//! use nuca_vc::{PlacementDescriptor, Vtb};
//! use nuca_types::{AppId, BankId};
//!
//! // Place a VC 75% in bank 2 and 25% in bank 3.
//! let desc = PlacementDescriptor::from_shares(&[(BankId(2), 0.75), (BankId(3), 0.25)]);
//! let mut vtb = Vtb::new();
//! vtb.install(AppId(0), desc);
//! let bank = vtb.lookup(AppId(0), 0xABCD);
//! assert!(bank == BankId(2) || bank == BankId(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nuca_types::hash::mix64;
use nuca_types::{AppId, BankId, PageId};

/// Number of entries in a placement descriptor (matches the paper's
/// 128-entry array, Fig. 7).
pub const DESCRIPTOR_ENTRIES: usize = 128;

/// Cache lines per page (4 KB pages of 64 B lines). Single-lookup D-NUCAs
/// place data at page granularity (Sec. II-A), so every line of a page
/// lives in the same bank.
pub const PAGE_LINES: u64 = 64;

/// The page containing a line address.
///
/// # Examples
///
/// ```
/// use nuca_vc::{page_of_line, PAGE_LINES};
/// use nuca_types::PageId;
/// assert_eq!(page_of_line(0), PageId(0));
/// assert_eq!(page_of_line(PAGE_LINES), PageId(1));
/// ```
#[inline]
pub fn page_of_line(line: u64) -> PageId {
    PageId((line / PAGE_LINES) as usize)
}

/// A 128-entry array of bank ids controlling where one virtual cache's
/// lines live.
///
/// The fraction of the VC's data in bank *b* equals the fraction of
/// descriptor entries naming *b* (the address hash is uniform).
///
/// Entries are stored as single bytes so a whole descriptor occupies two
/// cache lines (the hardware's 128 × 7-bit SRAM row, Fig. 7) — a
/// [`Vtb::lookup`] on the simulator hot path touches one line, not
/// sixteen. Bank ids must therefore fit in a byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementDescriptor {
    entries: [u8; DESCRIPTOR_ENTRIES],
}

/// Narrows a bank id to the descriptor's byte-wide entry storage.
#[inline]
fn entry_of(b: BankId) -> u8 {
    debug_assert!(
        b.index() <= u8::MAX as usize,
        "descriptor entries are byte-wide; bank ids must be < 256"
    );
    b.index() as u8
}

impl PlacementDescriptor {
    /// A descriptor striping data uniformly over `num_banks` banks —
    /// S-NUCA behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks == 0`.
    pub fn uniform(num_banks: usize) -> PlacementDescriptor {
        assert!(num_banks > 0, "need at least one bank");
        let mut entries = [0u8; DESCRIPTOR_ENTRIES];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = entry_of(BankId(i % num_banks));
        }
        PlacementDescriptor { entries }
    }

    /// Builds a descriptor whose per-bank entry counts approximate the
    /// given capacity shares (largest-remainder apportionment).
    ///
    /// Shares need not sum to one; they are normalized. Banks with zero
    /// share receive no entries.
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty or all weights are zero/negative.
    pub fn from_shares(shares: &[(BankId, f64)]) -> PlacementDescriptor {
        let total: f64 = shares.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "placement shares must have positive total");
        // Integer apportionment of 128 entries.
        let mut counts: Vec<(BankId, usize, f64)> = shares
            .iter()
            .filter(|(_, w)| *w > 0.0)
            .map(|&(b, w)| {
                let exact = w / total * DESCRIPTOR_ENTRIES as f64;
                (b, exact.floor() as usize, exact - exact.floor())
            })
            .collect();
        let assigned: usize = counts.iter().map(|c| c.1).sum();
        let mut remaining = DESCRIPTOR_ENTRIES - assigned;
        // Hand out leftovers by largest fractional remainder (ties by bank
        // id for determinism).
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| {
            counts[b]
                .2
                .partial_cmp(&counts[a].2)
                .expect("remainders are finite")
                .then(counts[a].0.cmp(&counts[b].0))
        });
        for idx in order {
            if remaining == 0 {
                break;
            }
            counts[idx].1 += 1;
            remaining -= 1;
        }
        let mut entries = [0u8; DESCRIPTOR_ENTRIES];
        let mut pos = 0;
        for (b, n, _) in &counts {
            for _ in 0..*n {
                entries[pos] = entry_of(*b);
                pos += 1;
            }
        }
        debug_assert_eq!(pos, DESCRIPTOR_ENTRIES);
        // Interleave entries so consecutive hash values don't stick to one
        // bank: permute by a fixed stride coprime to 128.
        let mut interleaved = [0u8; DESCRIPTOR_ENTRIES];
        for (i, e) in entries.iter().enumerate() {
            interleaved[(i * 37) % DESCRIPTOR_ENTRIES] = *e;
        }
        PlacementDescriptor {
            entries: interleaved,
        }
    }

    /// The bank holding `line` under this descriptor.
    ///
    /// Placement is page-granular (Sec. II-A): the descriptor entry is
    /// selected by hashing the line's *page*, so all 64 lines of a page
    /// map to the same bank.
    #[inline]
    pub fn bank_for(&self, line: u64) -> BankId {
        self.bank_for_page(page_of_line(line))
    }

    /// The bank holding `page` under this descriptor.
    #[inline]
    pub fn bank_for_page(&self, page: PageId) -> BankId {
        BankId(
            self.entries[(mix64(page.index() as u64) % DESCRIPTOR_ENTRIES as u64) as usize]
                as usize,
        )
    }

    /// Per-bank capacity shares implied by the descriptor, in ascending
    /// bank order.
    ///
    /// Deterministic by construction (a dense per-bank count, walked in
    /// bank order) and allocation-light: one count vector sized by the
    /// largest bank id plus the output — no intermediate hash map.
    pub fn shares(&self) -> Vec<(BankId, f64)> {
        let max_bank = *self
            .entries
            .iter()
            .max()
            .expect("descriptor is never empty") as usize;
        let mut counts = vec![0u16; max_bank + 1];
        for &e in &self.entries {
            counts[e as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (BankId(b), f64::from(n) / DESCRIPTOR_ENTRIES as f64))
            .collect()
    }

    /// The set of banks with at least one entry.
    pub fn banks(&self) -> Vec<BankId> {
        let mut v: Vec<BankId> = self.entries.iter().map(|&e| BankId(e as usize)).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Fraction of descriptor entries that map to a different bank in
    /// `other` — the fraction of the VC's lines that must be invalidated
    /// and re-fetched after reconfiguration (the background walk of
    /// Sec. IV-A "Coherence").
    pub fn moved_fraction(&self, other: &PlacementDescriptor) -> f64 {
        let moved = self
            .entries
            .iter()
            .zip(other.entries.iter())
            .filter(|(a, b)| a != b)
            .count();
        moved as f64 / DESCRIPTOR_ENTRIES as f64
    }
}

/// The per-core virtual-cache translation buffer: VC id → descriptor.
///
/// One VC per application suffices for this paper (Sec. IV-A), so VCs are
/// keyed by [`AppId`] — and since app ids are small dense integers, the
/// table is a plain `Vec` indexed by id. A [`Vtb::lookup`] (one per
/// simulated LLC access) is an array index plus the descriptor's hash,
/// with no hash-map probing in the path — this mirrors the hardware,
/// where the VTB is an SRAM indexed by VC id (Fig. 7).
#[derive(Debug, Clone, Default)]
pub struct Vtb {
    /// Descriptor slots, indexed by `AppId`; `None` = not installed.
    descs: Vec<Option<PlacementDescriptor>>,
    /// Number of `Some` slots.
    installed: usize,
}

impl Vtb {
    /// An empty VTB.
    pub fn new() -> Vtb {
        Vtb::default()
    }

    /// Installs (or replaces) the descriptor for `vc`, returning the
    /// fraction of lines moved relative to the previous descriptor
    /// (1.0 for a fresh install — everything must be fetched anyway).
    pub fn install(&mut self, vc: AppId, desc: PlacementDescriptor) -> f64 {
        let idx = vc.index();
        if self.descs.len() <= idx {
            self.descs.resize(idx + 1, None);
        }
        let moved = match &self.descs[idx] {
            Some(old) => old.moved_fraction(&desc),
            None => {
                self.installed += 1;
                1.0
            }
        };
        self.descs[idx] = Some(desc);
        moved
    }

    /// The bank for `line` in virtual cache `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` has no installed descriptor — accessing an unmapped
    /// VC is a simulator bug.
    #[inline]
    pub fn lookup(&self, vc: AppId, line: u64) -> BankId {
        self.descs
            .get(vc.index())
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no descriptor installed for {vc}"))
            .bank_for(line)
    }

    /// The descriptor for `vc`, if installed.
    pub fn descriptor(&self, vc: AppId) -> Option<&PlacementDescriptor> {
        self.descs.get(vc.index()).and_then(Option::as_ref)
    }

    /// Number of installed descriptors.
    pub fn len(&self) -> usize {
        self.installed
    }

    /// True if no descriptors are installed.
    pub fn is_empty(&self) -> bool {
        self.installed == 0
    }
}

/// A per-core translation lookaside buffer caching page entries (which
/// carry the VC id in this design, Sec. IV-A).
///
/// Fully-associative with true-LRU replacement — small TLBs are built this
/// way, and it keeps the model exact. The implementation is an indexed
/// lookup rather than a recency-ordered list: an open-addressed hash index
/// (power-of-two table, [`mix64`] probe start, backward-shift deletion)
/// maps pages to entry slots, and the slots form an intrusive
/// doubly-linked recency list. A hit is one index probe plus a splice to
/// the MRU end; an eviction unlinks the list head — every operation is
/// O(1), and the hit/miss sequence is identical to the old scan-and-shift
/// list, since the linked list encodes exactly the same recency order.
///
/// # Examples
///
/// ```
/// use nuca_vc::Tlb;
/// use nuca_types::PageId;
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(PageId(1))); // cold miss
/// assert!(tlb.access(PageId(1))); // hit
/// tlb.access(PageId(2));
/// tlb.access(PageId(3)); // evicts page 1 (LRU)
/// assert!(!tlb.access(PageId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// Resident page key per entry slot.
    pages: Vec<u64>,
    /// Intrusive recency list over entry slots (`TLB_NONE` = null).
    prev: Vec<u32>,
    next: Vec<u32>,
    /// LRU end of the list.
    head: u32,
    /// MRU end of the list.
    tail: u32,
    /// Occupied entry slots (they fill in order `0..capacity`).
    len: usize,
    /// Open-addressed index: each table slot packs
    /// `(page key << slot_bits) | entry slot` into one `u64`
    /// (`TLB_EMPTY` = vacant), so a probe is a single load.
    idx: Vec<u64>,
    /// Bit width of the entry-slot field in a packed [`Tlb::idx`] value.
    slot_bits: u32,
    hits: u64,
    misses: u64,
}

/// Vacant index-table slot marker (no page hashes to it: page keys are
/// page numbers, far below `u64::MAX`).
const TLB_EMPTY: u64 = u64::MAX;
/// Null link in the recency list.
const TLB_NONE: u32 = u32::MAX;

impl Tlb {
    /// Creates a TLB with room for `capacity` page entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        // 4x slots keep the probe chains at ~1 even when full.
        let table = (capacity * 4).next_power_of_two();
        let slot_bits = usize::BITS - (capacity - 1).leading_zeros();
        Tlb {
            capacity,
            pages: vec![0; capacity],
            prev: vec![TLB_NONE; capacity],
            next: vec![TLB_NONE; capacity],
            head: TLB_NONE,
            tail: TLB_NONE,
            len: 0,
            idx: vec![TLB_EMPTY; table],
            slot_bits,
            hits: 0,
            misses: 0,
        }
    }

    /// Packs a page key and entry slot into one index value.
    #[inline]
    fn idx_pack(&self, key: u64, slot: u32) -> u64 {
        debug_assert!(
            key.checked_shl(self.slot_bits).map(|v| v >> self.slot_bits) == Some(key),
            "page key too large to pack beside the slot field"
        );
        (key << self.slot_bits) | u64::from(slot)
    }

    /// Entry slot holding `key`, if resident.
    #[inline]
    fn idx_find(&self, key: u64) -> Option<u32> {
        let mask = self.idx.len() - 1;
        let smask = (1u64 << self.slot_bits) - 1;
        let mut i = mix64(key) as usize & mask;
        loop {
            let v = self.idx[i];
            if v >> self.slot_bits == key {
                return Some((v & smask) as u32);
            }
            if v == TLB_EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `key → slot`; the key must not be present.
    fn idx_insert(&mut self, key: u64, slot: u32) {
        let mask = self.idx.len() - 1;
        let mut i = mix64(key) as usize & mask;
        while self.idx[i] != TLB_EMPTY {
            i = (i + 1) & mask;
        }
        self.idx[i] = self.idx_pack(key, slot);
    }

    /// Removes `key` (must be present), backward-shifting displaced
    /// entries so probe chains never need tombstones.
    fn idx_remove(&mut self, key: u64) {
        let mask = self.idx.len() - 1;
        let mut i = mix64(key) as usize & mask;
        while self.idx[i] >> self.slot_bits != key {
            i = (i + 1) & mask;
        }
        let mut j = i;
        loop {
            self.idx[i] = TLB_EMPTY;
            loop {
                j = (j + 1) & mask;
                let v = self.idx[j];
                if v == TLB_EMPTY {
                    return;
                }
                // An entry at `j` may fill the hole at `i` only if its
                // ideal slot does not lie in `(i, j]` — otherwise moving
                // it would break its own probe chain.
                let ideal = mix64(v >> self.slot_bits) as usize & mask;
                if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                    self.idx[i] = v;
                    i = j;
                    break;
                }
            }
        }
    }

    /// Unlinks `slot` from the recency list.
    #[inline]
    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == TLB_NONE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == TLB_NONE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Appends `slot` at the MRU end.
    #[inline]
    fn push_mru(&mut self, slot: u32) {
        self.prev[slot as usize] = self.tail;
        self.next[slot as usize] = TLB_NONE;
        if self.tail == TLB_NONE {
            self.head = slot;
        } else {
            self.next[self.tail as usize] = slot;
        }
        self.tail = slot;
    }

    /// Looks up `page`, filling on a miss; returns whether it hit.
    #[inline]
    pub fn access(&mut self, page: PageId) -> bool {
        let key = page.index() as u64;
        debug_assert!(key != TLB_EMPTY, "the all-ones page id is reserved");
        if let Some(slot) = self.idx_find(key) {
            self.hits += 1;
            if self.tail != slot {
                self.unlink(slot);
                self.push_mru(slot);
            }
            true
        } else {
            self.misses += 1;
            let slot = if self.len < self.capacity {
                let s = self.len as u32;
                self.len += 1;
                s
            } else {
                let victim = self.head;
                self.idx_remove(self.pages[victim as usize]);
                self.unlink(victim);
                victim
            };
            self.pages[slot as usize] = key;
            self.push_mru(slot);
            self.idx_insert(key, slot);
            false
        }
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The OS page table fragment mapping pages to virtual caches.
///
/// In real hardware the VC id rides along in the TLB; the simulator only
/// needs the mapping itself. Stored as a dense open-addressed table
/// (power-of-two capacity, [`mix64`] probe start, linear probing) rather
/// than a `HashMap`: one flat `Vec` of slots, no per-entry boxing, and a
/// deterministic layout. Pages are only ever assigned or re-assigned,
/// never removed, so linear probing needs no tombstones.
#[derive(Debug, Clone, Default)]
pub struct PageMap {
    /// Slot array; `None` = empty. Length is always a power of two (or
    /// zero before the first assignment).
    slots: Vec<Option<(PageId, AppId)>>,
    /// Number of occupied slots.
    len: usize,
}

/// Initial slot count for a fresh [`PageMap`].
const PAGEMAP_INITIAL_SLOTS: usize = 64;

impl PageMap {
    /// An empty page map.
    pub fn new() -> PageMap {
        PageMap::default()
    }

    /// Probe start for `page` in a table of `slots` entries.
    #[inline]
    fn probe_start(page: PageId, slots: usize) -> usize {
        (mix64(page.index() as u64) & (slots as u64 - 1)) as usize
    }

    /// Finds the slot holding `page`, or the empty slot where it belongs.
    #[inline]
    fn slot_of(&self, page: PageId) -> usize {
        debug_assert!(!self.slots.is_empty());
        let cap = self.slots.len();
        let mut i = PageMap::probe_start(page, cap);
        loop {
            match &self.slots[i] {
                Some((p, _)) if *p == page => return i,
                None => return i,
                _ => i = (i + 1) & (cap - 1),
            }
        }
    }

    /// Doubles the table and re-inserts every entry.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(PAGEMAP_INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![None; cap]);
        for entry in old.into_iter().flatten() {
            let slot = self.slot_of(entry.0);
            self.slots[slot] = Some(entry);
        }
    }

    /// Assigns `page` to `vc`, returning the previous owner if any (a page
    /// changing VCs triggers the coherence walk).
    pub fn assign(&mut self, page: PageId, vc: AppId) -> Option<AppId> {
        // Keep the load factor at or below 1/2.
        if self.slots.len() < 2 * (self.len + 1) {
            self.grow();
        }
        let slot = self.slot_of(page);
        match self.slots[slot].replace((page, vc)) {
            Some((_, prev)) => Some(prev),
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// The VC owning `page`, if mapped.
    pub fn vc_of(&self, page: PageId) -> Option<AppId> {
        if self.slots.is_empty() {
            return None;
        }
        self.slots[self.slot_of(page)].map(|(_, vc)| vc)
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_descriptor_stripes_all_banks() {
        let d = PlacementDescriptor::uniform(20);
        let shares = d.shares();
        assert_eq!(shares.len(), 20);
        for (_, s) in &shares {
            // 128/20 is not integral; shares are 6/128 or 7/128.
            assert!(*s >= 6.0 / 128.0 - 1e-12 && *s <= 7.0 / 128.0 + 1e-12);
        }
    }

    #[test]
    fn from_shares_apportions_entries() {
        let d = PlacementDescriptor::from_shares(&[(BankId(1), 0.75), (BankId(2), 0.25)]);
        let shares = d.shares();
        assert_eq!(shares.len(), 2);
        assert!((shares[0].1 - 0.75).abs() <= 1.0 / 128.0);
        assert!((shares[1].1 - 0.25).abs() <= 1.0 / 128.0);
        assert_eq!(d.banks(), vec![BankId(1), BankId(2)]);
    }

    #[test]
    fn from_shares_normalizes_weights() {
        let a = PlacementDescriptor::from_shares(&[(BankId(0), 3.0), (BankId(1), 1.0)]);
        let b = PlacementDescriptor::from_shares(&[(BankId(0), 0.75), (BankId(1), 0.25)]);
        assert_eq!(a.shares(), b.shares());
    }

    #[test]
    fn bank_for_respects_shares_statistically() {
        let d = PlacementDescriptor::from_shares(&[(BankId(5), 0.5), (BankId(9), 0.5)]);
        let mut five = 0;
        let n = 100_000u64;
        for line in 0..n {
            match d.bank_for(line) {
                BankId(5) => five += 1,
                BankId(9) => {}
                other => panic!("unexpected bank {other}"),
            }
        }
        let frac = five as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn moved_fraction_bounds() {
        let a = PlacementDescriptor::uniform(20);
        let b = PlacementDescriptor::uniform(20);
        assert_eq!(a.moved_fraction(&b), 0.0);
        let c = PlacementDescriptor::from_shares(&[(BankId(0), 1.0)]);
        let full = a.moved_fraction(&c);
        assert!(
            full > 0.9,
            "moving everything to one bank relocates most lines"
        );
    }

    #[test]
    fn vtb_install_reports_movement() {
        let mut vtb = Vtb::new();
        let first = vtb.install(AppId(0), PlacementDescriptor::uniform(4));
        assert_eq!(first, 1.0);
        let second = vtb.install(AppId(0), PlacementDescriptor::uniform(4));
        assert_eq!(second, 0.0);
        assert_eq!(vtb.len(), 1);
        assert!(!vtb.is_empty());
    }

    #[test]
    #[should_panic(expected = "no descriptor installed")]
    fn vtb_lookup_unmapped_panics() {
        Vtb::new().lookup(AppId(3), 0);
    }

    /// The old recency-ordered-list TLB, kept as a reference model: MRU at
    /// the front, hits shift to the front, misses evict the back.
    struct ReferenceTlb {
        capacity: usize,
        entries: Vec<PageId>,
    }

    impl ReferenceTlb {
        fn access(&mut self, page: PageId) -> bool {
            if let Some(i) = self.entries.iter().position(|&p| p == page) {
                self.entries.remove(i);
                self.entries.insert(0, page);
                true
            } else {
                if self.entries.len() == self.capacity {
                    self.entries.pop();
                }
                self.entries.insert(0, page);
                false
            }
        }
    }

    /// The detailed simulator's page-locality pattern: mostly re-touches
    /// of a hot page set, with a streaming tail of fresh pages.
    fn page_locality_trace(n: usize) -> Vec<PageId> {
        let mut state = 0x5DEECE66Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..n)
            .map(|i| {
                let r = next();
                if r % 10 < 9 {
                    PageId((r % 96) as usize) // hot region
                } else {
                    PageId(10_000 + i) // streaming cold page
                }
            })
            .collect()
    }

    #[test]
    fn indexed_tlb_matches_reference_lru_hit_miss_sequence() {
        let trace = page_locality_trace(20_000);
        for capacity in [1, 2, 16, 64, 128] {
            let mut tlb = Tlb::new(capacity);
            let mut reference = ReferenceTlb {
                capacity,
                entries: Vec::new(),
            };
            for (i, &p) in trace.iter().enumerate() {
                assert_eq!(
                    tlb.access(p),
                    reference.access(p),
                    "capacity {capacity}: diverged at access {i} (page {p:?})"
                );
            }
            assert!(tlb.hits() > 0 && tlb.misses() > 0, "trace exercises both");
        }
    }

    #[test]
    fn page_map_survives_growth_and_collisions() {
        let mut pm = PageMap::new();
        // Far more pages than the initial table, forcing several doublings
        // and plenty of probe collisions.
        for i in 0..10_000usize {
            assert_eq!(pm.assign(PageId(i * 7919), AppId(i % 20)), None);
        }
        assert_eq!(pm.len(), 10_000);
        for i in 0..10_000usize {
            assert_eq!(pm.vc_of(PageId(i * 7919)), Some(AppId(i % 20)));
        }
        assert_eq!(pm.vc_of(PageId(3)), None);
        // Reassignment reports the old owner and does not change the count.
        assert_eq!(pm.assign(PageId(0), AppId(5)), Some(AppId(0)));
        assert_eq!(pm.len(), 10_000);
    }

    #[test]
    fn page_map_tracks_ownership() {
        let mut pm = PageMap::new();
        assert!(pm.is_empty());
        assert_eq!(pm.assign(PageId(1), AppId(0)), None);
        assert_eq!(pm.assign(PageId(1), AppId(2)), Some(AppId(0)));
        assert_eq!(pm.vc_of(PageId(1)), Some(AppId(2)));
        assert_eq!(pm.vc_of(PageId(9)), None);
        assert_eq!(pm.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn zero_shares_panic() {
        PlacementDescriptor::from_shares(&[(BankId(0), 0.0)]);
    }
}
