//! Shared harness code for the figure-reproduction binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` (`fig02` … `fig18`, `table2`, `table3`, plus the ablation,
//! sensitivity, and validation studies) that regenerates the corresponding
//! rows/series as TSV on stdout. The binaries are thin wrappers: each one
//! is a single [`figure_main`] call, and everything they share lives
//! here —
//!
//! - [`ExperimentSpec`] / [`FigureKind`] ([`spec`]): *what to run*. One
//!   builder covers every figure's knobs (mixes, threads, seed, designs,
//!   detailed-sim accesses, telemetry), with `--flag` > `JUMANJI_*` env >
//!   per-figure default resolution and typed usage errors.
//! - [`figures`]: *how each figure renders*, writing TSV to any
//!   `io::Write`.
//! - The design-matrix engine ([`run_mix`], [`run_matrix`],
//!   [`run_matrices`]): random mixes × designs fanned over a worker pool,
//!   sharing one Static baseline per mix.
//! - [`BoxStats`]: five-number summaries for box-and-whisker rows.
//! - [`exec`]: the deterministic parallel-map engine and its traced
//!   variant.
//!
//! Fallible operations return [`enum@Error`] instead of panicking;
//! [`figure_main`] maps usage errors to exit code 2 and runtime errors
//! to 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell_cache;
pub mod disk_cache;
pub mod exec;
pub mod figures;
pub mod spec;
pub mod suite;

pub use cell_cache::{CellCache, CellCacheStats};
pub use disk_cache::{DiskCache, DiskCacheStats};
pub use spec::{figure_main, run_spec, run_spec_to, ExperimentSpec, FigureKind};

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji::types::Error;
use std::cell::RefCell;

/// Number of random batch mixes per configuration in the paper (Fig. 13).
pub const PAPER_MIXES: usize = 40;

/// Five-number summary for box-and-whisker figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum (lower whisker).
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Maximum (upper whisker).
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary of a non-empty sample.
    ///
    /// Quartiles interpolate between the neighbouring order statistics at
    /// `p·(n-1)`, matching a full sort — but only the handful of ranks the
    /// summary needs are selected (ascending `select_nth_unstable` on
    /// shrinking suffixes of a thread-local scratch buffer), so the cost
    /// is O(n) instead of O(n log n) and the caller's slice is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptySample`] when `values` is empty.
    pub fn of(values: &[f64]) -> Result<BoxStats, Error> {
        if values.is_empty() {
            return Err(Error::empty_sample("box-plot values"));
        }
        thread_local! {
            static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
        }
        let n = values.len();
        // Sorted ranks the summary needs: the extremes plus the floor/ceil
        // neighbours of each quartile position.
        let mut ranks = [0usize; 8];
        ranks[0] = 0;
        ranks[1] = n - 1;
        for (k, p) in [0.25, 0.5, 0.75].into_iter().enumerate() {
            let idx = p * (n - 1) as f64;
            ranks[2 + 2 * k] = idx.floor() as usize;
            ranks[3 + 2 * k] = idx.ceil() as usize;
        }
        ranks.sort_unstable();
        let mut vals = [0.0f64; 8];
        SCRATCH.with(|cell| {
            let mut v = cell.borrow_mut();
            v.clear();
            v.extend_from_slice(values);
            // Ascending selection: once rank r is placed, everything at or
            // before it is ≤ the remaining ranks, so the next selection
            // works on the suffix v[r..].
            let mut base = 0usize;
            for (j, &r) in ranks.iter().enumerate() {
                if j > 0 && ranks[j - 1] == r {
                    vals[j] = vals[j - 1];
                    continue;
                }
                let (_, x, _) = v[base..].select_nth_unstable_by(r - base, |a, b| {
                    a.partial_cmp(b).expect("finite values")
                });
                vals[j] = *x;
                base = r;
            }
        });
        let at = |r: usize| vals[ranks.iter().position(|&x| x == r).expect("rank present")];
        let q = |p: f64| -> f64 {
            let idx = p * (n - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            at(lo) * (1.0 - frac) + at(hi) * frac
        };
        Ok(BoxStats {
            min: at(0),
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: at(n - 1),
        })
    }

    /// TSV fields `min q1 median q3 max`.
    pub fn tsv(&self) -> String {
        format!(
            "{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Result of running one (workload group, load, design) cell of Fig. 13:
/// distributions over mixes.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignCell {
    /// Worst LC normalized tail latency per mix.
    pub norm_tails: Vec<f64>,
    /// Batch weighted speedup vs. Static per mix.
    pub speedups: Vec<f64>,
    /// Mean vulnerability per mix.
    pub vulnerability: Vec<f64>,
    /// Energy components per mix `(l1, l2, llc, noc, mem)`.
    pub energy: Vec<(f64, f64, f64, f64, f64)>,
}

impl DesignCell {
    /// An empty cell with room for `mixes` entries per metric.
    pub fn with_capacity(mixes: usize) -> DesignCell {
        DesignCell {
            norm_tails: Vec::with_capacity(mixes),
            speedups: Vec::with_capacity(mixes),
            vulnerability: Vec::with_capacity(mixes),
            energy: Vec::with_capacity(mixes),
        }
    }

    /// Appends one mix's metrics.
    pub fn push(&mut self, m: &MixMetrics) {
        self.norm_tails.push(m.norm_tail);
        self.speedups.push(m.speedup);
        self.vulnerability.push(m.vulnerability);
        self.energy.push(m.energy);
    }

    /// Geometric-mean speedup over mixes.
    pub fn gmean_speedup(&self) -> f64 {
        gmean(&self.speedups)
    }

    /// Mean vulnerability over mixes.
    pub fn mean_vulnerability(&self) -> f64 {
        self.vulnerability.iter().sum::<f64>() / self.vulnerability.len() as f64
    }
}

/// Metrics of one design on one mix (one column entry of a [`DesignCell`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixMetrics {
    /// Worst LC normalized tail latency.
    pub norm_tail: f64,
    /// Batch weighted speedup vs. the Static baseline.
    pub speedup: f64,
    /// Mean vulnerability.
    pub vulnerability: f64,
    /// Energy per instruction `(l1, l2, llc, noc, mem)`.
    pub energy: (f64, f64, f64, f64, f64),
}

impl MixMetrics {
    fn of(r: &ExperimentResult, baseline: &ExperimentResult) -> MixMetrics {
        let e = r.energy_per_instruction();
        MixMetrics {
            norm_tail: r.max_norm_tail(),
            speedup: r.weighted_speedup_vs(baseline),
            vulnerability: r.vulnerability,
            energy: (e.l1, e.l2, e.llc, e.noc, e.mem),
        }
    }
}

/// Workload selector for a Fig. 13 group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcGroup {
    /// Four instances of the named TailBench server.
    Same(&'static str),
    /// Four random distinct servers per mix.
    Mixed,
}

impl LcGroup {
    /// The six groups of Fig. 13, in plotting order.
    pub fn all() -> [LcGroup; 6] {
        [
            LcGroup::Same("masstree"),
            LcGroup::Same("xapian"),
            LcGroup::Same("img-dnn"),
            LcGroup::Same("silo"),
            LcGroup::Same("moses"),
            LcGroup::Mixed,
        ]
    }

    /// Display label.
    pub fn label(self) -> String {
        match self {
            LcGroup::Same(n) => n.to_string(),
            LcGroup::Mixed => "Mixed".to_string(),
        }
    }

    /// Builds the mix for seed `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownWorkload`] when a [`LcGroup::Same`] name
    /// matches no TailBench server.
    pub fn mix(self, seed: u64) -> Result<WorkloadMix, Error> {
        match self {
            LcGroup::Same(name) => {
                let lc = tailbench()
                    .into_iter()
                    .find(|p| p.name == name)
                    .ok_or_else(|| Error::unknown_workload(name))?;
                Ok(WorkloadMix::uniform_lc(&lc, seed))
            }
            LcGroup::Mixed => Ok(WorkloadMix::mixed_lc(seed)),
        }
    }
}

/// The exact `(mix, options)` inputs a [`run_mix`] call for `seed`
/// simulates — and therefore the content the [`CellCache`] keys its
/// cells under. The suite's plan pass
/// ([`figures::plan`](crate::figures::plan)) uses this to *name* a mix's
/// cells without running them; keeping the derivation in one place
/// guarantees the plan and the render agree byte-for-byte on cache keys.
///
/// # Errors
///
/// Returns [`Error::UnknownWorkload`] when the group names no server.
pub fn mix_cell_inputs(
    group: LcGroup,
    seed: u64,
    opts: &SimOptions,
) -> Result<(WorkloadMix, SimOptions), Error> {
    let mut opts = opts.clone();
    opts.seed ^= seed.wrapping_mul(0x9E37_79B9);
    Ok((group.mix(seed)?, opts))
}

/// Runs every design on one `(group, load)` mix, sharing a single Static
/// baseline run. Returns per-design metrics in `designs` order.
///
/// Seed derivation matches the serial harness exactly
/// (`opts.seed ^ seed · 0x9E37_79B9`), so this is safe to fan out across
/// threads: each mix's RNG streams depend only on its own seed.
///
/// Every run (including the Static baseline) goes through
/// [`Experiment::run`] with `tel`, so an enabled sink sees the
/// per-interval controller and allocation events of the whole matrix.
///
/// # Errors
///
/// Returns [`Error::UnknownWorkload`] when the group names no server.
pub fn run_mix(
    group: LcGroup,
    load: LcLoad,
    designs: &[DesignKind],
    seed: u64,
    opts: &SimOptions,
    tel: &dyn Telemetry,
) -> Result<Vec<MixMetrics>, Error> {
    run_mix_with(CellCache::global(), group, load, designs, seed, opts, tel)
}

/// [`run_mix`] against an explicit [`CellCache`] (the public entry point
/// uses the process-wide one). Identical cells — same group, load, seed,
/// options, and design — are simulated once per process and reused by
/// every figure that asks for them.
///
/// # Errors
///
/// Returns [`Error::UnknownWorkload`] when the group names no server.
pub fn run_mix_with(
    cache: &CellCache,
    group: LcGroup,
    load: LcLoad,
    designs: &[DesignKind],
    seed: u64,
    opts: &SimOptions,
    tel: &dyn Telemetry,
) -> Result<Vec<MixMetrics>, Error> {
    let (mix, opts) = mix_cell_inputs(group, seed, opts)?;
    let exp = cache.experiment(mix, load, opts);
    let baseline = cache.run(&exp, DesignKind::Static, tel);
    Ok(designs
        .iter()
        .map(|&design| {
            if design == DesignKind::Static {
                MixMetrics::of(&baseline, &baseline)
            } else {
                MixMetrics::of(&cache.run(&exp, design, tel), &baseline)
            }
        })
        .collect())
}

/// Runs `design` and the Static baseline over `mixes` random mixes of one
/// workload group at one load, collecting the Fig. 13 distributions.
///
/// # Errors
///
/// Propagates [`run_mix`] errors.
pub fn run_cell(
    group: LcGroup,
    load: LcLoad,
    design: DesignKind,
    mixes: usize,
    opts: &SimOptions,
    threads: usize,
    tel: &dyn Telemetry,
) -> Result<DesignCell, Error> {
    Ok(
        run_matrix(group, load, &[design], mixes, opts, threads, tel)?
            .pop()
            .expect("one design in, one cell out"),
    )
}

/// Runs every design (plus baseline) over mixes, returning per-design
/// cells in `designs` order — shares the Static baseline across designs
/// and fans mixes across `threads` workers (`1` = reference serial order;
/// any other count produces identical results).
///
/// # Errors
///
/// Propagates [`run_mix`] errors.
pub fn run_matrix(
    group: LcGroup,
    load: LcLoad,
    designs: &[DesignKind],
    mixes: usize,
    opts: &SimOptions,
    threads: usize,
    tel: &dyn Telemetry,
) -> Result<Vec<DesignCell>, Error> {
    let per_mix = exec::parallel_map_traced(mixes, threads, tel, |seed| {
        run_mix(group, load, designs, seed as u64, opts, tel)
    });
    let per_mix: Vec<Vec<MixMetrics>> = per_mix.into_iter().collect::<Result<_, _>>()?;
    Ok(collect_cells(designs.len(), mixes, &per_mix))
}

/// Runs a whole batch of `(group, load)` matrices in one thread-pool
/// fan-out, so parallelism spans cells as well as mixes (a figure run with
/// `--mixes 4` still keeps every worker busy). Returns one `Vec<DesignCell>`
/// per input matrix, in order, each identical to a [`run_matrix`] call.
///
/// # Errors
///
/// Propagates [`run_mix`] errors.
pub fn run_matrices(
    matrices: &[(LcGroup, LcLoad)],
    designs: &[DesignKind],
    mixes: usize,
    opts: &SimOptions,
    threads: usize,
    tel: &dyn Telemetry,
) -> Result<Vec<Vec<DesignCell>>, Error> {
    let per_job = exec::parallel_map_traced(matrices.len() * mixes, threads, tel, |i| {
        let (group, load) = matrices[i / mixes];
        run_mix(group, load, designs, (i % mixes) as u64, opts, tel)
    });
    let per_job: Vec<Vec<MixMetrics>> = per_job.into_iter().collect::<Result<_, _>>()?;
    Ok(per_job
        .chunks(mixes)
        .map(|chunk| collect_cells(designs.len(), mixes, chunk))
        .collect())
}

/// Transposes per-mix metric rows into per-design cells.
fn collect_cells(designs: usize, mixes: usize, per_mix: &[Vec<MixMetrics>]) -> Vec<DesignCell> {
    let mut cells: Vec<DesignCell> = (0..designs)
        .map(|_| DesignCell::with_capacity(mixes))
        .collect();
    for row in per_mix {
        for (cell, m) in cells.iter_mut().zip(row) {
            cell.push(m);
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji::telemetry::RecordingSink;

    #[test]
    fn box_stats_quartiles() {
        let s = BoxStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("non-empty");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn box_stats_matches_full_sort_reference() {
        // The selection-based quantiles must agree with the old
        // sort-everything implementation on awkward sizes (1, 2, ties,
        // interpolated quartiles).
        let samples: Vec<Vec<f64>> = vec![
            vec![7.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0, 2.0, 2.0],
            vec![0.5, 9.0, 3.25, 3.25, 3.25, 1.0, 8.0],
            (0..97).map(|i| ((i * 31) % 89) as f64 * 0.125).collect(),
        ];
        for values in samples {
            let got = BoxStats::of(&values).expect("non-empty");
            let mut v = values.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let q = |p: f64| -> f64 {
                let idx = p * (v.len() - 1) as f64;
                let lo = idx.floor() as usize;
                let hi = idx.ceil() as usize;
                let frac = idx - lo as f64;
                v[lo] * (1.0 - frac) + v[hi] * frac
            };
            assert_eq!(got.min, v[0], "{values:?}");
            assert_eq!(got.q1, q(0.25), "{values:?}");
            assert_eq!(got.median, q(0.5), "{values:?}");
            assert_eq!(got.q3, q(0.75), "{values:?}");
            assert_eq!(got.max, v[v.len() - 1], "{values:?}");
        }
    }

    #[test]
    fn box_stats_rejects_empty_sample() {
        let err = BoxStats::of(&[]).expect_err("empty must fail");
        assert!(!err.is_usage());
        assert!(err.to_string().contains("empty sample"));
    }

    #[test]
    fn groups_enumerate_the_paper_order() {
        let labels: Vec<String> = LcGroup::all().iter().map(|g| g.label()).collect();
        assert_eq!(
            labels,
            vec!["masstree", "xapian", "img-dnn", "silo", "moses", "Mixed"]
        );
    }

    #[test]
    fn unknown_workload_is_a_typed_usage_error() {
        let err = LcGroup::Same("nonesuch").mix(0).expect_err("must fail");
        assert!(err.is_usage());
        assert!(err.to_string().contains("nonesuch"));
    }

    fn quick_opts() -> SimOptions {
        SimOptions {
            duration: jumanji::types::Seconds(0.5),
            ..SimOptions::default()
        }
    }

    #[test]
    fn parallel_matrix_matches_serial_exactly() {
        // The engine must be a pure wall-clock optimization: same seeds,
        // same results, bit for bit, at any worker count.
        let designs = [DesignKind::Static, DesignKind::Jigsaw, DesignKind::Jumanji];
        let serial = run_matrix(
            LcGroup::Same("xapian"),
            LcLoad::High,
            &designs,
            2,
            &quick_opts(),
            1,
            &NoopSink,
        )
        .expect("known workload");
        let parallel = run_matrix(
            LcGroup::Same("xapian"),
            LcLoad::High,
            &designs,
            2,
            &quick_opts(),
            4,
            &NoopSink,
        )
        .expect("known workload");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn traced_matrix_matches_untraced_and_emits_controller_events() {
        let designs = [DesignKind::Jumanji];
        let plain = run_matrix(
            LcGroup::Mixed,
            LcLoad::High,
            &designs,
            1,
            &quick_opts(),
            1,
            &NoopSink,
        )
        .expect("mixed group");
        let sink = RecordingSink::new();
        let traced = run_matrix(
            LcGroup::Mixed,
            LcLoad::High,
            &designs,
            1,
            &quick_opts(),
            1,
            &sink,
        )
        .expect("mixed group");
        assert_eq!(plain, traced, "tracing must not perturb results");
        let events = sink.events();
        // Baseline + Jumanji, 5 intervals each, 4 LC apps.
        let controllers = events
            .iter()
            .filter(|e| matches!(e, Event::Controller { .. }))
            .count();
        assert_eq!(controllers, 2 * 5 * 4);
        let summaries = events
            .iter()
            .filter(|e| matches!(e, Event::RunSummary { .. }))
            .count();
        assert_eq!(summaries, 2);
        let spans = events
            .iter()
            .filter(|e| matches!(e, Event::WorkerSpan { .. }))
            .count();
        assert_eq!(spans, 1, "one parallel-map job");
    }

    #[test]
    fn run_matrices_matches_individual_matrices() {
        let designs = [DesignKind::Static, DesignKind::Jumanji];
        let matrices = [
            (LcGroup::Same("silo"), LcLoad::Low),
            (LcGroup::Mixed, LcLoad::High),
        ];
        let batched = run_matrices(&matrices, &designs, 2, &quick_opts(), 4, &NoopSink)
            .expect("known workloads");
        for ((group, load), cells) in matrices.iter().zip(&batched) {
            let single = run_matrix(*group, *load, &designs, 2, &quick_opts(), 1, &NoopSink)
                .expect("known workloads");
            assert_eq!(*cells, single);
        }
    }

    #[test]
    fn cached_mix_matches_uncached_and_dedups_repeats() {
        let designs = [DesignKind::Static, DesignKind::Jigsaw, DesignKind::Jumanji];
        let cached = CellCache::new();
        let uncached = CellCache::new();
        uncached.set_enabled(false);
        let run = |cache: &CellCache| {
            run_mix_with(
                cache,
                LcGroup::Same("moses"),
                LcLoad::High,
                &designs,
                1,
                &quick_opts(),
                &NoopSink,
            )
            .expect("known workload")
        };
        assert_eq!(
            run(&cached),
            run(&uncached),
            "cache must not change results"
        );
        // Second pass over the same cell: everything served from cache.
        assert_eq!(run(&cached), run(&cached));
        let s = cached.stats();
        assert_eq!(s.experiments.misses, 1, "one experiment construction");
        // Handles are lazy: later designs share the first force's
        // OnceLock and warm passes never force at all, so the
        // experiments map records no further traffic.
        assert_eq!(s.experiments.hits, 0);
        // Static baseline + 2 non-static designs, computed once each.
        assert_eq!(s.runs.misses, 3);
        assert_eq!(s.runs.hits, 6);
        assert_eq!(uncached.stats().runs.entries, 0);
    }
}
