// Fixture: env-var violation outside the config surface (not compiled).
pub fn knob() -> Option<String> {
    std::env::var("JUMANJI_THREADS").ok()
}

pub fn benign() -> Option<String> {
    std::env::var("PATH").ok()
}
