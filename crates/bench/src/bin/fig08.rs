//! Fig. 8: xapian's tail (95th-percentile) latency vs. its LLC allocation,
//! with way-partitioning (S-NUCA) and with the allocation reserved in the
//! closest banks (D-NUCA). Run in isolation at high load.

use jumanji::cache::analytic::assoc_penalty;
use jumanji::noc::MeshNoc;
use jumanji::prelude::*;
use jumanji::sim::metrics::percentile;
use jumanji::sim::queueing::LcQueue;
use jumanji::types::BankId;

const MB: f64 = 1048576.0;

fn tail_ms(service: f64, interarrival: f64, freq: f64) -> f64 {
    let mut q = LcQueue::new(interarrival, 42);
    let horizon = (interarrival * 30_000.0) as u64;
    let lat: Vec<f64> = q
        .advance(horizon, service)
        .iter()
        .map(|c| c.latency as f64)
        .collect();
    percentile(&lat, 0.95) / freq * 1e3
}

fn main() {
    let cfg = SystemConfig::micro2020();
    let noc = MeshNoc::new(&cfg);
    let xapian = tailbench()
        .into_iter()
        .find(|p| p.name == "xapian")
        .expect("xapian exists");
    let freq = cfg.freq_hz;
    let interarrival = xapian.interarrival_cycles(LcLoad::High, freq);
    let miss_pen = noc.avg_miss_penalty();
    let mesh = cfg.mesh();
    let core = CoreId(0);

    println!("# Fig. 8: xapian p95 latency vs LLC allocation (isolation, high load)");
    println!("alloc_mb\tsnuca_p95_ms\tdnuca_p95_ms");
    let mut steps = vec![0.25, 0.5, 0.75];
    steps.extend((2..=16).map(|i| i as f64 * 0.5));
    for alloc_mb in steps {
        let bytes = alloc_mb * MB;
        // S-NUCA: striped over all banks with way-partitioning.
        let ways_per_bank = bytes / cfg.llc.num_banks as f64 / cfg.llc.way_bytes() as f64;
        let mr_s = (xapian.shape.ratio(bytes as u64) * assoc_penalty(ways_per_bank, cfg.llc.ways))
            .min(1.0);
        let lat_s = cfg.llc.bank_latency.as_u64() as f64
            + noc.round_trip_for_hops(mesh.snuca_avg_distance(core));
        let s_snuca = xapian.service_cycles(lat_s, mr_s, miss_pen);
        // D-NUCA: nearest banks, whole banks first (full associativity).
        let mut remaining = bytes;
        let mut placement: Vec<(BankId, f64)> = Vec::new();
        for b in mesh.banks_by_distance(core) {
            if remaining <= 0.0 {
                break;
            }
            let take = remaining.min(cfg.llc.bank_bytes as f64);
            placement.push((b, take));
            remaining -= take;
        }
        let hops = mesh.weighted_distance(core, placement.iter().copied());
        let mr_d = xapian.shape.ratio(bytes as u64);
        let lat_d = cfg.llc.bank_latency.as_u64() as f64 + noc.round_trip_for_hops(hops);
        let s_dnuca = xapian.service_cycles(lat_d, mr_d, miss_pen);

        println!(
            "{:.2}\t{:.3}\t{:.3}",
            alloc_mb,
            tail_ms(s_snuca, interarrival, freq),
            tail_ms(s_dnuca, interarrival, freq)
        );
    }
    println!("# expected: S-NUCA explodes below ~3 MB; D-NUCA meets the same tail with ~1 MB");
    println!("# less and degrades far more gracefully (paper: ~18x lower worst case).");
}
