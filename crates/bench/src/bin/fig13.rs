//! Fig. 13: the main result — normalized tail latency and gmean batch
//! weighted speedup (relative to Static) over random batch mixes, at high
//! and low latency-critical load, for each workload group and design.
//!
//! Box-and-whisker rows: min, q1, median, q3, max over mixes.

use jumanji::prelude::*;
use jumanji_bench::{mix_count, run_matrices, BoxStats, LcGroup, PAPER_MIXES};

fn main() {
    let mixes = mix_count(PAPER_MIXES);
    let designs = DesignKind::main_four();
    let opts = SimOptions::default();
    println!("# Fig. 13: tail latency + batch speedup over {mixes} random mixes");
    println!("group\tload\tdesign\tmetric\tmin\tq1\tmedian\tq3\tmax");
    // All (load, group) matrices go through one fan-out so every worker
    // stays busy even at small mix counts.
    let matrices: Vec<(LcGroup, LcLoad)> = [LcLoad::High, LcLoad::Low]
        .into_iter()
        .flat_map(|load| LcGroup::all().into_iter().map(move |g| (g, load)))
        .collect();
    let results = run_matrices(&matrices, &designs, mixes, &opts);
    for ((group, load), cells) in matrices.iter().zip(&results) {
        let load_label = match load {
            LcLoad::High => "high",
            LcLoad::Low => "low",
        };
        for (design, cell) in designs.iter().zip(cells) {
            println!(
                "{}\t{}\t{}\tnorm_tail\t{}",
                group.label(),
                load_label,
                design,
                BoxStats::of(&cell.norm_tails).tsv()
            );
            println!(
                "{}\t{}\t{}\tspeedup\t{}",
                group.label(),
                load_label,
                design,
                BoxStats::of(&cell.speedups).tsv()
            );
        }
        // Per-group gmean summary (quoted in the text).
        for (design, cell) in designs.iter().zip(cells) {
            eprintln!(
                "[summary] {} {} {}: gmean speedup {:+.1}%, median norm tail {:.2}",
                group.label(),
                load_label,
                design,
                (cell.gmean_speedup() - 1.0) * 100.0,
                BoxStats::of(&cell.norm_tails).median
            );
        }
    }
    println!("# expected: Adaptive/VM-Part/Jumanji norm tails ~<=1 (rare exceptions);");
    println!("# Jigsaw violates massively (up to 100x+); speedups: Jumanji 11-15%,");
    println!("# Jigsaw 11-18%, Adaptive <=4%, VM-Part <=3%.");
}
