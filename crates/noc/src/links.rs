//! Per-link traffic flows and contention under X-Y routing.
//!
//! The latency model in [`crate::MeshNoc`] is unloaded; this module adds
//! the load-dependent part: given each requester's flit rate to each bank,
//! it routes every flow over the mesh (X then Y, the paper's
//! dimension-ordered routing) and accumulates per-directional-link
//! utilization. Links carry one flit per cycle, so M/D/1 waiting on the
//! links along a path gives the congestion delay — the "NoC contention"
//! that makes a victim's activity visible chip-wide in the port attack
//! (Fig. 11) and that grows with router delay in Fig. 18.

use crate::queueing::md1_wait;
use nuca_types::{BankId, CoreId, Mesh, TileCoord};

/// A directional link between two adjacent tiles, identified by
/// `(from_tile, to_tile)` indices.
pub type Link = (usize, usize);

/// Accumulated flit rates (flits per cycle) per directional link.
///
/// Stored densely, indexed by `from_tile * num_tiles + to_tile`: the
/// model touches every link of every placement path several times per
/// fixed-point iteration, and a direct index beats hashing the link pair
/// on that path. A 20-tile mesh needs 400 slots — smaller than the hash
/// map it replaces.
#[derive(Debug, Clone, Default)]
pub struct LinkLoads {
    flows: Vec<f64>,
    mesh_tiles: usize,
}

impl LinkLoads {
    /// Computes link loads for a set of flows.
    ///
    /// Each flow is `(core, bank, flits_per_cycle)` and is routed in both
    /// directions: request (core → bank) and response (bank → core), each
    /// X-first. The same rate is charged on both paths; callers fold the
    /// request/response flit asymmetry into the rate.
    pub fn from_flows<I>(mesh: Mesh, flows: I) -> LinkLoads
    where
        I: IntoIterator<Item = (CoreId, BankId, f64)>,
    {
        let mut loads = LinkLoads::default();
        loads.reset(mesh);
        for (core, bank, rate) in flows {
            loads.add_flow(mesh, core, bank, rate);
        }
        loads
    }

    /// Empties the accumulated loads (keeping the allocation) so the
    /// structure can be refilled for a new rate vector.
    pub fn reset(&mut self, mesh: Mesh) {
        self.mesh_tiles = mesh.num_tiles();
        self.flows.clear();
        self.flows.resize(self.mesh_tiles * self.mesh_tiles, 0.0);
    }

    /// Routes one `(core, bank, rate)` flow — request and response path —
    /// and adds its rate to every link it crosses.
    pub fn add_flow(&mut self, mesh: Mesh, core: CoreId, bank: BankId, rate: f64) {
        if rate <= 0.0 {
            return;
        }
        self.add_path(mesh, mesh.core_tile(core), mesh.bank_tile(bank), rate);
        self.add_path(mesh, mesh.bank_tile(bank), mesh.core_tile(core), rate);
    }

    /// Adds `rate` along the X-then-Y path from `from` to `to`.
    fn add_path(&mut self, mesh: Mesh, from: TileCoord, to: TileCoord, rate: f64) {
        let t = self.mesh_tiles;
        let mut cur = from;
        while cur.x != to.x {
            let next = TileCoord {
                x: if to.x > cur.x { cur.x + 1 } else { cur.x - 1 },
                y: cur.y,
            };
            self.flows[mesh.tile_index(cur) * t + mesh.tile_index(next)] += rate;
            cur = next;
        }
        while cur.y != to.y {
            let next = TileCoord {
                x: cur.x,
                y: if to.y > cur.y { cur.y + 1 } else { cur.y - 1 },
            };
            self.flows[mesh.tile_index(cur) * t + mesh.tile_index(next)] += rate;
            cur = next;
        }
    }

    /// Utilization of one directional link (flits per cycle; capacity 1).
    pub fn utilization(&self, link: Link) -> f64 {
        self.flows
            .get(link.0 * self.mesh_tiles + link.1)
            .copied()
            .unwrap_or(0.0)
    }

    /// The most loaded link's utilization.
    pub fn max_utilization(&self) -> f64 {
        self.flows.iter().copied().fold(0.0, f64::max)
    }

    /// Mean utilization over links carrying any traffic.
    pub fn mean_utilization(&self) -> f64 {
        let loaded: Vec<f64> = self.flows.iter().copied().filter(|&f| f > 0.0).collect();
        if loaded.is_empty() {
            return 0.0;
        }
        loaded.iter().sum::<f64>() / loaded.len() as f64
    }

    /// Total flit·links per cycle (the NoC's dynamic activity).
    pub fn total_flit_links(&self) -> f64 {
        self.flows.iter().sum()
    }

    /// Expected congestion delay (cycles) along the X-then-Y path from
    /// `core` to `bank` and back: the sum of per-link M/D/1 waits at
    /// 1-cycle service.
    pub fn path_delay(&self, mesh: Mesh, core: CoreId, bank: BankId) -> f64 {
        let t = self.mesh_tiles;
        let mut total = 0.0;
        let mut walk = |from: TileCoord, to: TileCoord| {
            let mut cur = from;
            while cur.x != to.x {
                let next = TileCoord {
                    x: if to.x > cur.x { cur.x + 1 } else { cur.x - 1 },
                    y: cur.y,
                };
                let f = self.flows[mesh.tile_index(cur) * t + mesh.tile_index(next)];
                total += md1_wait(f, 1.0);
                cur = next;
            }
            while cur.y != to.y {
                let next = TileCoord {
                    x: cur.x,
                    y: if to.y > cur.y { cur.y + 1 } else { cur.y - 1 },
                };
                let f = self.flows[mesh.tile_index(cur) * t + mesh.tile_index(next)];
                total += md1_wait(f, 1.0);
                cur = next;
            }
        };
        walk(mesh.core_tile(core), mesh.bank_tile(bank));
        walk(mesh.bank_tile(bank), mesh.core_tile(core));
        total
    }

    /// Number of tiles of the mesh these loads were computed for.
    pub fn mesh_tiles(&self) -> usize {
        self.mesh_tiles
    }

    /// The raw per-link flow slab (indexed `from_tile * num_tiles +
    /// to_tile`), for callers that precompute per-link waits once and
    /// share them across many paths.
    pub fn flows(&self) -> &[f64] {
        &self.flows
    }

    /// [`add_flow`](LinkLoads::add_flow) using precomputed routes: adds
    /// `rate` to the same links in the same order, without re-walking the
    /// mesh. The table must have been built for the same mesh as
    /// [`reset`](LinkLoads::reset).
    pub fn add_flow_routed(&mut self, routes: &RouteTable, core: CoreId, bank: BankId, rate: f64) {
        if rate <= 0.0 {
            return;
        }
        for &l in routes.round_trip(core, bank) {
            self.flows[l as usize] += rate;
        }
    }

    /// [`path_delay`](LinkLoads::path_delay) using precomputed routes:
    /// sums the per-link M/D/1 waits over the same links in the same
    /// order.
    pub fn path_delay_routed(&self, routes: &RouteTable, core: CoreId, bank: BankId) -> f64 {
        let mut total = 0.0;
        for &l in routes.round_trip(core, bank) {
            total += md1_wait(self.flows[l as usize], 1.0);
        }
        total
    }
}

/// Precomputed X-Y round-trip routes for every `(core, bank)` pair.
///
/// The mesh geometry is fixed for a run, but the analytic model walks the
/// core↔bank path of every placement pair several times per fixed-point
/// iteration (once to accumulate flows, once to sum congestion). This
/// table stores each pair's flat link indices — request then response, in
/// walk order, so replaying it touches the same `f64`s in the same order
/// as the on-the-fly walk and is therefore bit-identical.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// `offsets[core * num_banks + bank] .. offsets[.. + 1]` indexes
    /// `links` for that pair's round trip.
    offsets: Vec<u32>,
    /// Flat link indices (`from_tile * num_tiles + to_tile`).
    links: Vec<u32>,
    num_banks: usize,
}

impl RouteTable {
    /// Builds the table for `mesh` with `num_cores` cores and `num_banks`
    /// banks.
    pub fn new(mesh: Mesh, num_cores: usize, num_banks: usize) -> RouteTable {
        let t = mesh.num_tiles();
        let mut offsets = Vec::with_capacity(num_cores * num_banks + 1);
        let mut links: Vec<u32> = Vec::new();
        offsets.push(0);
        let push_path = |links: &mut Vec<u32>, from: TileCoord, to: TileCoord| {
            let mut cur = from;
            while cur.x != to.x {
                let next = TileCoord {
                    x: if to.x > cur.x { cur.x + 1 } else { cur.x - 1 },
                    y: cur.y,
                };
                links.push((mesh.tile_index(cur) * t + mesh.tile_index(next)) as u32);
                cur = next;
            }
            while cur.y != to.y {
                let next = TileCoord {
                    x: cur.x,
                    y: if to.y > cur.y { cur.y + 1 } else { cur.y - 1 },
                };
                links.push((mesh.tile_index(cur) * t + mesh.tile_index(next)) as u32);
                cur = next;
            }
        };
        for core in 0..num_cores {
            for bank in 0..num_banks {
                let ct = mesh.core_tile(CoreId(core));
                let bt = mesh.bank_tile(BankId(bank));
                push_path(&mut links, ct, bt);
                push_path(&mut links, bt, ct);
                offsets.push(links.len() as u32);
            }
        }
        RouteTable {
            offsets,
            links,
            num_banks,
        }
    }

    /// The round-trip link indices for `(core, bank)`: request path then
    /// response path, in walk order.
    pub fn round_trip(&self, core: CoreId, bank: BankId) -> &[u32] {
        let k = core.index() * self.num_banks + bank.index();
        &self.links[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// Sums `per_link[l]` over the `(core, bank)` round trip, in walk
    /// order. With `per_link[l] = md1_wait(flows[l], 1.0)` this adds the
    /// same values in the same order as
    /// [`LinkLoads::path_delay_routed`] — bit-identical — while letting
    /// the caller compute each link's wait once instead of once per path
    /// that crosses it.
    pub fn round_trip_sum(&self, per_link: &[f64], core: CoreId, bank: BankId) -> f64 {
        let mut total = 0.0;
        for &l in self.round_trip(core, bank) {
            total += per_link[l as usize];
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(5, 4)
    }

    #[test]
    fn single_flow_loads_its_path_only() {
        let m = mesh();
        // Core 0 (0,0) -> bank 7 (2,1): X-first path 0->1->2 then 2->7.
        let loads = LinkLoads::from_flows(m, [(CoreId(0), BankId(7), 0.25)]);
        assert_eq!(loads.utilization((0, 1)), 0.25);
        assert_eq!(loads.utilization((1, 2)), 0.25);
        assert_eq!(loads.utilization((2, 7)), 0.25);
        // Response path is Y-symmetric but X-first from (2,1): 7->6->5 then 5->0.
        assert_eq!(loads.utilization((7, 6)), 0.25);
        assert_eq!(loads.utilization((6, 5)), 0.25);
        assert_eq!(loads.utilization((5, 0)), 0.25);
        // Unrelated links stay idle.
        assert_eq!(loads.utilization((3, 4)), 0.0);
    }

    #[test]
    fn local_bank_loads_no_links() {
        let loads = LinkLoads::from_flows(mesh(), [(CoreId(7), BankId(7), 0.9)]);
        assert_eq!(loads.total_flit_links(), 0.0);
        assert_eq!(loads.path_delay(mesh(), CoreId(7), BankId(7)), 0.0);
    }

    #[test]
    fn flows_superimpose() {
        let m = mesh();
        let loads = LinkLoads::from_flows(
            m,
            [
                (CoreId(0), BankId(2), 0.2),
                (CoreId(1), BankId(2), 0.3), // shares link (1,2)
            ],
        );
        assert!((loads.utilization((1, 2)) - 0.5).abs() < 1e-12);
        assert!((loads.utilization((0, 1)) - 0.2).abs() < 1e-12);
        assert_eq!(loads.max_utilization(), 0.5);
    }

    #[test]
    fn path_delay_grows_with_congestion() {
        let m = mesh();
        let light = LinkLoads::from_flows(m, [(CoreId(0), BankId(4), 0.1)]);
        let heavy = LinkLoads::from_flows(m, [(CoreId(0), BankId(4), 0.8)]);
        let dl = light.path_delay(m, CoreId(0), BankId(4));
        let dh = heavy.path_delay(m, CoreId(0), BankId(4));
        assert!(dh > 4.0 * dl, "light {dl:.3} vs heavy {dh:.3}");
    }

    #[test]
    fn total_activity_matches_rate_times_hops() {
        let m = mesh();
        // 3 hops each way at rate 0.5 -> 3 flit-links per direction.
        let loads = LinkLoads::from_flows(m, [(CoreId(0), BankId(3), 0.5)]);
        assert!((loads.total_flit_links() - 2.0 * 3.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn dnuca_placement_loads_links_less_than_snuca() {
        let m = mesh();
        // One app at core 0 with rate 0.2: S-NUCA stripes over all banks;
        // D-NUCA uses the local + neighbour bank.
        let snuca: Vec<(CoreId, BankId, f64)> = (0..20)
            .map(|b| (CoreId(0), BankId(b), 0.2 / 20.0))
            .collect();
        let dnuca = vec![(CoreId(0), BankId(0), 0.1), (CoreId(0), BankId(1), 0.1)];
        let ls = LinkLoads::from_flows(m, snuca);
        let ld = LinkLoads::from_flows(m, dnuca);
        assert!(ld.total_flit_links() < 0.2 * ls.total_flit_links());
    }
}
