//! Fig. 2: representative data placements under each LLC design for the
//! case-study workload, rendered as ASCII maps of the 5×4 LLC.
//!
//! Each bank cell lists the VMs occupying it (`0`–`3`), `*` marking banks
//! that hold latency-critical data. Compare: S-NUCA designs put every VM
//! in every bank; Jigsaw clusters by traffic; Jumanji never shares a bank
//! across VMs.

use jumanji::core::AppKind;
use jumanji::prelude::*;
use jumanji::types::BankId;

fn main() {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let mesh = cfg.mesh();
    for design in [
        DesignKind::Adaptive,
        DesignKind::VmPart,
        DesignKind::Jigsaw,
        DesignKind::Jumanji,
    ] {
        let alloc = design.allocate(&input);
        println!(
            "# {design} placement ({}x{} banks)",
            mesh.cols(),
            mesh.rows()
        );
        for row in 0..mesh.rows() {
            let mut line = String::new();
            for col in 0..mesh.cols() {
                let bank = BankId(row * mesh.cols() + col);
                let occ = alloc.occupants(bank);
                let mut vms: Vec<usize> = occ
                    .iter()
                    .map(|a| input.apps[a.index()].vm.index())
                    .collect();
                vms.sort();
                vms.dedup();
                let has_lc = occ
                    .iter()
                    .any(|a| input.apps[a.index()].kind == AppKind::LatencyCritical);
                let cell: String = vms.iter().map(|v| v.to_string()).collect();
                let cell = if cell.is_empty() {
                    "-".to_string()
                } else {
                    cell
                };
                line.push_str(&format!("[{:>4}{}]", cell, if has_lc { "*" } else { " " }));
            }
            println!("{line}");
        }
        println!(
            "# VM-isolated: {}\n",
            if alloc.vm_isolated(&input) {
                "yes"
            } else {
                "no"
            }
        );
    }
}
