// Fixture: plan-bypass — a renderer that builds its own cell key (not compiled).
pub fn fig_bad(cache: &CellCache) {
    let mix = WorkloadMix::lc_only(7);
    let cell = cache.run(&mix, &opts());
    draw(cell);
}

pub fn fig_good(cache: &CellCache) {
    let (mix, opts) = mix_cell_inputs(7);
    let cell = cache.run_detail(&mix, &opts);
    draw(cell);
}
