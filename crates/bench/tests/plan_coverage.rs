//! Pins the plan/render identity contract: for every plannable figure,
//! the plan pass enumerates *exactly* the cells the render consumes.
//!
//! A plan that misses cells silently degrades the scheduler back to
//! compute-in-render (correct but slow, and double work under tracing);
//! a plan with spurious cells burns compute nobody reads. Both escape
//! the byte-identity tests — so this test runs each figure through the
//! scheduler against a cleared cache and asserts (a) the render
//! computed nothing (every cell it wanted was already there) and
//! (b) the scheduler computed exactly as many run cells as the
//! sequential path does (no spurious work).
//!
//! Runs in its own process (one integration-test binary, one `#[test]`)
//! so clearing the global cache cannot perturb other tests. The cheap
//! figures always run; the full-matrix figures (13–16, sensitivity) are
//! gated behind `JUMANJI_SUITE_GOLDEN=1` — `scripts/verify.sh` sets it.

// Test gates read their own opt-in env switches; never fingerprinted output.
#![allow(clippy::disallowed_methods)]

use jumanji::telemetry::NoopSink;
use jumanji_bench::cell_cache::CellCache;
use jumanji_bench::suite::run_suite;
use jumanji_bench::{ExperimentSpec, FigureKind};

#[test]
fn plans_cover_their_renders_exactly() {
    let mut plannable = vec![
        FigureKind::Fig02,
        FigureKind::Fig04,
        FigureKind::Fig05,
        FigureKind::Fig09,
        FigureKind::Fig17,
        FigureKind::Fig18,
        FigureKind::Ablation,
        FigureKind::Validate,
    ];
    if std::env::var_os("JUMANJI_SUITE_GOLDEN").is_some() {
        plannable.extend([
            FigureKind::Fig13,
            FigureKind::Fig14,
            FigureKind::Fig15,
            FigureKind::Fig16,
            FigureKind::Sensitivity,
        ]);
    } else {
        eprintln!("set JUMANJI_SUITE_GOLDEN=1 to cover the full-matrix figures");
    }
    let cache = CellCache::global();
    for &kind in &plannable {
        // Short detailed runs keep fig02/validate cheap; the analytic
        // figures ignore `accesses`.
        let specs = [ExperimentSpec::new(kind)
            .mixes(2)
            .threads(2)
            .accesses(4_000)];

        cache.clear();
        let mut rendered = Vec::new();
        run_suite(&specs, 2, false, &NoopSink, &mut |fig| {
            rendered.push((fig.computed, fig.reused));
            Ok(())
        })
        .expect("scheduled suite runs");
        let stats = cache.stats();
        let scheduled_misses = stats.runs.misses + stats.details.misses;
        let (computed, reused) = rendered[0];
        assert_eq!(
            computed,
            0,
            "{}: the render computed {computed} cells the plan missed",
            kind.name()
        );
        assert!(
            reused > 0,
            "{}: the render read no cells at all",
            kind.name()
        );

        cache.clear();
        run_suite(&specs, 2, true, &NoopSink, &mut |_| Ok(())).expect("sequential suite runs");
        let stats = cache.stats();
        let sequential_misses = stats.runs.misses + stats.details.misses;
        assert_eq!(
            scheduled_misses, sequential_misses,
            "{}: scheduled path computed {scheduled_misses} run cells, sequential {sequential_misses}",
            kind.name()
        );
    }
}
