//! Property-based tests for placement descriptors and the VTB.

use nuca_types::BankId;
use nuca_vc::{PlacementDescriptor, Vtb, DESCRIPTOR_ENTRIES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Descriptor shares always sum to exactly 1 and apportion within one
    /// entry (1/128) of the requested weights.
    #[test]
    fn shares_apportion_weights(
        weights in proptest::collection::vec(0.01f64..100.0, 1..20),
    ) {
        let shares: Vec<(BankId, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (BankId(i), w))
            .collect();
        let d = PlacementDescriptor::from_shares(&shares);
        let got = d.shares();
        let total: f64 = got.iter().map(|(_, s)| s).sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
        let wsum: f64 = weights.iter().sum();
        for (bank, share) in &got {
            let want = weights[bank.index()] / wsum;
            prop_assert!(
                (share - want).abs() <= 1.0 / DESCRIPTOR_ENTRIES as f64 + 1e-12,
                "bank {bank}: {share} vs {want}"
            );
        }
    }

    /// Every lookup lands in a bank that has a positive share.
    #[test]
    fn lookups_respect_support(
        weights in proptest::collection::vec(0.0f64..10.0, 2..20),
        lines in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let shares: Vec<(BankId, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (BankId(i), w))
            .collect();
        let d = PlacementDescriptor::from_shares(&shares);
        for &line in &lines {
            let bank = d.bank_for(line);
            prop_assert!(weights[bank.index()] > 0.0, "line {line} in zero-share {bank}");
        }
    }

    /// Reinstalling the same shares moves nothing; a disjoint placement
    /// moves everything.
    #[test]
    fn moved_fraction_extremes(weights in proptest::collection::vec(0.5f64..10.0, 1..9)) {
        let shares: Vec<(BankId, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (BankId(i), w))
            .collect();
        let a = PlacementDescriptor::from_shares(&shares);
        let same = PlacementDescriptor::from_shares(&shares);
        prop_assert_eq!(a.moved_fraction(&same), 0.0);
        // Shift every bank id by 10: fully disjoint support.
        let moved: Vec<(BankId, f64)> = shares
            .iter()
            .map(|&(b, w)| (BankId(b.index() + 10), w))
            .collect();
        let b = PlacementDescriptor::from_shares(&moved);
        prop_assert_eq!(a.moved_fraction(&b), 1.0);
    }

    /// VTB lookups are deterministic and stable across reinstalls of the
    /// same descriptor.
    #[test]
    fn vtb_lookup_stable(lines in proptest::collection::vec(0u64..100_000, 1..100)) {
        let mut vtb = Vtb::new();
        let d = PlacementDescriptor::uniform(20);
        vtb.install(nuca_types::AppId(0), d.clone());
        let first: Vec<BankId> = lines.iter().map(|&l| vtb.lookup(nuca_types::AppId(0), l)).collect();
        let moved = vtb.install(nuca_types::AppId(0), d);
        prop_assert_eq!(moved, 0.0);
        let second: Vec<BankId> = lines.iter().map(|&l| vtb.lookup(nuca_types::AppId(0), l)).collect();
        prop_assert_eq!(first, second);
    }
}
