// Fixture: clean file — nothing in here may be flagged (not compiled).
use nuca_types::hash::Mix64Build;

pub fn clean() {
    let m: HashMap<u64, u64, Mix64Build> = HashMap::default();
    let names = "HashMap::new() and Instant::now() inside a string";
    let _ = (m, names);
    // A comment mentioning SystemTime::now() is fine too.
}

pub fn allowed() -> u64 {
    // lint:allow(wall-clock): fixture demonstrating a justified inline allow.
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_maps_are_fine_in_tests() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
    }
}
