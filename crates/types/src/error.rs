//! Error types for configuration validation.

use core::fmt;

/// An invalid system configuration.
///
/// # Examples
///
/// ```
/// use nuca_types::{ConfigError, SystemConfig};
/// let mut cfg = SystemConfig::micro2020();
/// cfg.num_cores = 3;
/// let err: ConfigError = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("num_cores"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> ConfigError {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid configuration: boom");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
