// Fixture: thread-local violation (not compiled; linted by --self-test).
thread_local! {
    static MEMO: std::cell::RefCell<Vec<u64>> = std::cell::RefCell::new(Vec::new());
}
