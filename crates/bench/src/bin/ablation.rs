//! Ablation study of Jumanji's design choices (DESIGN.md §“ablations”):
//!
//! 1. **Trade refinement** (Sec. V-D): Jumanji + the trade pass vs plain
//!    Jumanji — reproduces the paper's negative result (trades are rare
//!    and gains marginal).
//! 2. **Bank isolation** (Sec. VI-D): Jumanji vs Insecure — what the
//!    security guarantee costs.
//! 3. **Greedy LC placement** (Sec. VIII-C): Jumanji vs Ideal Batch — what
//!    the simple LatCritPlacer leaves on the table.
//! 4. **Controller panic** (Sec. V-C): paper controller vs one with the
//!    panic disabled — why the boost matters for tails.

use jumanji::core::jumanji_with_trades;
use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji_bench::exec::{parallel_map, thread_count};
use jumanji_bench::mix_count;

fn main() {
    let mixes = mix_count(6);
    let opts = SimOptions::default();
    let threads = thread_count();

    // 1. Trade refinement on static placement problems.
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let base = DesignKind::Jumanji.allocate(&input);
    let (traded, stats) = jumanji_with_trades(&input);
    let avg_batch_dist = |alloc: &jumanji::core::Allocation| -> f64 {
        let batch: Vec<_> = input
            .apps
            .iter()
            .filter(|a| a.kind == jumanji::core::AppKind::Batch)
            .collect();
        batch
            .iter()
            .map(|a| alloc.avg_distance(&input, a.id))
            .sum::<f64>()
            / batch.len() as f64
    };
    println!("# Ablation 1: trade-based refinement (paper Sec. V-D)");
    println!(
        "trades\taccepted {}/{} candidates",
        stats.accepted, stats.attempted
    );
    println!(
        "trades\tbatch avg distance: {:.3} hops -> {:.3} hops",
        avg_batch_dist(&base),
        avg_batch_dist(&traded)
    );
    println!("# expected: few accepts, marginal distance change (the paper omitted trades).\n");

    // 2-3. Isolation and ideality costs over random mixes, one seed per
    // worker-pool job.
    let per_seed = parallel_map(mixes, threads, |seed| {
        let exp = Experiment::new(case_study_mix(seed as u64), LcLoad::High, opts.clone());
        let stat = exp.run(DesignKind::Static);
        (
            exp.run(DesignKind::Jumanji).weighted_speedup_vs(&stat),
            exp.run(DesignKind::JumanjiInsecure)
                .weighted_speedup_vs(&stat),
            exp.run(DesignKind::JumanjiIdealBatch)
                .weighted_speedup_vs(&stat),
        )
    });
    let jumanji_s: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
    let insecure_s: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
    let ideal_s: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
    println!("# Ablation 2-3: isolation and greedy-placement costs ({mixes} mixes)");
    println!(
        "isolation\tjumanji {:+.2}% vs insecure {:+.2}% (cost {:.2} pp)",
        (gmean(&jumanji_s) - 1.0) * 100.0,
        (gmean(&insecure_s) - 1.0) * 100.0,
        (gmean(&insecure_s) - gmean(&jumanji_s)) * 100.0
    );
    println!(
        "greedy-lc\tjumanji {:+.2}% vs ideal {:+.2}% (gap {:.2} pp)",
        (gmean(&jumanji_s) - 1.0) * 100.0,
        (gmean(&ideal_s) - 1.0) * 100.0,
        (gmean(&ideal_s) - gmean(&jumanji_s)) * 100.0
    );
    println!("# expected: isolation cost < ~3 pp, ideality gap < ~2 pp (Fig. 16).\n");

    // 4. Panic ablation: raise the threshold out of reach.
    let llc = SystemConfig::micro2020().llc.total_bytes() as f64;
    let no_panic = ControllerParams {
        panic_threshold: f64::MAX,
        ..ControllerParams::micro2020(llc)
    };
    let tails = parallel_map(mixes, threads, |seed| {
        let exp = Experiment::new(case_study_mix(seed as u64), LcLoad::High, opts.clone());
        let with_t = exp.run(DesignKind::Jumanji).max_norm_tail();
        let exp2 = Experiment::new(
            case_study_mix(seed as u64),
            LcLoad::High,
            SimOptions {
                controller: Some(no_panic),
                ..opts.clone()
            },
        );
        let without_t = exp2.run(DesignKind::Jumanji).max_norm_tail();
        (with_t, without_t)
    });
    let with_t = tails.iter().map(|t| t.0).fold(0.0f64, f64::max);
    let without_t = tails.iter().map(|t| t.1).fold(0.0f64, f64::max);
    println!("# Ablation 4: controller panic boost");
    println!("panic\tworst norm tail with panic: {with_t:.2}, without: {without_t:.2}");
    println!("# expected: disabling the panic worsens worst-case tails (queueing spikes");
    println!("# otherwise recover one 10% step per 100 ms).");
}
