//! Fig. 15: dynamic data-movement energy at high load, broken down into
//! L1 / L2 / LLC banks / NoC / memory, normalized to Static.

use jumanji::prelude::*;
use jumanji_bench::{mix_count, run_matrices, LcGroup};

fn main() {
    let mixes = mix_count(8);
    let designs = [
        DesignKind::Static,
        DesignKind::Adaptive,
        DesignKind::VmPart,
        DesignKind::Jigsaw,
        DesignKind::Jumanji,
    ];
    let opts = SimOptions::default();
    println!("# Fig. 15: data-movement energy at high load, normalized to Static");
    println!("group\tdesign\tl1\tl2\tllc\tnoc\tmem\ttotal");
    let mut totals = vec![0.0f64; designs.len()];
    let mut static_total = 0.0f64;
    let matrices: Vec<(LcGroup, LcLoad)> = LcGroup::all()
        .into_iter()
        .map(|g| (g, LcLoad::High))
        .collect();
    let results = run_matrices(&matrices, &designs, mixes, &opts);
    for ((group, _), cells) in matrices.iter().zip(&results) {
        // Per-group Static baseline for normalization.
        let base: f64 = cells[0]
            .energy
            .iter()
            .map(|(a, b, c, d, e)| a + b + c + d + e)
            .sum();
        for (d, (design, cell)) in designs.iter().zip(cells).enumerate() {
            let sum = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| -> f64 {
                cell.energy.iter().map(f).sum::<f64>() / base
            };
            let l1 = sum(|e| e.0);
            let l2 = sum(|e| e.1);
            let llc = sum(|e| e.2);
            let noc = sum(|e| e.3);
            let mem = sum(|e| e.4);
            let total = l1 + l2 + llc + noc + mem;
            println!(
                "{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                group.label(),
                design,
                l1,
                l2,
                llc,
                noc,
                mem,
                total
            );
            totals[d] += total;
            if d == 0 {
                static_total += 1.0;
            }
        }
    }
    println!("# averages over groups (normalized total energy):");
    for (design, t) in designs.iter().zip(&totals) {
        println!("# {design}: {:.3}", t / static_total);
    }
    println!("# expected: Jumanji ~= Jigsaw ~= 0.87 (13% savings); Adaptive ~1.00;");
    println!("# VM-Part slightly above 1.00 (associativity-induced extra misses).");
}
