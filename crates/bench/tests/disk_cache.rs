//! Integration tests for the disk-backed cell store, driven through the
//! [`CellCache`] exactly as the figure binaries drive it.
//!
//! The contract under test: whatever happens to the cache files —
//! truncation, bit flips, a different format version, two processes
//! racing to write the same cell — a reader either gets the cached
//! result byte-identical to a fresh computation, or silently recomputes
//! it. Never a panic, never a wrong answer.

use jumanji::core::DesignKind;
use jumanji::sim::SimOptions;
use jumanji::telemetry::NoopSink;
use jumanji::types::Seconds;
use jumanji::workloads::{case_study_mix, LcLoad};
use jumanji_bench::cell_cache::{experiment_key, run_key, CellCache, RunSource};
use jumanji_bench::DiskCache;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn quick_opts() -> SimOptions {
    SimOptions {
        duration: Seconds(0.4),
        ..SimOptions::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jumanji-disk-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh in-memory cache backed by the store at `dir` — the moral
/// equivalent of a new process pointed at `--cache-dir dir`.
fn cache_with(dir: &Path) -> CellCache {
    let cache = CellCache::new();
    cache.attach_disk(Arc::new(DiskCache::open(dir).expect("open store")));
    cache
}

/// Runs the one cell every test here uses and reports where the result
/// came from.
fn run_cell(cache: &CellCache) -> (String, RunSource) {
    let handle = cache.experiment(case_study_mix(7), LcLoad::High, quick_opts());
    let (result, source) = cache.run_sourced(&handle, DesignKind::Jumanji, &NoopSink);
    (format!("{result:?}"), source)
}

/// The on-disk path of that cell's run entry.
fn run_file(dir: &Path) -> PathBuf {
    let key = run_key(
        experiment_key(&case_study_mix(7), LcLoad::High, &quick_opts()),
        DesignKind::Jumanji,
    );
    dir.join("runs").join(format!("{key:032x}.bin"))
}

/// Asserts that a reader over the damaged store recomputes the cell
/// with output identical to `reference`, drops the corrupt file, and
/// leaves the store warm again for the next reader.
fn assert_recovers(dir: &Path, reference: &str, what: &str) {
    let cache = cache_with(dir);
    let (out, source) = run_cell(&cache);
    assert_eq!(source, RunSource::Computed, "{what}: must fall back");
    assert_eq!(out, reference, "{what}: recomputed output must match");
    let disk = cache.stats().disk.expect("disk attached");
    assert_eq!(disk.corrupt_dropped, 1, "{what}: corrupt entry dropped");
    assert!(disk.writes >= 1, "{what}: recomputed cell rewritten");

    // The rewrite healed the store: the next reader is warm.
    let (out, source) = run_cell(&cache_with(dir));
    assert_eq!(source, RunSource::Disk, "{what}: store must heal");
    assert_eq!(out, reference);
}

#[test]
fn corrupt_entries_recompute_identically() {
    let dir = temp_dir("corrupt");
    let (reference, source) = run_cell(&cache_with(&dir));
    assert_eq!(source, RunSource::Computed);
    let file = run_file(&dir);
    let pristine = std::fs::read(&file).expect("cold run wrote the entry");

    // Truncated entry (interrupted write without the atomic rename).
    std::fs::write(&file, &pristine[..pristine.len() / 2]).expect("truncate");
    assert_recovers(&dir, &reference, "truncated");

    // Bit flip in the payload: the envelope checksum catches it.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&file, &flipped).expect("flip");
    assert_recovers(&dir, &reference, "bad checksum");

    // An entry from a different format version (bytes 4..6 of the
    // envelope hold the little-endian version).
    let mut other_version = pristine.clone();
    other_version[4] ^= 0xFF;
    std::fs::write(&file, &other_version).expect("reversion");
    assert_recovers(&dir, &reference, "wrong version");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_never_leave_torn_cells() {
    let dir = temp_dir("race");
    // Two independent caches (own memory, own store handle — the moral
    // equivalent of two processes) compute and persist the same cell
    // concurrently.
    let results: Vec<String> = std::thread::scope(|scope| {
        let dir = &dir;
        let workers: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let (out, _) = run_cell(&cache_with(dir));
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("writer thread"))
            .collect()
    });
    assert_eq!(results[0], results[1], "racing writers must agree");

    // Whoever won the rename, the surviving entry is valid and
    // byte-identical to both computations.
    let cache = cache_with(&dir);
    let (out, source) = run_cell(&cache);
    assert_eq!(source, RunSource::Disk, "store must be warm after the race");
    assert_eq!(out, results[0]);
    assert_eq!(
        cache.stats().disk.expect("disk attached").corrupt_dropped,
        0
    );
    let _ = std::fs::remove_dir_all(&dir);
}
