//! Poisson request generation for latency-critical servers.
//!
//! TailBench's integrated client "issues a stream of requests with
//! exponentially distributed interarrival times at a given rate" (Sec. VII);
//! [`RequestGenerator`] reproduces that with a seeded RNG so every
//! experiment is deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic Poisson arrival process in units of cycles.
///
/// # Examples
///
/// ```
/// use nuca_workloads::RequestGenerator;
/// let mut gen = RequestGenerator::new(1_000_000.0, 7);
/// let a = gen.next_arrival();
/// let b = gen.next_arrival();
/// assert!(b > a, "arrivals are strictly increasing");
/// ```
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    mean_interarrival: f64,
    now: f64,
    rng: SmallRng,
}

impl RequestGenerator {
    /// Creates a generator with the given mean interarrival time (cycles)
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interarrival` is not positive and finite.
    pub fn new(mean_interarrival: f64, seed: u64) -> RequestGenerator {
        assert!(
            mean_interarrival.is_finite() && mean_interarrival > 0.0,
            "mean interarrival must be positive"
        );
        RequestGenerator {
            mean_interarrival,
            now: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The next arrival time, in cycles since the start of the experiment.
    pub fn next_arrival(&mut self) -> u64 {
        // Inverse-CDF exponential sampling; clamp u away from 0.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.now += -self.mean_interarrival * u.ln();
        self.now as u64
    }

    /// Generates the first `n` arrival times.
    pub fn arrivals(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_rate() {
        let mean = 50_000.0;
        let mut gen = RequestGenerator::new(mean, 1);
        let n = 20_000;
        let arr = gen.arrivals(n);
        let measured = *arr.last().unwrap() as f64 / n as f64;
        assert!(
            (measured - mean).abs() / mean < 0.05,
            "measured mean {measured}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = RequestGenerator::new(1000.0, 42).arrivals(100);
        let b = RequestGenerator::new(1000.0, 42).arrivals(100);
        assert_eq!(a, b);
        let c = RequestGenerator::new(1000.0, 43).arrivals(100);
        assert_ne!(a, c);
    }

    #[test]
    fn interarrivals_are_exponential_ish() {
        // Coefficient of variation of an exponential is 1.
        let mut gen = RequestGenerator::new(10_000.0, 5);
        let arr = gen.arrivals(20_000);
        let gaps: Vec<f64> = arr.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv = {cv}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_mean_panics() {
        RequestGenerator::new(0.0, 1);
    }
}
