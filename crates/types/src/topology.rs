//! On-chip mesh topology and X-Y routing distances.
//!
//! The evaluation platform (Table II of the paper) is a 5×4 mesh of tiles.
//! Each tile holds one core and one LLC bank; four memory controllers sit at
//! the chip corners. Messages use dimension-ordered (X-Y) routing, so the
//! hop count between two tiles is their Manhattan distance.

use crate::{BankId, CoreId};
use core::fmt;

/// A tile coordinate on the mesh: `x` is the column, `y` the row.
///
/// # Examples
///
/// ```
/// use nuca_types::TileCoord;
/// let a = TileCoord { x: 0, y: 0 };
/// let b = TileCoord { x: 4, y: 3 };
/// assert_eq!(a.manhattan(b), 7);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileCoord {
    /// Column index, `0..cols`.
    pub x: usize,
    /// Row index, `0..rows`.
    pub y: usize,
}

impl TileCoord {
    /// Manhattan distance (X-Y routing hop count) to another tile.
    #[inline]
    pub fn manhattan(self, other: TileCoord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A rectangular mesh of tiles, each holding one core and one LLC bank.
///
/// Tiles are numbered row-major: tile `i` is at column `i % cols`, row
/// `i / cols`. Core `i` and bank `i` are colocated on tile `i`.
///
/// # Examples
///
/// ```
/// use nuca_types::{Mesh, CoreId, BankId};
/// let mesh = Mesh::new(5, 4);
/// assert_eq!(mesh.num_tiles(), 20);
/// assert_eq!(mesh.hops_core_to_bank(CoreId(0), BankId(0)), 0);
/// assert_eq!(mesh.hops_core_to_bank(CoreId(0), BankId(4)), 4);
/// let nearest: Vec<_> = mesh.banks_by_distance(CoreId(0)).collect();
/// assert_eq!(nearest[0], BankId(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    cols: usize,
    rows: usize,
}

impl Mesh {
    /// Creates a mesh with the given number of columns and rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Mesh {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        Mesh { cols, rows }
    }

    /// Number of columns.
    #[inline]
    pub fn cols(self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(self) -> usize {
        self.rows
    }

    /// Total number of tiles (= cores = banks).
    #[inline]
    pub fn num_tiles(self) -> usize {
        self.cols * self.rows
    }

    /// Coordinate of tile `i` (row-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_tiles()`.
    #[inline]
    pub fn tile(self, i: usize) -> TileCoord {
        assert!(i < self.num_tiles(), "tile index {i} out of range");
        TileCoord {
            x: i % self.cols,
            y: i / self.cols,
        }
    }

    /// Tile index of a coordinate.
    #[inline]
    pub fn tile_index(self, c: TileCoord) -> usize {
        debug_assert!(c.x < self.cols && c.y < self.rows);
        c.y * self.cols + c.x
    }

    /// Coordinate of the tile holding `core`.
    #[inline]
    pub fn core_tile(self, core: CoreId) -> TileCoord {
        self.tile(core.index())
    }

    /// Coordinate of the tile holding `bank`.
    #[inline]
    pub fn bank_tile(self, bank: BankId) -> TileCoord {
        self.tile(bank.index())
    }

    /// X-Y routing hop count from a core's tile to a bank's tile.
    #[inline]
    pub fn hops_core_to_bank(self, core: CoreId, bank: BankId) -> usize {
        self.core_tile(core).manhattan(self.bank_tile(bank))
    }

    /// X-Y routing hop count between two banks' tiles.
    #[inline]
    pub fn hops_bank_to_bank(self, a: BankId, b: BankId) -> usize {
        self.bank_tile(a).manhattan(self.bank_tile(b))
    }

    /// The four corner tiles, in the order NW, NE, SW, SE.
    pub fn corner_tiles(self) -> [TileCoord; 4] {
        [
            TileCoord { x: 0, y: 0 },
            TileCoord {
                x: self.cols - 1,
                y: 0,
            },
            TileCoord {
                x: 0,
                y: self.rows - 1,
            },
            TileCoord {
                x: self.cols - 1,
                y: self.rows - 1,
            },
        ]
    }

    /// Hop count from a tile to its nearest corner (memory controllers sit
    /// at chip corners).
    pub fn hops_to_nearest_corner(self, t: TileCoord) -> usize {
        self.corner_tiles()
            .iter()
            .map(|c| t.manhattan(*c))
            .min()
            .expect("mesh has four corners")
    }

    /// Iterator over all bank ids sorted by X-Y distance from `core`
    /// (nearest first; ties broken by bank index for determinism).
    pub fn banks_by_distance(self, core: CoreId) -> BanksByDistance {
        let origin = self.core_tile(core);
        let mut banks: Vec<(usize, BankId)> = (0..self.num_tiles())
            .map(|i| (self.tile(i).manhattan(origin), BankId(i)))
            .collect();
        banks.sort();
        BanksByDistance {
            inner: banks.into_iter(),
        }
    }

    /// Average hop distance from `core` to a set of `(bank, weight)` pairs,
    /// where weights are the fraction of accesses served by each bank.
    ///
    /// Returns 0 for an empty placement.
    pub fn weighted_distance<I>(self, core: CoreId, placement: I) -> f64
    where
        I: IntoIterator<Item = (BankId, f64)>,
    {
        let origin = self.core_tile(core);
        let mut total_w = 0.0;
        let mut total_d = 0.0;
        for (bank, w) in placement {
            total_w += w;
            total_d += w * self.bank_tile(bank).manhattan(origin) as f64;
        }
        if total_w > 0.0 {
            total_d / total_w
        } else {
            0.0
        }
    }

    /// Average hop distance from `core` over *all* banks, weighted equally.
    ///
    /// This is the S-NUCA average distance, since static NUCA stripes data
    /// uniformly across every bank.
    pub fn snuca_avg_distance(self, core: CoreId) -> f64 {
        self.weighted_distance(core, (0..self.num_tiles()).map(|i| (BankId(i), 1.0)))
    }
}

/// Iterator over banks sorted by distance from a core.
///
/// Produced by [`Mesh::banks_by_distance`].
#[derive(Debug, Clone)]
pub struct BanksByDistance {
    inner: std::vec::IntoIter<(usize, BankId)>,
}

impl Iterator for BanksByDistance {
    type Item = BankId;

    fn next(&mut self) -> Option<BankId> {
        self.inner.next().map(|(_, b)| b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for BanksByDistance {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(5, 4)
    }

    #[test]
    fn row_major_numbering() {
        let m = mesh();
        assert_eq!(m.tile(0), TileCoord { x: 0, y: 0 });
        assert_eq!(m.tile(4), TileCoord { x: 4, y: 0 });
        assert_eq!(m.tile(5), TileCoord { x: 0, y: 1 });
        assert_eq!(m.tile(19), TileCoord { x: 4, y: 3 });
        for i in 0..20 {
            assert_eq!(m.tile_index(m.tile(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_out_of_range_panics() {
        mesh().tile(20);
    }

    #[test]
    fn manhattan_distances() {
        let m = mesh();
        assert_eq!(m.hops_core_to_bank(CoreId(0), BankId(0)), 0);
        assert_eq!(m.hops_core_to_bank(CoreId(0), BankId(19)), 7);
        assert_eq!(m.hops_bank_to_bank(BankId(2), BankId(12)), 2);
    }

    #[test]
    fn corners_and_memory_distance() {
        let m = mesh();
        let corners = m.corner_tiles();
        assert_eq!(corners[0], TileCoord { x: 0, y: 0 });
        assert_eq!(corners[3], TileCoord { x: 4, y: 3 });
        // Center tile (2,1) is 3 hops from NW and 3 from SW; nearest is 3.
        assert_eq!(m.hops_to_nearest_corner(TileCoord { x: 2, y: 1 }), 3);
        // A corner is 0 hops from itself.
        assert_eq!(m.hops_to_nearest_corner(TileCoord { x: 0, y: 0 }), 0);
    }

    #[test]
    fn banks_by_distance_sorted_and_complete() {
        let m = mesh();
        let banks: Vec<BankId> = m.banks_by_distance(CoreId(0)).collect();
        assert_eq!(banks.len(), 20);
        assert_eq!(banks[0], BankId(0));
        // Distances must be non-decreasing.
        let mut last = 0;
        for b in &banks {
            let d = m.hops_core_to_bank(CoreId(0), *b);
            assert!(d >= last, "distances must be sorted");
            last = d;
        }
        // Ties broken by index: distance-1 banks from core 0 are 1 and 5.
        assert_eq!(banks[1], BankId(1));
        assert_eq!(banks[2], BankId(5));
    }

    #[test]
    fn weighted_distance_basic() {
        let m = mesh();
        // All accesses to the local bank: distance 0.
        assert_eq!(m.weighted_distance(CoreId(0), [(BankId(0), 1.0)]), 0.0);
        // Half local, half one hop away: 0.5.
        let d = m.weighted_distance(CoreId(0), [(BankId(0), 0.5), (BankId(1), 0.5)]);
        assert!((d - 0.5).abs() < 1e-12);
        // Empty placement is defined as zero.
        assert_eq!(m.weighted_distance(CoreId(0), []), 0.0);
    }

    #[test]
    fn snuca_distance_is_uniform_average() {
        let m = mesh();
        let d = m.snuca_avg_distance(CoreId(0));
        let expect: f64 = (0..20)
            .map(|i| m.hops_core_to_bank(CoreId(0), BankId(i)) as f64)
            .sum::<f64>()
            / 20.0;
        assert!((d - expect).abs() < 1e-12);
        // Corner cores are farther from data on average than center cores.
        let center = m.snuca_avg_distance(CoreId(7));
        assert!(d > center);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        Mesh::new(0, 4);
    }
}
