//! Reproduction studies beyond the paper's figures: the design-choice
//! ablation and the modeling-constant sensitivity sweep.

use super::sim_opts;
use crate::cell_cache::CellCache;
use crate::exec::parallel_map_traced;
use crate::spec::ExperimentSpec;
use jumanji::core::jumanji_with_trades;
use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji::types::{Error, Seconds};
use jumanji::workloads::WorkloadMix;
use std::io::Write;

/// Ablation study of Jumanji's design choices (DESIGN.md §"ablations"):
///
/// 1. **Trade refinement** (Sec. V-D): Jumanji + the trade pass vs plain
///    Jumanji — reproduces the paper's negative result (trades are rare
///    and gains marginal).
/// 2. **Bank isolation** (Sec. VI-D): Jumanji vs Insecure — what the
///    security guarantee costs.
/// 3. **Greedy LC placement** (Sec. VIII-C): Jumanji vs Ideal Batch —
///    what the simple LatCritPlacer leaves on the table.
/// 4. **Controller panic** (Sec. V-C): paper controller vs one with the
///    panic disabled — why the boost matters for tails.
pub fn ablation(
    spec: &ExperimentSpec,
    tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let mixes = spec.mixes;
    let opts = sim_opts(spec);
    let threads = spec.threads;

    // 1. Trade refinement on static placement problems.
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let base = CellCache::global().allocate(DesignKind::Jumanji, &input);
    let (traded, stats) = jumanji_with_trades(&input);
    let avg_batch_dist = |alloc: &jumanji::core::Allocation| -> f64 {
        let batch: Vec<_> = input
            .apps
            .iter()
            .filter(|a| a.kind == jumanji::core::AppKind::Batch)
            .collect();
        batch
            .iter()
            .map(|a| alloc.avg_distance(&input, a.id))
            .sum::<f64>()
            / batch.len() as f64
    };
    writeln!(out, "# Ablation 1: trade-based refinement (paper Sec. V-D)")?;
    writeln!(
        out,
        "trades\taccepted {}/{} candidates",
        stats.accepted, stats.attempted
    )?;
    writeln!(
        out,
        "trades\tbatch avg distance: {:.3} hops -> {:.3} hops",
        avg_batch_dist(&base),
        avg_batch_dist(&traded)
    )?;
    writeln!(
        out,
        "# expected: few accepts, marginal distance change (the paper omitted trades).\n"
    )?;

    // 2-3. Isolation and ideality costs over random mixes, one seed per
    // worker-pool job.
    let per_seed = parallel_map_traced(mixes, threads, tel, |seed| {
        let cache = CellCache::global();
        let exp = cache.experiment(case_study_mix(seed as u64), LcLoad::High, opts.clone());
        let stat = cache.run(&exp, DesignKind::Static, tel);
        (
            cache
                .run(&exp, DesignKind::Jumanji, tel)
                .weighted_speedup_vs(&stat),
            cache
                .run(&exp, DesignKind::JumanjiInsecure, tel)
                .weighted_speedup_vs(&stat),
            cache
                .run(&exp, DesignKind::JumanjiIdealBatch, tel)
                .weighted_speedup_vs(&stat),
        )
    });
    let jumanji_s: Vec<f64> = per_seed.iter().map(|r| r.0).collect();
    let insecure_s: Vec<f64> = per_seed.iter().map(|r| r.1).collect();
    let ideal_s: Vec<f64> = per_seed.iter().map(|r| r.2).collect();
    writeln!(
        out,
        "# Ablation 2-3: isolation and greedy-placement costs ({mixes} mixes)"
    )?;
    writeln!(
        out,
        "isolation\tjumanji {:+.2}% vs insecure {:+.2}% (cost {:.2} pp)",
        (gmean(&jumanji_s) - 1.0) * 100.0,
        (gmean(&insecure_s) - 1.0) * 100.0,
        (gmean(&insecure_s) - gmean(&jumanji_s)) * 100.0
    )?;
    writeln!(
        out,
        "greedy-lc\tjumanji {:+.2}% vs ideal {:+.2}% (gap {:.2} pp)",
        (gmean(&jumanji_s) - 1.0) * 100.0,
        (gmean(&ideal_s) - 1.0) * 100.0,
        (gmean(&ideal_s) - gmean(&jumanji_s)) * 100.0
    )?;
    writeln!(
        out,
        "# expected: isolation cost < ~3 pp, ideality gap < ~2 pp (Fig. 16).\n"
    )?;

    // 4. Panic ablation: raise the threshold out of reach.
    let no_panic = no_panic_params();
    let tails = parallel_map_traced(mixes, threads, tel, |seed| {
        let cache = CellCache::global();
        let exp = cache.experiment(case_study_mix(seed as u64), LcLoad::High, opts.clone());
        let with_t = cache.run(&exp, DesignKind::Jumanji, tel).max_norm_tail();
        let exp2 = cache.experiment(
            case_study_mix(seed as u64),
            LcLoad::High,
            SimOptions {
                controller: Some(no_panic),
                ..opts.clone()
            },
        );
        let without_t = cache.run(&exp2, DesignKind::Jumanji, tel).max_norm_tail();
        (with_t, without_t)
    });
    let with_t = tails.iter().map(|t| t.0).fold(0.0f64, f64::max);
    let without_t = tails.iter().map(|t| t.1).fold(0.0f64, f64::max);
    writeln!(out, "# Ablation 4: controller panic boost")?;
    writeln!(
        out,
        "panic\tworst norm tail with panic: {with_t:.2}, without: {without_t:.2}"
    )?;
    writeln!(
        out,
        "# expected: disabling the panic worsens worst-case tails (queueing spikes"
    )?;
    writeln!(out, "# otherwise recover one 10% step per 100 ms).")?;
    Ok(())
}

/// The panic-disabled controller of ablation part 4: the paper's
/// parameters with the panic threshold raised out of reach. Shared by
/// the renderer and the suite's plan pass ([`super::plan`]) so both
/// name the panic-ablation cells identically.
pub(crate) fn no_panic_params() -> ControllerParams {
    let llc = SystemConfig::micro2020().llc.total_bytes() as f64;
    ControllerParams {
        panic_threshold: f64::MAX,
        ..ControllerParams::micro2020(llc)
    }
}

struct Row {
    label: String,
    jumanji_speedup: f64,
    jigsaw_speedup: f64,
    adaptive_speedup: f64,
    jumanji_tail: f64,
    jigsaw_tail: f64,
}

// lint:allow(plan-bypass): the mix/opts arrive as parameters — every caller
// builds them via sensitivity_jobs(), the shared plan helper for this sweep.
fn sensitivity_run_one(
    mix: WorkloadMix,
    opts: SimOptions,
    label: String,
    tel: &dyn Telemetry,
) -> Row {
    let cache = CellCache::global();
    let exp = cache.experiment(mix, LcLoad::High, opts);
    let stat = cache.run(&exp, DesignKind::Static, tel);
    let jumanji = cache.run(&exp, DesignKind::Jumanji, tel);
    let jigsaw = cache.run(&exp, DesignKind::Jigsaw, tel);
    let adaptive = cache.run(&exp, DesignKind::Adaptive, tel);
    Row {
        label,
        jumanji_speedup: (jumanji.weighted_speedup_vs(&stat) - 1.0) * 100.0,
        jigsaw_speedup: (jigsaw.weighted_speedup_vs(&stat) - 1.0) * 100.0,
        adaptive_speedup: (adaptive.weighted_speedup_vs(&stat) - 1.0) * 100.0,
        jumanji_tail: jumanji.max_norm_tail(),
        jigsaw_tail: jigsaw.max_norm_tail(),
    }
}

/// The sensitivity sweep's job list for `n` seeds per knob:
/// `(mix, options, label)` rows in sweep order. Shared by the renderer
/// and the suite's plan pass ([`super::plan`]) so both enumerate
/// identical cells. Construction is cheap and deterministic.
pub(crate) fn sensitivity_jobs(n: usize) -> Vec<(WorkloadMix, SimOptions, String)> {
    let mut jobs: Vec<(WorkloadMix, SimOptions, String)> = Vec::new();

    // 1. Miss-serialization factor of the LC service model.
    for stall in [2.0f64, 3.0, 4.0] {
        for seed in 0..n as u64 {
            let mut mix = case_study_mix(seed);
            for vm in &mut mix.vms {
                for lc in &mut vm.lc {
                    lc.miss_stall = stall;
                }
            }
            jobs.push((mix, SimOptions::default(), format!("miss_stall\t{stall}x")));
        }
    }
    // 2. Simulated horizon.
    for secs in [2.0f64, 4.0, 8.0] {
        for seed in 0..n as u64 {
            jobs.push((
                case_study_mix(seed),
                SimOptions {
                    duration: Seconds(secs),
                    ..SimOptions::default()
                },
                format!("duration\t{secs}s"),
            ));
        }
    }
    // 3. Reconfiguration period (the paper: "more frequent
    //    reconfigurations do not improve results").
    for ms in [50.0f64, 100.0, 200.0] {
        for seed in 0..n as u64 {
            jobs.push((
                case_study_mix(seed),
                SimOptions {
                    reconfig: Seconds::from_millis(ms),
                    ..SimOptions::default()
                },
                format!("reconfig\t{ms}ms"),
            ));
        }
    }
    // 4. Arrival-stream seeds.
    for seed in 0..(3 * n as u64) {
        jobs.push((
            case_study_mix(seed),
            SimOptions {
                seed: seed ^ 0xC0FFEE,
                ..SimOptions::default()
            },
            "seed\tvaried".to_string(),
        ));
    }
    jobs
}

/// Robustness of the reproduction's conclusions to its modeling
/// constants.
///
/// The workload models involve calibrated constants the paper's real
/// binaries fix implicitly (the pointer-chasing miss-serialization
/// factor, simulated horizon, reconfiguration period, RNG seeds). This
/// sweep shows the *qualitative* conclusions — Jumanji meets deadlines
/// near Jigsaw's batch speedup while Jigsaw violates and S-NUCA designs
/// gain nothing — hold across those choices.
pub fn sensitivity(
    spec: &ExperimentSpec,
    tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let n = spec.mixes;
    writeln!(
        out,
        "# Sensitivity of conclusions to modeling choices ({n} seeds each)"
    )?;
    writeln!(
        out,
        "knob\tvariant\tjumanji%\tjigsaw%\tadaptive%\tjumanji_tail\tjigsaw_tail"
    )?;
    // The expensive part (the four simulation runs per job) fans out
    // across the thread pool, with results landing back in list order.
    let jobs = sensitivity_jobs(n);

    let rows: Vec<Row> = parallel_map_traced(jobs.len(), spec.threads, tel, |i| {
        let (mix, opts, label) = &jobs[i];
        sensitivity_run_one(mix.clone(), opts.clone(), label.clone(), tel)
    });

    // Aggregate rows by label.
    let mut agg: Vec<(String, Vec<&Row>)> = Vec::new();
    for r in &rows {
        match agg.iter_mut().find(|(l, _)| *l == r.label) {
            Some((_, v)) => v.push(r),
            None => agg.push((r.label.clone(), vec![r])),
        }
    }
    let mut ok = true;
    for (label, group) in &agg {
        let mean = |f: fn(&Row) -> f64| -> f64 {
            group.iter().map(|r| f(r)).sum::<f64>() / group.len() as f64
        };
        let (ju, ji, ad) = (
            mean(|r| r.jumanji_speedup),
            mean(|r| r.jigsaw_speedup),
            mean(|r| r.adaptive_speedup),
        );
        let (jut, jit) = (mean(|r| r.jumanji_tail), mean(|r| r.jigsaw_tail));
        writeln!(
            out,
            "{label}\t{ju:.2}\t{ji:.2}\t{ad:.2}\t{jut:.2}\t{jit:.2}"
        )?;
        // The qualitative claims under every variant: Jumanji gains real
        // batch speedup while (roughly) meeting deadlines, Jigsaw gains
        // more but its mean worst-case tail violates the deadline, and
        // S-NUCA partitioning gains comparatively nothing. The Jigsaw
        // gate is a violation test (> 1.1), not a magnitude test: how far
        // past the deadline Jigsaw lands swings with the knobs (12.8x at
        // 4x miss-serialization, 1.2x at 2x), and that swing is expected.
        ok &= ju > 4.0 && ji > ju && ju > ad + 3.0 && jut < 1.5 && jit > 1.1;
    }
    writeln!(
        out,
        "# qualitative conclusions hold under every variant: {}",
        if ok {
            "YES"
        } else {
            "NO — inspect rows above"
        }
    )?;
    Ok(())
}
