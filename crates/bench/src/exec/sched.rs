//! Dependency-aware work-graph scheduler.
//!
//! [`parallel_map`](super::parallel_map) hands out independent,
//! identically-shaped jobs through one atomic counter. The suite's
//! cross-figure plan is a different animal: a *graph* of heterogeneous
//! nodes (experiment constructions feeding design runs) whose costs span
//! two orders of magnitude, where finishing a figure's last node should
//! unblock rendering immediately. This module executes such graphs:
//!
//! - **Per-worker deques.** Each worker owns a deque of ready nodes and
//!   pops from the front. Nodes a completion enables go to the front of
//!   the completing worker's own deque (the experiment it just built is
//!   hot; its runs should follow), giving depth-first descent along
//!   dependency chains.
//! - **Steal-half.** A worker whose deque runs dry takes roughly half of
//!   a victim's deque from the *back* — the victim keeps the
//!   high-priority front it is about to pop, the thief gets a batch big
//!   enough to amortize the next several claims.
//! - **Long-pole-first.** Every node gets a priority = its cost prior
//!   plus the heaviest chain of dependent work hanging off it
//!   (critical-path-to-leaf over the [`plan`](crate::plan) cost priors).
//!   Seeds are dealt round-robin in descending priority, so the longest
//!   poles start first and stragglers can't ambush the tail of the run.
//!
//! The scheduler runs *effects*, not values: the caller's closure writes
//! results through the shared [`CellCache`](crate::cell_cache::CellCache),
//! so execution order can never change what a later lookup observes —
//! only wall-clock. Telemetry ([`Event::SchedSteal`],
//! [`Event::SchedQueue`], [`Event::SchedWorker`], [`Event::SchedSummary`])
//! records how the pool behaved, including the measured critical path —
//! the wall-clock floor no worker count can beat.

// exec/ is the sanctioned timing layer (lint.toml [paths].timing_allow);
// the scheduler's epoch stamps feed telemetry, never fingerprinted output.
#![allow(clippy::disallowed_methods)]

use jumanji::telemetry::{Event, Telemetry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A static work graph: per-node cost priors plus dependency edges.
///
/// Node ids are dense `0..len()`. Edges point from prerequisite to
/// dependent implicitly: `deps[i]` lists the nodes that must complete
/// before `i` may run.
#[derive(Debug, Clone)]
pub struct Graph {
    deps: Vec<Vec<u32>>,
    dependents: Vec<Vec<u32>>,
    topo: Vec<u32>,
    priority: Vec<f64>,
}

impl Graph {
    /// Builds a graph from cost priors and dependency lists and computes
    /// the long-pole priorities (critical-path-to-leaf over the priors).
    ///
    /// # Panics
    ///
    /// Panics when a dependency index is out of range or the graph has a
    /// cycle — both are construction bugs in the planner, not runtime
    /// conditions.
    pub fn new(costs: &[f64], deps: Vec<Vec<u32>>) -> Graph {
        let n = costs.len();
        assert_eq!(deps.len(), n, "one dependency list per node");
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut pending: Vec<u32> = vec![0; n];
        for (i, ds) in deps.iter().enumerate() {
            pending[i] = ds.len() as u32;
            for &d in ds {
                assert!((d as usize) < n, "dependency {d} out of range");
                dependents[d as usize].push(i as u32);
            }
        }
        // Kahn's algorithm: topological order, cycle check for free.
        let mut topo: Vec<u32> = Vec::with_capacity(n);
        let mut ready: VecDeque<u32> = (0..n as u32)
            .filter(|&i| pending[i as usize] == 0)
            .collect();
        while let Some(i) = ready.pop_front() {
            topo.push(i);
            for &j in &dependents[i as usize] {
                pending[j as usize] -= 1;
                if pending[j as usize] == 0 {
                    ready.push_back(j);
                }
            }
        }
        assert_eq!(topo.len(), n, "work graph must be acyclic");
        // Long-pole priority: own cost + heaviest dependent chain,
        // computed leaves-first (reverse topological order).
        let mut priority: Vec<f64> = costs.to_vec();
        for &i in topo.iter().rev() {
            let heaviest = dependents[i as usize]
                .iter()
                .map(|&j| priority[j as usize])
                .fold(0.0f64, f64::max);
            priority[i as usize] += heaviest;
        }
        Graph {
            deps,
            dependents,
            topo,
            priority,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Number of dependency edges.
    pub fn edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// The long-pole priority of node `i` (cost prior + heaviest
    /// dependent chain).
    pub fn priority(&self, i: usize) -> f64 {
        self.priority[i]
    }
}

/// What one [`run_graph`] execution measured.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Worker threads the pool ran.
    pub workers: usize,
    /// Total steals across all workers.
    pub steals: u64,
    /// Wall-clock of the execution, µs.
    pub elapsed_us: u64,
    /// Measured critical path: the longest dependency-ordered chain of
    /// node durations, µs. `elapsed_us` can never go below this no
    /// matter how many workers run.
    pub critical_path_us: u64,
    /// Per-worker time spent executing nodes, µs.
    pub busy_us: Vec<u64>,
    /// Per-worker executed-node counts.
    pub jobs: Vec<u64>,
    /// Per-node measured durations, µs, indexed by node id. The suite
    /// feeds these back into the persistent cost priors.
    pub node_us: Vec<u64>,
}

/// One worker's deque of ready node ids, front = highest priority.
///
/// Only the owner pushes (newly enabled dependents) and pops; thieves
/// take batches from the back via [`WorkDeque::steal_back_half`]. A
/// mutex'd `VecDeque` is plenty here: nodes are milliseconds of
/// simulation, so queue operations are noise (and the crate forbids the
/// unsafe code a lock-free Chase-Lev deque would need).
#[derive(Debug, Default)]
struct WorkDeque {
    q: Mutex<VecDeque<u32>>,
}

impl WorkDeque {
    /// Appends `items` (already in descending priority) to the back.
    fn push_back_batch(&self, items: &[u32]) {
        let mut q = self.q.lock().expect("deque lock");
        q.extend(items.iter().copied());
    }

    /// Pushes `items` (descending priority) so `items[0]` ends up at the
    /// front of the deque.
    fn push_front_batch(&self, items: &[u32]) {
        let mut q = self.q.lock().expect("deque lock");
        for &i in items.iter().rev() {
            q.push_front(i);
        }
    }

    /// The owner's claim: pop the highest-priority ready node.
    fn pop_front(&self) -> Option<u32> {
        self.q.lock().expect("deque lock").pop_front()
    }

    /// Takes the back `ceil(len/2)` nodes, preserving their relative
    /// order. Returns an empty vec when there is nothing to steal.
    fn steal_back_half(&self) -> Vec<u32> {
        let mut q = self.q.lock().expect("deque lock");
        let keep = q.len() / 2;
        q.split_off(keep).into()
    }

    fn len(&self) -> usize {
        self.q.lock().expect("deque lock").len()
    }
}

/// Executes `graph` on up to `threads` workers, calling `run(i)` exactly
/// once per node, never before all of node `i`'s dependencies completed.
///
/// `run` performs effects (writing results through a shared cache); the
/// scheduler guarantees the dependency order and measures the execution,
/// it does not collect values. With an enabled sink it emits one
/// [`Event::SchedQueue`] sample per node start, one [`Event::SchedSteal`]
/// per steal, and per-worker/summary events when the pool drains.
///
/// # Panics
///
/// Propagates a panic from any node after the scope unwinds.
pub fn run_graph<F>(graph: &Graph, threads: usize, tel: &dyn Telemetry, run: F) -> GraphReport
where
    F: Fn(usize) + Sync,
{
    let n = graph.len();
    if n == 0 {
        return GraphReport::default();
    }
    let workers = threads.min(n).max(1);
    let tracing = tel.enabled();
    let epoch = Instant::now();

    let pending: Vec<AtomicU32> = graph
        .deps
        .iter()
        .map(|d| AtomicU32::new(d.len() as u32))
        .collect();
    let remaining = AtomicUsize::new(n);
    let durations: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let deques: Vec<WorkDeque> = (0..workers).map(|_| WorkDeque::default()).collect();
    let steal_counts: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let jobs: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

    // Deal the seeds round-robin in descending long-pole priority: each
    // deque starts sorted, and the heaviest chains start first.
    let mut seeds: Vec<u32> = (0..n as u32)
        .filter(|&i| graph.deps[i as usize].is_empty())
        .collect();
    sort_by_priority(&mut seeds, graph);
    for (j, &s) in seeds.iter().enumerate() {
        deques[j % workers].push_back_batch(&[s]);
    }

    std::thread::scope(|scope| {
        let (pending, remaining, durations, deques) = (&pending, &remaining, &durations, &deques);
        let (steal_counts, busy, jobs, run) = (&steal_counts, &busy, &jobs, &run);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut idle_sweeps = 0u32;
                    loop {
                        if let Some(i) = deques[w].pop_front() {
                            idle_sweeps = 0;
                            let i = i as usize;
                            if tracing {
                                let depth: usize = deques.iter().map(WorkDeque::len).sum();
                                tel.emit(&Event::SchedQueue {
                                    at_us: epoch.elapsed().as_micros() as u64,
                                    depth: depth as u64,
                                });
                            }
                            let start = epoch.elapsed();
                            run(i);
                            let dur = epoch.elapsed() - start;
                            durations[i].store(dur.as_micros() as u64, Ordering::Relaxed);
                            busy[w].fetch_add(dur.as_micros() as u64, Ordering::Relaxed);
                            jobs[w].fetch_add(1, Ordering::Relaxed);
                            if tracing {
                                tel.emit(&Event::WorkerSpan {
                                    worker: w,
                                    job: i,
                                    start_us: start.as_micros() as u64,
                                    dur_us: dur.as_micros() as u64,
                                });
                            }
                            // Enable dependents whose last prerequisite
                            // this was; they go to our own front,
                            // highest priority first.
                            let mut enabled: Vec<u32> = graph.dependents[i]
                                .iter()
                                .copied()
                                .filter(|&j| {
                                    pending[j as usize].fetch_sub(1, Ordering::AcqRel) == 1
                                })
                                .collect();
                            if !enabled.is_empty() {
                                sort_by_priority(&mut enabled, graph);
                                deques[w].push_front_batch(&enabled);
                            }
                            remaining.fetch_sub(1, Ordering::AcqRel);
                            continue;
                        }
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Deque dry: sweep the other workers, stealing
                        // half of the first non-empty victim's backlog.
                        let mut stolen = 0usize;
                        for off in 1..workers {
                            let v = (w + off) % workers;
                            let batch = deques[v].steal_back_half();
                            if !batch.is_empty() {
                                stolen = batch.len();
                                deques[w].push_back_batch(&batch);
                                steal_counts[w].fetch_add(1, Ordering::Relaxed);
                                if tracing {
                                    tel.emit(&Event::SchedSteal {
                                        thief: w,
                                        victim: v,
                                        taken: stolen as u64,
                                        at_us: epoch.elapsed().as_micros() as u64,
                                    });
                                }
                                break;
                            }
                        }
                        if stolen == 0 {
                            // Everything ready is in flight elsewhere.
                            // Yield a few times, then sleep: on a
                            // time-sliced core a spinning sibling would
                            // steal cycles from the worker doing work.
                            idle_sweeps += 1;
                            if idle_sweeps <= 3 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("scheduler worker panicked");
        }
    });

    let elapsed_us = epoch.elapsed().as_micros() as u64;
    let node_us: Vec<u64> = durations
        .iter()
        .map(|d| d.load(Ordering::Relaxed))
        .collect();
    // Measured critical path: longest chain of durations along
    // dependency edges, in topological order.
    let mut chain: Vec<u64> = node_us.clone();
    for &i in &graph.topo {
        let longest = graph.deps[i as usize]
            .iter()
            .map(|&d| chain[d as usize])
            .max()
            .unwrap_or(0);
        chain[i as usize] += longest;
    }
    let report = GraphReport {
        workers,
        steals: steal_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        elapsed_us,
        critical_path_us: chain.iter().copied().max().unwrap_or(0),
        busy_us: busy.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        jobs: jobs.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        node_us,
    };
    if tracing {
        for (w, count) in steal_counts.iter().enumerate() {
            tel.emit(&Event::SchedWorker {
                worker: w,
                jobs: report.jobs[w],
                steals: count.load(Ordering::Relaxed),
                busy_us: report.busy_us[w],
                span_us: elapsed_us,
            });
        }
        tel.emit(&Event::SchedSummary {
            nodes: n as u64,
            edges: graph.edges() as u64,
            workers: workers as u64,
            steals: report.steals,
            critical_path_us: report.critical_path_us,
            elapsed_us,
        });
    }
    report
}

/// Sorts node ids by descending long-pole priority (ties broken by id,
/// so the order is deterministic).
fn sort_by_priority(ids: &mut [u32], graph: &Graph) {
    ids.sort_unstable_by(|&a, &b| {
        graph
            .priority(b as usize)
            .partial_cmp(&graph.priority(a as usize))
            .expect("finite priorities")
            .then(a.cmp(&b))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumanji::telemetry::{NoopSink, RecordingSink};
    use std::sync::atomic::AtomicUsize;

    /// A diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> Graph {
        Graph::new(
            &[1.0, 1.0, 1.0, 1.0],
            vec![vec![], vec![0], vec![0], vec![1, 2]],
        )
    }

    #[test]
    fn deque_claims_front_and_steals_back_half() {
        let d = WorkDeque::default();
        d.push_back_batch(&[5, 4, 3, 2, 1]);
        assert_eq!(d.pop_front(), Some(5));
        // 4 left; steal takes the back ceil(4/2) = 2 in order.
        assert_eq!(d.steal_back_half(), vec![2, 1]);
        assert_eq!(d.len(), 2);
        // Enabled nodes go to the front, highest first.
        d.push_front_batch(&[9, 8]);
        assert_eq!(d.pop_front(), Some(9));
        assert_eq!(d.pop_front(), Some(8));
        assert_eq!(d.pop_front(), Some(4));
        assert_eq!(d.pop_front(), Some(3));
        assert_eq!(d.pop_front(), None);
        assert_eq!(d.steal_back_half(), Vec::<u32>::new());
        // Stealing from a single-item deque takes that item: the victim
        // keeps floor(1/2) = 0.
        d.push_back_batch(&[7]);
        assert_eq!(d.steal_back_half(), vec![7]);
    }

    #[test]
    fn deque_concurrent_claims_and_steals_lose_nothing() {
        // One owner popping, three thieves stealing halves: every item
        // is claimed exactly once.
        const N: u32 = 10_000;
        let owner = WorkDeque::default();
        let items: Vec<u32> = (0..N).collect();
        owner.push_back_batch(&items);
        let seen: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let claimed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (owner, seen, claimed) = (&owner, &seen, &claimed);
            s.spawn(move || {
                while claimed.load(Ordering::Relaxed) < N as usize {
                    if let Some(i) = owner.pop_front() {
                        seen[i as usize].fetch_add(1, Ordering::Relaxed);
                        claimed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            for _ in 0..3 {
                s.spawn(move || {
                    let mine = WorkDeque::default();
                    while claimed.load(Ordering::Relaxed) < N as usize {
                        let batch = owner.steal_back_half();
                        mine.push_back_batch(&batch);
                        while let Some(i) = mine.pop_front() {
                            seen[i as usize].fetch_add(1, Ordering::Relaxed);
                            claimed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} claimed wrongly");
        }
    }

    #[test]
    fn graph_rejects_cycles_and_bad_edges() {
        let cycle = std::panic::catch_unwind(|| {
            Graph::new(&[1.0, 1.0], vec![vec![1], vec![0]]);
        });
        assert!(cycle.is_err(), "cycle must panic");
        let range = std::panic::catch_unwind(|| {
            Graph::new(&[1.0], vec![vec![7]]);
        });
        assert!(range.is_err(), "out-of-range dep must panic");
    }

    #[test]
    fn long_pole_priority_is_critical_path_to_leaf() {
        // 0 (cost 1) -> 1 (cost 10) -> 2 (cost 1); 3 (cost 5) isolated.
        let g = Graph::new(
            &[1.0, 10.0, 1.0, 5.0],
            vec![vec![], vec![0], vec![1], vec![]],
        );
        assert_eq!(g.priority(0), 12.0);
        assert_eq!(g.priority(1), 11.0);
        assert_eq!(g.priority(2), 1.0);
        assert_eq!(g.priority(3), 5.0);
    }

    #[test]
    fn run_graph_respects_dependencies_at_every_width() {
        for threads in [1usize, 2, 4, 7] {
            let g = diamond();
            let order = Mutex::new(Vec::new());
            let report = run_graph(&g, threads, &NoopSink, |i| {
                order.lock().unwrap().push(i);
            });
            let order = order.into_inner().unwrap();
            assert_eq!(order.len(), 4);
            let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
            assert!(pos(0) < pos(1));
            assert!(pos(0) < pos(2));
            assert!(pos(1) < pos(3));
            assert!(pos(2) < pos(3));
            assert_eq!(report.jobs.iter().sum::<u64>(), 4);
        }
    }

    #[test]
    fn run_graph_runs_every_node_exactly_once() {
        // A two-layer fan: 8 seeds each feeding 4 dependents.
        let mut costs = vec![1.0; 8];
        let mut deps: Vec<Vec<u32>> = vec![vec![]; 8];
        for s in 0..8u32 {
            for _ in 0..4 {
                costs.push(1.0);
                deps.push(vec![s]);
            }
        }
        let g = Graph::new(&costs, deps);
        let counts: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        run_graph(&g, 4, &NoopSink, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "node {i}");
        }
    }

    #[test]
    fn single_worker_runs_long_poles_first() {
        // Two chains: heavy (0 -> 1) and light (2 -> 3); plus a light
        // isolated node 4. Long-pole-first on one worker must start the
        // heavy chain before anything light.
        let g = Graph::new(
            &[10.0, 10.0, 1.0, 1.0, 0.5],
            vec![vec![], vec![0], vec![], vec![2], vec![]],
        );
        let order = Mutex::new(Vec::new());
        run_graph(&g, 1, &NoopSink, |i| {
            order.lock().unwrap().push(i);
        });
        // Depth-first down the heavy chain, then the light chain, then
        // the isolated leaf.
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn traced_run_emits_sched_events() {
        let g = diamond();
        let sink = RecordingSink::new();
        let report = run_graph(&g, 2, &sink, |_| {});
        let events = sink.events();
        let spans = events
            .iter()
            .filter(|e| matches!(e, Event::WorkerSpan { .. }))
            .count();
        assert_eq!(spans, 4, "one span per node");
        let queues = events
            .iter()
            .filter(|e| matches!(e, Event::SchedQueue { .. }))
            .count();
        assert_eq!(queues, 4, "one depth sample per node start");
        let workers = events
            .iter()
            .filter(|e| matches!(e, Event::SchedWorker { .. }))
            .count();
        assert_eq!(workers, report.workers);
        let summary = events.iter().find_map(|e| match e {
            Event::SchedSummary { nodes, edges, .. } => Some((*nodes, *edges)),
            _ => None,
        });
        assert_eq!(summary, Some((4, 4)));
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        let g = Graph::new(&[], vec![]);
        let report = run_graph(&g, 4, &NoopSink, |_| panic!("no nodes to run"));
        assert_eq!(report.elapsed_us, 0);
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn measured_critical_path_bounds_elapsed() {
        // A serial chain: elapsed must be at least the critical path,
        // and the critical path must cover every node's duration.
        let g = Graph::new(&[1.0; 3], vec![vec![], vec![0], vec![1]]);
        let report = run_graph(&g, 4, &NoopSink, |_| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(report.critical_path_us >= 3 * 2_000 - 1_000);
        assert!(report.elapsed_us >= report.critical_path_us);
    }
}
