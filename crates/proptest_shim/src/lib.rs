//! A hermetic property-testing shim exposing the subset of the
//! `proptest` API this workspace's tests use.
//!
//! Like the `rand` shim, this exists so `cargo test` works with
//! `--offline` on machines with no crates.io mirror. It keeps proptest's
//! *interface* — [`Strategy`], `proptest::collection::vec`, the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assume!`] macros — but trades
//! away shrinking: a failing case reports its inputs (via the assertion
//! message) and the deterministic per-test seed, without minimization.
//!
//! Case generation is deterministic: each test's RNG is seeded from a
//! hash of its fully-qualified name, so failures reproduce across runs
//! and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The per-test deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds the RNG from a test's fully-qualified name (FNV-1a), so
    /// every test draws an independent, reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// The next uniform 64-bit word (used by strategy impls).
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen_range(0.0..1.0)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }
}

/// How a generated case ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's assumptions were not met; draw another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxed strategies compose through references too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(0, self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
    )*};
}
int_strategy!(u64, u32, usize, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: a fixed size or a `usize` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.lo, self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `vec(strategy, len)` / `vec(strategy, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Runs one proptest-style test function body. Used by the [`proptest!`]
/// macro expansion; not part of the public proptest API.
pub fn run_cases<G>(name: &str, config: ProptestConfig, mut generate: G)
where
    G: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(10).max(config.cases);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        match generate(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {} failed: {msg}", accepted + 1)
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let full_name = concat!(module_path!(), "::", stringify!($name));
            $crate::run_cases(full_name, $cfg, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                let mut __run = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __run()
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case unless `cond` holds (draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_honors_fixed_and_ranged_sizes() {
        let mut rng = TestRng::from_name("vecs");
        let fixed = crate::collection::vec(0u64..10, 7);
        assert_eq!(Strategy::generate(&fixed, &mut rng).len(), 7);
        let ranged = crate::collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&ranged, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = (1u64..5, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn oneof_picks_every_arm() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(0u64..1_000_000, 10);
        let a = Strategy::generate(&strat, &mut TestRng::from_name("same"));
        let b = Strategy::generate(&strat, &mut TestRng::from_name("same"));
        let c = Strategy::generate(&strat, &mut TestRng::from_name("other"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: args bind, assume rejects, asserts
        /// pass.
        #[test]
        fn macro_roundtrip(x in 0u64..100, ys in crate::collection::vec(0u64..10, 1..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x, 13);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("expected".to_string()))
        });
    }
}
