//! Analytic cache models used by the epoch-based performance simulator.
//!
//! Two effects matter for reproducing the paper's comparisons:
//!
//! 1. **Associativity penalty** ([`assoc_penalty`]): way-partitioning
//!    restricts a partition to few ways, raising conflict misses. This is
//!    why VM-Part pays for its security (Sec. III) and why conventional
//!    way-partitioning "can only defend a small amount of data" (Sec. II-C).
//!    D-NUCA partitions at *bank* granularity, keeping full per-bank
//!    associativity.
//! 2. **Unpartitioned sharing** ([`shared_occupancy`]): when several
//!    applications share cache space without partitioning (the batch region
//!    in Static/Adaptive), occupancy settles where insertion (miss) rates
//!    balance. We compute that equilibrium by fixed-point iteration on the
//!    applications' miss curves — the standard LRU sharing model.

use crate::MissCurve;

/// Multiplicative miss inflation for a partition restricted to `ways` ways,
/// relative to the full associativity of `full_ways`.
///
/// The model is `1 + beta * (1/ways - 1/full_ways)`, calibrated so that very
/// narrow partitions (1–2 ways) suffer roughly 15–30 % extra misses while
/// 8+ ways are nearly penalty-free, matching the way-partitioning
/// literature the paper cites \[27, 45, 69\].
///
/// Fractional `ways` are allowed (capacity shares that do not align to way
/// boundaries); values below one way are clamped to one.
///
/// # Examples
///
/// ```
/// use nuca_cache::analytic::assoc_penalty;
/// let narrow = assoc_penalty(1.0, 32);
/// let wide = assoc_penalty(32.0, 32);
/// assert!(narrow > 1.3 && narrow < 1.5);
/// assert!((wide - 1.0).abs() < 1e-12);
/// ```
pub fn assoc_penalty(ways: f64, full_ways: u32) -> f64 {
    const BETA: f64 = 0.32;
    let w = ways.max(1.0);
    let full = full_ways as f64;
    1.0 + BETA * (1.0 / w - 1.0 / full).max(0.0)
}

/// Equilibrium occupancies (in curve units) of applications sharing
/// `total_units` of unpartitioned cache.
///
/// Each curve must give *absolute miss rates* (misses per unit time) as a
/// function of allocated units. At equilibrium, occupancy is proportional
/// to insertion rate, i.e. to the miss rate at that occupancy; we iterate
/// `occ_i ∝ misses_i(occ_i)` to a fixed point.
///
/// Returns one fractional occupancy per application, summing to
/// `total_units` (or less if the group's total footprint is smaller than
/// the space).
///
/// # Panics
///
/// Panics if `curves` is empty.
///
/// # Examples
///
/// ```
/// use nuca_cache::{analytic::shared_occupancy, MissCurve};
/// let hog = MissCurve::new(1, vec![100.0, 80.0, 60.0, 40.0, 20.0]);
/// let meek = MissCurve::new(1, vec![10.0, 1.0, 0.5, 0.4, 0.3]);
/// let occ = shared_occupancy(&[hog, meek], 4.0);
/// assert!(occ[0] > occ[1], "the high-miss-rate app occupies more");
/// ```
pub fn shared_occupancy(curves: &[MissCurve], total_units: f64) -> Vec<f64> {
    let mut occ = Vec::new();
    let mut scratch = OccupancyScratch::default();
    shared_occupancy_into(curves, total_units, &mut occ, &mut scratch);
    occ
}

/// Reusable iteration buffers for [`shared_occupancy_into`]: the epoch
/// engine resolves pool equilibria every interval, and the fixed point
/// would otherwise allocate two vectors per iteration (up to 200 per call).
#[derive(Debug, Default)]
pub struct OccupancyScratch {
    rates: Vec<f64>,
    next: Vec<f64>,
}

/// [`shared_occupancy`] writing into a caller-provided vector, with
/// reusable iteration buffers. Produces bit-identical occupancies.
///
/// # Panics
///
/// Panics if `curves` is empty.
pub fn shared_occupancy_into(
    curves: &[MissCurve],
    total_units: f64,
    occ: &mut Vec<f64>,
    scratch: &mut OccupancyScratch,
) {
    assert!(!curves.is_empty(), "need at least one sharer");
    let n = curves.len();
    occ.clear();
    if total_units <= 0.0 {
        occ.resize(n, 0.0);
        return;
    }
    // Start from an even split.
    occ.resize(n, total_units / n as f64);
    for _ in 0..100 {
        let rates = &mut scratch.rates;
        rates.clear();
        rates.extend(
            curves
                .iter()
                .zip(occ.iter())
                .map(|(c, &o)| c.eval_units(o).max(1e-12)),
        );
        let sum: f64 = rates.iter().sum();
        let next = &mut scratch.next;
        next.clear();
        next.extend(rates.iter().map(|r| total_units * r / sum));
        // No app can occupy more than its footprint (curve domain).
        let mut overflow = 0.0;
        let mut headroom = 0.0;
        for (i, c) in curves.iter().enumerate() {
            let cap = c.max_units() as f64;
            if next[i] > cap {
                overflow += next[i] - cap;
                next[i] = cap;
            } else {
                headroom += cap - next[i];
            }
        }
        if overflow > 0.0 && headroom > 0.0 {
            for (i, c) in curves.iter().enumerate() {
                let cap = c.max_units() as f64;
                let room = cap - next[i];
                if room > 0.0 {
                    next[i] += overflow * room / headroom;
                }
            }
        }
        // Damped update for stability.
        let mut delta = 0.0;
        for i in 0..n {
            let v = 0.5 * occ[i] + 0.5 * next[i];
            delta += (v - occ[i]).abs();
            occ[i] = v;
        }
        if delta < 1e-9 * total_units.max(1.0) {
            break;
        }
    }
}

/// Total miss rate of a group sharing unpartitioned space, at equilibrium.
///
/// Convenience wrapper over [`shared_occupancy`].
pub fn shared_misses(curves: &[MissCurve], total_units: f64) -> f64 {
    let occ = shared_occupancy(curves, total_units);
    curves.iter().zip(&occ).map(|(c, &o)| c.eval_units(o)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assoc_penalty_monotone_in_ways() {
        let mut last = f64::INFINITY;
        for w in 1..=32 {
            let p = assoc_penalty(w as f64, 32);
            assert!(p <= last, "penalty must shrink with more ways");
            assert!(p >= 1.0);
            last = p;
        }
        assert!((assoc_penalty(32.0, 32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assoc_penalty_clamps_below_one_way() {
        assert_eq!(assoc_penalty(0.25, 32), assoc_penalty(1.0, 32));
    }

    #[test]
    fn shared_occupancy_conserves_capacity() {
        let a = MissCurve::new(1, vec![50.0, 30.0, 20.0, 15.0, 12.0, 10.0]);
        let b = MissCurve::new(1, vec![40.0, 10.0, 5.0, 3.0, 2.0, 1.0]);
        let occ = shared_occupancy(&[a, b], 5.0);
        let total: f64 = occ.iter().sum();
        assert!((total - 5.0).abs() < 1e-6);
        assert!(occ.iter().all(|&o| o >= 0.0));
    }

    #[test]
    fn footprint_caps_occupancy() {
        // A tiny-footprint app cannot occupy more than its curve domain.
        let tiny = MissCurve::new(1, vec![100.0, 0.0]); // 1-unit footprint
        let big = MissCurve::new(1, vec![100.0; 11]);
        let occ = shared_occupancy(&[tiny.clone(), big], 10.0);
        assert!(occ[0] <= 1.0 + 1e-9);
        assert!((occ[0] + occ[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equilibrium_favors_high_miss_rate() {
        // Classic pathology: a streaming app (flat high miss rate) crowds
        // out a cache-friendly app — the interference Adaptive suffers.
        let stream = MissCurve::flat(1, 10, 100.0);
        let friendly = MissCurve::new(
            1,
            vec![50.0, 20.0, 8.0, 3.0, 1.0, 0.5, 0.4, 0.3, 0.2, 0.1, 0.1],
        );
        let occ = shared_occupancy(&[stream, friendly.clone()], 10.0);
        assert!(occ[0] > 6.0, "streaming app hogs space: {occ:?}");
        // The friendly app gets less than half, so its misses exceed its
        // fair-share misses.
        let fair = friendly.eval_units(5.0);
        let actual = friendly.eval_units(occ[1]);
        assert!(actual > fair);
    }

    #[test]
    fn shared_misses_zero_capacity() {
        let a = MissCurve::new(1, vec![5.0, 1.0]);
        assert_eq!(shared_misses(std::slice::from_ref(&a), 0.0), 5.0);
        let occ = shared_occupancy(&[a], 0.0);
        assert_eq!(occ, vec![0.0]);
    }

    #[test]
    fn single_sharer_gets_everything_it_can_use() {
        let a = MissCurve::new(1, vec![9.0, 4.0, 1.0]);
        let occ = shared_occupancy(&[a], 2.0);
        assert!((occ[0] - 2.0).abs() < 1e-9);
    }
}
