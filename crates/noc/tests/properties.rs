//! Property-based tests for the NoC: routing geometry and port-arbitration
//! invariants.

use nuca_noc::{BankPorts, MeshNoc};
use nuca_types::{BankId, CoreId, Cycles, Mesh, SystemConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// X-Y hop counts are a metric: symmetric, zero on the diagonal, and
    /// satisfy the triangle inequality.
    #[test]
    fn hops_form_a_metric(a in 0usize..20, b in 0usize..20, c in 0usize..20) {
        let m = Mesh::new(5, 4);
        let d = |x: usize, y: usize| m.hops_core_to_bank(CoreId(x), BankId(y));
        prop_assert_eq!(d(a, a), 0);
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
    }

    /// One-way latency is monotone in both hops and payload.
    #[test]
    fn latency_monotone(h1 in 0usize..8, h2 in 0usize..8, p1 in 1u64..256, p2 in 1u64..256) {
        let noc = MeshNoc::new(&SystemConfig::micro2020());
        let (hlo, hhi) = if h1 < h2 { (h1, h2) } else { (h2, h1) };
        let (plo, phi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(noc.oneway(hlo, plo) <= noc.oneway(hhi, plo));
        prop_assert!(noc.oneway(hlo, plo) <= noc.oneway(hlo, phi));
    }

    /// Port grants never start before arrival, never overlap beyond the
    /// port count, and total busy time equals requests x occupancy.
    #[test]
    fn port_grants_are_sane(
        ports in 1u32..4,
        occupancy in 1u64..8,
        arrivals in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut bank = BankPorts::new(ports, Cycles(occupancy));
        let mut grants = Vec::new();
        for &t in &sorted {
            let g = bank.request(Cycles(t));
            prop_assert!(g.start.as_u64() >= t);
            prop_assert_eq!(g.done.as_u64(), g.start.as_u64() + occupancy);
            grants.push(g);
        }
        // At the instant any grant starts, at most `ports` grants are in
        // service (counting itself).
        for g in &grants {
            let inflight = grants
                .iter()
                .filter(|o| o.start <= g.start && g.start < o.done)
                .count();
            prop_assert!(inflight <= ports as usize, "{inflight} > {ports}");
        }
        prop_assert_eq!(
            bank.stats().busy_cycles,
            sorted.len() as u64 * occupancy
        );
    }

    /// Weighted distance is bounded by the farthest bank in the placement.
    #[test]
    fn weighted_distance_bounded(
        core in 0usize..20,
        weights in proptest::collection::vec(0.0f64..10.0, 20),
    ) {
        let m = Mesh::new(5, 4);
        let placement: Vec<(BankId, f64)> =
            weights.iter().enumerate().map(|(i, &w)| (BankId(i), w)).collect();
        let d = m.weighted_distance(CoreId(core), placement.iter().copied());
        let max = placement
            .iter()
            .filter(|(_, w)| *w > 0.0)
            .map(|(b, _)| m.hops_core_to_bank(CoreId(core), *b))
            .max()
            .unwrap_or(0) as f64;
        prop_assert!(d <= max + 1e-9);
        prop_assert!(d >= 0.0);
    }
}
