//! Conflict (prime+probe) attacks on shared cache sets (paper Sec. II-C,
//! Fig. 10 ①), and the way-partitioning defense.
//!
//! The attacker fills a cache set with its own lines (*prime*), lets the
//! victim run, then re-accesses its lines (*probe*): a miss means the
//! victim touched that set. Way-partitioning (Intel CAT) defeats this by
//! restricting the victim's insertions to disjoint ways.

use nuca_cache::{BankConfig, CacheBank, LineAddr, PartitionId, ReplPolicy, WayMask};

/// Outcome of one prime+probe round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// Attacker lines evicted between prime and probe.
    pub evictions: u32,
    /// Whether the attacker infers victim activity in the set.
    pub detected: bool,
}

/// Runs one prime+probe round against `set_lines` (addresses mapping to
/// the same set as the victim's `victim_line`).
///
/// `partitioned` applies disjoint way masks (attacker: low half, victim:
/// high half) before the round, modeling the CAT defense.
pub fn prime_probe(ways: u32, victim_accesses: &[LineAddr], partitioned: bool) -> ProbeResult {
    let sets = 64;
    let mut bank = CacheBank::new(BankConfig {
        sets,
        ways,
        policy: ReplPolicy::Lru,
    });
    let attacker = PartitionId(0);
    let victim = PartitionId(1);
    if partitioned {
        bank.set_mask(attacker, WayMask::range(0, ways / 2));
        bank.set_mask(victim, WayMask::range(ways / 2, ways - ways / 2));
    }
    // Prime: fill set 0 with attacker lines (addresses = multiples of
    // `sets` map to set 0).
    let attacker_lines: Vec<LineAddr> = (1..=ways as u64).map(|i| i * sets as u64).collect();
    for &l in &attacker_lines {
        bank.access(l, attacker);
    }
    // Victim runs.
    for &l in victim_accesses {
        bank.access(l, victim);
    }
    // Probe: count attacker lines that were evicted.
    let mut evictions = 0;
    for &l in &attacker_lines {
        if !bank.resident(l) {
            evictions += 1;
        }
    }
    ProbeResult {
        evictions,
        detected: evictions > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SETS: u64 = 64;

    #[test]
    fn unpartitioned_cache_leaks_victim_activity() {
        // The victim touches set 0 (addresses ≡ 0 mod 64).
        let victim: Vec<LineAddr> = (100..104u64).map(|i| i * SETS).collect();
        let r = prime_probe(8, &victim, false);
        assert!(r.detected, "attacker must observe evictions: {r:?}");
        assert!(r.evictions >= 4);
    }

    #[test]
    fn idle_victim_is_indistinguishable() {
        let r = prime_probe(8, &[], false);
        assert!(!r.detected);
    }

    #[test]
    fn victim_in_other_set_is_invisible() {
        // Addresses ≡ 1 mod 64 map to set 1: no conflict with the probe.
        let victim: Vec<LineAddr> = (100..108u64).map(|i| i * SETS + 1).collect();
        let r = prime_probe(8, &victim, false);
        assert!(!r.detected);
    }

    #[test]
    fn way_partitioning_defends_conflict_attack() {
        let victim: Vec<LineAddr> = (100..120u64).map(|i| i * SETS).collect();
        let r = prime_probe(8, &victim, true);
        // With partitioning, the attacker primes only its own ways (4 of
        // 8), and the victim can never evict them.
        assert_eq!(r.evictions, 4, "only the unprimed half is missing");
        // The probe result no longer depends on the victim: the same
        // evictions occur with an idle victim.
        let idle = prime_probe(8, &[], true);
        assert_eq!(r.evictions, idle.evictions);
    }

    #[test]
    fn detection_scales_with_victim_intensity() {
        let light: Vec<LineAddr> = (100..101u64).map(|i| i * SETS).collect();
        let heavy: Vec<LineAddr> = (100..108u64).map(|i| i * SETS).collect();
        let rl = prime_probe(8, &light, false);
        let rh = prime_probe(8, &heavy, false);
        assert!(rh.evictions >= rl.evictions);
    }
}
