//! The paper's contribution: Jumanji's data-placement algorithms and the
//! prior LLC designs it is evaluated against.
//!
//! This crate implements, in software exactly as the paper describes:
//!
//! - the **feedback controller** sizing latency-critical allocations
//!   (Listing 1, [`controller`]),
//! - **`LatCritPlacer`** reserving those allocations in the nearest banks
//!   (Listing 2, [`latcrit`]),
//! - **UCP Lookahead** and the bank-granular **`JumanjiLookahead`**
//!   ([`lookahead`]),
//! - **Jigsaw**'s capacity partitioning and proximity placement
//!   ([`jigsaw`]),
//! - **`JumanjiPlacer`** combining all of the above with VM bank isolation
//!   (Listing 3, [`placer`]), and
//! - the comparison **LLC designs** — Static, Adaptive, VM-Part, Jigsaw,
//!   Jumanji, plus the Insecure and Ideal-Batch sensitivity variants
//!   ([`design`]).
//!
//! # Examples
//!
//! ```
//! use jumanji_core::{DesignKind, PlacementInput};
//! use nuca_types::SystemConfig;
//!
//! let cfg = SystemConfig::micro2020();
//! let input = PlacementInput::example(&cfg);
//! let alloc = DesignKind::Jumanji.allocate(&input);
//! alloc.validate(&cfg).unwrap();
//! // Jumanji never lets two VMs share a bank.
//! assert!(alloc.vm_isolated(&input));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
pub mod controller;
pub mod design;
pub mod jigsaw;
pub mod latcrit;
pub mod lookahead;
mod model;
pub mod placer;
pub mod trades;

pub use allocation::{Allocation, AppAlloc, Pool};
pub use controller::{ControllerParams, FeedbackController};
pub use design::DesignKind;
pub use model::{AppKind, AppModel, PlacementInput};
pub use trades::{jumanji_with_trades, TradeStats};
