//! Property test: the work-graph scheduler is invisible in the output.
//!
//! For random subsets of the plannable figures and random thread counts,
//! rendering through the scheduled path must produce byte-identical
//! TSVs to the sequential per-figure path. The scheduled run goes
//! first with a fresh spec seed, so the scheduler (not a warm cache)
//! computes the cells; the sequential run then renders through the same
//! value-transparent [`CellCache`], whose own golden tests pin that
//! cached and cold renders agree.
//!
//! [`CellCache`]: jumanji_bench::cell_cache::CellCache

use jumanji::telemetry::NoopSink;
use jumanji_bench::suite::run_suite;
use jumanji_bench::{ExperimentSpec, FigureKind};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Figures with a non-empty plan (the ones the scheduler can own) —
/// analytic matrices plus the two detailed-simulator studies.
const PLANNABLE: [FigureKind; 13] = [
    FigureKind::Fig02,
    FigureKind::Fig04,
    FigureKind::Fig05,
    FigureKind::Fig09,
    FigureKind::Fig13,
    FigureKind::Fig14,
    FigureKind::Fig15,
    FigureKind::Fig16,
    FigureKind::Fig17,
    FigureKind::Fig18,
    FigureKind::Ablation,
    FigureKind::Sensitivity,
    FigureKind::Validate,
];

/// Distinct spec seed per case so every case's cells start cold in the
/// process-wide cache.
static CASE_SEED: AtomicU64 = AtomicU64::new(40_000);

fn render_all(specs: &[ExperimentSpec], threads: usize, sequential: bool) -> Vec<Vec<u8>> {
    let mut outputs = Vec::new();
    run_suite(specs, threads, sequential, &NoopSink, &mut |fig| {
        outputs.push(fig.bytes);
        Ok(())
    })
    .expect("suite runs");
    outputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn scheduled_output_is_byte_identical_to_sequential(
        mask in 1u32..(1 << PLANNABLE.len()),
        threads_pick in 0usize..3,
    ) {
        let threads = [1, 2, 4][threads_pick];
        let seed = CASE_SEED.fetch_add(1, Ordering::Relaxed);
        let kinds: Vec<FigureKind> = PLANNABLE
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &k)| k)
            .take(3) // bound per-case cost; the mask still varies which
            .collect();
        let specs: Vec<ExperimentSpec> = kinds
            .iter()
            // The seed varies the analytic cells; accesses varies the
            // detailed ones (whose identity ignores the spec seed), so
            // each case's cells start cold.
            .map(|&k| {
                ExperimentSpec::new(k)
                    .mixes(1)
                    .threads(threads)
                    .seed(seed)
                    .accesses(4_000 + (seed as usize & 0xF))
            })
            .collect();
        // Scheduler first: its cells are cold, so the work graph (not
        // the warm cache) produces them.
        let scheduled = render_all(&specs, threads, false);
        let sequential = render_all(&specs, threads, true);
        prop_assert_eq!(scheduled.len(), sequential.len());
        for (i, (s, q)) in scheduled.iter().zip(&sequential).enumerate() {
            prop_assert!(
                s == q,
                "figure {} differs between scheduled and sequential at {} threads",
                kinds[i].name(),
                threads
            );
        }
    }
}
