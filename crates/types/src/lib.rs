//! Common identifiers, topology, time, and system configuration shared by the
//! Jumanji NUCA simulation stack.
//!
//! This crate defines the vocabulary of the whole workspace:
//!
//! - Strongly typed identifiers for hardware and software entities
//!   ([`CoreId`], [`BankId`], [`AppId`], [`VmId`], [`PageId`]).
//! - The on-chip [`Mesh`] topology with X-Y routing distances
//!   ([`topology`]).
//! - Cycle-based time types ([`time`]).
//! - The system configuration of the paper's evaluation platform
//!   ([`SystemConfig::micro2020`], Table II of the paper).
//!
//! # Examples
//!
//! ```
//! use nuca_types::{SystemConfig, BankId, CoreId};
//!
//! let cfg = SystemConfig::micro2020();
//! assert_eq!(cfg.num_cores, 20);
//! assert_eq!(cfg.llc.num_banks, 20);
//!
//! // Cores and banks are colocated on tiles of a 5x4 mesh.
//! let hops = cfg.mesh().hops_core_to_bank(CoreId(0), BankId(19));
//! assert_eq!(hops, 7); // corner to opposite corner on a 5x4 mesh
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod config;
pub mod error;
pub mod hash;
mod ids;
pub mod shard;
pub mod time;
pub mod topology;

pub use config::{CacheLevelConfig, EnergyConfig, LlcConfig, MemConfig, NocConfig, SystemConfig};
pub use error::{ConfigError, Error};
pub use ids::{AppId, BankId, CoreId, PageId, VmId, WayCount};
pub use shard::{MapStats, ShardedMap};
pub use time::{Cycles, Seconds};
pub use topology::{Mesh, TileCoord};
