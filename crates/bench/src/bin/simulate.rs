//! `simulate` — run one Jumanji experiment from the command line.
//!
//! ```sh
//! cargo run --release -p jumanji-bench --bin simulate -- \
//!     --design jumanji --workload xapian --load high --duration 4 --seed 1
//! ```
//!
//! Options:
//! - `--design`  static | adaptive | vm-part | jigsaw | jumanji |
//!   insecure | ideal (default: jumanji)
//! - `--workload` case-study | mixed | masstree | xapian | img-dnn |
//!   silo | moses (default: case-study)
//! - `--load` high | low (default: high)
//! - `--duration` simulated seconds (default: 4)
//! - `--seed` workload/arrival seed (default: 1)
//! - `--timeline` also print the per-interval timeline as TSV
//! - `--no-baseline` skip the Static baseline (no speedup column)

use jumanji::prelude::*;
use jumanji::types::Seconds;
use std::process::ExitCode;

fn parse_design(s: &str) -> Option<DesignKind> {
    Some(match s {
        "static" => DesignKind::Static,
        "adaptive" => DesignKind::Adaptive,
        "vm-part" | "vmpart" => DesignKind::VmPart,
        "jigsaw" => DesignKind::Jigsaw,
        "jumanji" => DesignKind::Jumanji,
        "insecure" => DesignKind::JumanjiInsecure,
        "ideal" => DesignKind::JumanjiIdealBatch,
        _ => return None,
    })
}

fn parse_workload(s: &str, seed: u64) -> Option<WorkloadMix> {
    match s {
        "case-study" => Some(case_study_mix(seed)),
        "mixed" => Some(WorkloadMix::mixed_lc(seed)),
        name => {
            let lc = tailbench().into_iter().find(|p| p.name == name)?;
            Some(WorkloadMix::uniform_lc(&lc, seed))
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: simulate [--design D] [--workload W] [--load high|low] \
         [--duration SECS] [--seed N] [--timeline] [--no-baseline]\n\
         designs: static adaptive vm-part jigsaw jumanji insecure ideal\n\
         workloads: case-study mixed masstree xapian img-dnn silo moses"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut design = DesignKind::Jumanji;
    let mut workload = "case-study".to_string();
    let mut load = LcLoad::High;
    let mut duration = 4.0f64;
    let mut seed = 1u64;
    let mut timeline = false;
    let mut baseline = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--design" => match it.next().and_then(|v| parse_design(v)) {
                Some(d) => design = d,
                None => return usage(),
            },
            "--workload" => match it.next() {
                Some(w) => workload = w.clone(),
                None => return usage(),
            },
            "--load" => match it.next().map(String::as_str) {
                Some("high") => load = LcLoad::High,
                Some("low") => load = LcLoad::Low,
                _ => return usage(),
            },
            "--duration" => match it.next().and_then(|v| v.parse().ok()) {
                Some(d) if d > 0.0 => duration = d,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--timeline" => timeline = true,
            "--no-baseline" => baseline = false,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let Some(mix) = parse_workload(&workload, seed) else {
        eprintln!("unknown workload '{workload}'");
        return usage();
    };

    let opts = SimOptions {
        duration: Seconds(duration),
        seed,
        ..SimOptions::default()
    };
    let exp = Experiment::new(mix, load, opts);
    let r = exp.run(design, &NoopSink);

    println!("design: {design}");
    println!(
        "workload: {workload} ({} LC + {} batch apps), load {:?}, {duration}s, seed {seed}",
        r.lc_names.len(),
        r.batch_names.len(),
        load
    );
    println!("\nlatency-critical servers:");
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "app", "p95 (ms)", "deadline", "ratio"
    );
    for i in 0..r.lc_names.len() {
        println!(
            "{:<12} {:>12.3} {:>9.3} ms {:>10.2}",
            r.lc_names[i],
            r.lc_tail_latency_ms[i],
            r.lc_deadline_ms[i],
            r.lc_tail_latency_ms[i] / r.lc_deadline_ms[i]
        );
    }
    if baseline {
        let stat = exp.run(DesignKind::Static, &NoopSink);
        println!(
            "\nbatch weighted speedup vs Static: {:+.2}%",
            (r.weighted_speedup_vs(&stat) - 1.0) * 100.0
        );
    }
    println!("potential attackers per LLC access: {:.2}", r.vulnerability);
    println!("data-movement energy: {}", r.energy);
    println!(
        "coherence refetches across reconfigurations: {:.2} M lines",
        r.coherence_refetches / 1e6
    );
    if timeline {
        println!("\nt_ms\tavg_lc_latency_ms\tavg_lc_alloc_mb\tvulnerability");
        for rec in &r.timeline {
            let lat: Vec<f64> = rec.lc_mean_latency_ms.iter().flatten().copied().collect();
            let avg_lat = if lat.is_empty() {
                f64::NAN
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            };
            let avg_alloc = rec.lc_alloc_bytes.iter().sum::<f64>()
                / rec.lc_alloc_bytes.len().max(1) as f64
                / 1048576.0;
            println!(
                "{:.0}\t{:.3}\t{:.3}\t{:.2}",
                rec.t_ms, avg_lat, avg_alloc, rec.vulnerability
            );
        }
    }
    ExitCode::SUCCESS
}
