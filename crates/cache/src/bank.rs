//! A detailed set-associative cache bank with way-partitioning and
//! set-dueling DRRIP.
//!
//! The bank models exactly the shared microarchitectural state the paper's
//! security analysis cares about (Fig. 10):
//!
//! - **Cache sets** (① conflict attacks): partitions restrict *insertions*
//!   to a [`WayMask`], like Intel CAT, so disjoint masks eliminate conflict
//!   evictions between partitions.
//! - **Replacement state** (③ performance leakage): DRRIP's PSEL counter is
//!   a single, bank-wide register shared by *all* partitions, so co-running
//!   applications still influence each other's replacement policy even when
//!   their way masks are disjoint.
//!
//! Bank *port* contention (② port attacks) is timing behaviour and is
//! modeled by `nuca-noc`'s port simulator.

use crate::replacement::{InsertFlavor, ReplState, BRRIP_LONG_INTERVAL, RRPV_MAX};
use crate::{LineAddr, ReplPolicy};
use core::fmt;

/// Identifies a way-partition within a bank (e.g., one per application or
/// one per VM, depending on the LLC design).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub usize);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part{}", self.0)
    }
}

/// A bitmask over the ways of one bank, restricting where a partition may
/// insert lines (Intel CAT-style capacity bitmask).
///
/// # Examples
///
/// ```
/// use nuca_cache::WayMask;
/// let m = WayMask::first_n(4);
/// assert_eq!(m.count(), 4);
/// assert!(m.contains(3));
/// assert!(!m.contains(4));
/// assert!(WayMask::first_n(2).intersects(WayMask::first_n(4)));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMask(pub u64);

impl WayMask {
    /// A mask allowing every way of a `ways`-way bank.
    ///
    /// # Panics
    ///
    /// Panics if `ways > 64`.
    pub fn all(ways: u32) -> WayMask {
        assert!(ways <= 64, "way masks support at most 64 ways");
        if ways == 64 {
            WayMask(u64::MAX)
        } else {
            WayMask((1u64 << ways) - 1)
        }
    }

    /// A mask of the lowest `n` ways.
    pub fn first_n(n: u32) -> WayMask {
        WayMask::all(n)
    }

    /// A contiguous mask of `n` ways starting at way `start`.
    pub fn range(start: u32, n: u32) -> WayMask {
        WayMask(WayMask::all(n).0 << start)
    }

    /// Number of ways in the mask.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether way `w` is in the mask.
    pub fn contains(self, w: u32) -> bool {
        w < 64 && (self.0 >> w) & 1 == 1
    }

    /// Whether two masks share any way.
    pub fn intersects(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no ways are allowed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Configuration of one [`CacheBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Number of sets.
    pub sets: usize,
    /// Number of ways (≤ 64).
    pub ways: u32,
    /// Replacement policy.
    pub policy: ReplPolicy,
}

/// Result of one access to a [`CacheBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// A line evicted to make room for the fill, if any.
    pub evicted: Option<(LineAddr, PartitionId)>,
    /// Whether the evicted line was dirty and must be written back to
    /// memory.
    pub writeback: bool,
}

/// Aggregate and per-partition access statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BankStats {
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Per-partition `(accesses, hits)`.
    pub per_partition: Vec<(u64, u64)>,
}

impl BankStats {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio over all partitions (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Miss ratio of one partition (0 when it made no accesses).
    pub fn partition_miss_ratio(&self, part: PartitionId) -> f64 {
        match self.per_partition.get(part.0) {
            Some(&(acc, hits)) if acc > 0 => (acc - hits) as f64 / acc as f64,
            _ => 0.0,
        }
    }

    fn record(&mut self, part: PartitionId, hit: bool) {
        self.accesses += 1;
        if self.per_partition.len() <= part.0 {
            self.per_partition.resize(part.0 + 1, (0, 0));
        }
        let entry = &mut self.per_partition[part.0];
        entry.0 += 1;
        if hit {
            self.hits += 1;
            entry.1 += 1;
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: LineAddr,
    part: PartitionId,
    repl: ReplState,
    dirty: bool,
}

/// A set-associative cache bank with way-partitioning and (for DRRIP) a
/// bank-wide shared set-dueling PSEL counter.
///
/// See the crate-level docs for the security-relevant sharing this
/// structure models.
#[derive(Debug, Clone)]
pub struct CacheBank {
    cfg: BankConfig,
    sets: Vec<Vec<Option<Line>>>,
    masks: Vec<WayMask>,
    /// 10-bit saturating policy selector shared across the whole bank.
    /// High values mean SRRIP is missing more, so followers use BRRIP.
    psel: u32,
    brrip_ctr: u32,
    stamp: u64,
    stats: BankStats,
}

const PSEL_MAX: u32 = 1023;
const PSEL_INIT: u32 = 512;
/// Leader-set stride for set-dueling (one SRRIP and one BRRIP leader per 32
/// sets).
const DUEL_STRIDE: usize = 32;

impl CacheBank {
    /// Creates an empty bank.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`, `ways == 0`, or `ways > 64`.
    pub fn new(cfg: BankConfig) -> CacheBank {
        assert!(cfg.sets > 0, "bank needs at least one set");
        assert!(cfg.ways > 0 && cfg.ways <= 64, "ways must be in 1..=64");
        CacheBank {
            cfg,
            sets: vec![vec![None; cfg.ways as usize]; cfg.sets],
            masks: Vec::new(),
            psel: PSEL_INIT,
            brrip_ctr: 0,
            stamp: 0,
            stats: BankStats::default(),
        }
    }

    /// This bank's configuration.
    pub fn config(&self) -> BankConfig {
        self.cfg
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &BankStats {
        &self.stats
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = BankStats::default();
    }

    /// Sets the way mask for `part`. Partitions without an explicit mask may
    /// insert into any way.
    pub fn set_mask(&mut self, part: PartitionId, mask: WayMask) {
        if self.masks.len() <= part.0 {
            self.masks.resize(part.0 + 1, WayMask::all(self.cfg.ways));
        }
        self.masks[part.0] = mask;
    }

    /// The way mask in effect for `part`.
    pub fn mask(&self, part: PartitionId) -> WayMask {
        self.masks
            .get(part.0)
            .copied()
            .unwrap_or_else(|| WayMask::all(self.cfg.ways))
    }

    /// Current value of the shared DRRIP policy selector.
    ///
    /// Exposed so the performance-leakage experiment (paper Fig. 12) can
    /// observe how co-runners drag the shared policy around.
    pub fn psel(&self) -> u32 {
        self.psel
    }

    /// The insertion flavour follower sets currently resolve to (only
    /// meaningful under [`ReplPolicy::Drrip`]).
    pub fn follower_flavor(&self) -> ReplPolicy {
        if self.psel > PSEL_INIT {
            ReplPolicy::Brrip
        } else {
            ReplPolicy::Srrip
        }
    }

    /// Set index for a line address.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line % self.cfg.sets as u64) as usize
    }

    /// Whether `line` is currently resident.
    pub fn resident(&self, line: LineAddr) -> bool {
        let set = &self.sets[self.set_of(line)];
        set.iter().flatten().any(|l| l.tag == line)
    }

    /// Invalidates `line` if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let si = self.set_of(line);
        for slot in &mut self.sets[si] {
            if slot.map(|l| l.tag == line).unwrap_or(false) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Invalidates every line owned by `part`; returns how many were
    /// dropped. Used when flushing a partition on VM context switch
    /// (Sec. IV-B).
    pub fn flush_partition(&mut self, part: PartitionId) -> u64 {
        let mut dropped = 0;
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if slot.map(|l| l.part == part).unwrap_or(false) {
                    *slot = None;
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Number of resident lines owned by `part`.
    pub fn occupancy(&self, part: PartitionId) -> u64 {
        self.sets
            .iter()
            .flatten()
            .flatten()
            .filter(|l| l.part == part)
            .count() as u64
    }

    /// Performs one read access on behalf of `part`, filling on a miss.
    ///
    /// Shorthand for [`CacheBank::access_rw`] with `is_write == false`.
    pub fn access(&mut self, line: LineAddr, part: PartitionId) -> AccessOutcome {
        self.access_rw(line, part, false)
    }

    /// Performs one access on behalf of `part`, filling on a miss. Writes
    /// mark the line dirty; evicting a dirty line reports a write-back.
    ///
    /// On a miss the victim is chosen only among ways in `part`'s
    /// [`WayMask`]; if the mask is empty the access bypasses the cache (miss
    /// without fill).
    pub fn access_rw(
        &mut self,
        line: LineAddr,
        part: PartitionId,
        is_write: bool,
    ) -> AccessOutcome {
        self.stamp += 1;
        let si = self.set_of(line);

        // Hit path: hits are allowed anywhere in the set (CAT restricts
        // insertion, not lookup).
        if let Some(w) = self.find_way(si, line) {
            self.promote(si, w);
            if is_write {
                if let Some(l) = &mut self.sets[si][w] {
                    l.dirty = true;
                }
            }
            self.stats.record(part, true);
            return AccessOutcome {
                hit: true,
                evicted: None,
                writeback: false,
            };
        }

        // Miss path.
        self.stats.record(part, false);
        self.duel_on_miss(si);
        let mask = self.mask(part);
        if mask.is_empty() {
            return AccessOutcome {
                hit: false,
                evicted: None,
                writeback: false,
            };
        }
        let victim_way = self.pick_victim(si, mask);
        let victim = self.sets[si][victim_way];
        let evicted = victim.map(|l| (l.tag, l.part));
        let writeback = victim.map(|l| l.dirty).unwrap_or(false);
        let repl = self.insertion_state(si);
        self.sets[si][victim_way] = Some(Line {
            tag: line,
            part,
            repl,
            dirty: is_write,
        });
        AccessOutcome {
            hit: false,
            evicted,
            writeback,
        }
    }

    fn find_way(&self, si: usize, line: LineAddr) -> Option<usize> {
        self.sets[si]
            .iter()
            .position(|slot| slot.map(|l| l.tag == line).unwrap_or(false))
    }

    fn promote(&mut self, si: usize, way: usize) {
        let stamp = self.stamp;
        if let Some(line) = &mut self.sets[si][way] {
            line.repl = match self.cfg.policy {
                ReplPolicy::Lru => ReplState::Lru { stamp },
                _ => ReplState::Rrip { rrpv: 0 },
            };
        }
    }

    /// Role of a set in DRRIP set-dueling.
    fn duel_role(&self, si: usize) -> Option<InsertFlavor> {
        if self.cfg.policy != ReplPolicy::Drrip {
            return None;
        }
        match si % DUEL_STRIDE {
            0 => Some(InsertFlavor::Srrip),
            16 => Some(InsertFlavor::Brrip),
            _ => None,
        }
    }

    fn duel_on_miss(&mut self, si: usize) {
        match self.duel_role(si) {
            Some(InsertFlavor::Srrip) => self.psel = (self.psel + 1).min(PSEL_MAX),
            Some(InsertFlavor::Brrip) => self.psel = self.psel.saturating_sub(1),
            None => {}
        }
    }

    fn insertion_flavor(&mut self, si: usize) -> InsertFlavor {
        match self.cfg.policy {
            ReplPolicy::Lru | ReplPolicy::Nru => InsertFlavor::Srrip, // unused / fixed
            ReplPolicy::Srrip => InsertFlavor::Srrip,
            ReplPolicy::Brrip => InsertFlavor::Brrip,
            ReplPolicy::Drrip => match self.duel_role(si) {
                Some(f) => f,
                None => {
                    if self.psel > PSEL_INIT {
                        InsertFlavor::Brrip
                    } else {
                        InsertFlavor::Srrip
                    }
                }
            },
        }
    }

    fn insertion_state(&mut self, si: usize) -> ReplState {
        match self.cfg.policy {
            ReplPolicy::Lru => ReplState::Lru { stamp: self.stamp },
            // NRU inserts recently-used (ref bit clear).
            ReplPolicy::Nru => ReplState::Rrip { rrpv: 0 },
            _ => {
                let rrpv = match self.insertion_flavor(si) {
                    InsertFlavor::Srrip => RRPV_MAX - 1,
                    InsertFlavor::Brrip => {
                        self.brrip_ctr = (self.brrip_ctr + 1) % BRRIP_LONG_INTERVAL;
                        if self.brrip_ctr == 0 {
                            RRPV_MAX - 1
                        } else {
                            RRPV_MAX
                        }
                    }
                };
                ReplState::Rrip { rrpv }
            }
        }
    }

    /// Picks a victim way within `mask`, preferring invalid ways.
    fn pick_victim(&mut self, si: usize, mask: WayMask) -> usize {
        debug_assert!(!mask.is_empty());
        // Invalid way first.
        for w in 0..self.cfg.ways {
            if mask.contains(w) && self.sets[si][w as usize].is_none() {
                return w as usize;
            }
        }
        match self.cfg.policy {
            ReplPolicy::Lru => {
                let mut best = None;
                let mut best_stamp = u64::MAX;
                for w in 0..self.cfg.ways {
                    if !mask.contains(w) {
                        continue;
                    }
                    if let Some(Line {
                        repl: ReplState::Lru { stamp },
                        ..
                    }) = self.sets[si][w as usize]
                    {
                        if stamp < best_stamp {
                            best_stamp = stamp;
                            best = Some(w as usize);
                        }
                    }
                }
                best.expect("mask has at least one valid LRU line")
            }
            _ => loop {
                // Find a way at the policy's max RRPV within the mask;
                // otherwise age the masked ways and retry. Aging is
                // restricted to the mask so partitions cannot perturb each
                // other's RRPVs (content isolation); the *policy choice*
                // still leaks via PSEL.
                let max = self.cfg.policy.rrpv_max();
                for w in 0..self.cfg.ways {
                    if !mask.contains(w) {
                        continue;
                    }
                    if let Some(Line {
                        repl: ReplState::Rrip { rrpv },
                        ..
                    }) = self.sets[si][w as usize]
                    {
                        if rrpv >= max {
                            return w as usize;
                        }
                    }
                }
                for w in 0..self.cfg.ways {
                    if !mask.contains(w) {
                        continue;
                    }
                    if let Some(Line {
                        repl: ReplState::Rrip { rrpv },
                        ..
                    }) = &mut self.sets[si][w as usize]
                    {
                        *rrpv += 1;
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(sets: usize, ways: u32, policy: ReplPolicy) -> CacheBank {
        CacheBank::new(BankConfig { sets, ways, policy })
    }

    /// Addresses that all map to set 0 of a `sets`-set bank.
    fn same_set_lines(sets: usize, n: usize) -> Vec<LineAddr> {
        (1..=n as u64).map(|i| i * sets as u64).collect()
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut b = bank(16, 2, ReplPolicy::Lru);
        let lines = same_set_lines(16, 3);
        b.access(lines[0], PartitionId(0));
        b.access(lines[1], PartitionId(0));
        // Touch line 0 so line 1 is LRU.
        assert!(b.access(lines[0], PartitionId(0)).hit);
        let out = b.access(lines[2], PartitionId(0));
        assert!(!out.hit);
        assert_eq!(out.evicted.unwrap().0, lines[1]);
        assert!(b.resident(lines[0]));
        assert!(!b.resident(lines[1]));
    }

    #[test]
    fn lru_exact_reuse_within_capacity() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        let lines = same_set_lines(16, 4);
        for &l in &lines {
            assert!(!b.access(l, PartitionId(0)).hit);
        }
        for &l in &lines {
            assert!(b.access(l, PartitionId(0)).hit, "working set fits");
        }
        assert_eq!(b.stats().hits, 4);
        assert_eq!(b.stats().misses(), 4);
    }

    #[test]
    fn way_partitioning_isolates_insertions() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        let victim = PartitionId(0);
        let attacker = PartitionId(1);
        b.set_mask(victim, WayMask::range(0, 2));
        b.set_mask(attacker, WayMask::range(2, 2));

        let lines = same_set_lines(16, 8);
        // Victim fills its two ways.
        b.access(lines[0], victim);
        b.access(lines[1], victim);
        // Attacker thrashes the same set with many lines.
        for &l in &lines[2..8] {
            b.access(l, attacker);
        }
        // Victim's lines must survive: the attacker cannot evict them.
        assert!(b.resident(lines[0]));
        assert!(b.resident(lines[1]));
    }

    #[test]
    fn unpartitioned_sharing_allows_conflict_evictions() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        let victim = PartitionId(0);
        let attacker = PartitionId(1);
        let lines = same_set_lines(16, 8);
        b.access(lines[0], victim);
        for &l in &lines[2..8] {
            b.access(l, attacker);
        }
        // Without partitioning the attacker primed the set and evicted the
        // victim — this is the conflict attack surface.
        assert!(!b.resident(lines[0]));
    }

    #[test]
    fn empty_mask_bypasses() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.set_mask(PartitionId(0), WayMask(0));
        let out = b.access(64, PartitionId(0));
        assert!(!out.hit);
        assert!(out.evicted.is_none());
        assert!(!b.resident(64));
    }

    #[test]
    fn srrip_hit_promotion_protects_reused_lines() {
        let mut b = bank(16, 2, ReplPolicy::Srrip);
        let lines = same_set_lines(16, 3);
        b.access(lines[0], PartitionId(0));
        b.access(lines[1], PartitionId(0));
        // Promote line 0 to RRPV 0.
        assert!(b.access(lines[0], PartitionId(0)).hit);
        // The new line should displace the non-promoted one.
        let out = b.access(lines[2], PartitionId(0));
        assert_eq!(out.evicted.unwrap().0, lines[1]);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut b = bank(64, 4, ReplPolicy::Brrip);
        // Stream many lines through one set; BRRIP keeps thrashing traffic
        // at distant RRPV, so a resident reused line survives a long scan.
        let keep = 64u64; // set 0
        b.access(keep, PartitionId(0));
        assert!(b.access(keep, PartitionId(0)).hit); // promote to RRPV 0
        for i in 2..40u64 {
            b.access(i * 64, PartitionId(0));
            b.access(keep, PartitionId(0)); // keep re-referencing
        }
        assert!(b.resident(keep), "BRRIP is scan-resistant");
    }

    #[test]
    fn drrip_leader_sets_move_psel() {
        let mut b = bank(64, 2, ReplPolicy::Drrip);
        let init = b.psel();
        // Misses in set 0 (SRRIP leader) increment PSEL.
        for i in 1..20u64 {
            b.access(i * 64, PartitionId(0));
        }
        assert!(b.psel() > init);
        // Misses in set 16 (BRRIP leader) decrement PSEL.
        let before = b.psel();
        for i in 1..40u64 {
            b.access(i * 64 + 16, PartitionId(0));
        }
        assert!(b.psel() < before);
    }

    #[test]
    fn drrip_psel_is_shared_across_partitions() {
        // The performance-leakage channel: partition 1's misses in leader
        // sets change the policy partition 0's follower sets use.
        let mut b = bank(64, 2, ReplPolicy::Drrip);
        b.set_mask(PartitionId(0), WayMask::range(0, 1));
        b.set_mask(PartitionId(1), WayMask::range(1, 1));
        assert_eq!(b.follower_flavor(), ReplPolicy::Srrip);
        // Partition 1 hammers the SRRIP leader set with misses.
        for i in 1..2000u64 {
            b.access(i * 64, PartitionId(1));
        }
        assert_eq!(
            b.follower_flavor(),
            ReplPolicy::Brrip,
            "a co-runner flipped the shared policy despite disjoint masks"
        );
    }

    #[test]
    fn nru_behaves_like_coarse_lru() {
        let mut b = bank(16, 2, ReplPolicy::Nru);
        let lines = same_set_lines(16, 3);
        b.access(lines[0], PartitionId(0));
        b.access(lines[1], PartitionId(0));
        // Touch line 0 so it is recently-used; line 1 ages on the victim
        // scan and gets evicted.
        assert!(b.access(lines[0], PartitionId(0)).hit);
        b.access(lines[2], PartitionId(0));
        assert!(b.resident(lines[0]) || b.resident(lines[2]));
        // NRU keeps reused data across small working sets exactly.
        let mut b2 = bank(16, 4, ReplPolicy::Nru);
        for _ in 0..3 {
            for &l in &same_set_lines(16, 4) {
                b2.access(l, PartitionId(0));
            }
        }
        assert_eq!(b2.stats().misses(), 4, "only cold misses");
    }

    #[test]
    fn nru_has_no_set_dueling_state() {
        let mut b = bank(64, 2, ReplPolicy::Nru);
        let before = b.psel();
        for i in 1..200u64 {
            b.access(i * 64, PartitionId(0)); // leader-set misses
        }
        assert_eq!(b.psel(), before, "NRU never touches PSEL");
    }

    #[test]
    fn flush_partition_drops_only_that_partition() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.access(16, PartitionId(0));
        b.access(32, PartitionId(1));
        assert_eq!(b.occupancy(PartitionId(0)), 1);
        let dropped = b.flush_partition(PartitionId(0));
        assert_eq!(dropped, 1);
        assert!(!b.resident(16));
        assert!(b.resident(32));
    }

    #[test]
    fn invalidate_single_line() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.access(16, PartitionId(0));
        assert!(b.invalidate(16));
        assert!(!b.invalidate(16));
        assert!(!b.resident(16));
    }

    #[test]
    fn stats_track_partitions_separately() {
        let mut b = bank(16, 4, ReplPolicy::Lru);
        b.access(16, PartitionId(0));
        b.access(16, PartitionId(0));
        b.access(32, PartitionId(1));
        let s = b.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert!((s.partition_miss_ratio(PartitionId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(s.partition_miss_ratio(PartitionId(1)), 1.0);
        assert_eq!(s.partition_miss_ratio(PartitionId(9)), 0.0);
    }

    #[test]
    fn writebacks_follow_dirty_evictions() {
        let mut b = bank(16, 1, ReplPolicy::Lru);
        let lines = same_set_lines(16, 3);
        // Write line 0 (dirty), then displace it: write-back.
        b.access_rw(lines[0], PartitionId(0), true);
        let out = b.access(lines[1], PartitionId(0));
        assert!(out.writeback, "dirty victim must be written back");
        // Clean line displaced: no write-back.
        let out2 = b.access(lines[2], PartitionId(0));
        assert!(!out2.writeback);
        // A write HIT dirties an existing clean line.
        let mut b2 = bank(16, 2, ReplPolicy::Lru);
        b2.access(lines[0], PartitionId(0)); // clean fill
        b2.access_rw(lines[0], PartitionId(0), true); // dirty it
        b2.access(lines[1], PartitionId(0));
        let out3 = b2.access(lines[2], PartitionId(0)); // evicts line 0 (LRU)
        assert!(out3.writeback);
    }

    #[test]
    fn way_mask_helpers() {
        assert_eq!(WayMask::all(64).count(), 64);
        assert_eq!(WayMask::range(2, 2).0, 0b1100);
        assert!(!WayMask::range(0, 2).intersects(WayMask::range(2, 2)));
        assert!(WayMask(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "ways must be in 1..=64")]
    fn too_many_ways_panics() {
        bank(16, 65, ReplPolicy::Lru);
    }
}
