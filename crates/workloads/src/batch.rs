//! SPEC-CPU2006-like batch application profiles.
//!
//! The paper draws batch applications from the sixteen SPEC CPU2006
//! benchmarks listed in its footnote 1. Each profile here carries the
//! published qualitative cache behaviour of the corresponding benchmark:
//! streaming applications (`libquantum`, `lbm`, `milc`) have high access
//! rates and flat miss curves; cache-friendly codes (`calculix`, `bzip2`)
//! have small working sets; and capacity-hungry codes (`mcf`, `omnetpp`,
//! `xalancbmk`) keep improving across many megabytes, some with cliffs.

use crate::curves::{Component, CurveShape};
use crate::MB;
use nuca_cache::MissCurve;

/// A synthetic batch application profile.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchProfile {
    /// Benchmark-style name (e.g., `"429.mcf"`).
    pub name: &'static str,
    /// LLC accesses (L2 misses) per kilo-instruction.
    pub llc_apki: f64,
    /// CPI with a perfect (always-hitting, zero-latency) LLC; folds in the
    /// core pipeline and L1/L2 effects.
    pub base_cpi: f64,
    /// Miss-ratio curve shape at the LLC.
    pub shape: CurveShape,
}

impl BatchProfile {
    /// Samples the LLC miss-*ratio* curve at `units` points of
    /// `unit_bytes` granularity.
    pub fn miss_ratio_curve(&self, unit_bytes: u64, units: usize) -> MissCurve {
        self.shape.miss_curve(unit_bytes, units)
    }

    /// Miss curve in misses-per-kilo-instruction (ratio × APKI).
    pub fn mpki_curve(&self, unit_bytes: u64, units: usize) -> MissCurve {
        self.miss_ratio_curve(unit_bytes, units)
            .scaled(self.llc_apki)
    }

    /// Instructions per second this app would execute given an average
    /// LLC access latency `llc_lat` (cycles), an average miss penalty
    /// `miss_pen` (cycles beyond the LLC access), a miss ratio `mr`, and
    /// the clock frequency.
    ///
    /// The CPI model is `base_cpi + apki/1000 · (llc_lat + mr · miss_pen)`
    /// — the standard additive memory-stall decomposition used by the
    /// paper's weighted-speedup methodology.
    pub fn ips(&self, llc_lat: f64, mr: f64, miss_pen: f64, freq_hz: f64) -> f64 {
        let cpi = self.cpi(llc_lat, mr, miss_pen);
        freq_hz / cpi
    }

    /// CPI under the additive memory-stall model (see [`Self::ips`]).
    pub fn cpi(&self, llc_lat: f64, mr: f64, miss_pen: f64) -> f64 {
        self.base_cpi + self.llc_apki / 1000.0 * (llc_lat + mr * miss_pen)
    }
}

fn smooth(weight: f64, ws_mb: f64, sharpness: f64) -> Component {
    Component::Smooth {
        weight,
        ws_bytes: (ws_mb * MB as f64) as u64,
        sharpness,
    }
}

fn cliff(weight: f64, ws_mb: f64) -> Component {
    Component::Cliff {
        weight,
        ws_bytes: (ws_mb * MB as f64) as u64,
    }
}

/// The sixteen SPEC-CPU2006-like batch profiles used in the evaluation
/// (paper footnote 1).
///
/// Every non-streaming profile has (at least) two working-set components,
/// as real SPEC applications do: a small, hot set (hundreds of KB) that
/// captures most reuse and gives every application steep initial utility,
/// plus a large set (several MB) that only capacity-hungry allocations can
/// exploit. Streaming codes (`libquantum`, `lbm`, `milc`) keep high flat
/// floors.
pub fn spec2006() -> Vec<BatchProfile> {
    vec![
        BatchProfile {
            name: "401.bzip2",
            llc_apki: 8.0,
            base_cpi: 0.8,
            shape: CurveShape::new(0.10, vec![smooth(0.45, 0.25, 3.0), smooth(0.30, 1.5, 2.0)]),
        },
        BatchProfile {
            name: "403.gcc",
            llc_apki: 10.0,
            base_cpi: 0.9,
            shape: CurveShape::new(0.08, vec![smooth(0.45, 0.3, 3.0), smooth(0.35, 2.5, 2.0)]),
        },
        BatchProfile {
            name: "410.bwaves",
            llc_apki: 15.0,
            base_cpi: 1.0,
            shape: CurveShape::new(0.35, vec![smooth(0.30, 0.4, 3.0), smooth(0.25, 8.0, 3.0)]),
        },
        BatchProfile {
            name: "429.mcf",
            llc_apki: 45.0,
            base_cpi: 1.2,
            shape: CurveShape::new(
                0.15,
                vec![
                    smooth(0.30, 0.5, 3.0),
                    smooth(0.35, 6.0, 1.5),
                    cliff(0.15, 10.0),
                ],
            ),
        },
        BatchProfile {
            name: "433.milc",
            llc_apki: 20.0,
            base_cpi: 1.0,
            shape: CurveShape::new(0.55, vec![smooth(0.20, 0.4, 3.0), smooth(0.20, 12.0, 3.0)]),
        },
        BatchProfile {
            name: "434.zeusmp",
            llc_apki: 12.0,
            base_cpi: 0.9,
            shape: CurveShape::new(0.20, vec![smooth(0.35, 0.3, 3.0), smooth(0.35, 3.0, 2.0)]),
        },
        BatchProfile {
            name: "436.cactusADM",
            llc_apki: 10.0,
            base_cpi: 1.0,
            shape: CurveShape::new(0.15, vec![smooth(0.35, 0.4, 3.0), smooth(0.40, 4.0, 2.5)]),
        },
        BatchProfile {
            name: "437.leslie3d",
            llc_apki: 14.0,
            base_cpi: 1.0,
            shape: CurveShape::new(0.28, vec![smooth(0.30, 0.4, 3.0), smooth(0.35, 5.0, 2.0)]),
        },
        BatchProfile {
            name: "454.calculix",
            llc_apki: 3.0,
            base_cpi: 0.6,
            shape: CurveShape::new(0.05, vec![smooth(0.60, 0.2, 3.0), smooth(0.15, 0.8, 2.0)]),
        },
        BatchProfile {
            name: "459.GemsFDTD",
            llc_apki: 16.0,
            base_cpi: 1.1,
            shape: CurveShape::new(0.30, vec![smooth(0.25, 0.4, 3.0), smooth(0.40, 7.0, 2.5)]),
        },
        BatchProfile {
            name: "462.libquantum",
            llc_apki: 25.0,
            base_cpi: 1.1,
            shape: CurveShape::streaming(0.95),
        },
        BatchProfile {
            name: "470.lbm",
            llc_apki: 30.0,
            base_cpi: 1.2,
            shape: CurveShape::new(0.70, vec![smooth(0.15, 0.5, 3.0), smooth(0.10, 16.0, 3.0)]),
        },
        BatchProfile {
            name: "471.omnetpp",
            llc_apki: 22.0,
            base_cpi: 1.0,
            shape: CurveShape::new(
                0.12,
                vec![
                    smooth(0.35, 0.5, 3.0),
                    smooth(0.35, 8.0, 1.5),
                    cliff(0.10, 12.0),
                ],
            ),
        },
        BatchProfile {
            name: "473.astar",
            llc_apki: 12.0,
            base_cpi: 0.9,
            shape: CurveShape::new(0.15, vec![smooth(0.35, 0.4, 3.0), smooth(0.40, 3.0, 1.8)]),
        },
        BatchProfile {
            name: "482.sphinx3",
            llc_apki: 13.0,
            base_cpi: 0.9,
            shape: CurveShape::new(0.12, vec![smooth(0.35, 0.4, 3.0), smooth(0.45, 6.0, 2.0)]),
        },
        BatchProfile {
            name: "483.xalancbmk",
            llc_apki: 18.0,
            base_cpi: 1.0,
            shape: CurveShape::new(0.10, vec![smooth(0.40, 0.5, 3.0), smooth(0.40, 4.0, 1.8)]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_profiles_with_unique_names() {
        let profiles = spec2006();
        assert_eq!(profiles.len(), 16);
        let mut names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn libquantum_is_streaming() {
        let profiles = spec2006();
        let lq = profiles
            .iter()
            .find(|p| p.name == "462.libquantum")
            .unwrap();
        let c = lq.miss_ratio_curve(MB, 20);
        assert_eq!(c.at(0), c.at(20), "no capacity benefit");
        assert!(c.at(0) > 0.9);
    }

    #[test]
    fn calculix_is_cache_friendly() {
        let profiles = spec2006();
        let cx = profiles.iter().find(|p| p.name == "454.calculix").unwrap();
        let c = cx.miss_ratio_curve(MB / 4, 80);
        // Most of the benefit arrives by 2 MB.
        assert!(c.eval_bytes(2 * MB) < 0.2);
    }

    #[test]
    fn mcf_has_a_cliff() {
        let profiles = spec2006();
        let mcf = profiles.iter().find(|p| p.name == "429.mcf").unwrap();
        let c = mcf.miss_ratio_curve(MB, 20);
        // The cliff at 10 MB makes the raw curve non-convex.
        assert!(!c.is_convex());
        assert!(c.convex_hull().is_convex());
    }

    #[test]
    fn cpi_model_increases_with_misses() {
        let profiles = spec2006();
        let mcf = profiles.iter().find(|p| p.name == "429.mcf").unwrap();
        let fast = mcf.cpi(20.0, 0.1, 140.0);
        let slow = mcf.cpi(40.0, 0.6, 140.0);
        assert!(slow > fast);
        let ips = mcf.ips(20.0, 0.1, 140.0, 2.66e9);
        assert!((ips - 2.66e9 / fast).abs() < 1.0);
    }

    #[test]
    fn mpki_scales_ratio_by_apki() {
        let profiles = spec2006();
        let gcc = profiles.iter().find(|p| p.name == "403.gcc").unwrap();
        let ratio = gcc.miss_ratio_curve(MB, 4);
        let mpki = gcc.mpki_curve(MB, 4);
        for u in 0..=4usize {
            assert!((mpki.at(u) - ratio.at(u) * gcc.llc_apki).abs() < 1e-9);
        }
    }

    #[test]
    fn all_curves_monotone_over_llc_range() {
        for p in spec2006() {
            let c = p.miss_ratio_curve(32 * 1024, 640);
            for w in c.points().windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{} curve must be monotone", p.name);
            }
            assert!(c.at(0) <= 1.0 && c.at(640) >= 0.0);
        }
    }
}
