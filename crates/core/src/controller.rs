//! The feedback controller sizing latency-critical allocations
//! (paper Listing 1 and Sec. V-C).
//!
//! Every completed request reports its end-to-end latency (including
//! queueing). Once `interval` requests have accumulated, the controller
//! computes the tail percentile and adjusts the allocation:
//!
//! - tail > 95 % of deadline → grow by `step` (10 %),
//! - tail < 85 % of deadline → shrink by `step`,
//! - tail > 110 % of deadline → **panic**: jump to a canonical safe size
//!   (one eighth of the LLC), because "even very short spikes in queueing
//!   latency frequently set the tail".

/// Tunable controller parameters, with the paper's bolded defaults
/// (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerParams {
    /// Tail percentile to control (0.95 in the paper).
    pub percentile: f64,
    /// Requests per controller update (20).
    pub interval: usize,
    /// Grow when tail exceeds this fraction of the deadline (0.95).
    pub target_high: f64,
    /// Shrink when tail is below this fraction of the deadline (0.85).
    pub target_low: f64,
    /// Panic when tail exceeds this fraction of the deadline (1.10).
    pub panic_threshold: f64,
    /// Multiplicative step size (0.10).
    pub step: f64,
    /// Canonical safe size jumped to on panic (LLC/8 in the paper).
    pub panic_bytes: f64,
    /// Smallest allowed allocation in bytes.
    pub min_bytes: f64,
    /// Largest allowed allocation in bytes.
    pub max_bytes: f64,
}

impl ControllerParams {
    /// The paper's defaults for a given LLC capacity.
    pub fn micro2020(llc_bytes: f64) -> ControllerParams {
        ControllerParams {
            percentile: 0.95,
            interval: 20,
            target_high: 0.95,
            target_low: 0.85,
            panic_threshold: 1.10,
            step: 0.10,
            panic_bytes: llc_bytes / 8.0,
            min_bytes: 256.0 * 1024.0,
            max_bytes: llc_bytes / 4.0,
        }
    }
}

/// Per-application feedback controller state.
///
/// # Examples
///
/// ```
/// use jumanji_core::{ControllerParams, FeedbackController};
/// let params = ControllerParams::micro2020(20.0 * 1024.0 * 1024.0);
/// let mut ctrl = FeedbackController::new(params, 1_000_000.0, 2_000_000.0);
/// // 21 fast requests (one full interval): the controller reclaims space.
/// let before = ctrl.size_bytes();
/// for _ in 0..21 {
///     ctrl.on_request_complete(100_000.0);
/// }
/// assert!(ctrl.size_bytes() < before);
/// ```
#[derive(Debug, Clone)]
pub struct FeedbackController {
    params: ControllerParams,
    deadline: f64,
    size: f64,
    latencies: Vec<f64>,
    panics: u64,
    updates: u64,
    /// An adjustment has been made but not yet deployed by a
    /// reconfiguration; further non-panic adjustments are held back so the
    /// controller never compounds decisions on stale feedback.
    pending: bool,
}

impl FeedbackController {
    /// Creates a controller for an application with the given tail-latency
    /// `deadline` (any time unit, as long as request latencies use the
    /// same) and initial allocation.
    ///
    /// # Panics
    ///
    /// Panics if the deadline or initial size is not positive.
    pub fn new(params: ControllerParams, deadline: f64, initial_bytes: f64) -> FeedbackController {
        assert!(deadline > 0.0, "deadline must be positive");
        assert!(initial_bytes > 0.0, "initial size must be positive");
        FeedbackController {
            params,
            deadline,
            size: initial_bytes.clamp(params.min_bytes, params.max_bytes),
            latencies: Vec::with_capacity(params.interval + 1),
            panics: 0,
            updates: 0,
            pending: false,
        }
    }

    /// Tells the controller its latest size has been installed in the LLC
    /// (called by the OS runtime at each 100 ms reconfiguration),
    /// re-arming ordinary adjustments.
    pub fn mark_deployed(&mut self) {
        self.pending = false;
    }

    /// Current allocation target in bytes.
    pub fn size_bytes(&self) -> f64 {
        self.size
    }

    /// The controlled deadline.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// How many panic boosts have fired.
    pub fn panics(&self) -> u64 {
        self.panics
    }

    /// How many controller updates have run.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Records a completed request (Listing 1's `RequestCompleted`).
    /// Returns the new size when an update fires, `None` otherwise.
    pub fn on_request_complete(&mut self, latency: f64) -> Option<f64> {
        self.latencies.push(latency);
        if self.latencies.len() > self.params.interval {
            let tail = percentile(&mut self.latencies, self.params.percentile);
            self.latencies.clear();
            Some(self.update(tail))
        } else {
            None
        }
    }

    /// Applies one controller update given a measured tail latency,
    /// returning the new size.
    pub fn update(&mut self, tail: f64) -> f64 {
        self.updates += 1;
        let p = self.params;
        let ratio = tail / self.deadline;
        if ratio > p.panic_threshold {
            // Panics always fire: short queueing spikes set the tail.
            self.panics += 1;
            self.size = self.size.max(p.panic_bytes);
            self.pending = true;
        } else if !self.pending {
            if ratio > p.target_high {
                self.size *= 1.0 + p.step;
                self.pending = true;
            } else if ratio < p.target_low {
                self.size *= 1.0 - p.step;
                self.pending = true;
            }
        }
        self.size = self.size.clamp(p.min_bytes, p.max_bytes);
        self.size
    }
}

/// The `getPercentile` helper of Listing 1: nearest-rank percentile.
///
/// Sorts the slice in place.
///
/// # Panics
///
/// Panics if `latencies` is empty or `p` is outside `(0, 1]`.
pub fn percentile(latencies: &mut [f64], p: f64) -> f64 {
    assert!(!latencies.is_empty(), "need at least one latency");
    assert!(p > 0.0 && p <= 1.0, "percentile must be in (0,1]");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = (p * latencies.len() as f64).ceil() as usize;
    latencies[rank.saturating_sub(1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    fn params() -> ControllerParams {
        ControllerParams::micro2020(20.0 * MB)
    }

    fn ctrl(deadline: f64) -> FeedbackController {
        FeedbackController::new(params(), deadline, 2.0 * MB)
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&mut v, 0.95), 95.0);
        assert_eq!(percentile(&mut v, 1.0), 100.0);
        let mut w = vec![5.0];
        assert_eq!(percentile(&mut w, 0.95), 5.0);
    }

    #[test]
    fn grows_when_tail_near_deadline() {
        let mut c = ctrl(1000.0);
        let s0 = c.size_bytes();
        let s1 = c.update(990.0); // 99% of deadline: grow
        assert!((s1 - s0 * 1.1).abs() < 1.0);
    }

    #[test]
    fn shrinks_when_tail_is_low() {
        let mut c = ctrl(1000.0);
        let s0 = c.size_bytes();
        let s1 = c.update(500.0); // 50%: shrink
        assert!((s1 - s0 * 0.9).abs() < 1.0);
    }

    #[test]
    fn dead_band_holds_steady() {
        let mut c = ctrl(1000.0);
        let s0 = c.size_bytes();
        let s1 = c.update(900.0); // 90%: inside [85%, 95%]
        assert_eq!(s0, s1);
    }

    #[test]
    fn panic_boosts_to_canonical_size() {
        let mut c = ctrl(1000.0);
        // Shrink far below the panic size first.
        for _ in 0..20 {
            c.update(100.0);
            c.mark_deployed();
        }
        assert!(c.size_bytes() < params().panic_bytes);
        let s = c.update(1200.0); // 120% of deadline: panic
        assert_eq!(s, params().panic_bytes);
        assert_eq!(c.panics(), 1);
    }

    #[test]
    fn panic_never_shrinks_a_large_allocation() {
        let mut c = FeedbackController::new(params(), 1000.0, 4.0 * MB);
        let s = c.update(5000.0);
        assert_eq!(s, 4.0 * MB, "panic is a max, not an assignment");
    }

    #[test]
    fn respects_min_and_max() {
        let mut c = ctrl(1000.0);
        for _ in 0..200 {
            c.update(1.0);
            c.mark_deployed();
        }
        assert_eq!(c.size_bytes(), params().min_bytes);
        for _ in 0..200 {
            c.update(1000.0); // 100%: grow each time (no panic)
            c.mark_deployed();
        }
        assert_eq!(c.size_bytes(), params().max_bytes);
    }

    #[test]
    fn updates_fire_every_interval_plus_one() {
        let mut c = ctrl(1000.0);
        let mut fired = 0;
        for i in 0..63 {
            if c.on_request_complete(500.0 + i as f64).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3);
        assert_eq!(c.updates(), 3);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_panics() {
        FeedbackController::new(params(), 0.0, MB);
    }
}
