//! Property-based tests of the cache structures' core invariants.

// Test-only scratch maps; iteration order is never observed.
#![allow(clippy::disallowed_types)]

use nuca_cache::{
    analytic::{assoc_penalty, shared_occupancy},
    BankConfig, CacheBank, MissCurve, PartitionId, ReplPolicy, StackProfiler, WayMask,
};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ReplPolicy> {
    prop_oneof![
        Just(ReplPolicy::Lru),
        Just(ReplPolicy::Srrip),
        Just(ReplPolicy::Brrip),
        Just(ReplPolicy::Drrip),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A bank never reports more hits than accesses, and occupancy never
    /// exceeds capacity.
    #[test]
    fn bank_counters_are_consistent(
        policy in arb_policy(),
        stream in proptest::collection::vec(0u64..4096, 1..600),
    ) {
        let mut bank = CacheBank::new(BankConfig { sets: 16, ways: 4, policy });
        for &line in &stream {
            bank.access(line, PartitionId(0));
        }
        let s = bank.stats();
        prop_assert_eq!(s.accesses, stream.len() as u64);
        prop_assert!(s.hits <= s.accesses);
        prop_assert!(bank.occupancy(PartitionId(0)) <= 16 * 4);
    }

    /// Whatever the interleaving, a partition's lines are never evicted by
    /// another partition with a disjoint way mask.
    #[test]
    fn disjoint_masks_never_cross_evict(
        policy in arb_policy(),
        victim_lines in proptest::collection::vec(0u64..64, 1..4),
        attacker_stream in proptest::collection::vec(0u64..100_000, 1..800),
    ) {
        let mut bank = CacheBank::new(BankConfig { sets: 4, ways: 8, policy });
        bank.set_mask(PartitionId(0), WayMask::range(0, 4));
        bank.set_mask(PartitionId(1), WayMask::range(4, 4));
        // Victim loads a few lines (deduplicated; at most 4 per set fit).
        let mut mine: Vec<u64> = victim_lines.clone();
        mine.sort();
        mine.dedup();
        mine.truncate(4);
        // Keep one line per set at most to guarantee fit.
        let mut per_set = std::collections::HashSet::new();
        mine.retain(|l| per_set.insert(l % 4));
        for &l in &mine {
            bank.access(l, PartitionId(0));
        }
        for &l in &attacker_stream {
            bank.access(l + 1_000_000, PartitionId(1));
        }
        for &l in &mine {
            prop_assert!(bank.resident(l), "line {l} evicted across masks");
        }
    }

    /// Stack-distance miss curves are monotone non-increasing for any
    /// stream.
    #[test]
    fn profiler_curves_monotone(stream in proptest::collection::vec(0u64..512, 1..800)) {
        let mut p = StackProfiler::new();
        for &l in &stream {
            p.record(l);
        }
        let c = p.miss_curve(4, 32);
        for w in c.points().windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
        prop_assert_eq!(c.at(0), stream.len() as f64);
    }

    /// Convex hulls are convex, below the curve, and share endpoints.
    #[test]
    fn hull_invariants(points in proptest::collection::vec(0.0f64..1e6, 2..64)) {
        let c = MissCurve::new(64, points);
        let h = c.convex_hull();
        prop_assert!(h.is_convex());
        prop_assert!((h.at(0) - c.at(0)).abs() < 1e-9);
        let last = c.max_units();
        prop_assert!((h.at(last) - c.at(last)).abs() < 1e-9);
        for u in 0..=last {
            prop_assert!(h.at(u) <= c.at(u) + 1e-9);
        }
    }

    /// Combining convex curves conserves capacity and is never worse than
    /// an even split.
    #[test]
    fn combine_beats_even_split(
        a in proptest::collection::vec(0.0f64..1e5, 3..20),
        b in proptest::collection::vec(0.0f64..1e5, 3..20),
    ) {
        let ca = MissCurve::new(64, a);
        let cb = MissCurve::new(64, b);
        let (comb, splits) = MissCurve::combine_convex(&[ca.clone(), cb.clone()]);
        let (ha, hb) = (ca.convex_hull(), cb.convex_hull());
        let total = (ha.max_units() + hb.max_units()).min(comb.max_units());
        for t in (0..=total).step_by(3) {
            let x = t / 2;
            let y = t - x;
            let even = ha.at(x) + hb.at(y);
            prop_assert!(comb.at(t) <= even + 1e-6, "t={t}");
            let s = &splits[t];
            prop_assert_eq!(s[0] + s[1], t);
        }
    }

    /// Shared-occupancy equilibrium conserves capacity and stays within
    /// each sharer's footprint.
    #[test]
    fn equilibrium_conserves(
        rates in proptest::collection::vec(1.0f64..100.0, 2..6),
        total in 1.0f64..30.0,
    ) {
        let curves: Vec<MissCurve> = rates
            .iter()
            .map(|&r| {
                let pts: Vec<f64> = (0..=16).map(|u| r * 100.0 / (1.0 + u as f64)).collect();
                MissCurve::new(64, pts)
            })
            .collect();
        let occ = shared_occupancy(&curves, total);
        let sum: f64 = occ.iter().sum();
        let footprint: f64 = curves.iter().map(|c| c.max_units() as f64).sum();
        prop_assert!(sum <= total.min(footprint) + 1e-6);
        for (o, c) in occ.iter().zip(&curves) {
            prop_assert!(*o >= -1e-9 && *o <= c.max_units() as f64 + 1e-6);
        }
    }

    /// The associativity penalty is always >= 1 and monotone in ways.
    #[test]
    fn penalty_bounds(w1 in 1.0f64..64.0, w2 in 1.0f64..64.0) {
        let (lo, hi) = if w1 < w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(assoc_penalty(hi, 64) >= 1.0);
        prop_assert!(assoc_penalty(lo, 64) >= assoc_penalty(hi, 64));
    }
}
