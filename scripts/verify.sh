#!/usr/bin/env sh
# Repo verification: formatting, lints, the full test suite, and a quick
# end-to-end pass of the experiment engine (including the parallel-vs-
# serial byte-identity guarantee). Run from the repo root:
#
#   sh scripts/verify.sh
#
# Builds are offline (--offline): the workspace vendors shims for its few
# external dev-dependencies, so no network access is required.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== jumanji-lint self-test (seeded fixture corpus, exact diagnostics)"
cargo run --offline --release -p jumanji-lint -- --self-test

echo "== jumanji-lint workspace scan (determinism / cache-key / unsafe / env gates)"
cargo run --offline --release -p jumanji-lint

echo "== cargo build --release"
cargo build --offline --release

echo "== cargo test --release"
cargo test --offline --release --workspace

echo "== golden-trace regression (flat kernels vs pre-refactor fixtures)"
cargo test --offline --release -p jumanji --test golden_trace

echo "== golden-analytic regression (epoch engine vs pre-refactor fixtures)"
cargo test --offline --release -p jumanji --test golden_analytic

echo "== suite golden regression (full fig13/fig14 matrix, gated tests on)"
JUMANJI_SUITE_GOLDEN=1 cargo test --offline --release -p jumanji-bench --test suite_golden

echo "== plan coverage (every plannable figure, full-matrix figures on)"
JUMANJI_SUITE_GOLDEN=1 cargo test --offline --release -p jumanji-bench --test plan_coverage

echo "== cargo bench smoke (one iteration per benchmark, no statistics)"
JUMANJI_BENCH_SMOKE=1 cargo bench --offline

echo "== quick suite: timings (runs every heavy binary at --mixes 4)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/timings --out "$tmp"
cat "$tmp/BENCH_suite.json"

echo "== parallel output is byte-identical to serial"
./target/release/fig13 --mixes 2 --threads 1 >"$tmp/t1.tsv"
./target/release/fig13 --mixes 2 --threads 4 >"$tmp/t4.tsv"
cmp "$tmp/t1.tsv" "$tmp/t4.tsv"
./target/release/validate --threads 1 >"$tmp/v1.tsv"
./target/release/validate --threads 4 >"$tmp/v4.tsv"
cmp "$tmp/v1.tsv" "$tmp/v4.tsv"
./target/release/fig02 --threads 1 >"$tmp/f1.tsv"
./target/release/fig02 --threads 4 >"$tmp/f4.tsv"
cmp "$tmp/f1.tsv" "$tmp/f4.tsv"

echo "== suite output is byte-identical to the standalone binaries"
./target/release/fig13 --mixes 2 --threads 1 >"$tmp/s13.tsv"
./target/release/fig14 --mixes 2 --threads 1 >"$tmp/s14.tsv"
./target/release/suite --figures fig13,fig14 --mixes 2 --threads 1 \
    --out "$tmp/suite_t1" 2>"$tmp/suite_t1.log"
cmp "$tmp/suite_t1/fig13.tsv" "$tmp/s13.tsv"
cmp "$tmp/suite_t1/fig14.tsv" "$tmp/s14.tsv"
./target/release/suite --figures fig13,fig14 --mixes 2 --threads 4 \
    --out "$tmp/suite_t4" 2>/dev/null
cmp "$tmp/suite_t4/fig13.tsv" "$tmp/s13.tsv"
cmp "$tmp/suite_t4/fig14.tsv" "$tmp/s14.tsv"

echo "== suite dedups cells across figures (fig14 reuses fig13's runs)"
grep -Eq 'cells: [0-9]+ computed, [1-9][0-9]* reused' "$tmp/suite_t1.log"

echo "== scheduled suite is thread-count- and mode-invariant"
sched_figs=fig05,fig13,fig15,fig17,ablation
./target/release/suite --figures "$sched_figs" --mixes 2 --threads 1 \
    --out "$tmp/sched_t1" 2>/dev/null
./target/release/suite --figures "$sched_figs" --mixes 2 --threads 4 \
    --out "$tmp/sched_t4" 2>"$tmp/sched_t4.log"
./target/release/suite --figures "$sched_figs" --mixes 2 --threads 4 \
    --sequential --out "$tmp/sched_seq" 2>/dev/null
for f in fig05 fig13 fig15 fig17 ablation; do
    cmp "$tmp/sched_t1/$f.tsv" "$tmp/sched_t4/$f.tsv"
    cmp "$tmp/sched_t1/$f.tsv" "$tmp/sched_seq/$f.tsv"
done
grep -q '\[suite\] sched:' "$tmp/sched_t4.log"

echo "== --no-cache output is byte-identical to the cached suite"
./target/release/suite --figures fig13,fig14 --mixes 2 --threads 1 \
    --no-cache --out "$tmp/suite_nc" 2>/dev/null
cmp "$tmp/suite_nc/fig13.tsv" "$tmp/s13.tsv"
cmp "$tmp/suite_nc/fig14.tsv" "$tmp/s14.tsv"

echo "== warm disk cache is byte-identical to cold (five figures)"
disk_figs=fig05,fig09,fig13,fig14,fig16
./target/release/suite --figures "$disk_figs" --mixes 2 --threads 4 \
    --cache-dir "$tmp/store" --out "$tmp/disk_cold" 2>"$tmp/disk_cold.log"
./target/release/suite --figures "$disk_figs" --mixes 2 --threads 4 \
    --cache-dir "$tmp/store" --out "$tmp/disk_warm" 2>"$tmp/disk_warm.log"
./target/release/suite --figures "$disk_figs" --mixes 2 --threads 4 \
    --no-cache --out "$tmp/disk_nc" 2>/dev/null
for f in fig05 fig09 fig13 fig14 fig16; do
    cmp "$tmp/disk_cold/$f.tsv" "$tmp/disk_warm/$f.tsv"
    cmp "$tmp/disk_cold/$f.tsv" "$tmp/disk_nc/$f.tsv"
done

echo "== warm suite run reports disk hits and zero computed runs"
grep -Eq '\[suite\] disk cache: [1-9][0-9]* hits' "$tmp/disk_warm.log"
grep -Eq '\[suite\] sched: 0 runs computed, [1-9][0-9]* served from disk' \
    "$tmp/disk_warm.log"
grep -Eq '\[suite\] disk cache: 0 hits' "$tmp/disk_cold.log"

echo "== detailed cells: cold/warm/--no-cache suite runs are byte-identical"
# Equal --accesses across both figures so validate's mix-0 cells dedup
# against fig02's in the work graph.
detail_figs=fig02,validate
detail_acc=60000
./target/release/suite --figures "$detail_figs" --mixes 2 --accesses "$detail_acc" \
    --threads 4 --cache-dir "$tmp/dstore" --out "$tmp/detail_cold" \
    2>"$tmp/detail_cold.log"
./target/release/suite --figures "$detail_figs" --mixes 2 --accesses "$detail_acc" \
    --threads 4 --cache-dir "$tmp/dstore" --out "$tmp/detail_warm" \
    2>"$tmp/detail_warm.log"
./target/release/suite --figures "$detail_figs" --mixes 2 --accesses "$detail_acc" \
    --threads 4 --no-cache --out "$tmp/detail_nc" 2>/dev/null
for f in fig02 validate; do
    cmp "$tmp/detail_cold/$f.tsv" "$tmp/detail_warm/$f.tsv"
    cmp "$tmp/detail_cold/$f.tsv" "$tmp/detail_nc/$f.tsv"
done

echo "== suite detailed figures match the standalone binaries"
./target/release/fig02 --accesses "$detail_acc" >"$tmp/s02.tsv"
./target/release/validate --mixes 2 --accesses "$detail_acc" >"$tmp/sval.tsv"
cmp "$tmp/detail_cold/fig02.tsv" "$tmp/s02.tsv"
cmp "$tmp/detail_cold/validate.tsv" "$tmp/sval.tsv"

echo "== warm run serves every detail cell from disk, cold computes them"
grep -Eq '\[suite\] sched: [1-9][0-9]* detail cells computed, 0 served from disk' \
    "$tmp/detail_cold.log"
grep -Eq '\[suite\] sched: 0 detail cells computed, [1-9][0-9]* served from disk' \
    "$tmp/detail_warm.log"

echo "== every figure binary runs at --mixes 1 (spec-wrapper smoke test)"
for fig in fig02 fig04 fig05 fig08 fig09 fig11 fig12 fig13 fig14 fig15 \
           fig16 fig17 fig18 table2 table3 ablation sensitivity validate; do
    printf '   %s\n' "$fig"
    ./target/release/"$fig" --mixes 1 --accesses 2000 >"$tmp/smoke_$fig.tsv"
    head -c 1 "$tmp/smoke_$fig.tsv" | grep -q '#'
done

echo "== telemetry off is byte-identical to the pinned golden TSVs"
./target/release/fig13 --mixes 12 >"$tmp/fig13.tsv"
cmp "$tmp/fig13.tsv" results/fig13.tsv
./target/release/fig14 --mixes 12 >"$tmp/fig14.tsv"
cmp "$tmp/fig14.tsv" results/fig14.tsv

echo "== --trace emits controller events as JSONL"
./target/release/fig05 --trace "$tmp/trace.jsonl" >/dev/null
grep -q '"event":"controller"' "$tmp/trace.jsonl"
grep -q '"event":"run_summary"' "$tmp/trace.jsonl"

echo "verify: OK"
