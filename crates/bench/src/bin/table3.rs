//! Table III: workload configuration for latency-critical applications,
//! plus the derived deadlines used throughout the evaluation.

use jumanji::prelude::*;
use jumanji::sim::deadline::deadline_cycles;

fn main() {
    let cfg = SystemConfig::micro2020();
    println!("# Table III: latency-critical workload configuration");
    println!("app\tqps_low\tqps_high\tnum_queries\tdeadline_ms");
    for p in tailbench() {
        let deadline = deadline_cycles(&p, &cfg) / cfg.freq_hz * 1e3;
        println!(
            "{}\t{}\t{}\t{}\t{:.3}",
            p.name, p.qps_low, p.qps_high, p.num_queries, deadline
        );
    }
    println!("# deadline = p95 latency in isolation, high load, 4-way partition (Sec. VII)");
}
