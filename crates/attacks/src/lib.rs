//! LLC attack demonstrations (paper Sec. VI).
//!
//! Three shared cache components leak information or performance across
//! protection domains (Fig. 10):
//!
//! 1. **Cache sets** — classic conflict (prime+probe) attacks
//!    ([`conflict`]). Way-partitioning defends these.
//! 2. **Bank ports** — queueing on a bank's limited ports reveals when a
//!    victim accesses that bank ([`port`], reproducing Fig. 11). *Not*
//!    defended by way-partitioning; defended by Jumanji's bank isolation.
//! 3. **Replacement state** — DRRIP set-dueling's shared PSEL counter lets
//!    co-runners change a victim's replacement policy even across strict
//!    partitions ([`leakage`], reproducing Fig. 12). Also only defended by
//!    bank isolation.
//!
//! Beyond the paper's demonstrations, [`covert`] turns the port side
//! channel into a deliberate cross-VM covert channel and measures its
//! bandwidth with and without bank isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod covert;
pub mod leakage;
pub mod port;
