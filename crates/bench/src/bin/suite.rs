//! One-process suite runner: plans every requested figure, unions the
//! plans into one deduplicated work graph, executes it on a
//! work-stealing pool, and streams each figure's TSV the moment its last
//! cell completes (see [`jumanji_bench::suite`]).
//!
//! fig13 and fig14 run the *same* experiment matrix and differ only in
//! rendering; the sensitivity study's default rows duplicate the
//! main-results cells; the ablation re-runs case-study seeds. The work
//! graph computes each unique cell exactly once *before* any figure
//! renders — with byte-identical TSVs at every thread count, enforced by
//! the golden tests, `tests/sched_identity.rs`, and `scripts/verify.sh`.
//!
//! Usage:
//!
//! ```text
//! suite [--figures all|fig13,fig14,…] [--out DIR] [--stats PATH]
//!       [--mixes N] [--threads N] [--seed N] [--accesses N]
//!       [--trace PATH] [--no-cache] [--cache-dir DIR]
//!       [--cache-cap-bytes N] [--sequential]
//! ```
//!
//! - `--figures` — comma-separated [`FigureKind`] names, or `all` for
//!   all 18 in figure order (also the default). Repeats are deduplicated
//!   silently.
//! - `--out DIR` — write each figure to `DIR/<name>.tsv` (created if
//!   missing) instead of concatenating everything to stdout.
//! - `--stats PATH` — write a JSON cache/scheduler statistics report.
//! - `--mixes` / `--threads` / `--seed` / `--accesses` — forwarded to
//!   every figure exactly as the standalone binaries resolve them
//!   (CLI beats `JUMANJI_*` env beats the per-figure default).
//!   `--threads` also sizes the work-stealing pool.
//! - `--trace PATH` — one shared JSONL sink for the whole suite (also
//!   honours `JUMANJI_TRACE`); each unique cell's event stream is
//!   emitted exactly once.
//! - `--no-cache` — disable the shared cache: every cell computes fresh
//!   (this forces the sequential path; scheduling into a disabled cache
//!   would be pure waste).
//! - `--cache-dir DIR` — back the cache with a persistent store (also
//!   honours `JUMANJI_CACHE_DIR`): completed cells — analytic runs *and*
//!   detailed-simulator reports — are read from and written to `DIR`, so
//!   a second suite run — or a standalone figure binary pointed at the
//!   same directory — starts warm.
//! - `--cache-cap-bytes N` — bound the persistent store (also honours
//!   `JUMANJI_CACHE_CAP`): oldest cells are evicted first once the
//!   store exceeds `N` bytes (0 = unbounded, the default).
//! - `--sequential` — render figures one at a time without the work
//!   graph (the A/B baseline `timings` measures against).
//!
//! Per-figure timing and cache-delta lines go to stderr; exit codes match
//! the figure binaries (usage → 2, runtime → 1).

// The JUMANJI_TRACE fallback below mirrors spec.rs's env surface for the
// suite CLI; sanctioned by a lint.toml [[allow]] — mirrored for clippy.
#![allow(clippy::disallowed_methods)]

use jumanji::telemetry::{Event, JsonlSink, NoopSink, Telemetry};
use jumanji::types::Error;
use jumanji_bench::cell_cache::{apply_cache_flags, CellCache, CellCacheStats};
use jumanji_bench::exec::flag_value;
use jumanji_bench::suite::{run_suite, SchedReport, SuiteFigure};
use jumanji_bench::{ExperimentSpec, FigureKind};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// One figure's timing and cache-delta report.
struct FigureReport {
    name: &'static str,
    seconds: f64,
    computed: u64,
    reused: u64,
}

/// The figures to run: `--figures a,b,c` with `all` as shorthand for
/// the full 18-figure sweep (also the default). Repeated names are
/// deduplicated silently — the work graph would dedupe their cells
/// anyway, and rendering the same figure twice in one suite is never
/// what the caller meant.
fn parse_figures(args: &[String]) -> Result<Vec<FigureKind>, Error> {
    let Some(list) = flag_value(args, "--figures") else {
        return Ok(FigureKind::all().to_vec());
    };
    if list.is_empty() {
        return Err(Error::flag("--figures", "expected a value"));
    }
    let mut out = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        if name == "all" {
            for kind in FigureKind::all() {
                if !out.contains(&kind) {
                    out.push(kind);
                }
            }
            continue;
        }
        let kind = FigureKind::from_name(name)
            .ok_or_else(|| Error::flag("--figures", format!("unknown figure `{name}`")))?;
        if !out.contains(&kind) {
            out.push(kind);
        }
    }
    Ok(out)
}

/// The shared trace sink, if tracing: `--trace PATH` beats
/// `JUMANJI_TRACE`. One sink for the whole suite, so per-figure runs
/// append instead of truncating each other.
fn trace_sink(args: &[String]) -> Result<Option<Arc<JsonlSink>>, Error> {
    let path = match flag_value(args, "--trace") {
        Some(p) if !p.is_empty() => Some(PathBuf::from(p)),
        Some(_) => return Err(Error::flag("--trace", "expected a value")),
        None => match std::env::var_os("JUMANJI_TRACE") {
            Some(p) if !p.is_empty() => Some(PathBuf::from(p)),
            _ => None,
        },
    };
    Ok(match path {
        Some(p) => Some(Arc::new(JsonlSink::create(&p)?)),
        None => None,
    })
}

fn cells_of(stats: &CellCacheStats) -> (u64, u64) {
    (
        stats.runs.misses + stats.details.misses,
        stats.runs.hits + stats.details.hits,
    )
}

fn write_stats(
    path: &PathBuf,
    reports: &[FigureReport],
    total_seconds: f64,
    stats: &CellCacheStats,
    sched: Option<&SchedReport>,
) -> std::io::Result<()> {
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    let (computed, reused) = cells_of(stats);
    let lookups = computed + reused;
    let reuse_rate = if lookups == 0 {
        0.0
    } else {
        reused as f64 / lookups as f64
    };
    writeln!(f, "{{")?;
    writeln!(f, "  \"figures\": [")?;
    for (i, r) in reports.iter().enumerate() {
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"seconds\": {:.3}, \"computed\": {}, \"reused\": {}}}{}",
            r.name,
            r.seconds,
            r.computed,
            r.reused,
            if i + 1 < reports.len() { "," } else { "" }
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"total_seconds\": {total_seconds:.3},")?;
    writeln!(f, "  \"cells_computed\": {computed},")?;
    writeln!(f, "  \"cells_reused\": {reused},")?;
    writeln!(f, "  \"cell_reuse_rate\": {reuse_rate:.4},")?;
    writeln!(
        f,
        "  \"experiments\": {{\"hits\": {}, \"misses\": {}}},",
        stats.experiments.hits, stats.experiments.misses
    )?;
    writeln!(
        f,
        "  \"allocs\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},",
        stats.allocs.hits, stats.allocs.misses, stats.allocs.entries
    )?;
    writeln!(
        f,
        "  \"details\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}},",
        stats.details.hits, stats.details.misses, stats.details.entries
    )?;
    writeln!(
        f,
        "  \"hulls\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}}{}",
        stats.hulls.hits,
        stats.hulls.misses,
        stats.hulls.entries,
        if sched.is_some() || stats.disk.is_some() {
            ","
        } else {
            ""
        }
    )?;
    if let Some(s) = sched {
        let comma = if stats.disk.is_some() { "," } else { "" };
        writeln!(f, "  \"sched\": {{")?;
        writeln!(f, "    \"planned_runs\": {},", s.planned_runs)?;
        writeln!(f, "    \"planned_details\": {},", s.planned_details)?;
        writeln!(f, "    \"nodes\": {},", s.nodes)?;
        writeln!(f, "    \"edges\": {},", s.edges)?;
        writeln!(f, "    \"workers\": {},", s.graph.workers)?;
        writeln!(f, "    \"steals\": {},", s.graph.steals)?;
        writeln!(f, "    \"critical_path_us\": {},", s.graph.critical_path_us)?;
        writeln!(f, "    \"elapsed_us\": {},", s.graph.elapsed_us)?;
        writeln!(f, "    \"computed_runs\": {},", s.computed_runs)?;
        writeln!(f, "    \"disk_run_hits\": {},", s.disk_run_hits)?;
        writeln!(f, "    \"detail_computed\": {},", s.detail_computed)?;
        writeln!(f, "    \"detail_disk_hits\": {},", s.detail_disk_hits)?;
        writeln!(f, "    \"warm_skipped_exps\": {},", s.warm_skipped_exps)?;
        writeln!(f, "    \"cost_drift\": [")?;
        for (i, d) in s.drift.iter().enumerate() {
            writeln!(
                f,
                "      {{\"design\": \"{}\", \"prior\": {:.3}, \"measured\": {:.3}, \
                 \"samples\": {}}}{}",
                d.design,
                d.prior,
                d.measured,
                d.samples,
                if i + 1 < s.drift.len() { "," } else { "" }
            )?;
        }
        writeln!(f, "    ]")?;
        writeln!(f, "  }}{comma}")?;
    }
    if let Some(d) = &stats.disk {
        writeln!(f, "  \"disk_cache\": {{")?;
        writeln!(f, "    \"hits\": {},", d.hits)?;
        writeln!(f, "    \"misses\": {},", d.misses)?;
        writeln!(f, "    \"writes\": {},", d.writes)?;
        writeln!(f, "    \"evictions\": {},", d.evictions)?;
        writeln!(f, "    \"corrupt_dropped\": {}", d.corrupt_dropped)?;
        writeln!(f, "  }}")?;
    }
    writeln!(f, "}}")?;
    f.flush()
}

fn run(args: &[String]) -> Result<(), Error> {
    apply_cache_flags(args);
    let figures = parse_figures(args)?;
    let out_dir = flag_value(args, "--out").map(PathBuf::from);
    let stats_path = flag_value(args, "--stats").map(PathBuf::from);
    let sequential = args.iter().any(|a| a == "--sequential");
    let sink = trace_sink(args)?;
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)?;
    }

    let specs = figures
        .iter()
        .map(|&kind| {
            // The suite owns telemetry (one shared sink) and rendering;
            // clear the per-figure trace so figures don't truncate each
            // other's streams.
            let mut spec = ExperimentSpec::from_args_env(kind)?;
            spec.trace = None;
            spec.telemetry = None;
            Ok(spec)
        })
        .collect::<Result<Vec<_>, Error>>()?;
    let threads = specs.first().map_or(1, |s| s.threads);
    let tel: &dyn Telemetry = match &sink {
        Some(s) => s.as_ref(),
        None => &NoopSink,
    };

    let cache = CellCache::global();
    let mut reports = Vec::with_capacity(specs.len());
    let mut emit = |fig: SuiteFigure| -> Result<(), Error> {
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.tsv", fig.kind.name()));
            std::fs::write(&path, &fig.bytes)?;
        } else {
            let stdout = std::io::stdout();
            stdout.lock().write_all(&fig.bytes)?;
        }
        let report = FigureReport {
            name: fig.kind.name(),
            seconds: fig.seconds,
            computed: fig.computed,
            reused: fig.reused,
        };
        eprintln!(
            "[suite] {}: {:.2}s ({} cells computed, {} reused)",
            report.name, report.seconds, report.computed, report.reused
        );
        reports.push(report);
        Ok(())
    };
    let summary = run_suite(&specs, threads, sequential, tel, &mut emit)?;
    let total_seconds = summary.total_seconds;

    let stats = cache.stats();
    let (computed, reused) = cells_of(&stats);
    let lookups = computed + reused;
    let reuse_pct = if lookups == 0 {
        0.0
    } else {
        100.0 * reused as f64 / lookups as f64
    };
    eprintln!(
        "[suite] total {:.2}s; cells: {} computed, {} reused ({:.1}% reuse); \
         hulls: {} computed, {} reused",
        total_seconds, computed, reused, reuse_pct, stats.hulls.misses, stats.hulls.hits
    );
    if let Some(s) = &summary.sched {
        eprintln!(
            "[suite] sched: {} nodes ({} planned runs, {} planned detail cells), \
             {} edges, {} workers, {} steals, critical path {:.2}s of {:.2}s",
            s.nodes,
            s.planned_runs,
            s.planned_details,
            s.edges,
            s.graph.workers,
            s.graph.steals,
            s.graph.critical_path_us as f64 / 1e6,
            s.graph.elapsed_us as f64 / 1e6
        );
        if stats.disk.is_some() {
            eprintln!(
                "[suite] sched: {} runs computed, {} served from disk, \
                 {} experiment constructions skipped warm",
                s.computed_runs, s.disk_run_hits, s.warm_skipped_exps
            );
            eprintln!(
                "[suite] sched: {} detail cells computed, {} served from disk",
                s.detail_computed, s.detail_disk_hits
            );
        }
        for d in &s.drift {
            eprintln!(
                "[suite] cost drift: {} prior {:.2} measured {:.2} ({} samples)",
                d.design, d.prior, d.measured, d.samples
            );
        }
    }
    if let Some(d) = &stats.disk {
        eprintln!(
            "[suite] disk cache: {} hits, {} misses, {} writes, \
             {} evictions, {} corrupt dropped",
            d.hits, d.misses, d.writes, d.evictions, d.corrupt_dropped
        );
    }

    if let Some(sink) = &sink {
        for (scope, m) in [
            ("runs", stats.runs),
            ("details", stats.details),
            ("experiments", stats.experiments),
            ("allocs", stats.allocs),
            ("hulls", stats.hulls),
        ] {
            sink.emit(&Event::CacheStats {
                scope,
                hits: m.hits,
                misses: m.misses,
                entries: m.entries,
            });
        }
        if let Some(d) = &stats.disk {
            sink.emit(&Event::DiskCacheStats {
                hits: d.hits,
                misses: d.misses,
                writes: d.writes,
                evictions: d.evictions,
                corrupt_dropped: d.corrupt_dropped,
            });
        }
        sink.flush()?;
    }
    if let Some(path) = &stats_path {
        write_stats(
            path,
            &reports,
            total_seconds,
            &stats,
            summary.sched.as_ref(),
        )?;
    }
    jumanji_bench::cell_cache::persist_global_disk();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("suite: {e}");
            ExitCode::from(if e.is_usage() { 2 } else { 1 })
        }
    }
}
