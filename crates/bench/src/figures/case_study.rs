//! The case study (Sec. II-B) and its supporting micro-figures: data
//! placements (Fig. 2), behavior over time (Fig. 4), end-to-end results
//! (Fig. 5), the S-NUCA vs D-NUCA allocation curve (Fig. 8), and
//! controller-parameter sensitivity (Fig. 9).

use super::sim_opts;
use crate::cell_cache::CellCache;
use crate::exec::parallel_map_traced;
use crate::spec::ExperimentSpec;
use jumanji::cache::analytic::assoc_penalty;
use jumanji::core::AppKind;
use jumanji::noc::MeshNoc;
use jumanji::prelude::*;
use jumanji::sim::detail::{DetailOptions, DetailReport};
use jumanji::sim::metrics::{gmean, percentile};
use jumanji::sim::perf::Profile;
use jumanji::sim::queueing::LcQueue;
use jumanji::types::{AppId, BankId, CoreId, Error, Seconds, VmId};
use std::io::Write;

const MB: f64 = 1048576.0;

/// Renders one 5×4 ASCII map; `occ_of` yields the apps present in a bank.
///
/// Each bank cell lists the VMs occupying it (`0`–`3`), `*` marking
/// banks that hold latency-critical data.
fn render_map(
    cfg: &SystemConfig,
    input: &PlacementInput,
    occ_of: impl Fn(BankId) -> Vec<AppId>,
) -> String {
    let mesh = cfg.mesh();
    let mut out = String::new();
    for row in 0..mesh.rows() {
        for col in 0..mesh.cols() {
            let bank = BankId(row * mesh.cols() + col);
            let occ = occ_of(bank);
            let mut vms: Vec<usize> = occ
                .iter()
                .map(|a| input.apps[a.index()].vm.index())
                .collect();
            vms.sort();
            vms.dedup();
            let has_lc = occ
                .iter()
                .any(|a| input.apps[a.index()].kind == AppKind::LatencyCritical);
            let cell: String = vms.iter().map(|v| v.to_string()).collect();
            let cell = if cell.is_empty() {
                "-".to_string()
            } else {
                cell
            };
            out.push_str(&format!("[{:>4}{}]", cell, if has_lc { "*" } else { " " }));
        }
        out.push('\n');
    }
    out
}

/// The detailed-run options Fig. 2 uses. Shared with the plan pass,
/// which must name the exact same cells the render looks up.
pub(crate) fn fig02_opts(cfg: &SystemConfig, accesses: usize) -> DetailOptions {
    DetailOptions {
        cfg: cfg.clone(),
        accesses_per_app: accesses,
        ..DetailOptions::default()
    }
}

/// Fig. 2's canonical profile assignment over the example placement
/// input. Shared with the plan pass.
pub(crate) fn fig02_profiles(input: &PlacementInput) -> Vec<Profile> {
    let lc = tailbench();
    let batch = spec2006();
    input
        .apps
        .iter()
        .enumerate()
        .map(|(i, a)| match a.kind {
            AppKind::LatencyCritical => Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High),
            AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
        })
        .collect()
}

/// Fig. 2: representative data placements under each LLC design for the
/// case-study workload, rendered as ASCII maps of the 5×4 LLC.
///
/// Two maps per design: the *descriptor* placement (what the allocator
/// asked for) and the *observed* occupancy (which VMs' lines actually
/// sit in each bank after a detailed simulation of the allocation). The
/// designs are independent cells fanned across the worker pool; output
/// is byte-identical at any thread count.
pub fn fig02(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let mesh = cfg.mesh();
    let profiles = fig02_profiles(&input);
    let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
    let designs = &spec.designs;

    // Each design's detailed simulation is an independent cell, read
    // through the cell cache (warm after a scheduled suite run or a
    // prior process with the same --cache-dir).
    let reports: Vec<(Allocation, std::sync::Arc<DetailReport>)> =
        parallel_map_traced(designs.len(), spec.threads, tel, |i| {
            let alloc = CellCache::global().allocate(designs[i], &input);
            let report = CellCache::global().run_detail(
                &fig02_opts(&cfg, spec.accesses),
                &profiles,
                &cores,
                &vms,
                &alloc,
                tel,
            );
            (alloc, report)
        });

    for (design, (alloc, report)) in designs.iter().zip(&reports) {
        writeln!(
            out,
            "# {design} placement ({}x{} banks)",
            mesh.cols(),
            mesh.rows()
        )?;
        write!(out, "{}", render_map(&cfg, &input, |b| alloc.occupants(b)))?;
        writeln!(
            out,
            "# {design} observed occupancy (detailed sim, end of run)"
        )?;
        write!(
            out,
            "{}",
            render_map(&cfg, &input, |b| report.bank_occupants[b.index()].clone())
        )?;
        writeln!(
            out,
            "# VM-isolated: placement {}, observed {}\n",
            if alloc.vm_isolated(&input) {
                "yes"
            } else {
                "no"
            },
            if report.vm_isolated(&vms) {
                "yes"
            } else {
                "no"
            }
        )?;
    }
    Ok(())
}

/// Fig. 4: how the LLC designs behave over time on the case study —
/// (a) average end-to-end xapian latency, (b) average LLC allocation for
/// xapian, and (c) vulnerability to shared-cache-structure attacks.
pub fn fig04(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let opts = SimOptions {
        duration: Seconds(4.0),
        ..sim_opts(spec)
    };
    let mix = case_study_mix(spec.seed);
    writeln!(
        out,
        "# Fig. 4: case study over time (4 VMs x [xapian + 4 batch], high load)"
    )?;
    writeln!(
        out,
        "design\tt_ms\tavg_latency_ms\tavg_alloc_mb\tvulnerability"
    )?;
    let cache = CellCache::global();
    let exp = cache.experiment(mix, LcLoad::High, opts);
    for &design in &spec.designs {
        let r = cache.run(&exp, design, tel);
        for rec in &r.timeline {
            let lat: Vec<f64> = rec.lc_mean_latency_ms.iter().flatten().copied().collect();
            let avg_lat = if lat.is_empty() {
                f64::NAN
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            };
            let avg_alloc =
                rec.lc_alloc_bytes.iter().sum::<f64>() / rec.lc_alloc_bytes.len() as f64 / MB;
            writeln!(
                out,
                "{}\t{:.0}\t{:.3}\t{:.3}\t{:.2}",
                design, rec.t_ms, avg_lat, avg_alloc, rec.vulnerability
            )?;
        }
    }
    writeln!(
        out,
        "# expected shapes: Jigsaw's latency grows over time (starved LC allocation);"
    )?;
    writeln!(
        out,
        "# Adaptive/VM-Part hold latency low with more space than Jumanji;"
    )?;
    writeln!(
        out,
        "# vulnerability: S-NUCA designs = 15, Jigsaw small, Jumanji = 0."
    )?;
    Ok(())
}

/// Fig. 5: end-to-end case-study results — normalized tail latency and
/// batch weighted speedup for each LLC design.
pub fn fig05(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let opts = sim_opts(spec);
    let mix = case_study_mix(spec.seed);
    let cache = CellCache::global();
    let exp = cache.experiment(mix, LcLoad::High, opts);
    let baseline = cache.run(&exp, DesignKind::Static, tel);
    writeln!(
        out,
        "# Fig. 5: case study end-to-end (normalized to Static)"
    )?;
    writeln!(
        out,
        "design\tworst_norm_tail\tbatch_speedup_pct\tvulnerability"
    )?;
    for &design in &spec.designs {
        let r = cache.run(&exp, design, tel);
        writeln!(
            out,
            "{}\t{:.3}\t{:.2}\t{:.2}",
            design,
            r.max_norm_tail(),
            (r.weighted_speedup_vs(&baseline) - 1.0) * 100.0,
            r.vulnerability
        )?;
    }
    writeln!(
        out,
        "# expected: Adaptive/VM-Part meet deadlines with ~0% speedup;"
    )?;
    writeln!(
        out,
        "# Jigsaw violates deadlines badly; Jumanji meets deadlines near Jigsaw's speedup."
    )?;
    Ok(())
}

fn tail_ms(service: f64, interarrival: f64, freq: f64) -> f64 {
    let mut q = LcQueue::new(interarrival, 42);
    let horizon = (interarrival * 30_000.0) as u64;
    let lat: Vec<f64> = q
        .advance(horizon, service)
        .iter()
        .map(|c| c.latency as f64)
        .collect();
    percentile(&lat, 0.95) / freq * 1e3
}

/// Fig. 8: xapian's tail (95th-percentile) latency vs. its LLC
/// allocation, with way-partitioning (S-NUCA) and with the allocation
/// reserved in the closest banks (D-NUCA). Run in isolation at high
/// load.
pub fn fig08(
    _spec: &ExperimentSpec,
    _tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let cfg = SystemConfig::micro2020();
    let noc = MeshNoc::new(&cfg);
    let xapian = tailbench()
        .into_iter()
        .find(|p| p.name == "xapian")
        .ok_or_else(|| Error::unknown_workload("xapian"))?;
    let freq = cfg.freq_hz;
    let interarrival = xapian.interarrival_cycles(LcLoad::High, freq);
    let miss_pen = noc.avg_miss_penalty();
    let mesh = cfg.mesh();
    let core = CoreId(0);

    writeln!(
        out,
        "# Fig. 8: xapian p95 latency vs LLC allocation (isolation, high load)"
    )?;
    writeln!(out, "alloc_mb\tsnuca_p95_ms\tdnuca_p95_ms")?;
    let mut steps = vec![0.25, 0.5, 0.75];
    steps.extend((2..=16).map(|i| i as f64 * 0.5));
    for alloc_mb in steps {
        let bytes = alloc_mb * MB;
        // S-NUCA: striped over all banks with way-partitioning.
        let ways_per_bank = bytes / cfg.llc.num_banks as f64 / cfg.llc.way_bytes() as f64;
        let mr_s = (xapian.shape.ratio(bytes as u64) * assoc_penalty(ways_per_bank, cfg.llc.ways))
            .min(1.0);
        let lat_s = cfg.llc.bank_latency.as_u64() as f64
            + noc.round_trip_for_hops(mesh.snuca_avg_distance(core));
        let s_snuca = xapian.service_cycles(lat_s, mr_s, miss_pen);
        // D-NUCA: nearest banks, whole banks first (full associativity).
        let mut remaining = bytes;
        let mut placement: Vec<(BankId, f64)> = Vec::new();
        for b in mesh.banks_by_distance(core) {
            if remaining <= 0.0 {
                break;
            }
            let take = remaining.min(cfg.llc.bank_bytes as f64);
            placement.push((b, take));
            remaining -= take;
        }
        let hops = mesh.weighted_distance(core, placement.iter().copied());
        let mr_d = xapian.shape.ratio(bytes as u64);
        let lat_d = cfg.llc.bank_latency.as_u64() as f64 + noc.round_trip_for_hops(hops);
        let s_dnuca = xapian.service_cycles(lat_d, mr_d, miss_pen);

        writeln!(
            out,
            "{:.2}\t{:.3}\t{:.3}",
            alloc_mb,
            tail_ms(s_snuca, interarrival, freq),
            tail_ms(s_dnuca, interarrival, freq)
        )?;
    }
    writeln!(
        out,
        "# expected: S-NUCA explodes below ~3 MB; D-NUCA meets the same tail with ~1 MB"
    )?;
    writeln!(
        out,
        "# less and degrades far more gracefully (paper: ~18x lower worst case)."
    )?;
    Ok(())
}

/// One Fig. 9 controller variant: gmean speedup and worst tail over
/// case-study seeds.
fn fig09_run(
    params: ControllerParams,
    mixes: usize,
    base_opts: &SimOptions,
    tel: &dyn Telemetry,
) -> (f64, f64) {
    let cache = CellCache::global();
    let mut speedups = Vec::new();
    let mut worst_tail: f64 = 0.0;
    for seed in 0..mixes as u64 {
        let opts = SimOptions {
            controller: Some(params),
            ..base_opts.clone()
        };
        let exp = cache.experiment(case_study_mix(seed), LcLoad::High, opts);
        let baseline = cache.run(&exp, DesignKind::Static, tel);
        let r = cache.run(&exp, DesignKind::Jumanji, tel);
        speedups.push(r.weighted_speedup_vs(&baseline));
        worst_tail = worst_tail.max(r.max_norm_tail());
    }
    (gmean(&speedups), worst_tail)
}

/// The Fig. 9 controller-parameter grid: `(group, label, params)` rows
/// in plotting order. Shared by the renderer and the suite's plan pass
/// ([`super::plan`]) so both enumerate identical experiment cells.
pub(crate) fn fig09_cases() -> Vec<(&'static str, &'static str, ControllerParams)> {
    let llc = SystemConfig::micro2020().llc.total_bytes() as f64;
    let base = ControllerParams::micro2020(llc);
    vec![
        (
            "target",
            "75-85%",
            ControllerParams {
                target_low: 0.75,
                target_high: 0.85,
                ..base
            },
        ),
        ("target", "85-95% (default)", base),
        (
            "target",
            "90-100%",
            ControllerParams {
                target_low: 0.90,
                target_high: 1.00,
                ..base
            },
        ),
        (
            "panic",
            "105%",
            ControllerParams {
                panic_threshold: 1.05,
                ..base
            },
        ),
        ("panic", "110% (default)", base),
        (
            "panic",
            "120%",
            ControllerParams {
                panic_threshold: 1.20,
                ..base
            },
        ),
        ("step", "5%", ControllerParams { step: 0.05, ..base }),
        ("step", "10% (default)", base),
        ("step", "20%", ControllerParams { step: 0.20, ..base }),
    ]
}

/// Fig. 9: sensitivity of Jumanji to the feedback controller's
/// parameters — target latency range, panic threshold, and step size.
/// Bars: gmean batch speedup; lines: worst normalized tail latency.
pub fn fig09(spec: &ExperimentSpec, tel: &dyn Telemetry, out: &mut dyn Write) -> Result<(), Error> {
    let mixes = spec.mixes;
    let base_opts = sim_opts(spec);
    writeln!(
        out,
        "# Fig. 9: controller parameter sensitivity ({mixes} mixes, case study)"
    )?;
    writeln!(out, "group\tvariant\tgmean_speedup_pct\tworst_norm_tail")?;
    for (group, label, params) in fig09_cases() {
        let (speedup, tail) = fig09_run(params, mixes, &base_opts, tel);
        writeln!(
            out,
            "{group}\t{label}\t{:.2}\t{:.3}",
            (speedup - 1.0) * 100.0,
            tail
        )?;
    }
    writeln!(
        out,
        "# expected: results change very little across parameter values (Sec. V-C)."
    )?;
    Ok(())
}
