//! Calibration invariants across *all* workload profiles — the properties
//! the evaluation's shapes depend on.

use nuca_workloads::{spec2006, tailbench, LcLoad, StreamGenerator, MB};

const FREQ: f64 = 2.66e9;
const SNUCA_LAT: f64 = 36.0;
const DNUCA_LAT: f64 = 19.0;
const MISS_PEN: f64 = 140.0;

#[test]
fn every_lc_profile_saturates_when_starved() {
    // The Fig. 8 mechanism must exist for every server: utilization at
    // high load crosses ~0.8 somewhere below the deadline allocation.
    for p in tailbench() {
        let ia = p.interarrival_cycles(LcLoad::High, FREQ);
        let rho_starved = p.service_cycles(SNUCA_LAT, p.shape.ratio(MB / 4), MISS_PEN) / ia;
        assert!(
            rho_starved > 0.65,
            "{}: starved utilization only {rho_starved:.2}",
            p.name
        );
    }
}

#[test]
fn dnuca_always_dominates_snuca_at_equal_allocation() {
    for p in tailbench() {
        for mb in [1u64, 2, 3] {
            let mr = p.shape.ratio(mb * MB);
            let s_d = p.service_cycles(DNUCA_LAT, mr, MISS_PEN);
            let s_s = p.service_cycles(SNUCA_LAT, mr, MISS_PEN);
            assert!(s_d < s_s, "{} at {mb} MB", p.name);
        }
    }
}

#[test]
fn lc_access_rates_sit_below_batch_rates() {
    // The paper's central asymmetry: LC servers generate several times
    // less LLC traffic than batch applications (Sec. III), which is what
    // lets Jigsaw starve them.
    let max_lc = tailbench()
        .iter()
        .map(|p| p.access_rate(LcLoad::High, FREQ))
        .fold(0.0f64, f64::max);
    // Batch rate at a representative 1 GIPS.
    let mean_batch: f64 = spec2006()
        .iter()
        .map(|p| 1.0e9 * p.llc_apki / 1000.0)
        .sum::<f64>()
        / 16.0;
    assert!(
        max_lc < mean_batch,
        "max LC rate {max_lc:.2e} must be below mean batch rate {mean_batch:.2e}"
    );
}

#[test]
fn batch_profiles_have_steep_hot_sets() {
    // Every non-streaming batch profile must gain meaningfully within its
    // first megabyte (otherwise Lookahead goes winner-take-all and no
    // design can help most apps).
    for p in spec2006() {
        let drop = p.shape.ratio(0) - p.shape.ratio(MB);
        if p.name == "462.libquantum" {
            assert_eq!(drop, 0.0, "libquantum is pure streaming");
        } else {
            assert!(drop > 0.1, "{}: first-MB drop only {drop:.3}", p.name);
        }
    }
}

#[test]
fn batch_cpi_ordering_is_sane() {
    // Memory-bound profiles must run slower than cache-friendly ones at
    // identical cache conditions.
    let specs = spec2006();
    let cpi = |name: &str| {
        let p = specs.iter().find(|p| p.name == name).unwrap();
        p.cpi(33.0, p.shape.ratio(MB), 131.0)
    };
    assert!(cpi("429.mcf") > 2.0 * cpi("454.calculix"));
    assert!(cpi("470.lbm") > cpi("401.bzip2"));
}

#[test]
fn stream_generators_exist_for_every_profile() {
    // Every profile (batch and LC) must be realizable as an address stream
    // for the detailed simulator.
    for (i, p) in spec2006().iter().enumerate() {
        let mut g = StreamGenerator::from_shape(&p.shape, 64, i, 1);
        assert_eq!(g.lines(100).len(), 100, "{}", p.name);
    }
    for (i, p) in tailbench().iter().enumerate() {
        let mut g = StreamGenerator::from_shape(&p.shape, 64, 100 + i, 1);
        assert_eq!(g.lines(100).len(), 100, "{}", p.name);
    }
}

#[test]
fn deadline_operating_point_leaves_headroom_for_growth() {
    // The controller must be able to fix a violation by growing: at the
    // max allocation (LLC/4 = 5 MB) utilization must be comfortably lower
    // than at the 2.5 MB deadline point.
    for p in tailbench() {
        let ia = p.interarrival_cycles(LcLoad::High, FREQ);
        let rho_deadline = p.service_cycles(SNUCA_LAT, p.shape.ratio(5 * MB / 2), MISS_PEN) / ia;
        let rho_max = p.service_cycles(SNUCA_LAT, p.shape.ratio(5 * MB), MISS_PEN) / ia;
        assert!(
            rho_max < rho_deadline - 0.005,
            "{}: growing from 2.5 to 5 MB must help ({rho_deadline:.3} -> {rho_max:.3})",
            p.name
        );
    }
}
