//! TailBench-like latency-critical application profiles.
//!
//! The five servers of the paper's evaluation (masstree, xapian, img-dnn,
//! silo, moses) are modeled as request-driven applications: Poisson
//! arrivals at the QPS rates of Table III, and a per-request service time
//! that depends on LLC behaviour,
//!
//! ```text
//! service = work_cycles
//!         + accesses_per_req × (llc_lat + miss_ratio × miss_penalty × miss_stall)
//! ```
//!
//! `miss_stall` reflects that these servers are pointer-chasing codes
//! (tree walks in masstree/xapian/silo, graph traversals in moses): their
//! LLC misses are *dependent* and serialize the pipeline, unlike SPEC
//! batch codes whose memory-level parallelism is already folded into the
//! analytic CPI model. This is why latency-critical applications generate
//! several times less LLC traffic than batch applications while remaining
//! highly cache-sensitive — the asymmetry that makes a data-movement-only
//! allocator (Jigsaw) starve them (paper Sec. III, Fig. 4b).
//!
//! Parameters are calibrated so that at high load (Table III) each server
//! runs at ≈50 % utilization at the paper's deadline operating point — a
//! 4-way way-partitioned allocation (2.5 MB) on S-NUCA (Sec. VII) — and
//! saturates (utilization → 1, tail explosion) when squeezed well below
//! its working set, reproducing Fig. 8.

use crate::curves::{Component, CurveShape};
use crate::MB;
use nuca_cache::MissCurve;

/// Request load level (Table III: low = 10 %, high = 50 % utilization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LcLoad {
    /// 10 % utilization.
    Low,
    /// 50 % utilization.
    High,
}

/// A synthetic latency-critical application profile.
#[derive(Debug, Clone, PartialEq)]
pub struct LcProfile {
    /// Server name (TailBench application).
    pub name: &'static str,
    /// Queries per second at low load (Table III).
    pub qps_low: f64,
    /// Queries per second at high load (Table III).
    pub qps_high: f64,
    /// Number of queries issued per experiment (Table III).
    pub num_queries: u32,
    /// Pure compute cycles per request (no LLC stalls).
    pub work_cycles: f64,
    /// LLC accesses issued per request.
    pub accesses_per_req: f64,
    /// Stall amplification of a miss due to dependent (pointer-chasing)
    /// accesses: each miss blocks the request for `miss_stall` times the
    /// raw miss penalty.
    pub miss_stall: f64,
    /// LLC miss-ratio curve shape.
    pub shape: CurveShape,
}

impl LcProfile {
    /// QPS at the given load level.
    pub fn qps(&self, load: LcLoad) -> f64 {
        match load {
            LcLoad::Low => self.qps_low,
            LcLoad::High => self.qps_high,
        }
    }

    /// Mean interarrival time in cycles at the given load.
    pub fn interarrival_cycles(&self, load: LcLoad, freq_hz: f64) -> f64 {
        freq_hz / self.qps(load)
    }

    /// Samples the LLC miss-ratio curve.
    pub fn miss_ratio_curve(&self, unit_bytes: u64, units: usize) -> MissCurve {
        self.shape.miss_curve(unit_bytes, units)
    }

    /// Service time per request, in cycles, under an average LLC access
    /// latency `llc_lat`, miss ratio `mr`, and miss penalty `miss_pen`.
    pub fn service_cycles(&self, llc_lat: f64, mr: f64, miss_pen: f64) -> f64 {
        self.work_cycles + self.accesses_per_req * (llc_lat + mr * miss_pen * self.miss_stall)
    }

    /// LLC accesses per second this server generates at a given load
    /// (arrival rate × accesses per request) — what UMONs observe and what
    /// a data-movement-only allocator like Jigsaw values.
    pub fn access_rate(&self, load: LcLoad, _freq_hz: f64) -> f64 {
        self.qps(load) * self.accesses_per_req
    }
}

fn smooth(weight: f64, ws_mb: f64, sharpness: f64) -> Component {
    Component::Smooth {
        weight,
        ws_bytes: (ws_mb * MB as f64) as u64,
        sharpness,
    }
}

/// The five TailBench-like profiles with Table III load points.
pub fn tailbench() -> Vec<LcProfile> {
    vec![
        LcProfile {
            name: "masstree",
            qps_low: 300.0,
            qps_high: 1475.0,
            num_queries: 3000,
            work_cycles: 600_000.0,
            accesses_per_req: 4_500.0,
            miss_stall: 3.0,
            shape: CurveShape::new(0.05, vec![smooth(0.75, 0.8, 3.0)]),
        },
        LcProfile {
            name: "xapian",
            qps_low: 130.0,
            qps_high: 570.0,
            num_queries: 1500,
            work_cycles: 1_400_000.0,
            accesses_per_req: 12_000.0,
            miss_stall: 3.0,
            shape: CurveShape::new(0.05, vec![smooth(0.75, 1.0, 3.0)]),
        },
        LcProfile {
            name: "img-dnn",
            qps_low: 28.0,
            qps_high: 135.0,
            num_queries: 350,
            work_cycles: 6_900_000.0,
            accesses_per_req: 30_000.0,
            miss_stall: 3.0,
            shape: CurveShape::new(0.08, vec![smooth(0.70, 1.2, 3.0)]),
        },
        LcProfile {
            name: "silo",
            qps_low: 375.0,
            qps_high: 1750.0,
            num_queries: 3500,
            work_cycles: 540_000.0,
            accesses_per_req: 3_500.0,
            miss_stall: 3.0,
            shape: CurveShape::new(0.05, vec![smooth(0.70, 0.7, 3.0)]),
        },
        LcProfile {
            name: "moses",
            qps_low: 34.0,
            qps_high: 155.0,
            num_queries: 300,
            work_cycles: 4_780_000.0,
            accesses_per_req: 25_000.0,
            miss_stall: 3.0,
            shape: CurveShape::new(0.10, vec![smooth(0.65, 1.8, 3.0)]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Typical S-NUCA operating point used for calibration checks.
    const SNUCA_LLC_LAT: f64 = 36.0;
    const MISS_PEN: f64 = 140.0;
    const FREQ: f64 = 2.66e9;

    #[test]
    fn five_profiles_match_table3() {
        let lc = tailbench();
        assert_eq!(lc.len(), 5);
        let expect = [
            ("masstree", 300.0, 1475.0, 3000),
            ("xapian", 130.0, 570.0, 1500),
            ("img-dnn", 28.0, 135.0, 350),
            ("silo", 375.0, 1750.0, 3500),
            ("moses", 34.0, 155.0, 300),
        ];
        for (p, (name, low, high, q)) in lc.iter().zip(expect) {
            assert_eq!(p.name, name);
            assert_eq!(p.qps_low, low);
            assert_eq!(p.qps_high, high);
            assert_eq!(p.num_queries, q);
        }
    }

    #[test]
    fn high_load_is_about_half_utilization_at_deadline_point() {
        // Calibration: with the deadline configuration's 2.5 MB (4-way)
        // allocation on S-NUCA, utilization at high load should be ≈50 %
        // (the paper's definition of high load).
        for p in tailbench() {
            let mr = p.shape.ratio(5 * MB / 2);
            let s = p.service_cycles(SNUCA_LLC_LAT, mr, MISS_PEN);
            let rho = s / p.interarrival_cycles(LcLoad::High, FREQ);
            assert!(
                (0.40..=0.60).contains(&rho),
                "{}: utilization {rho:.2} at high load / 2.5 MB",
                p.name
            );
        }
    }

    #[test]
    fn low_load_is_about_tenth_utilization() {
        for p in tailbench() {
            let mr = p.shape.ratio(5 * MB / 2);
            let s = p.service_cycles(SNUCA_LLC_LAT, mr, MISS_PEN);
            let rho = s / p.interarrival_cycles(LcLoad::Low, FREQ);
            assert!(
                (0.06..=0.16).contains(&rho),
                "{}: utilization {rho:.2} at low load",
                p.name
            );
        }
    }

    #[test]
    fn squeezed_allocations_saturate_most_servers() {
        // Fig. 8's mechanism: below the working set, service time grows so
        // much that at high load the queue becomes unstable for the
        // memory-bound servers.
        let mut saturating = 0;
        for p in tailbench() {
            let mr = p.shape.ratio(MB / 4);
            let s = p.service_cycles(SNUCA_LLC_LAT, mr, MISS_PEN);
            let rho = s / p.interarrival_cycles(LcLoad::High, FREQ);
            if rho >= 0.95 {
                saturating += 1;
            }
        }
        assert!(saturating >= 3, "only {saturating} servers saturate");
    }

    #[test]
    fn dnuca_latency_reduction_shifts_the_knee() {
        // The same utilization is reached with less capacity when the LLC
        // latency drops (D-NUCA places data nearby): xapian needs ~0.5 MB
        // less under D-NUCA for the same service time (paper Fig. 8 shows
        // 2 MB D-NUCA ≈ 3 MB S-NUCA).
        let lc = tailbench();
        let xapian = lc.iter().find(|p| p.name == "xapian").unwrap();
        let dnuca_lat = 19.0; // bank + ~1 hop
        let s_dnuca = xapian.service_cycles(dnuca_lat, xapian.shape.ratio(5 * MB / 2), MISS_PEN);
        let s_snuca = xapian.service_cycles(SNUCA_LLC_LAT, xapian.shape.ratio(3 * MB), MISS_PEN);
        let rel = (s_dnuca - s_snuca).abs() / s_snuca;
        assert!(
            rel < 0.15,
            "2.5 MB D-NUCA vs 3 MB S-NUCA differ by {rel:.2}"
        );
    }

    #[test]
    fn access_rate_scales_with_load() {
        let lc = tailbench();
        let m = &lc[0];
        assert!(m.access_rate(LcLoad::High, FREQ) > m.access_rate(LcLoad::Low, FREQ));
    }

    #[test]
    fn curves_monotone() {
        for p in tailbench() {
            let c = p.miss_ratio_curve(32 * 1024, 640);
            for w in c.points().windows(2) {
                assert!(w[1] <= w[0] + 1e-12);
            }
        }
    }
}
