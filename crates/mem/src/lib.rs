//! Main-memory model: corner memory controllers with fixed access latency
//! and bandwidth partitioning.
//!
//! Following the paper's methodology (Sec. VII), main memory "models
//! bandwidth partitioning with fixed latency" \[28, 51\]: each LLC miss pays
//! a fixed 120-cycle DRAM latency, and each of the four corner controllers
//! has finite line bandwidth, adding load-dependent queueing when a
//! workload's miss traffic concentrates.
//!
//! # Examples
//!
//! ```
//! use nuca_mem::MemSystem;
//! use nuca_types::{SystemConfig, BankId};
//!
//! let cfg = SystemConfig::micro2020();
//! let mem = MemSystem::new(&cfg);
//! // Bank 0 sits on the NW corner, controller 0.
//! assert_eq!(mem.controller_for_bank(BankId(0)), 0);
//! // Queueing is zero at idle and grows with demand.
//! assert_eq!(mem.queue_delay(0.0), 0.0);
//! assert!(mem.queue_delay(0.2) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nuca_noc::queueing::md1_wait;
use nuca_noc::BankPorts;
use nuca_types::{BankId, Cycles, MemConfig, Mesh, SystemConfig};

/// The memory controllers of the chip.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    mesh: Mesh,
}

impl MemSystem {
    /// Builds the memory system from a system configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests more than four controllers
    /// (controllers sit at chip corners).
    pub fn new(cfg: &SystemConfig) -> MemSystem {
        assert!(
            cfg.mem.num_controllers <= 4,
            "corner placement supports at most four controllers"
        );
        MemSystem {
            cfg: cfg.mem,
            mesh: cfg.mesh(),
        }
    }

    /// Fixed DRAM access latency.
    pub fn latency(&self) -> Cycles {
        self.cfg.latency
    }

    /// Number of controllers.
    pub fn num_controllers(&self) -> usize {
        self.cfg.num_controllers
    }

    /// Index of the controller nearest to `bank` (ties to the lowest
    /// index, matching corner order NW, NE, SW, SE).
    pub fn controller_for_bank(&self, bank: BankId) -> usize {
        let t = self.mesh.bank_tile(bank);
        let corners = self.mesh.corner_tiles();
        (0..self.cfg.num_controllers)
            .min_by_key(|&i| (t.manhattan(corners[i]), i))
            .expect("at least one controller")
    }

    /// Expected per-access queueing delay (cycles) at one controller under
    /// a demand of `lines_per_cycle`, using the M/D/1 model.
    ///
    /// With bandwidth partitioning, `lines_per_cycle` should be the demand
    /// of the partition sharing the controller, not the whole chip.
    pub fn queue_delay(&self, lines_per_cycle: f64) -> f64 {
        let service = self.cfg.cycles_per_line as f64;
        md1_wait(lines_per_cycle * service, service)
    }

    /// Creates an event-driven channel model for one controller, for the
    /// detailed simulator: a single resource occupied `cycles_per_line` per
    /// transfer.
    pub fn event_channel(&self) -> BankPorts {
        BankPorts::new(1, Cycles(self.cfg.cycles_per_line))
    }

    /// Aggregate chip memory bandwidth in lines per cycle.
    pub fn total_lines_per_cycle(&self) -> f64 {
        self.cfg.num_controllers as f64 / self.cfg.cycles_per_line as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSystem {
        MemSystem::new(&SystemConfig::micro2020())
    }

    #[test]
    fn corner_controllers_cover_quadrants() {
        let m = mem();
        assert_eq!(m.num_controllers(), 4);
        assert_eq!(m.controller_for_bank(BankId(0)), 0); // NW corner
        assert_eq!(m.controller_for_bank(BankId(4)), 1); // NE corner
        assert_eq!(m.controller_for_bank(BankId(15)), 2); // SW corner
        assert_eq!(m.controller_for_bank(BankId(19)), 3); // SE corner
                                                          // Center tile (2,1) = bank 7: equidistant NW (3) and others; NW wins ties.
        assert_eq!(m.controller_for_bank(BankId(7)), 0);
    }

    #[test]
    fn queue_delay_monotone_in_demand() {
        let m = mem();
        let d1 = m.queue_delay(0.05);
        let d2 = m.queue_delay(0.15);
        let d3 = m.queue_delay(0.24);
        assert!(0.0 < d1 && d1 < d2 && d2 < d3);
        assert!(m.queue_delay(10.0).is_finite(), "saturation stays finite");
    }

    #[test]
    fn event_channel_serializes_lines() {
        let mut ch = mem().event_channel();
        let g1 = ch.request(Cycles(0));
        let g2 = ch.request(Cycles(0));
        assert_eq!(g1.done, Cycles(4));
        assert_eq!(g2.start, Cycles(4));
    }

    #[test]
    fn total_bandwidth() {
        assert!((mem().total_lines_per_cycle() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_is_table2() {
        assert_eq!(mem().latency(), Cycles(120));
    }
}
