//! Workload mixes: combinations of VMs, latency-critical servers, and
//! random batch applications.
//!
//! The evaluation methodology (Sec. VII) runs four latency-critical
//! applications alongside a random mix of sixteen SPEC applications,
//! grouped into four VMs of five cores each. Forty random batch mixes are
//! drawn per configuration; the Fig. 17 scaling study varies how those
//! twenty applications are grouped into VMs.

use crate::batch::{spec2006, BatchProfile};
use crate::latency::{tailbench, LcProfile};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The applications assigned to one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmWorkload {
    /// Latency-critical applications (each pinned to one core).
    pub lc: Vec<LcProfile>,
    /// Batch applications (each pinned to one core).
    pub batch: Vec<BatchProfile>,
}

impl VmWorkload {
    /// Total applications (= cores) in the VM.
    pub fn num_apps(&self) -> usize {
        self.lc.len() + self.batch.len()
    }
}

/// A complete workload: a list of VMs and their applications.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    /// Per-VM workloads, in VM-id order.
    pub vms: Vec<VmWorkload>,
}

impl WorkloadMix {
    /// Total application count across VMs.
    pub fn num_apps(&self) -> usize {
        self.vms.iter().map(VmWorkload::num_apps).sum()
    }

    /// Total latency-critical application count.
    pub fn num_lc(&self) -> usize {
        self.vms.iter().map(|v| v.lc.len()).sum()
    }

    /// Builds a mix from a per-VM `(lc_count, batch_count)` spec, drawing
    /// LC applications round-robin from `lc_pool` and batch applications
    /// uniformly at random (with replacement) from the sixteen SPEC
    /// profiles, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `lc_pool` is empty but the spec requests LC applications.
    pub fn from_spec(spec: &[(usize, usize)], lc_pool: &[LcProfile], seed: u64) -> WorkloadMix {
        let total_lc: usize = spec.iter().map(|s| s.0).sum();
        assert!(
            total_lc == 0 || !lc_pool.is_empty(),
            "need LC profiles for a spec with LC apps"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let specs = spec2006();
        let mut lc_idx = 0;
        let vms = spec
            .iter()
            .map(|&(n_lc, n_batch)| {
                let lc = (0..n_lc)
                    .map(|_| {
                        let p = lc_pool[lc_idx % lc_pool.len()].clone();
                        lc_idx += 1;
                        p
                    })
                    .collect();
                let batch = (0..n_batch)
                    .map(|_| specs.choose(&mut rng).expect("spec pool non-empty").clone())
                    .collect();
                VmWorkload { lc, batch }
            })
            .collect();
        WorkloadMix { vms }
    }

    /// The default scenario: four VMs, each with one instance of `lc` and
    /// four random batch applications.
    pub fn uniform_lc(lc: &LcProfile, seed: u64) -> WorkloadMix {
        WorkloadMix::from_spec(&[(1, 4); 4], std::slice::from_ref(lc), seed)
    }

    /// Four VMs each running one of four *different* LC applications
    /// (drawn without replacement from the five TailBench profiles) plus
    /// four random batch applications.
    pub fn mixed_lc(seed: u64) -> WorkloadMix {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x005E_ED1C);
        let mut pool = tailbench();
        pool.shuffle(&mut rng);
        pool.truncate(4);
        WorkloadMix::from_spec(&[(1, 4); 4], &pool, seed)
    }
}

/// A random mix of `n` SPEC-like batch profiles (with replacement).
pub fn random_batch_mix(seed: u64, n: usize) -> Vec<BatchProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = spec2006();
    (0..n)
        .map(|_| specs.choose(&mut rng).expect("pool non-empty").clone())
        .collect()
}

/// The case study of Sec. III: four VMs, each one xapian instance plus four
/// random batch applications.
pub fn case_study_mix(seed: u64) -> WorkloadMix {
    let lc = tailbench();
    let xapian = lc
        .iter()
        .find(|p| p.name == "xapian")
        .expect("xapian profile exists")
        .clone();
    WorkloadMix::uniform_lc(&xapian, seed)
}

/// The six VM groupings of the Fig. 17 scaling study: `(label, per-VM
/// (lc, batch) counts)`. All keep 4 LC + 16 batch applications on 20 cores.
pub fn fig17_configs() -> Vec<(String, Vec<(usize, usize)>)> {
    vec![
        ("1x(4LC+16B)".to_string(), vec![(4, 16)]),
        ("2x(2LC+8B)".to_string(), vec![(2, 8); 2]),
        ("4x(1LC+4B)".to_string(), vec![(1, 4); 4]),
        (
            "5x(1LC+3B)".to_string(),
            vec![(1, 3), (1, 3), (1, 3), (1, 3), (0, 4)],
        ),
        (
            "10x(1LC+1B)".to_string(),
            [vec![(1, 1); 4], vec![(0, 2); 6]].concat(),
        ),
        (
            "12VMs".to_string(),
            [vec![(1, 0); 4], vec![(0, 2); 8]].concat(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_is_four_xapian_vms() {
        let mix = case_study_mix(1);
        assert_eq!(mix.vms.len(), 4);
        assert_eq!(mix.num_apps(), 20);
        assert_eq!(mix.num_lc(), 4);
        for vm in &mix.vms {
            assert_eq!(vm.lc.len(), 1);
            assert_eq!(vm.lc[0].name, "xapian");
            assert_eq!(vm.batch.len(), 4);
        }
    }

    #[test]
    fn mixes_are_deterministic_per_seed() {
        let a = case_study_mix(7);
        let b = case_study_mix(7);
        assert_eq!(a, b);
        let c = case_study_mix(8);
        let a_names: Vec<&str> = a.vms[0].batch.iter().map(|p| p.name).collect();
        let c_names: Vec<&str> = c.vms[0].batch.iter().map(|p| p.name).collect();
        // Different seeds essentially never produce the same 4-app draw
        // in VM 0 *and* everywhere else; compare the whole mix.
        assert!(a != c || a_names == c_names);
    }

    #[test]
    fn mixed_lc_uses_distinct_servers() {
        let mix = WorkloadMix::mixed_lc(3);
        let names: Vec<&str> = mix.vms.iter().map(|v| v.lc[0].name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4, "four distinct LC servers: {names:?}");
    }

    #[test]
    fn fig17_configs_cover_twenty_cores() {
        for (label, spec) in fig17_configs() {
            let apps: usize = spec.iter().map(|(l, b)| l + b).sum();
            let lc: usize = spec.iter().map(|(l, _)| l).sum();
            assert_eq!(apps, 20, "{label} must cover 20 cores");
            assert_eq!(lc, 4, "{label} must keep 4 LC apps");
        }
        assert_eq!(fig17_configs().len(), 6);
    }

    #[test]
    fn from_spec_round_robins_lc_pool() {
        let pool = tailbench();
        let mix = WorkloadMix::from_spec(&[(2, 0), (2, 0)], &pool[..2], 0);
        assert_eq!(mix.vms[0].lc[0].name, pool[0].name);
        assert_eq!(mix.vms[0].lc[1].name, pool[1].name);
        assert_eq!(mix.vms[1].lc[0].name, pool[0].name);
    }

    #[test]
    fn random_batch_mix_draws_from_spec_pool() {
        let mix = random_batch_mix(9, 16);
        assert_eq!(mix.len(), 16);
        let specs = spec2006();
        for p in &mix {
            assert!(specs.iter().any(|s| s.name == p.name));
        }
    }

    #[test]
    #[should_panic(expected = "need LC profiles")]
    fn from_spec_empty_pool_panics() {
        WorkloadMix::from_spec(&[(1, 0)], &[], 0);
    }
}
