//! Cross-validation of the two simulator layers: for each application, the
//! analytic epoch model's miss ratio and hop distance vs. the detailed
//! execution-driven simulation of the same allocation.

use jumanji::core::AppKind;
use jumanji::prelude::*;
use jumanji::sim::detail::{run_detailed, DetailOptions};
use jumanji::sim::perf::{evaluate, Profile};
use jumanji::types::{CoreId, VmId};
use jumanji::workloads::LcLoad;

fn main() {
    let cfg = SystemConfig::micro2020();
    let input = PlacementInput::example(&cfg);
    let lc = tailbench();
    let batch = spec2006();
    let mut profiles = Vec::new();
    for (i, a) in input.apps.iter().enumerate() {
        profiles.push(match a.kind {
            AppKind::LatencyCritical => Profile::Lc(lc[i % lc.len()].clone(), LcLoad::High),
            AppKind::Batch => Profile::Batch(batch[i % batch.len()].clone()),
        });
    }
    let cores: Vec<CoreId> = input.apps.iter().map(|a| a.core).collect();
    let vms: Vec<VmId> = input.apps.iter().map(|a| a.vm).collect();
    let rates: Vec<f64> = profiles
        .iter()
        .map(|p| match p {
            Profile::Batch(b) => 1.5e9 * b.llc_apki / 1000.0,
            Profile::Lc(l, load) => l.qps(*load) * l.accesses_per_req,
        })
        .collect();

    println!("# Analytic vs detailed simulation, per app, two designs");
    println!("design\tapp\tcap_mb\tmr_analytic\tmr_detailed\thops_analytic\thops_detailed");
    for design in [DesignKind::Adaptive, DesignKind::Jumanji] {
        let alloc = design.allocate(&input);
        let analytic = evaluate(&cfg, &profiles, &cores, &alloc, &rates);
        let detail = run_detailed(
            &DetailOptions {
                cfg: cfg.clone(),
                accesses_per_app: 80_000,
                ..DetailOptions::default()
            },
            &profiles,
            &cores,
            &vms,
            &alloc,
        );
        for i in 0..profiles.len() {
            println!(
                "{}\t{}\t{:.2}\t{:.3}\t{:.3}\t{:.2}\t{:.2}",
                design,
                profiles[i].name(),
                analytic[i].capacity_bytes / 1048576.0,
                analytic[i].miss_ratio,
                detail.apps[i].miss_ratio(),
                analytic[i].avg_hops,
                detail.apps[i].avg_hops(),
            );
        }
        println!(
            "# {design}: VM-isolated in real cache state: {}",
            detail.vm_isolated(&vms)
        );
    }
    println!("# expected: columns agree within coarse tolerance; Jumanji isolated, Adaptive not.");
}
