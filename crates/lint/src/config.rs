//! `lint.toml`: the checked-in policy file, parsed by a hand-rolled
//! TOML-subset reader (the workspace builds offline with no external
//! crates, so no `toml` dependency).
//!
//! Supported TOML subset — everything the schema needs and nothing
//! more: `[section]` tables, `[[allow]]` array-of-tables, `key =
//! value` with string, integer, and (possibly multi-line) string-array
//! values, and `#` comments. Unknown sections or keys are *errors*:
//! a typo in a policy file must not silently disable a rule.
//!
//! Schema (see the checked-in `lint.toml` for the live policy):
//!
//! ```toml
//! [paths]
//! determinism = ["crates/"]           # default-hasher applies under these
//! determinism_exempt = ["crates/rand_shim/"]
//! timing_allow = ["crates/bench/src/exec/"]   # wall-clock OK here
//! env_allow = ["crates/bench/src/spec.rs"]    # JUMANJI_* env reads OK here
//! figures = ["crates/bench/src/figures/"]     # plan-bypass applies here
//!
//! [plan_helpers]
//! names = ["mix_cell_inputs", "fig09_cases"]  # sanctioned cell constructors
//!
//! [unsafe_budget]
//! default = 0       # per-crate ceiling on `unsafe` occurrences
//! cache = 0         # override per crates/<dir>
//!
//! [[allow]]         # justified site-level exemptions
//! rule = "thread-local"
//! path = "crates/bench/src/lib.rs"
//! reason = "scratch buffer, not a memo"
//! ```

use std::collections::BTreeMap;
use std::path::Path;

/// One `[[allow]]` entry: suppress `rule` anywhere in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule id being allowed.
    pub rule: String,
    /// Repo-relative path (exact file or directory prefix ending `/`).
    pub path: String,
    /// Why the site is exempt. Required and non-empty.
    pub reason: String,
}

/// Parsed policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Path prefixes where `default-hasher` applies.
    pub determinism: Vec<String>,
    /// Subtracted from `determinism` (the vendored shims).
    pub determinism_exempt: Vec<String>,
    /// Path prefixes where wall-clock reads are legitimate.
    pub timing_allow: Vec<String>,
    /// Paths allowed to read `JUMANJI_*` environment variables.
    pub env_allow: Vec<String>,
    /// Path prefixes holding figure renderers (`plan-bypass` scope).
    pub figures: Vec<String>,
    /// Sanctioned cell-input constructors for `plan-bypass`.
    pub plan_helpers: Vec<String>,
    /// Per-crate `unsafe` ceiling when not overridden.
    pub unsafe_default: u64,
    /// Per-crate overrides, keyed by `crates/<dir>` name.
    pub unsafe_budget: BTreeMap<String, u64>,
    /// Site-level exemptions.
    pub allows: Vec<AllowEntry>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            determinism: vec!["crates/".into()],
            determinism_exempt: Vec::new(),
            timing_allow: Vec::new(),
            env_allow: Vec::new(),
            figures: Vec::new(),
            plan_helpers: Vec::new(),
            unsafe_default: 0,
            unsafe_budget: BTreeMap::new(),
            allows: Vec::new(),
        }
    }
}

impl LintConfig {
    /// True when `rel` (repo-relative, `/`-separated) is allowed for
    /// `rule` by an `[[allow]]` entry (exact file match or directory
    /// prefix).
    pub fn allows_site(&self, rule: &str, rel: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (rel == a.path || rel.starts_with(a.path.as_str())))
    }

    /// The `unsafe` budget of crate directory `name`.
    pub fn budget_of(&self, name: &str) -> u64 {
        self.unsafe_budget
            .get(name)
            .copied()
            .unwrap_or(self.unsafe_default)
    }

    /// Reads and parses a policy file.
    ///
    /// # Errors
    ///
    /// I/O failures and any syntax/schema violation, as a rendered
    /// message naming the offending line.
    pub fn load(path: &Path) -> Result<LintConfig, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
        parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// A parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Int(u64),
    List(Vec<String>),
}

/// Strips a `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one scalar or array value.
fn parse_value(raw: &str, line_no: usize) -> Result<Value, String> {
    let raw = raw.trim();
    if let Some(body) = raw.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated string"))?;
        if body.contains('"') {
            return Err(format!("line {line_no}: embedded quote in string"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line_no}: unterminated array"))?;
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            match parse_value(item, line_no)? {
                Value::Str(s) => items.push(s),
                _ => return Err(format!("line {line_no}: arrays hold strings only")),
            }
        }
        return Ok(Value::List(items));
    }
    raw.parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("line {line_no}: expected string, integer, or [array]"))
}

fn expect_list(v: Value, key: &str, line_no: usize) -> Result<Vec<String>, String> {
    match v {
        Value::List(l) => Ok(l),
        _ => Err(format!("line {line_no}: `{key}` must be a string array")),
    }
}

fn expect_str(v: Value, key: &str, line_no: usize) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(format!("line {line_no}: `{key}` must be a string")),
    }
}

fn expect_int(v: Value, key: &str, line_no: usize) -> Result<u64, String> {
    match v {
        Value::Int(i) => Ok(i),
        _ => Err(format!("line {line_no}: `{key}` must be an integer")),
    }
}

/// Parses the policy text.
pub fn parse(text: &str) -> Result<LintConfig, String> {
    let mut cfg = LintConfig {
        determinism: Vec::new(),
        ..LintConfig::default()
    };
    let mut section = String::new();
    // Logical-line assembly: arrays may span physical lines until the
    // brackets balance (strings cannot contain brackets per the schema).
    let mut pending = String::new();
    let mut pending_start = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let stripped = strip_comment(raw).trim().to_string();
        if stripped.is_empty() {
            continue;
        }
        if pending.is_empty() {
            pending_start = line_no;
            pending = stripped;
        } else {
            pending.push(' ');
            pending.push_str(&stripped);
        }
        let opens = pending.matches('[').count();
        let closes = pending.matches(']').count();
        if opens > closes {
            continue; // array still open
        }
        let line = std::mem::take(&mut pending);
        let line_no = pending_start;

        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            if name.trim() != "allow" {
                return Err(format!("line {line_no}: unknown table array [[{name}]]"));
            }
            cfg.allows.push(AllowEntry {
                rule: String::new(),
                path: String::new(),
                reason: String::new(),
            });
            section = "allow".into();
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim();
            match name {
                "paths" | "plan_helpers" | "unsafe_budget" => section = name.to_string(),
                _ => return Err(format!("line {line_no}: unknown section [{name}]")),
            }
            continue;
        }
        let (key, raw_value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected `key = value`"))?;
        let key = key.trim();
        let value = parse_value(raw_value, line_no)?;
        match section.as_str() {
            "paths" => {
                let list = expect_list(value, key, line_no)?;
                match key {
                    "determinism" => cfg.determinism = list,
                    "determinism_exempt" => cfg.determinism_exempt = list,
                    "timing_allow" => cfg.timing_allow = list,
                    "env_allow" => cfg.env_allow = list,
                    "figures" => cfg.figures = list,
                    _ => return Err(format!("line {line_no}: unknown [paths] key `{key}`")),
                }
            }
            "plan_helpers" => match key {
                "names" => cfg.plan_helpers = expect_list(value, key, line_no)?,
                _ => {
                    return Err(format!(
                        "line {line_no}: unknown [plan_helpers] key `{key}`"
                    ))
                }
            },
            "unsafe_budget" => {
                let n = expect_int(value, key, line_no)?;
                if key == "default" {
                    cfg.unsafe_default = n;
                } else {
                    cfg.unsafe_budget.insert(key.to_string(), n);
                }
            }
            "allow" => {
                let entry = cfg
                    .allows
                    .last_mut()
                    .expect("section == allow implies an open entry");
                let s = expect_str(value, key, line_no)?;
                match key {
                    "rule" => entry.rule = s,
                    "path" => entry.path = s,
                    "reason" => entry.reason = s,
                    _ => return Err(format!("line {line_no}: unknown [[allow]] key `{key}`")),
                }
            }
            _ => return Err(format!("line {line_no}: key outside any section")),
        }
    }
    if !pending.is_empty() {
        return Err(format!("line {pending_start}: unterminated value"));
    }
    for (i, a) in cfg.allows.iter().enumerate() {
        if a.rule.is_empty() || a.path.is_empty() {
            return Err(format!("[[allow]] entry {} needs rule and path", i + 1));
        }
        if !crate::rules::RULES.contains(&a.rule.as_str()) {
            return Err(format!(
                "[[allow]] entry {}: unknown rule `{}`",
                i + 1,
                a.rule
            ));
        }
        if a.reason.trim().is_empty() {
            return Err(format!(
                "[[allow]] entry {} ({} in {}): a non-empty reason is required",
                i + 1,
                a.rule,
                a.path
            ));
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let cfg = parse(
            r#"
# policy
[paths]
determinism = ["crates/"]
determinism_exempt = [
    "crates/rand_shim/",  # shim
    "crates/proptest_shim/",
]
timing_allow = ["crates/bench/src/exec/"]
env_allow = ["crates/bench/src/spec.rs"]
figures = ["crates/bench/src/figures/"]

[plan_helpers]
names = ["mix_cell_inputs", "fig09_cases"]

[unsafe_budget]
default = 0
cache = 2

[[allow]]
rule = "thread-local"
path = "crates/bench/src/lib.rs"
reason = "scratch buffer, not a memo"
"#,
        )
        .expect("valid policy");
        assert_eq!(cfg.determinism, vec!["crates/"]);
        assert_eq!(cfg.determinism_exempt.len(), 2);
        assert_eq!(cfg.unsafe_default, 0);
        assert_eq!(cfg.budget_of("cache"), 2);
        assert_eq!(cfg.budget_of("sim"), 0);
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.allows_site("thread-local", "crates/bench/src/lib.rs"));
        assert!(!cfg.allows_site("thread-local", "crates/bench/src/spec.rs"));
        assert!(!cfg.allows_site("wall-clock", "crates/bench/src/lib.rs"));
    }

    #[test]
    fn directory_allow_entries_prefix_match() {
        let cfg = parse("[[allow]]\nrule = \"env-var\"\npath = \"crates/x/\"\nreason = \"demo\"\n")
            .expect("valid");
        assert!(cfg.allows_site("env-var", "crates/x/src/lib.rs"));
        assert!(!cfg.allows_site("env-var", "crates/y/src/lib.rs"));
    }

    #[test]
    fn unknown_sections_keys_and_rules_are_errors() {
        assert!(parse("[nope]\n").is_err());
        assert!(parse("[paths]\nbogus = []\n").is_err());
        assert!(parse("[[allow]]\nrule = \"nonesuch\"\npath = \"x\"\nreason = \"r\"\n").is_err());
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let e = parse("[[allow]]\nrule = \"env-var\"\npath = \"x\"\n").expect_err("must fail");
        assert!(e.contains("reason"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = parse("[[allow]]\nrule = \"env-var\"\npath = \"x\"\nreason = \"uses # mark\"\n")
            .expect("valid");
        assert_eq!(cfg.allows[0].reason, "uses # mark");
    }
}
