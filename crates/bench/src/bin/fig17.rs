//! Fig. 17: Jumanji's batch speedup as the 20 applications are grouped
//! into 1 to 12 VMs (mixed latency-critical apps, high load).

use jumanji::prelude::*;
use jumanji::sim::metrics::gmean;
use jumanji::workloads::WorkloadMix;
use jumanji_bench::mix_count;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mixes = mix_count(8);
    let opts = SimOptions::default();
    println!(
        "# Fig. 17: Jumanji batch speedup vs number of VMs ({mixes} mixes, mixed LC, high load)"
    );
    println!("config\tgmean_speedup_pct\tworst_norm_tail");
    for (label, spec) in fig17_configs() {
        let mut speedups = Vec::new();
        let mut worst_tail: f64 = 0.0;
        for seed in 0..mixes as u64 {
            // Four distinct LC servers, as in the Mixed group.
            let mut pool = tailbench();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF17);
            pool.shuffle(&mut rng);
            pool.truncate(4);
            let mix = WorkloadMix::from_spec(&spec, &pool, seed);
            let exp = Experiment::new(mix, LcLoad::High, opts.clone());
            let baseline = exp.run(DesignKind::Static);
            let r = exp.run(DesignKind::Jumanji);
            speedups.push(r.weighted_speedup_vs(&baseline));
            worst_tail = worst_tail.max(r.max_norm_tail());
        }
        println!(
            "{label}\t{:.2}\t{:.3}",
            (gmean(&speedups) - 1.0) * 100.0,
            worst_tail
        );
    }
    println!("# expected: speedup roughly flat from 1 VM (~16%) to 12 VMs (~13%).");
}
