//! Analytic queueing models for shared NoC and bank-port resources.
//!
//! The epoch-based simulator needs a load-dependent latency term: when many
//! applications hammer the same bank (S-NUCA stripes everyone across every
//! bank), port utilization rises and queueing delay grows nonlinearly. We
//! use the M/D/1 waiting-time formula with a utilization cap, which captures
//! the paper's observation that contention "sets the tail" without
//! simulating every flit.

/// Expected M/D/1 waiting time, in the same unit as `service_time`.
///
/// `utilization` is the offered load ρ ∈ \[0, 1); values at or above
/// `rho_max` are clamped to keep the model finite (the detailed simulator,
/// not this formula, is used where saturation matters).
///
/// # Examples
///
/// ```
/// use nuca_noc::queueing::md1_wait;
/// assert_eq!(md1_wait(0.0, 10.0), 0.0);
/// // ρ = 0.5: W = ρ/(2(1-ρ)) · s = 0.5 · s / 1 = 5.0
/// assert!((md1_wait(0.5, 10.0) - 5.0).abs() < 1e-12);
/// assert!(md1_wait(0.99, 10.0) > md1_wait(0.9, 10.0));
/// ```
pub fn md1_wait(utilization: f64, service_time: f64) -> f64 {
    const RHO_MAX: f64 = 0.98;
    let rho = utilization.clamp(0.0, RHO_MAX);
    rho / (2.0 * (1.0 - rho)) * service_time
}

/// Utilization of one bank port given an aggregate access rate (accesses
/// per cycle across all requesters of the bank) and the per-access port
/// occupancy in cycles.
///
/// # Examples
///
/// ```
/// use nuca_noc::queueing::port_utilization;
/// // 0.1 accesses/cycle × 4-cycle occupancy on one port = 40 % busy.
/// assert!((port_utilization(0.1, 4.0, 1) - 0.4).abs() < 1e-12);
/// // Two ports halve the per-port load.
/// assert!((port_utilization(0.1, 4.0, 2) - 0.2).abs() < 1e-12);
/// ```
pub fn port_utilization(accesses_per_cycle: f64, occupancy_cycles: f64, ports: u32) -> f64 {
    debug_assert!(ports > 0);
    (accesses_per_cycle * occupancy_cycles / ports as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_is_zero_at_zero_load() {
        assert_eq!(md1_wait(0.0, 4.0), 0.0);
    }

    #[test]
    fn wait_grows_superlinearly() {
        let w25 = md1_wait(0.25, 4.0);
        let w50 = md1_wait(0.50, 4.0);
        let w75 = md1_wait(0.75, 4.0);
        assert!(w50 > 2.0 * w25);
        assert!(w75 > 2.0 * w50);
    }

    #[test]
    fn saturation_is_clamped_finite() {
        let w = md1_wait(5.0, 4.0);
        assert!(w.is_finite());
        assert_eq!(w, md1_wait(1.0, 4.0));
    }

    #[test]
    fn negative_load_clamped() {
        assert_eq!(md1_wait(-0.5, 4.0), 0.0);
        assert_eq!(port_utilization(-1.0, 4.0, 1), 0.0);
    }
}
