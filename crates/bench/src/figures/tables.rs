//! Configuration tables: the simulated system (Table II) and the
//! latency-critical workload roster (Table III).

use crate::spec::ExperimentSpec;
use jumanji::prelude::*;
use jumanji::sim::deadline::deadline_cycles;
use jumanji::types::Error;
use std::io::Write;

/// Table II: system parameters of the simulated multicore.
pub fn table2(
    _spec: &ExperimentSpec,
    _tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let cfg = SystemConfig::micro2020();
    cfg.validate().map_err(jumanji::types::Error::from)?;
    writeln!(out, "# Table II: system parameters (paper Sec. VII)")?;
    writeln!(out, "parameter\tvalue")?;
    writeln!(
        out,
        "cores\t{} cores, x86-64, {:.2} GHz OOO",
        cfg.num_cores,
        cfg.freq_hz / 1e9
    )?;
    writeln!(
        out,
        "l1\t{} KB, {}-way, {}-cycle",
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways,
        cfg.l1.latency.as_u64()
    )?;
    writeln!(
        out,
        "l2\t{} KB private, {}-way, {}-cycle",
        cfg.l2.size_bytes / 1024,
        cfg.l2.ways,
        cfg.l2.latency.as_u64()
    )?;
    writeln!(
        out,
        "llc\t{} MB shared, {}x{} MB banks, {}-way, {}-cycle bank latency",
        cfg.llc.total_bytes() >> 20,
        cfg.llc.num_banks,
        cfg.llc.bank_bytes >> 20,
        cfg.llc.ways,
        cfg.llc.bank_latency.as_u64()
    )?;
    writeln!(
        out,
        "noc\t{}x{} mesh, {}-bit flits, {}-cycle routers, {}-cycle links, X-Y routing",
        cfg.mesh_cols, cfg.mesh_rows, cfg.noc.flit_bits, cfg.noc.router_cycles, cfg.noc.link_cycles
    )?;
    writeln!(
        out,
        "memory\t{} controllers at chip corners, {}-cycle latency",
        cfg.mem.num_controllers,
        cfg.mem.latency.as_u64()
    )?;
    writeln!(
        out,
        "derived\t{} total ways, {} sets/bank, {} B lines",
        cfg.llc.total_ways(),
        cfg.llc.sets_per_bank(),
        cfg.llc.line_bytes
    )?;
    Ok(())
}

/// Table III: workload configuration for latency-critical applications,
/// plus the derived deadlines used throughout the evaluation.
pub fn table3(
    _spec: &ExperimentSpec,
    _tel: &dyn Telemetry,
    out: &mut dyn Write,
) -> Result<(), Error> {
    let cfg = SystemConfig::micro2020();
    writeln!(out, "# Table III: latency-critical workload configuration")?;
    writeln!(out, "app\tqps_low\tqps_high\tnum_queries\tdeadline_ms")?;
    for p in tailbench() {
        let deadline = deadline_cycles(&p, &cfg) / cfg.freq_hz * 1e3;
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.3}",
            p.name, p.qps_low, p.qps_high, p.num_queries, deadline
        )?;
    }
    writeln!(
        out,
        "# deadline = p95 latency in isolation, high load, 4-way partition (Sec. VII)"
    )?;
    Ok(())
}
