//! `jumanji-lint` — the workspace invariant checker.
//!
//! A hermetic, dependency-free static-analysis pass that mechanically
//! enforces the invariants the scheduler/cache stack rests on:
//! determinism (no `RandomState` maps, no wall-clock reads, no
//! thread-local memos in output paths), cache-key hygiene (figure
//! renderers obtain cell inputs via shared plan helpers), unsafe
//! discipline (`// SAFETY:` comments plus per-crate budgets), and a
//! centralized `JUMANJI_*` config surface.
//!
//! See [`rules`] for the rule table, [`config`] for the `lint.toml`
//! schema, and [`runner`] for the workspace scan and fixture
//! self-test. The binary lives in `main.rs`; `scripts/verify.sh` runs
//! it as a hard gate before the expensive golden comparisons.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod runner;
