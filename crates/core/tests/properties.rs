//! Property-based tests for the allocation algorithms: Lookahead,
//! JumanjiLookahead, the feedback controller, and LatCritPlacer.

use jumanji_core::controller::percentile;
use jumanji_core::lookahead::{jumanji_lookahead, lookahead};
use jumanji_core::{ControllerParams, FeedbackController};
use nuca_cache::MissCurve;
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = MissCurve> {
    proptest::collection::vec(0.0f64..1e6, 2..40).prop_map(|pts| MissCurve::new(64, pts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lookahead conserves capacity (up to curves' total headroom) and
    /// never exceeds any curve's domain.
    #[test]
    fn lookahead_conserves(
        curves in proptest::collection::vec(arb_curve(), 1..8),
        total in 0usize..200,
    ) {
        let alloc = lookahead(&curves, total);
        let sum: usize = alloc.iter().sum();
        let headroom: usize = curves.iter().map(|c| c.max_units()).sum();
        prop_assert_eq!(sum, total.min(headroom));
        for (a, c) in alloc.iter().zip(&curves) {
            prop_assert!(*a <= c.max_units());
        }
    }

    /// Lookahead's total misses never exceed a proportional split's.
    #[test]
    fn lookahead_beats_proportional(
        curves in proptest::collection::vec(arb_curve(), 2..6),
        total in 4usize..60,
    ) {
        let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull()).collect();
        let alloc = lookahead(&hulls, total);
        let smart: f64 = hulls.iter().zip(&alloc).map(|(c, &a)| c.at(a)).sum();
        let even: f64 = hulls.iter().map(|c| c.at(total / hulls.len())).sum();
        // Even split may exceed headroom per curve; at() clamps, which only
        // helps the even split, so the inequality is still meaningful.
        prop_assert!(smart <= even + 1e-6, "smart {smart} vs even {even}");
    }

    /// JumanjiLookahead always assigns every bank and respects every VM's
    /// mandatory minimum.
    #[test]
    fn jumanji_lookahead_totals(
        lc in proptest::collection::vec(0.0f64..96.0, 1..6),
        seed_curves in proptest::collection::vec(arb_curve(), 1..6),
    ) {
        prop_assume!(lc.len() == seed_curves.len());
        let mandatory: usize = lc
            .iter()
            .map(|&u| ((u / 32.0).ceil() as usize).max(1))
            .sum();
        prop_assume!(mandatory <= 20);
        let banks = jumanji_lookahead(&seed_curves, &lc, 20, 32);
        prop_assert_eq!(banks.iter().sum::<usize>(), 20);
        for (v, (&b, &u)) in banks.iter().zip(&lc).enumerate() {
            prop_assert!(b as f64 * 32.0 >= u, "VM {v}: {b} banks < {u} units");
            prop_assert!(b >= 1);
        }
    }

    /// The controller's size stays within [min, max] under any sequence of
    /// tail observations.
    #[test]
    fn controller_bounded(tails in proptest::collection::vec(0.0f64..5000.0, 1..200)) {
        let params = ControllerParams::micro2020(20.0 * 1048576.0);
        let mut c = FeedbackController::new(params, 1000.0, 2.0 * 1048576.0);
        for t in tails {
            let size = c.update(t);
            c.mark_deployed();
            prop_assert!(size >= params.min_bytes - 1.0);
            prop_assert!(size <= params.max_bytes + 1.0);
        }
    }

    /// The percentile helper returns an element of the sample and is
    /// monotone in p.
    #[test]
    fn percentile_properties(
        mut xs in proptest::collection::vec(0.0f64..1e9, 1..100),
        p1 in 0.01f64..1.0,
        p2 in 0.01f64..1.0,
    ) {
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&mut xs.clone(), lo);
        let b = percentile(&mut xs.clone(), hi);
        prop_assert!(a <= b);
        prop_assert!(xs.iter().any(|&x| (x - a).abs() < 1e-12));
        let _ = xs.pop();
    }
}
