//! Synthetic application models: SPEC-CPU2006-like batch profiles and
//! TailBench-like latency-critical profiles.
//!
//! The paper evaluates on real SPEC CPU2006 binaries and TailBench servers
//! under ZSim. We cannot run those binaries, but every allocation/placement
//! algorithm in the paper consumes only three things per application:
//!
//! 1. a **miss curve** (LLC misses vs. allocated capacity),
//! 2. an **access intensity** (LLC accesses per kilo-instruction), and
//! 3. for latency-critical apps, a **request model** (arrival rate and
//!    cache-dependent service time).
//!
//! This crate supplies synthetic versions of all three, with per-app
//! parameters chosen to match the published cache behaviour of the same
//! workloads (working-set sizes, streaming vs. cache-friendly, MPKI
//! ranges). See `DESIGN.md` §2 for the substitution argument.
//!
//! # Examples
//!
//! ```
//! use nuca_workloads::{spec2006, tailbench};
//!
//! let batch = spec2006();
//! assert_eq!(batch.len(), 16);
//! let mcf = batch.iter().find(|p| p.name == "429.mcf").unwrap();
//! let curve = mcf.miss_ratio_curve(32 * 1024, 640); // 0..20 MB in way units
//! assert!(curve.at(640) < curve.at(0), "mcf benefits from cache");
//!
//! let lc = tailbench();
//! assert_eq!(lc.len(), 5);
//! assert_eq!(lc[1].name, "xapian");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod curves;
mod latency;
mod layout;
mod mix;
mod reqgen;
mod streams;

pub use batch::{spec2006, BatchProfile};
pub use curves::CurveShape;
pub use latency::{tailbench, LcLoad, LcProfile};
pub use layout::{quadrant_layout, serpentine_layout, VmPlacement};
pub use mix::{case_study_mix, fig17_configs, random_batch_mix, VmWorkload, WorkloadMix};
pub use reqgen::RequestGenerator;
pub use streams::StreamGenerator;

/// One megabyte, the capacity of one LLC bank in the paper.
pub const MB: u64 = 1024 * 1024;
