//! Performance leakage through DRRIP set-dueling (paper Sec. VI-C,
//! Fig. 12).
//!
//! img-dnn runs with a *fixed* way-partition, yet its tail latency varies
//! with the co-running batch mix: the batch traffic drags the bank's
//! shared PSEL counter between SRRIP and BRRIP, and img-dnn's partition
//! (which thrashes at its 4-way size and therefore prefers BRRIP) misses
//! more whenever the co-runners favour SRRIP. A D-NUCA allocation in the
//! victim's own banks has a private PSEL: its tail is flat across mixes
//! and lower despite a smaller allocation.

use nuca_cache::{BankConfig, CacheBank, PartitionId, ReplPolicy, WayMask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the leakage experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageConfig {
    /// Number of random batch mixes (40 in the paper).
    pub num_mixes: usize,
    /// Interleaved access steps per run.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LeakageConfig {
    fn default() -> LeakageConfig {
        LeakageConfig {
            num_mixes: 40,
            steps: 120_000,
            seed: 7,
        }
    }
}

/// Results: normalized tail latency per mix, for the fixed S-NUCA
/// partition and the D-NUCA own-bank placement. Both normalized to the
/// victim running alone on S-NUCA.
#[derive(Debug, Clone)]
pub struct LeakageResult {
    /// S-NUCA tails, sorted best to worst (the red line of Fig. 12).
    pub snuca_norm_tails: Vec<f64>,
    /// D-NUCA tails in the same mix order, sorted (the blue line).
    pub dnuca_norm_tails: Vec<f64>,
}

impl LeakageResult {
    /// Relative spread of the S-NUCA tails (max/min − 1).
    pub fn snuca_spread(&self) -> f64 {
        let max = self.snuca_norm_tails.last().copied().unwrap_or(1.0);
        let min = self.snuca_norm_tails.first().copied().unwrap_or(1.0);
        max / min - 1.0
    }

    /// Relative spread of the D-NUCA tails.
    pub fn dnuca_spread(&self) -> f64 {
        let max = self.dnuca_norm_tails.last().copied().unwrap_or(1.0);
        let min = self.dnuca_norm_tails.first().copied().unwrap_or(1.0);
        max / min - 1.0
    }
}

const SETS: usize = 64;
const WAYS: u32 = 32;
/// Victim partition: 4 ways (the scaled 2.5 MB S-NUCA partition).
const VICTIM_WAYS: u32 = 4;
/// Hot region: fits comfortably in half the partition and hits under any
/// policy (most of img-dnn's weight reuse).
const VICTIM_HOT_LINES: u64 = (SETS as u64) * 2;
/// Thrash region: cyclic over twice the remaining partition space, so it
/// misses under SRRIP but is partially retained under BRRIP — making the
/// victim's miss ratio depend on the shared policy choice.
const VICTIM_THRASH_LINES: u64 = (SETS as u64) * 4;
/// Fraction of victim accesses going to the hot region.
const VICTIM_HOT_FRAC: f64 = 0.8;
/// D-NUCA allocation: two nearby banks ≈ 2 MB. The real D-NUCA keeps full
/// 32-way associativity per bank, so in this capacity-scaled bank the
/// victim's effective capacity matches its S-NUCA partition; the paper's
/// 20 % improvement comes from proximity (latency) and PSEL stability.
const DNUCA_WAYS: u32 = 4;

/// Service-time model for the victim (cycles), matching the img-dnn
/// profile: fixed work plus per-access memory time with the 3x dependent-
/// miss serialization of `nuca_workloads::latency`.
fn victim_tail(llc_lat: f64, miss_ratio: f64) -> f64 {
    let work = 6_900_000.0;
    let accesses = 30_000.0;
    let miss_pen = 140.0 * 3.0;
    let service = work + accesses * (llc_lat + miss_ratio * miss_pen);
    // M/D/1 p95 approximation at img-dnn's high-load arrival rate.
    let interarrival = 2.66e9 / 135.0;
    let rho = (service / interarrival).clamp(0.0, 0.98);
    let wq = rho / (2.0 * (1.0 - rho)) * service;
    service + 3.0 * wq
}

/// Runs one interleaved victim+batch simulation; returns the victim's
/// steady-state miss ratio.
///
/// `reuse_frac` parameterizes the batch mix's access pattern: each batch
/// access is, with probability `reuse_frac`, a *short-distance reuse* of a
/// recently-streamed line, and otherwise a fresh (churn) line. Short
/// reuses hit under SRRIP (new insertions start at RRPV 2 and survive a
/// while) but miss under BRRIP (insertions start at distant RRPV 3 and
/// are evicted almost immediately). So reuse-heavy mixes drag the shared
/// PSEL toward SRRIP — the policy the victim's thrashing partition hates.
fn run_shared_bank(reuse_frac: f64, steps: usize, seed: u64) -> f64 {
    run_shared_bank_with(ReplPolicy::Drrip, reuse_frac, steps, seed)
}

/// As `run_shared_bank`, under an arbitrary replacement policy — used by
/// the NRU ablation, which shows the leakage is specifically a set-dueling
/// artifact.
pub fn run_shared_bank_with(policy: ReplPolicy, reuse_frac: f64, steps: usize, seed: u64) -> f64 {
    let mut bank = CacheBank::new(BankConfig {
        sets: SETS,
        ways: WAYS,
        policy,
    });
    let victim = PartitionId(0);
    let batch = PartitionId(1);
    bank.set_mask(victim, WayMask::range(0, VICTIM_WAYS));
    bank.set_mask(batch, WayMask::range(VICTIM_WAYS, WAYS - VICTIM_WAYS));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v_pos: u64 = 0;
    let mut b_pos: u64 = 500_000;
    // Reuse gap of ~300 streamed lines ≈ 5 intervening lines per set.
    const REUSE_GAP: u64 = 300;
    for step in 0..steps {
        // Victim: mostly hot-region hits, plus a cyclic thrash component
        // whose hit rate depends on the bank's (shared) policy choice.
        let vline = if rng.gen_bool(VICTIM_HOT_FRAC) {
            100_000 + rng.gen_range(0..VICTIM_HOT_LINES)
        } else {
            v_pos += 1;
            200_000 + (v_pos % VICTIM_THRASH_LINES)
        };
        bank.access(vline, victim);
        // Batch: 3 accesses per step.
        for _ in 0..3 {
            let line = if b_pos > 500_000 + REUSE_GAP && rng.gen_bool(reuse_frac) {
                b_pos - REUSE_GAP
            } else {
                b_pos += 1;
                b_pos
            };
            bank.access(line, batch);
        }
        // Measure the second half only (steady state).
        if step == steps / 2 {
            bank.reset_stats();
        }
    }
    bank.stats().partition_miss_ratio(victim)
}

/// Runs the victim alone in a bank with `ways` ways and a private PSEL.
fn run_private_bank(ways: u32, steps: usize) -> f64 {
    let mut bank = CacheBank::new(BankConfig {
        sets: SETS,
        ways,
        policy: ReplPolicy::Drrip,
    });
    let victim = PartitionId(0);
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let mut v_pos: u64 = 0;
    for step in 0..steps {
        let vline = if rng.gen_bool(VICTIM_HOT_FRAC) {
            100_000 + rng.gen_range(0..VICTIM_HOT_LINES)
        } else {
            v_pos += 1;
            200_000 + (v_pos % VICTIM_THRASH_LINES)
        };
        bank.access(vline, victim);
        if step == steps / 2 {
            bank.reset_stats();
        }
    }
    bank.stats().partition_miss_ratio(victim)
}

/// Runs the full Fig. 12 experiment.
pub fn leakage_experiment(cfg: LeakageConfig) -> LeakageResult {
    let snuca_lat = 35.0;
    let dnuca_lat = 19.0;
    // Solo S-NUCA baseline: victim alone in the shared-bank geometry,
    // private PSEL (nobody else to drag it).
    let solo_mr = run_private_bank(VICTIM_WAYS, cfg.steps);
    let solo_tail = victim_tail(snuca_lat, solo_mr);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut snuca = Vec::with_capacity(cfg.num_mixes);
    // D-NUCA: private bank, so the result is mix-independent; tiny timing
    // jitter is modeled as zero (the paper's blue line is flat).
    let dnuca_mr = run_private_bank(DNUCA_WAYS, cfg.steps);
    let dnuca_tail = victim_tail(dnuca_lat, dnuca_mr);
    let dnuca = vec![dnuca_tail / solo_tail; cfg.num_mixes];

    for m in 0..cfg.num_mixes {
        // Mixes range from pure churn (PSEL -> BRRIP, which the victim's
        // thrashing partition prefers) to reuse-heavy (PSEL -> SRRIP,
        // which makes the victim thrash despite its fixed partition).
        let reuse_frac = 0.6 * m as f64 / (cfg.num_mixes.max(2) - 1) as f64;
        let mr = run_shared_bank(
            reuse_frac,
            cfg.steps,
            cfg.seed ^ (m as u64 * 0x9E37 + rng.gen::<u32>() as u64),
        );
        snuca.push(victim_tail(snuca_lat, mr) / solo_tail);
    }
    snuca.sort_by(|a, b| a.partial_cmp(b).expect("tails are finite"));
    LeakageResult {
        snuca_norm_tails: snuca,
        dnuca_norm_tails: dnuca,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> LeakageConfig {
        LeakageConfig {
            num_mixes: 8,
            steps: 40_000,
            seed: 3,
        }
    }

    #[test]
    fn snuca_tail_varies_across_mixes_despite_fixed_partition() {
        let r = leakage_experiment(quick());
        assert!(
            r.snuca_spread() > 0.03,
            "co-runners must leak into the victim's tail: spread {:.3}",
            r.snuca_spread()
        );
    }

    #[test]
    fn dnuca_tail_is_flat() {
        let r = leakage_experiment(quick());
        assert!(r.dnuca_spread() < 1e-9, "private PSEL: no leakage");
    }

    #[test]
    fn dnuca_beats_snuca_despite_smaller_allocation() {
        let r = leakage_experiment(quick());
        let snuca_mean: f64 =
            r.snuca_norm_tails.iter().sum::<f64>() / r.snuca_norm_tails.len() as f64;
        assert!(
            r.dnuca_norm_tails[0] < snuca_mean,
            "dnuca {} vs snuca mean {snuca_mean}",
            r.dnuca_norm_tails[0]
        );
    }

    #[test]
    fn worst_mixes_violate_by_ten_percent() {
        // The paper reports tail-latency violations "sometimes exceeding
        // 10%" relative to the best case.
        let r = leakage_experiment(LeakageConfig {
            num_mixes: 12,
            steps: 60_000,
            seed: 5,
        });
        assert!(
            r.snuca_spread() > 0.08,
            "spread {:.3} should approach the paper's >10% violations",
            r.snuca_spread()
        );
    }

    #[test]
    fn nru_has_no_leakage() {
        // Ablation: with NRU (no set-dueling state) the victim's miss
        // ratio barely moves across co-runner mixes — the Fig. 12 channel
        // is specifically DRRIP's shared PSEL.
        let mut ratios = Vec::new();
        for m in 0..6 {
            let reuse = 0.6 * m as f64 / 5.0;
            ratios.push(run_shared_bank_with(ReplPolicy::Nru, reuse, 40_000, 3 + m));
        }
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        let min = ratios.iter().cloned().fold(1.0f64, f64::min);
        assert!(
            max - min < 0.05,
            "NRU victim miss ratio must be mix-independent: {ratios:?}"
        );
        // Whereas DRRIP moves clearly over the same mixes.
        let d_lo = run_shared_bank_with(ReplPolicy::Drrip, 0.0, 80_000, 3);
        let d_hi = run_shared_bank_with(ReplPolicy::Drrip, 0.6, 80_000, 8);
        assert!((d_hi - d_lo).abs() > 0.04, "drrip {d_lo} -> {d_hi}");
    }

    #[test]
    fn victim_prefers_brrip() {
        // Direct check of the mechanism: the victim's thrashing pattern
        // misses less under BRRIP than SRRIP at its partition size.
        let run_with = |policy| {
            let mut bank = CacheBank::new(BankConfig {
                sets: SETS,
                ways: VICTIM_WAYS,
                policy,
            });
            let mut rng = StdRng::seed_from_u64(1);
            let mut v_pos: u64 = 0;
            for step in 0..40_000usize {
                let vline = if rng.gen_bool(VICTIM_HOT_FRAC) {
                    100_000 + rng.gen_range(0..VICTIM_HOT_LINES)
                } else {
                    v_pos += 1;
                    200_000 + (v_pos % VICTIM_THRASH_LINES)
                };
                bank.access(vline, PartitionId(0));
                if step == 20_000 {
                    bank.reset_stats();
                }
            }
            bank.stats().miss_ratio()
        };
        let srrip = run_with(ReplPolicy::Srrip);
        let brrip = run_with(ReplPolicy::Brrip);
        assert!(
            brrip < srrip - 0.03,
            "BRRIP {brrip:.3} must beat SRRIP {srrip:.3} on the thrash component"
        );
    }
}
